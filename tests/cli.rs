//! End-to-end tests of the `flatdd-cli` binary (cargo builds it for
//! integration tests and exposes the path via `CARGO_BIN_EXE_*`).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flatdd-cli"))
}

/// Runs the CLI and returns `(stdout, stderr)`: machine-readable payloads
/// (outcomes, samples, expectations, `--stats-json -`) land on stdout;
/// human commentary (summaries, timings, `--stats`) on stderr.
fn run_split(args: &[&str]) -> (String, String) {
    let out = cli()
        .args(args)
        .output()
        .expect("failed to launch flatdd-cli");
    assert!(
        out.status.success(),
        "exit {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn run_ok(args: &[&str]) -> String {
    let (stdout, stderr) = run_split(args);
    stdout + &stderr
}

#[test]
fn list_prints_families() {
    let out = run_ok(&["list"]);
    for family in ["ghz:N", "supremacy:N,cycles", "adder:N", "qaoa:N,rounds"] {
        assert!(out.contains(family), "missing {family} in:\n{out}");
    }
}

#[test]
fn run_ghz_reports_dd_phase() {
    let out = run_ok(&["run", "ghz:10", "--threads", "2"]);
    assert!(out.contains("10 qubits"));
    assert!(out.contains("phase Dd"));
    assert!(out.contains("converted at None"));
    // GHZ heavy outcomes are the two arms.
    assert!(out.contains("|0000000000>"));
    assert!(out.contains("|1111111111>"));
}

#[test]
fn run_supremacy_converts_and_samples() {
    let out = run_ok(&[
        "run",
        "supremacy:10,12",
        "--threads",
        "2",
        "--shots",
        "50",
        "--seed",
        "3",
    ]);
    assert!(out.contains("phase Dmav"));
    assert!(out.contains("converted at Some("));
    assert!(out.contains("sampled 50 shots"));
}

#[test]
fn engines_agree_through_the_cli() {
    let a = run_ok(&["run", "grover:8", "--engine", "flatdd", "--top", "1"]);
    let b = run_ok(&["run", "grover:8", "--engine", "dd", "--top", "1"]);
    let c = run_ok(&["run", "grover:8", "--engine", "array", "--top", "1"]);
    let heavy = |s: &str| {
        s.lines()
            .find(|l| l.trim_start().starts_with('|'))
            .map(|l| l.trim().to_string())
            .expect("no outcome line")
    };
    let (ha, hb, hc) = (heavy(&a), heavy(&b), heavy(&c));
    assert_eq!(ha, hb, "flatdd vs dd");
    assert_eq!(ha, hc, "flatdd vs array");
}

#[test]
fn expectation_flag_works() {
    let out = run_ok(&["run", "ghz:4", "--expect", "ZZII", "--expect", "IIIZ"]);
    // GHZ: <ZZ> on any pair = 1, single <Z> = 0.
    assert!(out.contains("<ZZII> = 1.000000"), "{out}");
    assert!(
        out.contains("<IIIZ> = 0.000000") || out.contains("<IIIZ> = -0.000000"),
        "{out}"
    );
}

#[test]
fn gen_emits_parseable_qasm() {
    let qasm = run_ok(&["gen", "qft:5"]);
    assert!(qasm.contains("OPENQASM 2.0;"));
    let c = qcircuit::parse_qasm(&qasm).expect("CLI-generated QASM must parse");
    assert_eq!(c.num_qubits(), 5);
}

#[test]
fn qasm_file_round_trip_through_cli() {
    let dir = std::env::temp_dir().join("flatdd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bell.qasm");
    std::fs::write(
        &path,
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
    )
    .unwrap();
    let out = run_ok(&["run", path.to_str().unwrap(), "--engine", "array"]);
    assert!(out.contains("2 qubits, 2 gates"));
    assert!(out.contains("|00>"));
    assert!(out.contains("|11>"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_spec_fails_cleanly() {
    let out = cli().args(["run", "bogus:5"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown circuit family"));
}

#[test]
fn stats_flag_prints_structured_stats() {
    let (stdout, stderr) = run_split(&["run", "dnn:8,3", "--stats", "--threads", "2"]);
    // Human-readable stats belong on stderr, keeping stdout machine-clean.
    assert!(stderr.contains("gates_dmav"), "{stderr}");
    assert!(stderr.contains("peak_state_dd_size"));
    assert!(!stdout.contains("gates_dmav"), "{stdout}");
}

#[test]
fn human_commentary_on_stderr_results_on_stdout() {
    let (stdout, stderr) = run_split(&["run", "ghz:8", "--threads", "2", "--stats-json", "-"]);
    for human in ["qubits", "gate census", "flatdd:"] {
        assert!(
            !stdout.contains(human),
            "stdout polluted by `{human}`:\n{stdout}"
        );
    }
    assert!(stderr.contains("8 qubits"));
    // `--stats-json -` puts one JSON object on stdout, then the outcomes.
    let json_line = stdout.lines().next().expect("stats JSON line");
    assert!(json_line.starts_with("{\"gates_dd\":"), "{json_line}");
    assert!(json_line.ends_with('}'));
    assert!(json_line.contains("\"ct_mv_hit_rate\":"));
    assert!(stdout.contains("|00000000>"));
}

#[test]
fn telemetry_flags_write_valid_files() {
    let dir = std::env::temp_dir().join(format!("flatdd_cli_tele_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    let events = dir.join("events.jsonl");
    run_split(&[
        "run",
        "dnn:8,3",
        "--threads",
        "2",
        "--trace-out",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--events-out",
        events.to_str().unwrap(),
    ]);
    let trace = std::fs::read_to_string(&trace).unwrap();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"dmav phase\""), "DNN must convert");
    let metrics = std::fs::read_to_string(&metrics).unwrap();
    assert!(metrics.contains("\"core.runs\": 1"), "{metrics}");
    assert!(metrics.contains("\"sim.gates_dmav\""));
    let events = std::fs::read_to_string(&events).unwrap();
    assert!(events.lines().count() > 2);
    assert!(events.lines().all(|l| l.starts_with("{\"type\":\"")));
    assert!(events.contains("\"type\":\"phase_transition\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flatdd_trace_env_var_enables_event_stream() {
    let path = std::env::temp_dir().join(format!("flatdd_env_trace_{}.jsonl", std::process::id()));
    let out = cli()
        .args(["run", "ghz:6", "--threads", "1"])
        .env("FLATDD_TRACE", &path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let events = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(events.contains("\"type\":\"run_start\""), "{events}");
    assert!(events.contains("\"type\":\"run_end\""));
}
