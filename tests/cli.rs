//! End-to-end tests of the `flatdd-cli` binary (cargo builds it for
//! integration tests and exposes the path via `CARGO_BIN_EXE_*`).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flatdd-cli"))
}

fn run_ok(args: &[&str]) -> String {
    let out = cli()
        .args(args)
        .output()
        .expect("failed to launch flatdd-cli");
    assert!(
        out.status.success(),
        "exit {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn list_prints_families() {
    let out = run_ok(&["list"]);
    for family in ["ghz:N", "supremacy:N,cycles", "adder:N", "qaoa:N,rounds"] {
        assert!(out.contains(family), "missing {family} in:\n{out}");
    }
}

#[test]
fn run_ghz_reports_dd_phase() {
    let out = run_ok(&["run", "ghz:10", "--threads", "2"]);
    assert!(out.contains("10 qubits"));
    assert!(out.contains("phase Dd"));
    assert!(out.contains("converted at None"));
    // GHZ heavy outcomes are the two arms.
    assert!(out.contains("|0000000000>"));
    assert!(out.contains("|1111111111>"));
}

#[test]
fn run_supremacy_converts_and_samples() {
    let out = run_ok(&[
        "run",
        "supremacy:10,12",
        "--threads",
        "2",
        "--shots",
        "50",
        "--seed",
        "3",
    ]);
    assert!(out.contains("phase Dmav"));
    assert!(out.contains("converted at Some("));
    assert!(out.contains("sampled 50 shots"));
}

#[test]
fn engines_agree_through_the_cli() {
    let a = run_ok(&["run", "grover:8", "--engine", "flatdd", "--top", "1"]);
    let b = run_ok(&["run", "grover:8", "--engine", "dd", "--top", "1"]);
    let c = run_ok(&["run", "grover:8", "--engine", "array", "--top", "1"]);
    let heavy = |s: &str| {
        s.lines()
            .find(|l| l.trim_start().starts_with('|'))
            .map(|l| l.trim().to_string())
            .expect("no outcome line")
    };
    let (ha, hb, hc) = (heavy(&a), heavy(&b), heavy(&c));
    assert_eq!(ha, hb, "flatdd vs dd");
    assert_eq!(ha, hc, "flatdd vs array");
}

#[test]
fn expectation_flag_works() {
    let out = run_ok(&["run", "ghz:4", "--expect", "ZZII", "--expect", "IIIZ"]);
    // GHZ: <ZZ> on any pair = 1, single <Z> = 0.
    assert!(out.contains("<ZZII> = 1.000000"), "{out}");
    assert!(
        out.contains("<IIIZ> = 0.000000") || out.contains("<IIIZ> = -0.000000"),
        "{out}"
    );
}

#[test]
fn gen_emits_parseable_qasm() {
    let qasm = run_ok(&["gen", "qft:5"]);
    assert!(qasm.contains("OPENQASM 2.0;"));
    let c = qcircuit::parse_qasm(&qasm).expect("CLI-generated QASM must parse");
    assert_eq!(c.num_qubits(), 5);
}

#[test]
fn qasm_file_round_trip_through_cli() {
    let dir = std::env::temp_dir().join("flatdd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bell.qasm");
    std::fs::write(
        &path,
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
    )
    .unwrap();
    let out = run_ok(&["run", path.to_str().unwrap(), "--engine", "array"]);
    assert!(out.contains("2 qubits, 2 gates"));
    assert!(out.contains("|00>"));
    assert!(out.contains("|11>"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_spec_fails_cleanly() {
    let out = cli().args(["run", "bogus:5"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown circuit family"));
}

#[test]
fn stats_flag_prints_structured_stats() {
    let out = run_ok(&["run", "dnn:8,3", "--stats", "--threads", "2"]);
    assert!(out.contains("gates_dmav"));
    assert!(out.contains("peak_state_dd_size"));
}
