//! Fault-injection integration: every `FLATDD_FAULTS` site must turn into
//! the documented typed, recoverable behavior — graceful DD fallback for
//! allocation failures, a contained `WorkerPanic` for conversion-worker
//! panics, a watchdog trip for NaN poisoning, and `CorruptCheckpoint` for
//! damaged checkpoint files.
//!
//! The registry is process-global, so every test serializes on [`LOCK`]
//! and disarms in a drop guard (panics included).

use flatdd::{
    faults, CheckpointPolicy, ConversionPolicy, FlatDdConfig, FlatDdError, FlatDdSimulator,
    GovernorConfig, Phase,
};
use qcircuit::generators;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes the test and guarantees disarm-on-exit (even on panic).
struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl<'a> Armed<'a> {
    fn new(spec: &str) -> Self {
        let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        faults::set_spec(spec).unwrap();
        Armed(guard)
    }
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        faults::clear();
    }
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "flatdd-fault-test-{}-{tag}.ckpt",
        std::process::id()
    ))
}

#[test]
fn alloc_failure_degrades_to_dd_phase() {
    let _armed = Armed::new("alloc.flat:error:always");
    let c = generators::from_spec("vqe:8,2", 1).unwrap();
    let cfg = FlatDdConfig {
        conversion: ConversionPolicy::AtGate(6),
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::try_new(8, cfg).unwrap();
    // The forced conversion hits the injected allocation failure; the run
    // must complete entirely DD-based with the refusal recorded.
    sim.run(&c).unwrap();
    assert_eq!(sim.phase(), Phase::Dd);
    assert!(sim.stats().conversion_refusals >= 1);
    assert_eq!(sim.stats().converted_at, None);
}

#[test]
fn conversion_worker_panic_is_contained() {
    let _armed = Armed::new("convert.worker_panic:panic");
    let c = generators::from_spec("vqe:8,2", 2).unwrap();
    let cfg = FlatDdConfig {
        conversion: ConversionPolicy::AtGate(6),
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::try_new(8, cfg).unwrap();
    let err = sim.run(&c).unwrap_err();
    match &err {
        FlatDdError::WorkerPanic { context, partial } => {
            assert_eq!(*context, "DD-to-array conversion");
            assert!(partial.gates_applied < c.num_gates());
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
    assert_eq!(err.exit_code(), 10);
    // The fault was one-shot (`Once` default): the simulator is still
    // usable and a fresh run now converts and completes.
    faults::clear();
    let mut sim2 = FlatDdSimulator::try_new(
        8,
        FlatDdConfig {
            conversion: ConversionPolicy::AtGate(6),
            ..Default::default()
        },
    )
    .unwrap();
    sim2.run(&c).unwrap();
    assert_eq!(sim2.phase(), Phase::Dmav);
}

#[test]
fn nan_poisoning_trips_the_watchdog() {
    let _armed = Armed::new("state.nan:nan");
    let c = generators::from_spec("vqe:8,2", 3).unwrap();
    let cfg = FlatDdConfig {
        conversion: ConversionPolicy::AtGate(4),
        governor: GovernorConfig {
            health_check_every: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::try_new(8, cfg).unwrap();
    let err = sim.run(&c).unwrap_err();
    match &err {
        FlatDdError::NumericalDivergence { detail, .. } => {
            assert!(
                detail.contains("NaN") || detail.contains("finite") || detail.contains("norm"),
                "unexpected watchdog detail: {detail}"
            );
        }
        other => panic!("expected NumericalDivergence, got {other}"),
    }
    assert_eq!(err.exit_code(), 6);
}

#[test]
fn truncated_checkpoint_write_is_rejected_on_load() {
    let _armed = Armed::new("checkpoint.truncate:truncate=100");
    let c = generators::ghz(8);
    let path = tmp_path("truncate");
    let mut sim = FlatDdSimulator::try_new(8, FlatDdConfig::default()).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    sim.run(&c).unwrap();
    // The write itself "succeeds" — the damage models a crash mid-write.
    sim.save_checkpoint().unwrap();
    match FlatDdSimulator::resume_from(&path, FlatDdConfig::default(), &c) {
        Err(FlatDdError::CorruptCheckpoint { .. }) => {}
        Err(e) => panic!("expected CorruptCheckpoint, got {e}"),
        Ok(_) => panic!("truncated checkpoint was accepted"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bitflipped_checkpoint_write_is_rejected_on_load() {
    let _armed = Armed::new("checkpoint.bitflip:bitflip=333");
    let c = generators::ghz(8);
    let path = tmp_path("bitflip");
    let mut sim = FlatDdSimulator::try_new(8, FlatDdConfig::default()).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    sim.run(&c).unwrap();
    sim.save_checkpoint().unwrap();
    match FlatDdSimulator::resume_from(&path, FlatDdConfig::default(), &c) {
        Err(err @ FlatDdError::CorruptCheckpoint { .. }) => assert_eq!(err.exit_code(), 9),
        Err(e) => panic!("expected CorruptCheckpoint, got {e}"),
        Ok(_) => panic!("bit-flipped checkpoint was accepted"),
    }
}

#[test]
fn disarmed_runs_are_unaffected() {
    let _armed = Armed::new("");
    let c = generators::from_spec("vqe:8,2", 4).unwrap();
    let cfg = FlatDdConfig {
        conversion: ConversionPolicy::AtGate(6),
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::try_new(8, cfg).unwrap();
    sim.run(&c).unwrap();
    assert_eq!(sim.phase(), Phase::Dmav);
}

#[test]
fn enospc_during_checkpoint_install_keeps_prior_checkpoint() {
    let _armed = Armed::new("checkpoint.enospc:error");
    let c = generators::ghz(8);
    let path = tmp_path("enospc");
    let mut sim = FlatDdSimulator::try_new(8, FlatDdConfig::default()).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    sim.run(&c).unwrap();
    // First write hits the injected ENOSPC between the temp write and the
    // rename: a typed I/O error, no torn file installed.
    match sim.save_checkpoint() {
        Err(FlatDdError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::StorageFull);
            assert!(e.to_string().contains(faults::SITE_CKPT_ENOSPC));
        }
        Err(e) => panic!("expected Io(StorageFull), got {e}"),
        Ok(_) => panic!("injected ENOSPC was swallowed"),
    }
    assert!(!path.exists(), "failed install left a checkpoint behind");
    // The fault was one-shot: the retry succeeds and the file loads.
    sim.save_checkpoint().unwrap();
    FlatDdSimulator::resume_from(&path, FlatDdConfig::default(), &c).unwrap();
    // A full checkpoint survives a later failed overwrite attempt intact.
    faults::set_spec("checkpoint.enospc:error:always").unwrap();
    sim.save_checkpoint().unwrap_err();
    FlatDdSimulator::resume_from(&path, FlatDdConfig::default(), &c).unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn spool_write_failure_is_a_typed_io_error() {
    let _armed = Armed::new("spool.write:error:always");
    let dir = std::env::temp_dir().join(format!("flatdd-fault-test-spool-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = flatdd::serve::JobSpec {
        circuit: "ghz:4".into(),
        ..Default::default()
    };
    let rec = flatdd::serve::JobRecord::new(7, spec);
    match rec.persist(&dir) {
        Err(FlatDdError::Io(e)) => {
            assert!(e.to_string().contains(faults::SITE_SPOOL_WRITE));
        }
        Err(e) => panic!("expected Io, got {e}"),
        Ok(()) => panic!("injected spool write failure was swallowed"),
    }
    // Nothing was installed and nothing torn was left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
    assert!(
        leftovers.is_empty(),
        "spool write failure left files: {leftovers:?}"
    );
    // Disarmed, the same record persists and reloads cleanly.
    faults::clear();
    rec.persist(&dir).unwrap();
    let loaded = flatdd::serve::jobs::load_spool(&dir);
    assert_eq!(loaded.records.len(), 1);
    assert_eq!(loaded.records[0].id, 7);
    assert_eq!(loaded.quarantined, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_site_is_registered() {
    // The CI smoke job iterates `sites()`; pin the catalog so a new site
    // cannot be added without a smoke entry (this list is the contract).
    let sites = faults::sites();
    for s in [
        "alloc.flat",
        "convert.worker_panic",
        "state.nan",
        "checkpoint.truncate",
        "checkpoint.bitflip",
        "spool.write",
        "checkpoint.enospc",
    ] {
        assert!(sites.contains(&s), "fault site {s} missing from registry");
    }
    assert_eq!(sites.len(), 7, "new fault site needs a CI smoke entry");
}
