//! Shared helpers for the `flatdd-serve` end-to-end tests: spawn the
//! daemon against a spool, talk minimal HTTP/1.1 to it, poll job states.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

pub const SERVE: &str = env!("CARGO_BIN_EXE_flatdd-serve");

/// A running daemon bound to an OS-assigned port.
pub struct Daemon {
    pub child: Child,
    pub port: u16,
    pub spool: PathBuf,
}

impl Daemon {
    /// Spawns `flatdd-serve --spool <spool> --port 0 <extra...>` and waits
    /// for the port file.
    pub fn start(spool: &Path, extra: &[&str]) -> Daemon {
        std::fs::create_dir_all(spool).unwrap();
        let port_file = spool.join("serve.port");
        // A stale port file from a previous instance must not be read as
        // this instance's port.
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(SERVE)
            .args(["--spool", spool.to_str().unwrap(), "--port", "0"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn flatdd-serve");
        let deadline = Instant::now() + Duration::from_secs(30);
        let port = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = s.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not write {} within 30s",
                port_file.display()
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        Daemon {
            child,
            port,
            spool: spool.to_path_buf(),
        }
    }

    /// Sends SIGTERM and waits for exit, asserting a clean (code 0) drain
    /// within `timeout`.
    pub fn drain(mut self, timeout: Duration) {
        let term = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("send SIGTERM");
        assert!(term.success());
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert_eq!(status.code(), Some(0), "drain must exit 0");
                return;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not drain within {timeout:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// SIGKILL — the crash the recovery tests simulate.
    pub fn kill(mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// One HTTP request against localhost; returns `(status, body)`.
pub fn http(port: u16, method: &str, path: &str, body: Option<&str>) -> (u32, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u32 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

/// Extracts a top-level `"id": N` from a submit response.
pub fn job_id(body: &str) -> u64 {
    field_u64(body, "\"id\":").unwrap_or_else(|| panic!("no id in {body:?}"))
}

/// Pulls the number right after `key` out of a JSON string (the tests
/// only need flat, known-shape payloads — no full parser required).
pub fn field_u64(body: &str, key: &str) -> Option<u64> {
    let i = body.find(key)? + key.len();
    let digits: String = body[i..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The job's `"state"` value from a status payload.
pub fn job_state(body: &str) -> String {
    let key = "\"state\":\"";
    let i = body
        .find(key)
        .unwrap_or_else(|| panic!("no state in {body:?}"))
        + key.len();
    body[i..].chars().take_while(|&c| c != '"').collect()
}

/// Polls `GET /jobs/{id}` until the state is terminal; returns the final
/// status body.
pub fn wait_terminal(port: u16, id: u64, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (code, body) = http(port, "GET", &format!("/jobs/{id}"), None);
        assert_eq!(code, 200, "status poll failed: {body}");
        let state = job_state(&body);
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} still `{state}` after {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Parses the `heavy` array of a `done` status payload into
/// `(index, re, im)` triples.
pub fn heavy_amplitudes(body: &str) -> Vec<(usize, f64, f64)> {
    let mut out = Vec::new();
    let Some(start) = body.find("\"heavy\":[") else {
        return out;
    };
    let rest = &body[start + "\"heavy\":[".len()..];
    let end = rest.find(']').unwrap_or(rest.len());
    for item in rest[..end].split("},") {
        let idx = field_u64(item, "\"index\":");
        let re = field_f64(item, "\"re\":");
        let im = field_f64(item, "\"im\":");
        if let (Some(idx), Some(re), Some(im)) = (idx, re, im) {
            out.push((idx as usize, re, im));
        }
    }
    out
}

fn field_f64(body: &str, key: &str) -> Option<f64> {
    let i = body.find(key)? + key.len();
    let num: String = body[i..]
        .chars()
        .take_while(|&c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// A fresh spool directory under the system temp dir.
pub fn fresh_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flatdd-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
