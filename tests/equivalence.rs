//! Equivalence-checking integration tests: DD-based verification against
//! semantic ground truth across crates.

use qcircuit::{generators, Circuit};
use qdd::{check_equivalence, unitaries_equal, Equivalence};

#[test]
fn generator_families_are_self_equivalent() {
    for c in [
        generators::ghz(6),
        generators::qft(5),
        generators::w_state(5),
        generators::grover(4, 7, Some(1)),
        generators::dnn(5, 2, 3),
    ] {
        assert_eq!(
            check_equivalence(&c, &c.clone()),
            Equivalence::Equal,
            "{}",
            c.name()
        );
    }
}

#[test]
fn qft_dagger_qft_is_identity() {
    let n = 5;
    let mut c = generators::qft(n);
    c.extend(&generators::qft(n).dagger());
    let empty = Circuit::new(n);
    assert!(check_equivalence(&c, &empty).is_equivalent());
}

#[test]
fn different_random_circuits_are_inequivalent() {
    let a = generators::random_circuit(5, 30, 1);
    let b = generators::random_circuit(5, 30, 2);
    assert_eq!(check_equivalence(&a, &b), Equivalence::NotEqual);
}

#[test]
fn gate_commutation_rewrites_verify() {
    // Disjoint-qubit gates commute.
    let mut a = Circuit::new(4);
    a.h(0).t(2).cx(1, 3).ry(0.4, 0);
    let mut b = Circuit::new(4);
    b.cx(1, 3).h(0).ry(0.4, 0).t(2);
    assert_eq!(check_equivalence(&a, &b), Equivalence::Equal);
}

#[test]
fn cz_is_symmetric_but_cx_is_not() {
    let mut a = Circuit::new(2);
    a.cz(0, 1);
    let mut b = Circuit::new(2);
    b.cz(1, 0);
    assert_eq!(check_equivalence(&a, &b), Equivalence::Equal);

    let mut a = Circuit::new(2);
    a.cx(0, 1);
    let mut b = Circuit::new(2);
    b.cx(1, 0);
    assert_eq!(check_equivalence(&a, &b), Equivalence::NotEqual);
}

#[test]
fn equivalence_agrees_with_dense_unitaries() {
    // Cross-validate the DD checker against dense matrix comparison on
    // random pairs (some equal by construction, some perturbed).
    use qcircuit::dense;
    for seed in [3u64, 4, 5] {
        let a = generators::random_circuit(4, 25, seed);
        let mut b = a.clone();
        if seed % 2 == 1 {
            b.t(2); // perturb odd seeds
        }
        let verdict = check_equivalence(&a, &b);
        // Dense ground truth.
        let dim = 1usize << 4;
        let mut ua = vec![qcircuit::Complex64::ZERO; dim * dim];
        let mut ub = ua.clone();
        for col in 0..dim {
            let mut va = dense::basis_state(4, col);
            for g in a.iter() {
                dense::apply_gate(&mut va, g);
            }
            let mut vb = dense::basis_state(4, col);
            for g in b.iter() {
                dense::apply_gate(&mut vb, g);
            }
            for row in 0..dim {
                ua[row * dim + col] = va[row];
                ub[row * dim + col] = vb[row];
            }
        }
        let dense_equal = ua.iter().zip(&ub).all(|(&x, &y)| x.approx_eq(y, 1e-9));
        assert_eq!(
            verdict.is_equivalent() && verdict == Equivalence::Equal,
            dense_equal,
            "seed {seed}"
        );
    }
}

#[test]
fn unitaries_equal_and_miter_agree() {
    let pairs = [
        (generators::ghz(4), generators::ghz(4)),
        (generators::qft(4), generators::random_circuit(4, 20, 9)),
    ];
    for (a, b) in pairs {
        let v1 = check_equivalence(&a, &b);
        let v2 = unitaries_equal(&a, &b);
        assert_eq!(v1.is_equivalent(), v2.is_equivalent());
    }
}

#[test]
fn qasm_round_trip_preserves_equivalence_up_to_phase() {
    let c = generators::random_circuit(4, 30, 77);
    let qasm = qcircuit::qasm::to_qasm(&c);
    let parsed = qcircuit::parse_qasm(&qasm).unwrap();
    assert!(check_equivalence(&c, &parsed).is_equivalent());
}
