//! End-to-end crash recovery through the CLI binary: a run killed with
//! SIGKILL mid-flat-phase must resume from its last installed checkpoint
//! and print exactly the same output distribution as an uninterrupted
//! run, and a SIGTERM'd run must exit with the typed resumable code after
//! writing a final checkpoint.

#![cfg(unix)]

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const CLI: &str = env!("CARGO_BIN_EXE_flatdd-cli");
const CIRCUIT: &str = "supremacy:19,14";
const SEED: &str = "9";

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "flatdd-crash-test-{}-{tag}.ckpt",
        std::process::id()
    ))
}

/// The machine-readable portion of a run's stdout (the outcome table).
fn outcomes(stdout: &[u8]) -> String {
    let s = String::from_utf8_lossy(stdout);
    match s.find("most probable outcomes:") {
        Some(i) => s[i..].to_string(),
        None => panic!("no outcome table in stdout: {s:?}"),
    }
}

fn clean_run() -> String {
    let out = Command::new(CLI)
        .args(["run", CIRCUIT, "--seed", SEED, "--threads", "2"])
        .stderr(Stdio::null())
        .output()
        .expect("spawn clean run");
    assert!(out.status.success(), "clean run failed");
    outcomes(&out.stdout)
}

/// Polls until `path` holds a loadable *flat-phase* checkpoint (a
/// half-written `*.tmp` never satisfies this — that is the point of the
/// atomic rename).
fn wait_for_flat_checkpoint(path: &Path, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(h) = flatdd::read_header(path) {
            if h.phase == flatdd::Phase::Dmav {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn sigkill_mid_run_resumes_to_identical_output() {
    let want = clean_run();
    let ckpt = tmp("sigkill");
    let _ = std::fs::remove_file(&ckpt);

    let mut child = Command::new(CLI)
        .args([
            "run",
            CIRCUIT,
            "--seed",
            SEED,
            "--threads",
            "2",
            "--checkpoint-every",
            "10",
            "--checkpoint-path",
            ckpt.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn checkpointing run");

    // Let it get past the conversion into the flat phase, then kill -9 —
    // no signal handler, no flush, the hardest possible interruption.
    let saw_checkpoint = wait_for_flat_checkpoint(&ckpt, Duration::from_secs(60));
    let still_running = child.try_wait().expect("try_wait").is_none();
    child.kill().ok();
    child.wait().expect("wait");
    assert!(
        saw_checkpoint,
        "no flat-phase checkpoint appeared within 60s"
    );
    assert!(
        still_running,
        "run finished before it could be killed; grow CIRCUIT to keep this test honest"
    );

    // The killed run was mid-flat-phase.
    let header = flatdd::read_header(&ckpt).expect("killed run left a loadable checkpoint");
    assert_eq!(
        header.phase,
        flatdd::Phase::Dmav,
        "expected a flat-phase checkpoint"
    );

    let out = Command::new(CLI)
        .args([
            "run",
            CIRCUIT,
            "--seed",
            SEED,
            "--threads",
            "2",
            "--resume-from",
            ckpt.to_str().unwrap(),
        ])
        .stderr(Stdio::null())
        .output()
        .expect("spawn resume run");
    assert!(out.status.success(), "resume run failed");
    assert_eq!(
        outcomes(&out.stdout),
        want,
        "resumed output distribution differs from the uninterrupted run"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn sigterm_checkpoints_and_exits_resumable() {
    let ckpt = tmp("sigterm");
    let _ = std::fs::remove_file(&ckpt);

    let mut child = Command::new(CLI)
        .args([
            "run",
            CIRCUIT,
            "--seed",
            SEED,
            "--threads",
            "2",
            "--checkpoint-every",
            "10",
            "--checkpoint-path",
            ckpt.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn run");

    // Wait for hard evidence the run is mid-flat-phase (a fixed sleep
    // races the run on fast machines), then ask it to stop politely.
    let saw_checkpoint = wait_for_flat_checkpoint(&ckpt, Duration::from_secs(60));
    let still_running = child.try_wait().expect("try_wait").is_none();
    assert!(
        saw_checkpoint,
        "no flat-phase checkpoint appeared within 60s"
    );
    assert!(
        still_running,
        "run finished before SIGTERM; grow CIRCUIT to keep this test honest"
    );
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    let out = child.wait_with_output().expect("wait");
    assert_eq!(
        out.status.code(),
        Some(8),
        "expected the Interrupted exit code"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("interrupted by SIGTERM"),
        "missing interruption note: {stderr}"
    );
    assert!(
        stderr.contains("--resume-from"),
        "missing resumable hint: {stderr}"
    );
    // The final on-breach checkpoint is loadable and positioned mid-run.
    let header = flatdd::read_header(&ckpt).expect("SIGTERM left a loadable checkpoint");
    assert!(header.gate_cursor > 0);
    let _ = std::fs::remove_file(&ckpt);
}
