//! End-to-end OpenQASM pipeline: parse realistic QASMBench-style programs
//! and verify the simulated semantics across engines.

use flatdd::FlatDdConfig;
use qcircuit::complex::state_distance;
use qcircuit::{dense, parse_qasm};

const BELL: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
"#;

/// A QASMBench-flavoured program with custom gate definitions, parameter
/// arithmetic, broadcasting, and barriers.
const FANCY: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg in[3];
qreg anc[2];
creg c[5];
gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
gate phase_kick(theta) a, b { cu1(theta/2) a, b; cx a, b; cu1(-theta/2) a, b; cx a, b; }
h in;
barrier in;
x anc[0];
majority in[0], in[1], in[2];
phase_kick(pi/3) anc[0], anc[1];
u2(0, pi) anc[1];
u3(pi/7, -pi/5, pi/9) in[1];
rz(2*pi/8 + 0.125) in[2];
swap in[0], anc[1];
cswap anc[0], in[0], in[1];
barrier in, anc;
measure in[0] -> c[0];
"#;

const GHZ5: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
"#;

#[test]
fn bell_state_through_all_engines() {
    let c = parse_qasm(BELL).unwrap();
    let want = dense::simulate(&c);
    assert!((want[0].norm_sqr() - 0.5).abs() < 1e-12);
    assert!((want[3].norm_sqr() - 0.5).abs() < 1e-12);
    assert!(state_distance(&qdd::sim::simulate(&c), &want) < 1e-10);
    assert!(state_distance(&qarray::simulate(&c), &want) < 1e-10);
    let fd = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 1,
            ..Default::default()
        },
    );
    assert!(state_distance(&fd, &want) < 1e-10);
}

#[test]
fn fancy_program_parses_and_engines_agree() {
    let c = parse_qasm(FANCY).unwrap();
    assert_eq!(c.num_qubits(), 5);
    assert!(c.num_gates() > 15, "macro expansion must inline bodies");
    let want = dense::simulate(&c);
    assert!(state_distance(&qdd::sim::simulate(&c), &want) < 1e-9);
    assert!(state_distance(&qarray::simulate_with_threads(&c, 2), &want) < 1e-9);
    let fd = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    assert!(state_distance(&fd, &want) < 1e-9);
}

#[test]
fn ghz_qasm_matches_generator() {
    let parsed = parse_qasm(GHZ5).unwrap();
    let generated = qcircuit::generators::ghz(5);
    let a = dense::simulate(&parsed);
    let b = dense::simulate(&generated);
    assert!(state_distance(&a, &b) < 1e-12);
}

#[test]
fn generator_to_qasm_to_engines_round_trip() {
    for c in [
        qcircuit::generators::qft(5),
        qcircuit::generators::w_state(5),
        qcircuit::generators::random_circuit(5, 40, 77),
    ] {
        let qasm = qcircuit::qasm::to_qasm(&c);
        let parsed = parse_qasm(&qasm).unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        let want = dense::simulate(&c);
        let got = flatdd::simulate(
            &parsed,
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        );
        // to_qasm may shift global phase through gate identities.
        assert!(
            qcircuit::complex::state_distance_up_to_phase(&got, &want) < 1e-8,
            "{}",
            c.name()
        );
    }
}

#[test]
fn file_round_trip_via_tempfile() {
    let dir = std::env::temp_dir();
    let path = dir.join("flatdd_test_ghz.qasm");
    std::fs::write(&path, GHZ5).unwrap();
    let src = std::fs::read_to_string(&path).unwrap();
    let c = parse_qasm(&src).unwrap();
    assert_eq!(c.num_qubits(), 5);
    std::fs::remove_file(&path).ok();
}
