//! Cross-engine agreement: for every benchmark family and a grid of
//! configurations, the three engines (FlatDD, the DDSIM-equivalent DD
//! engine, the Quantum++-equivalent array engine) and the dense reference
//! must produce the same final state.

use flatdd::{CachingPolicy, ConversionPolicy, EwmaConfig, FlatDdConfig, FusionPolicy};
use qcircuit::complex::state_distance;
use qcircuit::{dense, generators, Circuit};

const TOL: f64 = 1e-8;

fn families(n: usize, seed: u64) -> Vec<Circuit> {
    vec![
        generators::ghz(n),
        generators::adder_n(if n.is_multiple_of(2) { n } else { n + 1 }),
        generators::qft(n),
        generators::w_state(n),
        generators::dnn(n, 2, seed),
        generators::vqe(n, 2, seed),
        generators::knn((n - 1) / 2, seed),
        generators::swap_test((n - 1) / 2, seed),
        generators::supremacy_n(n, 6, seed),
        generators::supremacy_fsim(2, n.div_ceil(2), 5, seed),
        generators::grover(n.min(6), 3, Some(1)),
        generators::random_circuit(n, 10 * n, seed),
    ]
}

#[test]
fn four_engines_agree_on_every_family() {
    for c in families(7, 11) {
        let want = dense::simulate(&c);
        let dd = qdd::sim::simulate(&c);
        assert!(
            state_distance(&dd, &want) < TOL,
            "dd vs dense on {}",
            c.name()
        );
        let ar = qarray::simulate_with_threads(&c, 4);
        assert!(
            state_distance(&ar, &want) < TOL,
            "array vs dense on {}",
            c.name()
        );
        let fd = flatdd::simulate(
            &c,
            FlatDdConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert!(
            state_distance(&fd, &want) < TOL,
            "flatdd vs dense on {}",
            c.name()
        );
    }
}

#[test]
fn flatdd_thread_grid_agrees() {
    let c = generators::supremacy_n(8, 8, 3);
    let want = dense::simulate(&c);
    for threads in [1usize, 2, 4, 8, 16] {
        let got = flatdd::simulate(
            &c,
            FlatDdConfig {
                threads,
                ..Default::default()
            },
        );
        assert!(state_distance(&got, &want) < TOL, "threads={threads}");
    }
}

#[test]
fn flatdd_policy_grid_agrees() {
    let c = generators::dnn(7, 2, 17);
    let want = dense::simulate(&c);
    let conversions = [
        ConversionPolicy::Ewma(EwmaConfig::default()),
        ConversionPolicy::Ewma(EwmaConfig {
            beta: 0.5,
            epsilon: 1.5,
            min_size: 8,
        }),
        ConversionPolicy::AtGate(3),
        ConversionPolicy::AtGate(1000),
        ConversionPolicy::Immediate,
        ConversionPolicy::Never,
    ];
    let cachings = [
        CachingPolicy::CostModel,
        CachingPolicy::Always,
        CachingPolicy::Never,
    ];
    let fusions = [
        FusionPolicy::None,
        FusionPolicy::DmavAware,
        FusionPolicy::KOperations(3),
    ];
    for conversion in conversions {
        for caching in cachings {
            for fusion in fusions {
                let cfg = FlatDdConfig {
                    threads: 2,
                    conversion,
                    caching,
                    fusion,
                    ..Default::default()
                };
                let got = flatdd::simulate(&c, cfg);
                assert!(
                    state_distance(&got, &want) < TOL,
                    "{conversion:?} / {caching:?} / {fusion:?}"
                );
            }
        }
    }
}

#[test]
fn adder_computes_sums_in_every_engine() {
    // Functional check with classical semantics: the Cuccaro adder must add.
    let k = 3;
    let c = generators::adder(k, 5, 6);
    // 5 + 6 = 11 = 3 mod 8 with carry-out 1.
    let expect_b = 3u64;
    let expect_carry = 1u64;
    let check = |state: &[qcircuit::Complex64], tag: &str| {
        let idx = state
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.norm_sqr().total_cmp(&y.norm_sqr()))
            .unwrap()
            .0;
        let mut b_out = 0u64;
        for i in 0..k {
            b_out |= (((idx >> (2 * i + 2)) & 1) as u64) << i;
        }
        assert_eq!(b_out, expect_b, "{tag}: wrong sum bits");
        assert_eq!(
            ((idx >> (2 * k + 1)) & 1) as u64,
            expect_carry,
            "{tag}: wrong carry"
        );
    };
    check(&qdd::sim::simulate(&c), "dd");
    check(&qarray::simulate_with_threads(&c, 2), "array");
    check(
        &flatdd::simulate(
            &c,
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        ),
        "flatdd",
    );
}

#[test]
fn deep_circuit_agreement_with_mid_run_conversion() {
    // Long enough that GC, conversion, and hundreds of DMAVs all trigger.
    let n = 8;
    let c = generators::supremacy_n(n, 40, 9);
    assert!(c.num_gates() > 400);
    let want = qarray::simulate_with_threads(&c, 1);
    let got = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 4,
            ..Default::default()
        },
    );
    assert!(state_distance(&got, &want) < 1e-7);
}

#[test]
fn grover_probability_consistent_across_engines() {
    let n = 8;
    let marked = 173;
    let c = generators::grover(n, marked, None);
    let p_dd = qdd::sim::simulate(&c)[marked].norm_sqr();
    let p_ar = qarray::simulate(&c)[marked].norm_sqr();
    let p_fd = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    )[marked]
        .norm_sqr();
    assert!(p_dd > 0.9);
    assert!((p_dd - p_ar).abs() < 1e-9);
    assert!((p_dd - p_fd).abs() < 1e-9);
}
