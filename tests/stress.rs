//! Moderate-size stress tests (fast in release; the `#[ignore]`d ones are
//! for `cargo test --release -- --ignored` on a capable machine).

use flatdd::{FlatDdConfig, FlatDdSimulator};
use qcircuit::complex::{norm_sqr, state_distance};
use qcircuit::generators;

#[test]
fn twelve_qubit_supremacy_cross_check() {
    let n = 12;
    let c = generators::supremacy_n(n, 14, 3);
    let want = qarray::simulate_with_threads(&c, 2);
    let got = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 4,
            ..Default::default()
        },
    );
    assert!(state_distance(&got, &want) < 1e-8);
    assert!((norm_sqr(&got) - 1.0).abs() < 1e-8);
}

#[test]
fn deep_thousand_gate_circuit_stays_exact() {
    let n = 10;
    let c = generators::dnn(n, 28, 5); // ~1000+ gates
    assert!(c.num_gates() > 1000);
    let want = qarray::simulate_with_threads(&c, 1);
    let got = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    assert!(
        state_distance(&got, &want) < 1e-7,
        "drift over {} gates",
        c.num_gates()
    );
}

#[test]
fn wide_regular_circuit_stays_in_dd_phase_cheaply() {
    // 24 qubits would be 256 MB as an array; the DD engine handles it in
    // milliseconds because GHZ never leaves the regular regime.
    let n = 24;
    let mut sim = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    sim.run(&generators::ghz(n)).unwrap();
    assert_eq!(sim.stats().converted_at, None);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    assert!((sim.amplitude(0).abs() - s).abs() < 1e-9);
    assert!((sim.amplitude((1 << n) - 1).abs() - s).abs() < 1e-9);
    // Sampling works without ever materializing 2^24 amplitudes.
    let mut rng = qdd::SplitMix64::new(1);
    for _ in 0..20 {
        let x = sim.sample(&mut rng.as_fn());
        assert!(x == 0 || x == (1 << n) - 1);
    }
}

#[test]
fn wide_adder_is_exact_in_dd_phase() {
    // 30-qubit adder: pure basis-state propagation, exact in the DD engine.
    let k = 14; // n = 30
    let a = 0b10_1101_0110_1011u64 & ((1 << k) - 1);
    let b = 0b01_0111_1010_0110u64 & ((1 << k) - 1);
    let c = generators::adder(k, a, b);
    let n = c.num_qubits();
    let mut sim = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 1,
            ..Default::default()
        },
    );
    sim.run(&c).unwrap();
    assert_eq!(sim.stats().converted_at, None);
    // Decode the unique surviving basis state via sampling (deterministic).
    let mut rng = qdd::SplitMix64::new(9);
    let idx = sim.sample(&mut rng.as_fn());
    let mut b_out = 0u64;
    for i in 0..k {
        b_out |= (((idx >> (2 * i + 2)) & 1) as u64) << i;
    }
    let carry = ((idx >> (2 * k + 1)) & 1) as u64;
    let sum = a + b;
    assert_eq!(b_out, sum & ((1 << k) - 1));
    assert_eq!(carry, sum >> k);
}

#[test]
#[ignore = "heavy: ~1 GB state; run with --release -- --ignored"]
fn large_irregular_instance_runs_end_to_end() {
    let n = 22;
    let c = generators::supremacy_n(n, 12, 7);
    let mut sim = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 4,
            ..Default::default()
        },
    );
    sim.run(&c).unwrap();
    assert_eq!(sim.phase(), flatdd::Phase::Dmav);
    let norm: f64 = (0..1 << n).map(|i| sim.amplitude(i).norm_sqr()).sum();
    assert!((norm - 1.0).abs() < 1e-6);
}

#[test]
#[ignore = "heavy: paper-scale regular circuit; run with --release -- --ignored"]
fn paper_scale_ghz_and_adder() {
    let mut sim = FlatDdSimulator::new(
        23,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    sim.run(&generators::ghz(23)).unwrap();
    assert_eq!(sim.stats().converted_at, None);

    let c = generators::adder_n(28);
    let mut sim = FlatDdSimulator::new(
        28,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    sim.run(&c).unwrap();
    assert_eq!(sim.stats().converted_at, None);
}
