//! End-to-end equivalence of the multi-threaded DD phase: a simulator
//! configured with `dd_threads > 1` must produce the same amplitudes as the
//! sequential baseline (1e-12 — far below any gate-level tolerance, since
//! the parallel engine performs the identical arithmetic and can differ
//! only through tolerance-bounded weight-interning order).

use flatdd::{ConversionPolicy, FlatDdConfig, FlatDdSimulator};
use qcircuit::complex::state_distance;
use qcircuit::{generators, Circuit};

const TOL: f64 = 1e-12;

fn run(c: &Circuit, cfg: FlatDdConfig) -> Vec<qcircuit::Complex64> {
    let mut sim = FlatDdSimulator::try_new(c.num_qubits(), cfg).unwrap();
    sim.run(c).unwrap();
    sim.amplitudes()
}

/// Circuits whose state DD grows large enough during the DD phase to cross
/// the parallel-dispatch threshold (irregular structure), plus a regular
/// one where the threshold keeps the apply sequential.
fn workloads(seed: u64) -> Vec<Circuit> {
    vec![
        generators::dnn(8, 3, seed),
        generators::random_circuit(8, 120, seed),
        generators::supremacy_n(8, 12, seed),
        generators::ghz(10),
    ]
}

#[test]
fn two_threads_match_one_thread_through_the_full_pipeline() {
    for seed in [3u64, 19] {
        for c in workloads(seed) {
            // Pure-DD ablation: the whole circuit runs in the (parallel)
            // DD phase, so every gate exercises the threaded apply.
            let cfg1 = FlatDdConfig {
                conversion: ConversionPolicy::Never,
                dd_threads: 1,
                ..Default::default()
            };
            let cfg2 = FlatDdConfig {
                dd_threads: 2,
                ..cfg1
            };
            let want = run(&c, cfg1);
            let got = run(&c, cfg2);
            assert!(
                state_distance(&got, &want) < TOL,
                "{} (seed {seed}): dd_threads=2 diverged from sequential",
                c.name()
            );
        }
    }
}

#[test]
fn threaded_dd_phase_composes_with_conversion() {
    // Default EWMA conversion: the DD phase runs threaded, then hands off
    // to the array phase. The handoff (DD -> flat array over the
    // concurrent package) must not depend on dd_threads.
    for c in [
        generators::dnn(8, 3, 7),
        generators::vqe(8, 2, 7),
        generators::random_circuit(8, 120, 7),
    ] {
        let want = run(
            &c,
            FlatDdConfig {
                dd_threads: 1,
                ..Default::default()
            },
        );
        for t in [2usize, 4] {
            let got = run(
                &c,
                FlatDdConfig {
                    dd_threads: t,
                    ..Default::default()
                },
            );
            assert!(
                state_distance(&got, &want) < TOL,
                "{}: dd_threads={t} diverged after conversion",
                c.name()
            );
        }
    }
}

#[test]
fn dd_threads_one_is_the_sequential_code_path() {
    // dd_threads=1 must not even construct a pool: its amplitudes are
    // bit-for-bit those of the pre-parallelism engine (exact equality,
    // not tolerance).
    let c = generators::random_circuit(7, 90, 23);
    let a = run(
        &c,
        FlatDdConfig {
            conversion: ConversionPolicy::Never,
            dd_threads: 1,
            ..Default::default()
        },
    );
    let b = run(
        &c,
        FlatDdConfig {
            conversion: ConversionPolicy::Never,
            dd_threads: 1,
            ..Default::default()
        },
    );
    assert_eq!(a, b);
}
