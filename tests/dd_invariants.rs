//! Cross-crate DD invariants: the decision-diagram substrate must stay
//! canonical and exact under everything the FlatDD pipeline does to it —
//! multiplication chains, fusion products, GC, conversion, cost analysis.

use flatdd::{CostModel, ThreadPool};
use qcircuit::complex::state_distance;
use qcircuit::gate::{Control, Gate, GateKind};
use qcircuit::{dense, generators, Complex64};
use qdd::{mac_count, DdPackage, MacTable};

#[test]
fn unique_table_keeps_node_count_canonical() {
    // Building the same circuit's gate DDs twice must not add nodes.
    let pkg = DdPackage::default();
    let c = generators::qft(6);
    for g in c.iter() {
        pkg.gate_dd(g, 6);
    }
    let after_first = pkg.stats().m_nodes;
    for g in c.iter() {
        pkg.gate_dd(g, 6);
    }
    assert_eq!(pkg.stats().m_nodes, after_first, "rebuilds must be shared");
}

#[test]
fn mac_count_equals_nonzero_entries_on_fused_products() {
    let n = 4;
    let pkg = DdPackage::default();
    let c = generators::random_circuit(n, 10, 5);
    let mut fused = pkg.identity_dd(n);
    for g in c.iter() {
        let gd = pkg.gate_dd(g, n);
        fused = pkg.mul_mm(gd, fused);
    }
    let by_table = mac_count(&pkg, fused);
    let dim = 1usize << n;
    let mut by_enumeration = 0u64;
    for r in 0..dim {
        for col in 0..dim {
            if !pkg.matrix_entry(fused, r, col).approx_zero(1e-12) {
                by_enumeration += 1;
            }
        }
    }
    assert_eq!(by_table, by_enumeration);
}

#[test]
fn matrix_dd_of_unitary_products_stays_unitary() {
    let n = 4;
    let pkg = DdPackage::default();
    let c = generators::random_circuit(n, 12, 9);
    let mut fused = pkg.identity_dd(n);
    for g in c.iter() {
        let gd = pkg.gate_dd(g, n);
        fused = pkg.mul_mm(gd, fused);
    }
    let dim = 1usize << n;
    let m = pkg.matrix_to_dense(fused, n);
    // Check M * M^dagger = I.
    for i in 0..dim {
        for j in 0..dim {
            let mut acc = Complex64::ZERO;
            for k in 0..dim {
                acc += m[i * dim + k] * m[j * dim + k].conj();
            }
            let want = if i == j {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
            assert!(acc.approx_eq(want, 1e-8), "({i},{j}) = {acc:?}");
        }
    }
}

#[test]
fn gc_then_rebuild_reproduces_identical_structure() {
    let mut pkg = DdPackage::default();
    let n = 6;
    let g = Gate::controlled(GateKind::RY(0.7), 2, vec![Control::pos(4)]);
    let e1 = pkg.gate_dd(&g, n);
    let dense1 = pkg.matrix_to_dense(e1, n);
    pkg.gc(&[], &[]); // drop everything
    let e2 = pkg.gate_dd(&g, n);
    let dense2 = pkg.matrix_to_dense(e2, n);
    assert!(state_distance(&dense1, &dense2) < 1e-12);
}

#[test]
fn compute_cache_survives_interleaved_operations() {
    // Interleave multiplications and additions; results must stay exact even
    // with the direct-mapped caches overwriting entries.
    let n = 5;
    let pkg = DdPackage::default();
    let c = generators::random_circuit(n, 60, 3);
    let mut state = pkg.basis_state(n, 0);
    let mut ref_state = dense::zero_state(n);
    for g in c.iter() {
        state = pkg.apply_gate(state, g, n);
        dense::apply_gate(&mut ref_state, g);
        // Interleave unrelated matrix algebra to stress cache collisions.
        let a = pkg.gate_dd(&Gate::new(GateKind::T, 1), n);
        let b = pkg.gate_dd(&Gate::new(GateKind::H, 3), n);
        let _ = pkg.mul_mm(a, b);
    }
    let got = pkg.vector_to_array(state, n);
    assert!(state_distance(&got, &ref_state) < 1e-8);
}

#[test]
fn conversion_handles_denormal_scale_states() {
    // States with very small and very large amplitude spread must convert
    // exactly (weight products multiply along paths).
    let n = 6;
    let mut v: Vec<Complex64> = (0..(1usize << n))
        .map(|i| Complex64::new(2.0f64.powi(-((i % 40) as i32)), 0.0))
        .collect();
    // normalize
    let norm = qcircuit::complex::norm_sqr(&v).sqrt();
    v.iter_mut().for_each(|x| *x = *x / norm);
    let pkg = DdPackage::default();
    let e = pkg.vector_from_slice(&v);
    let seq = pkg.vector_to_array(e, n);
    assert!(state_distance(&seq, &v) < 1e-9);
    let pool = ThreadPool::new(4);
    let par = flatdd::dd_to_array_parallel(&pkg, e, n, &pool);
    assert!(state_distance(&par, &v) < 1e-9);
}

#[test]
fn cost_model_c1_scales_inversely_with_threads() {
    let pkg = DdPackage::default();
    let mut mac = MacTable::default();
    let n = 8;
    let m = pkg.gate_dd(&Gate::new(GateKind::H, 4), n);
    let cm = CostModel::default();
    let c1 = cm.analyze(&pkg, &mut mac, m, n, 1).c1;
    let c4 = cm.analyze(&pkg, &mut mac, m, n, 4).c1;
    assert!((c1 / c4 - 4.0).abs() < 1e-9);
}

#[test]
fn amplitude_path_products_match_array_readout() {
    let c = generators::supremacy_n(8, 6, 2);
    let pkg = DdPackage::default();
    let mut state = pkg.basis_state(8, 0);
    for g in c.iter() {
        state = pkg.apply_gate(state, g, 8);
    }
    let arr = pkg.vector_to_array(state, 8);
    for idx in [0usize, 1, 17, 100, 255] {
        assert!(
            pkg.amplitude(state, idx).approx_eq(arr[idx], 1e-10),
            "idx={idx}"
        );
    }
}

#[test]
fn package_stats_monotone_peaks() {
    let pkg = DdPackage::default();
    let mut prev_peak = 0;
    for k in 1..=6usize {
        let _ = pkg.basis_state(8, k * 37 % 256);
        let s = pkg.stats();
        assert!(s.peak_v_nodes >= prev_peak);
        prev_peak = s.peak_v_nodes;
        assert!(s.v_nodes <= s.peak_v_nodes);
    }
}
