//! End-to-end resource-governor behavior at paper-relevant scale.
//!
//! The headline guarantee (ISSUE acceptance): a 26-qubit run whose memory
//! budget cannot hold the 2^26-amplitude flat array (1 GiB of Complex64,
//! times two for the conversion scratch buffer) must still complete — the
//! governor refuses the DD-to-array conversion, records the refusal, and
//! the run finishes in DD mode instead of aborting or getting OOM-killed.

use flatdd::{ConversionPolicy, FlatDdConfig, FlatDdError, FlatDdSimulator, GovernorConfig, Phase};
use qcircuit::generators;
use std::time::Duration;

fn governed(budget_bytes: usize) -> GovernorConfig {
    GovernorConfig {
        memory_budget_bytes: Some(budget_bytes),
        ..GovernorConfig::unlimited()
    }
}

#[test]
fn qubits_26_under_1gib_budget_complete_in_dd_mode() {
    // GHZ stays regular, so the DD itself is tiny; AtGate(3) forces a
    // conversion attempt that needs 2 * 2^26 * 16 B = 2 GiB — far over the
    // 256 MiB budget. The run must degrade to DD-only, not fail.
    let n = 26;
    let budget = 256usize << 20;
    assert!(budget < (1usize << n) * 16, "budget must not fit the array");
    let cfg = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(3),
        governor: governed(budget),
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::try_new(n, cfg).unwrap();
    let outcome = sim.run(&generators::ghz(n)).unwrap();

    assert!(outcome.is_complete(), "run must finish despite the budget");
    assert_eq!(sim.phase(), Phase::Dd, "must stay in the DD phase");
    assert!(
        sim.stats().conversion_refusals >= 1,
        "the refused conversion must be visible in stats"
    );
    assert!(sim.stats().converted_at.is_none());
    // The state is still correct: GHZ amplitudes at |0..0> and |1..1>.
    let a0 = sim.amplitude(0);
    let a1 = sim.amplitude((1usize << n) - 1);
    assert!((a0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    assert!((a1.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
}

#[test]
fn deadline_breach_surfaces_partial_progress() {
    let n = 16;
    let cfg = FlatDdConfig {
        threads: 1,
        governor: GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::unlimited()
        },
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::try_new(n, cfg).unwrap();
    let c = generators::ghz(n);
    let err = sim.run(&c).unwrap_err();
    match &err {
        FlatDdError::Deadline { partial, .. } => {
            assert_eq!(partial.total_gates, c.num_gates());
            assert!(!partial.is_complete());
        }
        other => panic!("expected Deadline, got {other}"),
    }
    assert_eq!(err.exit_code(), 5);
}

#[test]
fn env_lookup_governs_without_code_changes() {
    // `from_lookup` is the testable spine of `from_env`: the same strings
    // CI exports must parse into byte/second budgets.
    let cfg = GovernorConfig::from_lookup(|k| match k {
        "FLATDD_MEMORY_BUDGET_MB" => Some("256".into()),
        "FLATDD_DEADLINE_SECS" => Some("30".into()),
        _ => None,
    });
    assert_eq!(cfg.memory_budget_bytes, Some(256 << 20));
    assert_eq!(cfg.deadline, Some(Duration::from_secs(30)));
    assert_eq!(cfg.rss_budget_bytes, None);
}
