//! The shipped OpenQASM sample files (`assets/qasm/`) must parse and
//! simulate consistently on every engine.

use flatdd::FlatDdConfig;
use qcircuit::complex::state_distance;
use qcircuit::parse_qasm;

fn assets_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("assets/qasm")
}

#[test]
fn all_assets_parse() {
    let mut found = 0;
    for entry in std::fs::read_dir(assets_dir()).expect("assets/qasm must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("qasm") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let c = parse_qasm(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(c.num_qubits() >= 2, "{}", path.display());
        assert!(c.num_gates() >= 1, "{}", path.display());
        found += 1;
    }
    assert!(
        found >= 8,
        "expected at least 8 sample files, found {found}"
    );
}

#[test]
fn small_assets_simulate_identically_on_all_engines() {
    for entry in std::fs::read_dir(assets_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("qasm") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let c = parse_qasm(&src).unwrap();
        if c.num_qubits() > 12 {
            continue;
        }
        let dd = qdd::sim::simulate(&c);
        let ar = qarray::simulate_with_threads(&c, 2);
        let fd = flatdd::simulate(
            &c,
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert!(state_distance(&dd, &ar) < 1e-8, "{}", path.display());
        assert!(state_distance(&dd, &fd) < 1e-8, "{}", path.display());
    }
}

#[test]
fn ghz_asset_produces_a_ghz_state() {
    let src = std::fs::read_to_string(assets_dir().join("ghz_12.qasm")).unwrap();
    let c = parse_qasm(&src).unwrap();
    let v = qarray::simulate(&c);
    assert!((v[0].norm_sqr() - 0.5).abs() < 1e-9);
    assert!((v[(1 << 12) - 1].norm_sqr() - 0.5).abs() < 1e-9);
}
