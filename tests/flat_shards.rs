//! Sharded flat-phase integration: every `--flat-shards` setting must be
//! an implementation detail of the DMAV phase, invisible in the results.
//! A shard grid must agree with the single-shard (monolithic-equivalent)
//! state to 1e-12, checkpoints written mid-conversion and mid-flat-phase
//! must resume bit-compatibly under a *different* shard count, and random
//! circuits must agree between sharded and monolithic application.

use flatdd::{CheckpointPolicy, ConversionPolicy, FlatDdConfig, FlatDdSimulator, Phase};
use proptest::prelude::*;
use qcircuit::complex::state_distance;
use qcircuit::{dense, generators, Circuit};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const TOL: f64 = 1e-12;

fn tmp_ckpt(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "flatdd-shards-test-{}-{tag}-{seq}.ckpt",
        std::process::id()
    ))
}

fn cfg(threads: usize, flat_shards: usize, convert_at: usize) -> FlatDdConfig {
    FlatDdConfig {
        threads,
        flat_shards,
        conversion: ConversionPolicy::AtGate(convert_at),
        ..Default::default()
    }
}

fn run(c: &Circuit, cfg: FlatDdConfig) -> Vec<qcircuit::complex::Complex64> {
    let mut sim = FlatDdSimulator::try_new(c.num_qubits(), cfg).unwrap();
    sim.run(c).unwrap();
    assert_eq!(
        sim.phase(),
        Phase::Dmav,
        "circuit must reach the flat phase"
    );
    sim.amplitudes()
}

#[test]
fn shard_grid_matches_single_shard() {
    // The single-shard state is the monolithic-equivalent reference: one
    // contiguous allocation, one conversion group, one DMAV group.
    let c = generators::supremacy_n(9, 8, 5);
    let want = run(&c, cfg(2, 1, 12));
    for shards in [2usize, 3, 4, 8, 16] {
        for threads in [1usize, 2, 4] {
            let got = run(&c, cfg(threads, shards, 12));
            let d = state_distance(&got, &want);
            assert!(
                d < TOL,
                "shards={shards} threads={threads} deviates by {d:.3e}"
            );
        }
    }
}

#[test]
fn sharded_runs_agree_with_dense() {
    for c in [
        generators::vqe(8, 2, 3),
        generators::qft(8),
        generators::dnn(8, 2, 9),
    ] {
        let want = dense::simulate(&c);
        for shards in [1usize, 4, 8] {
            let got = flatdd::simulate(&c, cfg(2, shards, 8));
            let d = state_distance(&got, &want);
            assert!(d < 1e-8, "{} shards={shards}: {d:.3e}", c.name());
        }
    }
}

/// Checkpoint at `cut` under `write_cfg`, resume under `read_cfg` (a
/// different shard count), finish, and compare against the uninterrupted
/// `write_cfg` run.
fn assert_reshard_resume(c: &Circuit, write_cfg: FlatDdConfig, read_cfg: FlatDdConfig, cut: usize) {
    let n = c.num_qubits();
    let mut clean = FlatDdSimulator::try_new(n, write_cfg).unwrap();
    clean.run(c).unwrap();
    let want = clean.amplitudes();

    let path = tmp_ckpt("reshard");
    let mut first = FlatDdSimulator::try_new(n, write_cfg).unwrap();
    first.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    first.run_prefix(c, cut).unwrap();
    first.save_checkpoint().unwrap();
    drop(first);

    let (mut resumed, header) = FlatDdSimulator::resume_from(&path, read_cfg, c).unwrap();
    assert_eq!(header.gate_cursor as usize, cut);
    resumed.run_from(c).unwrap();
    let d = state_distance(&resumed.amplitudes(), &want);
    assert!(
        d < TOL,
        "resume with {} shards of a {}-shard checkpoint (cut {cut}) deviates by {d:.3e}",
        read_cfg.flat_shards,
        write_cfg.flat_shards,
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mid_flat_checkpoint_resumes_under_different_shard_count() {
    let c = generators::from_spec("vqe:9,2", 7).unwrap();
    let k = 10;
    let deep = c.num_gates() / 2;
    assert!(deep > k, "cut must land inside the flat phase");
    for (write_s, read_s) in [(4usize, 1usize), (1, 8), (8, 3), (2, 16)] {
        assert_reshard_resume(&c, cfg(2, write_s, k), cfg(2, read_s, k), deep);
    }
}

#[test]
fn mid_conversion_checkpoint_resumes_under_different_shard_count() {
    // Cuts straddling the conversion gate: one before (the conversion —
    // and the first sharded allocation — happens after resume, under the
    // new shard count), exactly at, and one after the boundary.
    let c = generators::from_spec("vqe:9,2", 11).unwrap();
    let k = 12;
    for cut in [k - 1, k, k + 1] {
        assert_reshard_resume(&c, cfg(2, 2, k), cfg(2, 5, k), cut);
        assert_reshard_resume(&c, cfg(2, 8, k), cfg(2, 1, k), cut);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random circuit, random conversion point, random shard count: the
    /// sharded state matches the monolithic (single-shard) state.
    #[test]
    fn sharded_matches_monolithic_on_random_circuits(
        seed in 0u64..1000,
        conv_frac in 0.0f64..1.0,
        shards in 2usize..12,
        threads in 1usize..5,
    ) {
        let c = generators::random_circuit(7, 40, seed);
        let k = 1 + (conv_frac * c.num_gates() as f64) as usize;
        let mono = flatdd::simulate(&c, cfg(2, 1, k));
        let sharded = flatdd::simulate(&c, cfg(threads, shards, k));
        let d = state_distance(&sharded, &mono);
        prop_assert!(d < TOL, "shards={shards} threads={threads} k={k}: {d:.3e}");
    }
}
