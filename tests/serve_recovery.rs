//! Daemon restart recovery: a SIGKILL'd daemon must finish its in-flight
//! jobs after a restart from the same spool, with amplitudes matching an
//! uninterrupted run to 1e-12; a SIGTERM'd daemon must drain gracefully
//! (checkpoint, persist, exit 0) and hand the parked job to the next
//! instance.

#![cfg(unix)]

#[path = "serve_util/mod.rs"]
mod util;

use flatdd::{FlatDdConfig, FlatDdSimulator};
use qcircuit::generators;
use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use util::*;

const CIRCUIT: &str = "supremacy:19,14";
const SEED: u64 = 9;
const SUBMIT: &str = r#"{"circuit":"supremacy:19,14","seed":9,"threads":2,"checkpoint_every":10}"#;

/// Top-8 amplitudes of the uninterrupted run, computed in-process with
/// the same selection rule the daemon uses.
fn reference_heavy() -> &'static [(usize, f64, f64)] {
    static WANT: OnceLock<Vec<(usize, f64, f64)>> = OnceLock::new();
    WANT.get_or_init(|| {
        let c = generators::from_spec(CIRCUIT, SEED).unwrap();
        let cfg = FlatDdConfig {
            threads: 2,
            ..Default::default()
        };
        let mut sim = FlatDdSimulator::try_new(c.num_qubits(), cfg).unwrap();
        sim.run(&c).unwrap();
        let amps = sim.amplitudes();
        let mut idx: Vec<usize> = (0..amps.len()).collect();
        idx.sort_by(|&a, &b| {
            amps[b]
                .norm_sqr()
                .total_cmp(&amps[a].norm_sqr())
                .then(a.cmp(&b))
        });
        idx.into_iter()
            .take(8)
            .map(|i| (i, amps[i].re, amps[i].im))
            .collect()
    })
}

fn assert_heavy_matches(status: &str) {
    let got = heavy_amplitudes(status);
    let want = reference_heavy();
    assert_eq!(got.len(), want.len(), "heavy list length: {status}");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(
            g.0, w.0,
            "heavy outcome order diverged: {got:?} vs {want:?}"
        );
        assert!(
            (g.1 - w.1).abs() < 1e-12 && (g.2 - w.2).abs() < 1e-12,
            "amplitude {} deviates: got ({}, {}), want ({}, {})",
            g.0,
            g.1,
            g.2,
            w.1,
            w.2
        );
    }
}

/// Polls until `path` holds a loadable flat-phase checkpoint.
fn wait_for_flat_checkpoint(path: &Path, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok(h) = flatdd::read_header(path) {
            if h.phase == flatdd::Phase::Dmav {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn sigkill_mid_flight_restart_completes_and_matches() {
    let spool = fresh_spool("sigkill");
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let (code, body) = http(daemon.port, "POST", "/jobs", Some(SUBMIT));
    assert_eq!(code, 202, "{body}");
    let id = job_id(&body);

    // Let the job get deep enough to have installed a flat-phase
    // checkpoint, then kill -9: no drain, no flush, no persistence pass.
    let ckpt = spool.join(format!("job-{id}.ckpt"));
    assert!(
        wait_for_flat_checkpoint(&ckpt, Duration::from_secs(120)),
        "no flat-phase checkpoint appeared"
    );
    let (_, body) = http(daemon.port, "GET", &format!("/jobs/{id}"), None);
    assert_eq!(
        job_state(&body),
        "running",
        "job finished before the kill; grow CIRCUIT to keep this test honest"
    );
    daemon.kill();

    // A fresh instance on the same spool re-admits the job and resumes it
    // from the checkpoint.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let (code, body) = http(daemon.port, "GET", "/metrics", None);
    assert_eq!(code, 200);
    assert!(
        field_u64(&body, "\"serve.jobs_recovered\":") >= Some(1),
        "restart must report the recovered job: {body}"
    );
    let status = wait_terminal(daemon.port, id, Duration::from_secs(300));
    assert_eq!(job_state(&status), "done", "{status}");
    assert_heavy_matches(&status);

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}

#[test]
fn sigterm_drain_parks_the_job_and_restart_finishes_it() {
    let spool = fresh_spool("drain");
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let (code, body) = http(daemon.port, "POST", "/jobs", Some(SUBMIT));
    assert_eq!(code, 202, "{body}");
    let id = job_id(&body);

    let ckpt = spool.join(format!("job-{id}.ckpt"));
    assert!(
        wait_for_flat_checkpoint(&ckpt, Duration::from_secs(120)),
        "no flat-phase checkpoint appeared"
    );
    let (_, body) = http(daemon.port, "GET", &format!("/jobs/{id}"), None);
    assert_eq!(
        job_state(&body),
        "running",
        "job finished before the drain; grow CIRCUIT to keep this test honest"
    );

    // Graceful drain: the running job is checkpointed and parked, the
    // process exits 0.
    daemon.drain(Duration::from_secs(60));
    let record = std::fs::read_to_string(spool.join(format!("job-{id}.json")))
        .expect("drained daemon must persist the job record");
    assert!(
        record.contains("\"state\":\"preempted\""),
        "drained job must be parked as preempted: {record}"
    );
    assert!(
        flatdd::read_header(&ckpt).is_ok(),
        "drained job must leave a loadable checkpoint"
    );

    // The next instance picks it up and finishes it.
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let status = wait_terminal(daemon.port, id, Duration::from_secs(300));
    assert_eq!(job_state(&status), "done", "{status}");
    assert!(
        field_u64(&status, "\"preemptions\":") >= Some(1),
        "the drain must be visible in the record: {status}"
    );
    assert_heavy_matches(&status);

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}
