//! Structural assertions of the paper's headline claims — not timings, but
//! the mechanisms that produce them: regular circuits keep tiny DDs and
//! never convert; irregular circuits blow the DD up and convert; the cost
//! model steers caching; fusion reduces modeled cost; buffer sharing kicks
//! in for sparse gates.

use flatdd::{
    ConversionPolicy, CostModel, EwmaConfig, FlatDdConfig, FlatDdSimulator, FusionPolicy, Phase,
};
use qcircuit::generators;
use qdd::{DdPackage, DdSimulator, MacTable};

#[test]
fn regular_circuits_stay_in_dd_phase() {
    for c in [generators::ghz(12), generators::adder_n(12)] {
        let mut sim = FlatDdSimulator::new(
            c.num_qubits(),
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        );
        sim.run(&c).unwrap();
        assert_eq!(sim.phase(), Phase::Dd, "{} must not convert", c.name());
        assert!(sim.stats().peak_state_dd_size <= 3 * c.num_qubits());
    }
}

#[test]
fn irregular_circuits_convert_early() {
    for c in [
        generators::dnn(10, 3, 5),
        generators::vqe(10, 3, 5),
        generators::supremacy_n(10, 12, 5),
    ] {
        let mut sim = FlatDdSimulator::new(
            c.num_qubits(),
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        );
        sim.run(&c).unwrap();
        assert_eq!(sim.phase(), Phase::Dmav, "{} must convert", c.name());
        let at = sim.stats().converted_at.unwrap();
        assert!(
            at < c.num_gates() / 2,
            "{}: conversion came too late (gate {at} of {})",
            c.name(),
            c.num_gates()
        );
    }
}

#[test]
fn dd_size_contrast_between_families() {
    // Figure 1's root cause: the state-DD size separates the families.
    let n = 10;
    let mut reg = DdSimulator::new(n);
    reg.run(&generators::adder_n(n));
    let regular_size = reg.state_dd_size();

    let mut irr = DdSimulator::new(n);
    irr.run(&generators::supremacy_n(n, 10, 1));
    let irregular_size = irr.state_dd_size();

    assert!(regular_size <= 2 * n);
    assert!(
        irregular_size > 10 * regular_size,
        "supremacy DD ({irregular_size}) should dwarf adder DD ({regular_size})"
    );
    // And the irregular DD approaches the worst case 2^n - ish scale.
    assert!(irregular_size > (1 << (n - 3)), "got {irregular_size}");
}

#[test]
fn ewma_epsilon_controls_conversion_timing() {
    // A larger epsilon tolerates more growth => converts later (or never).
    let c = generators::dnn(9, 3, 7);
    let at_for = |epsilon: f64| {
        let cfg = FlatDdConfig {
            threads: 2,
            conversion: ConversionPolicy::Ewma(EwmaConfig {
                epsilon,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut sim = FlatDdSimulator::new(9, cfg);
        sim.run(&c).unwrap();
        sim.stats().converted_at.unwrap_or(usize::MAX)
    };
    let tight = at_for(1.2);
    let loose = at_for(8.0);
    assert!(tight <= loose, "eps=1.2 gave {tight}, eps=8 gave {loose}");
}

#[test]
fn cost_model_prefers_caching_exactly_when_hits_pay() {
    let pkg = DdPackage::default();
    let mut mac = MacTable::default();
    let cm = CostModel::default();
    let n = 12;
    // Dense single-qubit gate on the TOP qubit: every thread re-multiplies
    // the same full-size block => caching wins.
    let top = pkg.gate_dd(&qcircuit::Gate::new(qcircuit::GateKind::H, n - 1), n);
    assert!(cm.analyze(&pkg, &mut mac, top, n, 4).prefer_cached());
    // Same gate on the BOTTOM qubit: the repeated blocks are below the
    // border level, border-level tasks are unique => no hits, no win.
    let bottom = pkg.gate_dd(&qcircuit::Gate::new(qcircuit::GateKind::H, 0), n);
    let a = cm.analyze(&pkg, &mut mac, bottom, n, 4);
    assert_eq!(a.hits, 0);
    assert!(!a.prefer_cached());
}

#[test]
fn fusion_cost_ordering_matches_table_2() {
    // Modeled cost: DMAV-aware <= no-fusion, and DMAV-aware <= k-operations
    // (on the deep irregular families the paper uses).
    let n = 8;
    for seed in [1u64, 9] {
        let c = generators::dnn(n, 3, seed);
        let run = |fusion: FusionPolicy| {
            let cfg = FlatDdConfig {
                threads: 4,
                fusion,
                conversion: ConversionPolicy::Immediate,
                ..Default::default()
            };
            let mut sim = FlatDdSimulator::new(n, cfg);
            sim.run(&c).unwrap();
            sim.stats().modeled_cost
        };
        let fused = run(FusionPolicy::DmavAware);
        let plain = run(FusionPolicy::None);
        let kops = run(FusionPolicy::KOperations(4));
        assert!(fused <= plain * 1.001, "fused {fused} vs plain {plain}");
        assert!(
            fused <= kops * 1.001,
            "fused {fused} vs k-operations {kops} (seed {seed})"
        );
    }
}

#[test]
fn per_gate_trace_shows_dd_blowup_then_flat_dmav() {
    // The Figure 11 mechanism: DD sizes in the trace grow up to conversion,
    // then the engine stays in DMAV (no dd_size recorded).
    let n = 10;
    let c = generators::supremacy_n(n, 12, 3);
    let mut sim = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 2,
            trace: true,
            ..Default::default()
        },
    );
    sim.run(&c).unwrap();
    let traces = sim.traces();
    let conv = sim.stats().converted_at.expect("must convert");
    let max_dd_size = traces.iter().filter_map(|t| t.dd_size).max().unwrap();
    let first_size = traces.iter().find_map(|t| t.dd_size).unwrap();
    // With epsilon = 2 the monitor fires as soon as the size doubles past
    // the moving average, so the observed blow-up is bounded but must still
    // clearly exceed the initial (regular) size.
    assert!(
        max_dd_size > 2 * first_size.max(1) && max_dd_size > n,
        "no blow-up seen: first={first_size}, max={max_dd_size}"
    );
    // After conversion, every trace entry is DMAV.
    for t in traces.iter().filter(|t| t.gate_index > conv) {
        assert_eq!(t.phase, Phase::Dmav);
    }
}

#[test]
fn flatdd_memory_below_ddsim_on_irregular_circuits() {
    // Table 1's memory claim, structurally: on an irregular circuit the DD
    // engine's peak node count implies more bytes than FlatDD's flat array
    // + matrix DDs.
    let n = 12;
    let c = generators::supremacy_n(n, 14, 5);
    let mut dd = DdSimulator::new(n);
    dd.run(&c);
    let dd_bytes = dd.package().stats().memory_bytes;

    let mut fd = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    fd.run(&c).unwrap();
    let fd_bytes = fd.memory_bytes();
    assert!(
        fd_bytes < dd_bytes,
        "flatdd {fd_bytes} bytes should undercut ddsim {dd_bytes} bytes here"
    );
}

#[test]
fn never_policy_is_ddsim_equivalent() {
    // With conversion disabled FlatDD must match the DD engine node-for-node
    // on final amplitudes.
    let c = generators::qft(8);
    let a = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 1,
            conversion: ConversionPolicy::Never,
            ..Default::default()
        },
    );
    let b = qdd::sim::simulate(&c);
    assert!(qcircuit::complex::state_distance(&a, &b) < 1e-10);
}
