//! End-to-end live event streaming: subscribe to `GET /jobs/{id}/events`
//! while a job is running, read progress samples off the chunked NDJSON
//! stream, disconnect, then resume with `?since=` and verify the sequence
//! numbers are contiguous across the reconnect — no gap, no duplicates.

#![cfg(unix)]

#[path = "serve_util/mod.rs"]
mod util;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use util::*;

/// A client-side reader for one chunked NDJSON stream connection. The
/// server writes one JSON line per chunk, so decoding the chunk framing
/// yields whole events.
struct EventStream {
    reader: BufReader<TcpStream>,
}

impl EventStream {
    /// Connects and consumes the response head, asserting the chunked
    /// NDJSON contract.
    fn open(port: u16, id: u64, since: u64) -> EventStream {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let req = format!(
            "GET /jobs/{id}/events?since={since} HTTP/1.1\r\nHost: localhost\r\n\r\n"
        );
        (&stream).write_all(req.as_bytes()).expect("write request");
        let mut reader = BufReader::new(stream);
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read header line");
            if line == "\r\n" || line.is_empty() {
                break;
            }
            head.push_str(&line);
        }
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let lower = head.to_ascii_lowercase();
        assert!(lower.contains("transfer-encoding: chunked"), "{head}");
        assert!(lower.contains("application/x-ndjson"), "{head}");
        EventStream { reader }
    }

    /// Next event line, or `None` on the terminating zero-length chunk.
    fn next_line(&mut self) -> Option<String> {
        let mut size_line = String::new();
        self.reader.read_line(&mut size_line).expect("chunk size");
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size line {size_line:?}"));
        if size == 0 {
            return None;
        }
        let mut buf = vec![0u8; size + 2]; // payload + trailing CRLF
        self.reader.read_exact(&mut buf).expect("chunk payload");
        let line = String::from_utf8(buf[..size].to_vec()).expect("utf8 event");
        Some(line.trim_end().to_string())
    }
}

/// `"seq":N` out of a progress line.
fn seq_of(line: &str) -> Option<u64> {
    line.contains("\"event\":\"progress\"")
        .then(|| field_u64(line, "\"seq\":"))
        .flatten()
}

/// An inline OpenQASM circuit with enough gates that the run spans many
/// progress-throttle windows even on fast hardware: `layers` repetitions
/// of an H + ladder-CX block over 6 qubits.
fn long_qasm(layers: usize) -> String {
    let mut q = String::from(
        "OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[6];\\n",
    );
    for _ in 0..layers {
        for i in 0..6 {
            q.push_str(&format!("h q[{i}];\\n"));
        }
        for i in 0..5 {
            q.push_str(&format!("cx q[{i}],q[{}];\\n", i + 1));
        }
    }
    q
}

#[test]
fn stream_survives_reconnect_without_seq_gap() {
    let spool = fresh_spool("stream");
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let port = daemon.port;

    // Periodic checkpoints add steady per-window work, stretching the run
    // so the first connection reliably lands mid-flight.
    let body = format!(
        r#"{{"qasm":"{}","threads":1,"checkpoint_every":128}}"#,
        long_qasm(4000)
    );
    let (code, resp) = http(port, "POST", "/jobs", Some(&body));
    assert_eq!(code, 202, "{resp}");
    let id = job_id(&resp);

    // Unknown jobs must 404 rather than hang a stream open.
    let probe = TcpStream::connect(("127.0.0.1", port)).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    (&probe)
        .write_all(b"GET /jobs/99999/events HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut resp404 = String::new();
    BufReader::new(probe).read_line(&mut resp404).unwrap();
    assert!(resp404.starts_with("HTTP/1.1 404"), "{resp404}");

    // First subscription: read from the start of the ring until we have a
    // couple of mid-run samples, then drop the connection abruptly.
    let mut first = EventStream::open(port, id, 0);
    let mut seqs: Vec<u64> = Vec::new();
    let mut saw_end_early = false;
    let deadline = Instant::now() + Duration::from_secs(60);
    while let Some(line) = first.next_line() {
        if let Some(s) = seq_of(&line) {
            seqs.push(s);
            if seqs.len() >= 2 {
                break;
            }
        }
        if line.contains("\"event\":\"end\"") {
            saw_end_early = true;
            break;
        }
        assert!(Instant::now() < deadline, "no progress within 60s");
    }
    assert!(
        !seqs.is_empty(),
        "the stream must deliver at least one progress sample"
    );
    let resume_from = *seqs.last().unwrap();
    drop(first); // hard disconnect mid-stream

    // Resume from the last seq we saw: the next sample must be exactly
    // `resume_from + 1` — nothing skipped, nothing replayed.
    let mut second = EventStream::open(port, id, resume_from);
    let mut ended = saw_end_early;
    let deadline = Instant::now() + Duration::from_secs(120);
    while let Some(line) = second.next_line() {
        if let Some(s) = seq_of(&line) {
            seqs.push(s);
        }
        if line.contains("\"event\":\"end\"") {
            ended = true;
            break;
        }
        assert!(Instant::now() < deadline, "job did not finish within 120s");
    }
    assert!(ended, "the stream must close with an `end` event");

    assert_eq!(seqs[0], 1, "first subscription starts at the ring head");
    for w in seqs.windows(2) {
        assert_eq!(
            w[1],
            w[0] + 1,
            "seq must be contiguous across the reconnect: {seqs:?}"
        );
    }

    // Progress lines carry the span ids that tie them to the trace.
    let (code, status) = http(port, "GET", &format!("/jobs/{id}"), None);
    assert_eq!(code, 200, "{status}");

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}
