//! Property-based cross-validation: random circuits drawn gate-by-gate must
//! simulate identically on every engine, and core DD invariants must hold
//! for arbitrary states.

use flatdd::{CachingPolicy, ConversionPolicy, FlatDdConfig, FusionPolicy, ThreadPool};
use proptest::prelude::*;
use qcircuit::complex::{norm_sqr, state_distance};
use qcircuit::gate::{Control, Gate, GateKind};
use qcircuit::{dense, Circuit, Complex64};
use qdd::DdPackage;

const TOL: f64 = 1e-8;

/// Strategy: one random gate over `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let kind = prop_oneof![
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::Y),
        Just(GateKind::Z),
        Just(GateKind::S),
        Just(GateKind::T),
        Just(GateKind::SqrtX),
        (-3.2f64..3.2).prop_map(GateKind::RX),
        (-3.2f64..3.2).prop_map(GateKind::RY),
        (-3.2f64..3.2).prop_map(GateKind::RZ),
        (-3.2f64..3.2).prop_map(GateKind::Phase),
        ((-3.2f64..3.2), (-3.2f64..3.2), (-3.2f64..3.2)).prop_map(|(a, b, c)| GateKind::U(a, b, c)),
    ];
    (
        kind,
        0..n,
        proptest::collection::vec((0..n, any::<bool>()), 0..3),
    )
        .prop_map(move |(kind, target, raw_controls)| {
            let mut controls: Vec<Control> = Vec::new();
            for (q, pos) in raw_controls {
                if q != target && !controls.iter().any(|c| c.qubit == q) {
                    controls.push(Control {
                        qubit: q,
                        positive: pos,
                    });
                }
            }
            Gate::controlled(kind, target, controls)
        })
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_state(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1usize << n).prop_map(|raw| {
        raw.into_iter()
            .map(|(re, im)| Complex64::new(re, im))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dd_engine_matches_dense(c in arb_circuit(5, 40)) {
        let want = dense::simulate(&c);
        let got = qdd::sim::simulate(&c);
        prop_assert!(state_distance(&got, &want) < TOL);
    }

    #[test]
    fn array_engine_matches_dense(c in arb_circuit(5, 40)) {
        let want = dense::simulate(&c);
        let got = qarray::simulate_with_threads(&c, 3);
        prop_assert!(state_distance(&got, &want) < TOL);
    }

    #[test]
    fn flatdd_matches_dense(c in arb_circuit(5, 40)) {
        let want = dense::simulate(&c);
        let got = flatdd::simulate(&c, FlatDdConfig { threads: 2, ..Default::default() });
        prop_assert!(state_distance(&got, &want) < TOL);
    }

    #[test]
    fn flatdd_pure_dmav_with_fusion_matches_dense(c in arb_circuit(5, 30)) {
        let want = dense::simulate(&c);
        let got = flatdd::simulate(&c, FlatDdConfig {
            threads: 4,
            conversion: ConversionPolicy::Immediate,
            caching: CachingPolicy::Always,
            fusion: FusionPolicy::DmavAware,
            ..Default::default()
        });
        prop_assert!(state_distance(&got, &want) < TOL);
    }

    #[test]
    fn unitarity_holds_on_random_circuits(c in arb_circuit(6, 60)) {
        let got = flatdd::simulate(&c, FlatDdConfig { threads: 2, ..Default::default() });
        prop_assert!((norm_sqr(&got) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn dd_round_trip_from_array(v in arb_state(5)) {
        let pkg = DdPackage::default();
        let e = pkg.vector_from_slice(&v);
        let back = pkg.vector_to_array(e, 5);
        prop_assert!(state_distance(&back, &v) < 1e-9);
    }

    #[test]
    fn parallel_conversion_equals_sequential(v in arb_state(6)) {
        let pkg = DdPackage::default();
        let e = pkg.vector_from_slice(&v);
        let seq = pkg.vector_to_array(e, 6);
        for t in [1usize, 2, 4] {
            let pool = ThreadPool::new(t);
            let par = flatdd::dd_to_array_parallel(&pkg, e, 6, &pool);
            prop_assert!(state_distance(&par, &seq) < 1e-10, "t={t}");
        }
    }

    #[test]
    fn normalization_is_canonical_under_global_scaling(
        v in arb_state(4),
        scale_re in 0.1f64..2.0,
        scale_im in -2.0f64..2.0,
    ) {
        // Skip near-zero vectors: nothing to share.
        prop_assume!(norm_sqr(&v) > 1e-6);
        let w = Complex64::new(scale_re, scale_im);
        let scaled: Vec<Complex64> = v.iter().map(|&x| x * w).collect();
        let pkg = DdPackage::default();
        let e1 = pkg.vector_from_slice(&v);
        let e2 = pkg.vector_from_slice(&scaled);
        prop_assert_eq!(e1.n, e2.n, "scaled copies must share the DD node");
    }

    #[test]
    fn dd_addition_is_commutative(a in arb_state(4), b in arb_state(4)) {
        let pkg = DdPackage::default();
        let ea = pkg.vector_from_slice(&a);
        let eb = pkg.vector_from_slice(&b);
        let ab = pkg.add_vectors(ea, eb);
        let ba = pkg.add_vectors(eb, ea);
        let x = pkg.vector_to_array(ab, 4);
        let y = pkg.vector_to_array(ba, 4);
        prop_assert!(state_distance(&x, &y) < 1e-9);
    }

    #[test]
    fn dmav_equals_dense_matvec_on_random_gate(
        v in arb_state(5),
        target in 0usize..5,
        theta in -3.0f64..3.0,
    ) {
        let g = Gate::new(GateKind::U(theta, theta * 0.5, -theta), target);
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&g, 5);
        let pool = ThreadPool::new(2);
        let mut w = vec![Complex64::ZERO; 32];
        flatdd::dmav(&pkg, m, &v, &mut w, &pool);
        let mut want = v.clone();
        dense::apply_gate(&mut want, &g);
        prop_assert!(state_distance(&w, &want) < 1e-9);
    }
}
