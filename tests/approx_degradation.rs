//! Bounded-fidelity graceful degradation: the approximation rung at the
//! bottom of the governor's ladder (`GovernorConfig::approx_fidelity_floor`).
//!
//! Pinned here: the rung is off by default (a breach stays the typed fatal
//! error), an armed floor turns the same breach into a completed run whose
//! cumulative fidelity respects the floor, exact runs are bit-identical
//! whether or not the rung is armed, a floor of exactly 1.0 never accepts a
//! lossy truncation, and checkpoint resume carries the fidelity product
//! across process boundaries. The property block at the bottom pins the
//! truncation primitive's invariants against dense recomputation.

use flatdd::{
    CheckpointPolicy, ConversionPolicy, FlatDdConfig, FlatDdError, FlatDdSimulator, GovernorConfig,
};
use proptest::prelude::*;
use qcircuit::{generators, Circuit, Complex64};
use qdd::DdPackage;

/// The reference fatally-breaching pair: a 12-qubit VQE ansatz whose pure-DD
/// run peaks well above 24 MiB of accounted memory.
fn breaching_circuit() -> Circuit {
    generators::vqe(12, 3, 7)
}

const BREACHING_BUDGET: usize = 24 << 20;

/// Pure-DD run (no conversion) under `budget` bytes, optionally armed.
fn breaching_cfg(budget: Option<usize>, floor: Option<f64>) -> FlatDdConfig {
    FlatDdConfig {
        conversion: ConversionPolicy::Never,
        governor: GovernorConfig {
            memory_budget_bytes: budget,
            approx_fidelity_floor: floor,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "flatdd-approx-test-{}-{tag}.ckpt",
        std::process::id()
    ))
}

#[test]
fn unarmed_breach_stays_fatal() {
    let c = breaching_circuit();
    let mut sim =
        FlatDdSimulator::try_new(c.num_qubits(), breaching_cfg(Some(BREACHING_BUDGET), None))
            .unwrap();
    let err = sim.run(&c).unwrap_err();
    match &err {
        FlatDdError::MemoryBudgetExceeded { partial, .. } => {
            assert!(partial.gates_applied < c.num_gates());
        }
        other => panic!("expected MemoryBudgetExceeded, got {other}"),
    }
    // The default-off rung never touched the state: the run is exact up to
    // the breach point.
    assert_eq!(sim.stats().approx_truncations, 0);
    assert_eq!(sim.fidelity(), 1.0);
    assert!(!sim.is_approximate());
    assert!(sim.stats().to_json().contains("\"approximate\": false"));
}

#[test]
fn armed_floor_completes_with_bounded_fidelity() {
    let c = breaching_circuit();
    // Same circuit, same budget: the only difference is the armed floor.
    let mut sim = FlatDdSimulator::try_new(
        c.num_qubits(),
        breaching_cfg(Some(BREACHING_BUDGET), Some(0.9)),
    )
    .unwrap();
    let outcome = sim.run(&c).expect("armed run must complete");
    assert_eq!(outcome.gates_applied, c.num_gates());
    let stats = sim.stats();
    assert!(stats.approx_truncations >= 1, "no truncation fired");
    assert!(sim.is_approximate());
    assert!(
        sim.fidelity() >= 0.9 && sim.fidelity() <= 1.0,
        "cumulative fidelity {} violates the floor",
        sim.fidelity()
    );
    // The result self-describes as approximate, with the fidelity last in
    // the stats payload.
    let json = stats.to_json();
    assert!(json.contains("\"approximate\": true"), "{json}");
    assert!(json.contains("\"fidelity\":"), "{json}");
    // The truncated state is still a normalized quantum state, and it is
    // genuinely close to the exact result (the floor bounds the tracked
    // product; the dense cross-check guards against accounting bugs).
    let approx = sim.amplitudes();
    let norm: f64 = approx.iter().map(|a| a.norm_sqr()).sum();
    assert!((norm - 1.0).abs() < 1e-9, "norm drifted to {norm}");
    let mut exact_sim =
        FlatDdSimulator::try_new(c.num_qubits(), breaching_cfg(None, None)).unwrap();
    exact_sim.run(&c).unwrap();
    let exact = exact_sim.amplitudes();
    let overlap: Complex64 = exact
        .iter()
        .zip(&approx)
        .map(|(a, b)| a.conj() * *b)
        .sum();
    assert!(
        overlap.norm_sqr() > 0.9,
        "true fidelity {} too far from the tracked product {}",
        overlap.norm_sqr(),
        sim.fidelity()
    );
    // The cumulative product is published as a gauge for the serve layer.
    sim.publish_metrics();
    assert!(sim.context().metrics().to_json().contains("sim.fidelity"));
}

#[test]
fn armed_but_unpressured_runs_are_bit_identical() {
    let c = generators::vqe(10, 2, 11);
    let mut exact = FlatDdSimulator::try_new(10, breaching_cfg(None, None)).unwrap();
    exact.run(&c).unwrap();
    let mut armed = FlatDdSimulator::try_new(10, breaching_cfg(None, Some(0.9))).unwrap();
    armed.run(&c).unwrap();
    assert_eq!(armed.stats().approx_truncations, 0);
    assert_eq!(armed.fidelity(), 1.0);
    let (a, b) = (exact.amplitudes(), armed.amplitudes());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "amplitude {i} differs: {x} vs {y}"
        );
    }
}

#[test]
fn floor_of_one_never_accepts_a_lossy_truncation() {
    let c = breaching_circuit();
    let mut sim = FlatDdSimulator::try_new(
        c.num_qubits(),
        breaching_cfg(Some(BREACHING_BUDGET), Some(1.0)),
    )
    .unwrap();
    // A floor of exactly 1.0 arms the rung but only lossless prunes can
    // clear it; whichever way the run ends, the state was never degraded.
    match sim.run(&c) {
        Ok(_) => assert_eq!(sim.fidelity(), 1.0),
        Err(FlatDdError::MemoryBudgetExceeded { .. }) => {
            assert_eq!(sim.fidelity(), 1.0);
            assert!(!sim.is_approximate());
        }
        Err(other) => panic!("unexpected error {other}"),
    }
}

#[test]
fn checkpoint_resume_preserves_the_fidelity_product() {
    let c = breaching_circuit();
    let path = tmp_path("resume");
    let cfg = breaching_cfg(Some(BREACHING_BUDGET), Some(0.9));
    let mut sim = FlatDdSimulator::try_new(c.num_qubits(), cfg).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    // Run far enough that truncations have fired, then suspend.
    let cut = 110;
    sim.run_prefix(&c, cut).unwrap();
    assert!(
        sim.stats().approx_truncations >= 1,
        "prefix did not trigger the rung; test needs a longer prefix"
    );
    let fidelity_at_cut = sim.fidelity();
    let truncations_at_cut = sim.stats().approx_truncations;
    assert!(fidelity_at_cut < 1.0 && fidelity_at_cut >= 0.9);
    sim.save_checkpoint().unwrap();
    drop(sim);

    let (mut resumed, header) =
        FlatDdSimulator::resume_from(&path, breaching_cfg(Some(BREACHING_BUDGET), Some(0.9)), &c)
            .unwrap();
    assert_eq!(header.gate_cursor as usize, cut);
    // The product travels through the FDCP1 header bit-exactly (the
    // acceptance bound is 1e-12; the format stores the raw f64).
    assert!(
        (resumed.fidelity() - fidelity_at_cut).abs() < 1e-12,
        "restored fidelity {} != {}",
        resumed.fidelity(),
        fidelity_at_cut
    );
    assert_eq!(resumed.stats().approx_truncations, truncations_at_cut);
    assert!(resumed.is_approximate());
    // Finishing the run only multiplies the product further down.
    resumed.run_from(&c).expect("resumed armed run must complete");
    assert_eq!(resumed.gates_applied(), c.num_gates());
    assert!(resumed.fidelity() <= fidelity_at_cut);
    assert!(resumed.fidelity() >= 0.9);
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Truncation-primitive invariants (property tests over random circuits).
// ---------------------------------------------------------------------------

fn arb_gate(n: usize) -> impl Strategy<Value = qcircuit::Gate> {
    use qcircuit::GateKind;
    let kind = prop_oneof![
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::T),
        (-3.0f64..3.0).prop_map(GateKind::RY),
        (-3.0f64..3.0).prop_map(GateKind::RZ),
    ];
    (kind, 0..n, proptest::option::of(0..n)).prop_map(move |(kind, target, ctl)| match ctl {
        Some(c) if c != target => {
            qcircuit::Gate::controlled(kind, target, vec![qcircuit::Control::pos(c)])
        }
        _ => qcircuit::Gate::new(kind, target),
    })
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 4..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Dense fidelity `|<a|b>|^2`, computed independently of the DD package's
/// own inner product.
fn dense_fidelity(pkg: &DdPackage, a: qdd::VEdge, b: qdd::VEdge, n: usize) -> f64 {
    let va = pkg.vector_to_array(a, n);
    let vb = pkg.vector_to_array(b, n);
    let overlap: Complex64 = va.iter().zip(&vb).map(|(x, y)| x.conj() * *y).sum();
    overlap.norm_sqr()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn truncation_chain_invariants(c in arb_circuit(6, 30)) {
        let n = c.num_qubits();
        let mut pkg = DdPackage::default();
        let mut s = pkg.basis_state(n, 0);
        for g in c.iter() {
            s = pkg.apply_gate(s, g, n);
        }
        // A chain of escalating truncations, exactly as the governor rung
        // walks its threshold ladder.
        let mut tracked_product = 1.0f64;
        let mut independent_product = 1.0f64;
        for threshold in [1e-9, 1e-5, 1e-2] {
            let nodes_before = pkg.vector_dd_size(s);
            let r = pkg.approximate(s, threshold);
            // Truncation never grows the DD.
            prop_assert!(r.nodes_after <= nodes_before,
                "nodes grew {} -> {}", nodes_before, r.nodes_after);
            prop_assert_eq!(r.nodes_before, nodes_before);
            // Per-step fidelity lives in (0, 1] (up to f64 rounding).
            prop_assert!(r.fidelity > 0.0 && r.fidelity <= 1.0 + 1e-12,
                "step fidelity {} outside (0, 1]", r.fidelity);
            // The reported step fidelity matches a dense recomputation.
            let dense = dense_fidelity(&pkg, s, r.state, n);
            prop_assert!((r.fidelity - dense).abs() < 1e-12,
                "reported {} vs dense {}", r.fidelity, dense);
            tracked_product *= r.fidelity;
            independent_product *= dense;
            s = r.state;
        }
        // The cumulative product the simulator would track matches the
        // independently recomputed product to 1e-12.
        prop_assert!((tracked_product - independent_product).abs() < 1e-12);
        // The surviving state is still normalized.
        let arr = pkg.vector_to_array(s, n);
        let norm: f64 = arr.iter().map(|a| a.norm_sqr()).sum();
        prop_assert!((norm - 1.0).abs() < 1e-9, "norm {}", norm);
    }
}
