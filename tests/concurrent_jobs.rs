//! Multi-tenant isolation: concurrent simulators on per-job
//! [`flatdd::RunContext`]s must not share cancellation, metrics, or
//! faults.
//!
//! Before RunContext, the interrupt flag, metrics registry, and fault
//! registry were process-global, so `fused_signal_interrupt` needed its
//! own test binary to avoid poisoning neighbors. These tests are the
//! replacement: cancellation is per-job now, so they run in one shared
//! binary alongside everything else — which is itself part of what they
//! verify.

use flatdd::{
    signal, CheckpointPolicy, ConversionPolicy, FlatDdConfig, FlatDdError, FlatDdSimulator,
    FusionPolicy, Phase, RunContext,
};
use qcircuit::complex::state_distance;
use qcircuit::Circuit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Deterministic 36-gate circuit over 6 qubits (mirrors the
/// checkpoint_resume harness).
fn layered_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..6 {
        for q in 0..n {
            if (l + q) % 3 == 0 {
                c.cx(q, (q + 1) % n);
            } else {
                c.rx(0.21 + 0.07 * (l * n + q) as f64, q);
            }
        }
    }
    c
}

fn fused_cfg() -> FlatDdConfig {
    FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(12),
        fusion: FusionPolicy::DmavAware,
        ..Default::default()
    }
}

/// The old `fused_signal_interrupt` scenario, re-homed: a cancellation
/// raised on the job's own context while the simulator is in the *fused*
/// flat phase must interrupt at the next fused-matrix boundary, write the
/// on-breach checkpoint, and resume to the uninterrupted amplitudes. No
/// process-global flag is involved, so this coexists with every other
/// test in the binary.
#[test]
fn cancel_during_fused_flat_phase_interrupts_checkpoints_and_resumes() {
    let c = layered_circuit(6);
    let cfg = fused_cfg();
    let mut clean = FlatDdSimulator::try_new(6, cfg).unwrap();
    clean.run(&c).unwrap();
    let want = clean.amplitudes();

    let path = std::env::temp_dir().join(format!(
        "flatdd-fused-cancel-test-{}.ckpt",
        std::process::id()
    ));
    let ctx = RunContext::isolated();
    let mut sim = FlatDdSimulator::try_new_with(6, cfg, ctx.clone()).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    sim.run_prefix(&c, 20).unwrap();
    assert_eq!(sim.phase(), Phase::Dmav, "cut must land in the flat phase");

    // The cancel flag is polled at the top of each fused-matrix iteration,
    // so the continuation must stop at gate 20 instead of running to
    // completion.
    ctx.cancel(signal::SIGTERM);
    match sim.run_from(&c) {
        Err(FlatDdError::Interrupted { signal: s, partial }) => {
            assert_eq!(s, signal::SIGTERM);
            assert_eq!(partial.gates_applied, 20);
        }
        other => panic!("expected Interrupted from the fused loop, got {other:?}"),
    }
    assert!(!ctx.cancel_requested(), "the poll must consume the flag");
    drop(sim);

    // The on-breach checkpoint resumes to the uninterrupted amplitudes.
    let (mut resumed, header) = FlatDdSimulator::resume_from(&path, cfg, &c).unwrap();
    assert_eq!(header.gate_cursor, 20);
    resumed.run_from(&c).unwrap();
    let d = state_distance(&resumed.amplitudes(), &want);
    assert!(d < 1e-12, "resumed state deviates by {d:.3e}");
    let _ = std::fs::remove_file(&path);
}

/// Cancelling one of two concurrently running jobs stops exactly that
/// job; the other runs to completion with correct amplitudes.
#[test]
fn cancelling_one_concurrent_job_leaves_the_other_running() {
    let n = 10;
    let c = {
        // A long repetitive circuit so the victim is reliably mid-flight
        // when the cancel lands.
        let mut c = Circuit::new(n);
        for l in 0..200 {
            for q in 0..n {
                if (l + q) % 4 == 0 {
                    c.cx(q, (q + 1) % n);
                } else {
                    c.rx(0.11 + 0.03 * ((l * n + q) % 17) as f64, q);
                }
            }
        }
        c
    };
    let cfg = FlatDdConfig {
        threads: 1,
        conversion: ConversionPolicy::AtGate(40),
        ..Default::default()
    };
    let mut reference = FlatDdSimulator::try_new(n, cfg).unwrap();
    reference.run(&c).unwrap();
    let want = reference.amplitudes();

    let victim_ctx = RunContext::isolated();
    let victim_started = Arc::new(AtomicBool::new(false));
    let victim = {
        let c = c.clone();
        let ctx = victim_ctx.clone();
        let started = Arc::clone(&victim_started);
        std::thread::spawn(move || {
            let mut sim = FlatDdSimulator::try_new_with(n, cfg, ctx).unwrap();
            started.store(true, Ordering::SeqCst);
            sim.run(&c)
        })
    };
    let survivor = {
        let c = c.clone();
        std::thread::spawn(move || {
            let mut sim = FlatDdSimulator::try_new_with(n, cfg, RunContext::isolated()).unwrap();
            let r = sim.run(&c);
            (r, sim.amplitudes())
        })
    };

    while !victim_started.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    victim_ctx.cancel(signal::SIGINT);

    match victim.join().unwrap() {
        Err(FlatDdError::Interrupted { signal: s, .. }) => assert_eq!(s, signal::SIGINT),
        Ok(outcome) => panic!(
            "victim ran to completion ({} gates) — cancel was lost",
            outcome.gates_applied
        ),
        other => panic!("victim failed for the wrong reason: {other:?}"),
    }
    let (result, amps) = survivor.join().unwrap();
    result.expect("survivor must be untouched by the neighbor's cancel");
    let d = state_distance(&amps, &want);
    assert!(d < 1e-12, "survivor state deviates by {d:.3e}");
}

/// Stress: four simulations on four threads, each with its own context,
/// each poisoned differently. Stats, metrics, and faults must not bleed
/// between jobs, and every job must land the outcome its own context
/// dictates.
#[test]
fn four_concurrent_jobs_keep_stats_and_faults_isolated() {
    let n = 8;
    let circuit = layered_circuit(6);
    let big = {
        let mut c = Circuit::new(n);
        for l in 0..8 {
            for q in 0..n {
                if (l + q) % 3 == 0 {
                    c.cx(q, (q + 1) % n);
                } else {
                    c.ry(0.13 + 0.05 * (l * n + q) as f64, q);
                }
            }
        }
        c
    };
    let cfg6 = FlatDdConfig {
        threads: 1,
        conversion: ConversionPolicy::AtGate(12),
        ..Default::default()
    };
    let cfg8 = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(16),
        ..Default::default()
    };

    // Job A: clean 6-qubit run. Job B: clean 8-qubit run. Job C: armed
    // `alloc.flat` under an Immediate conversion policy, where the flat
    // allocation is mandatory → must fail with AllocationFailed. (At a
    // policy *trigger* the same fault degrades to a conversion refusal by
    // design.) Job D: armed `state.nan` → the watchdog must report
    // divergence.
    let ctx_a = RunContext::isolated();
    let ctx_b = RunContext::isolated();
    let ctx_c = RunContext::isolated()
        .with_faults_spec("alloc.flat:error:always")
        .unwrap();
    let ctx_d = RunContext::isolated()
        .with_faults_spec("state.nan:nan:once")
        .unwrap();

    let run = |c: Circuit, nq: usize, cfg: FlatDdConfig, ctx: RunContext| {
        std::thread::spawn(move || {
            let mut sim = FlatDdSimulator::try_new_with(nq, cfg, ctx)?;
            sim.run(&c).map(|_| sim.stats())
        })
    };
    let cfg_c = FlatDdConfig {
        threads: 1,
        conversion: ConversionPolicy::Immediate,
        ..Default::default()
    };
    let a = run(circuit.clone(), 6, cfg6, ctx_a.clone());
    let b = run(big.clone(), n, cfg8, ctx_b.clone());
    let c_ = run(circuit.clone(), 6, cfg_c, ctx_c.clone());
    let d = run(big.clone(), n, cfg8, ctx_d.clone());

    let stats_a = a.join().unwrap().expect("job A is clean and must succeed");
    let stats_b = b.join().unwrap().expect("job B is clean and must succeed");
    match c_.join().unwrap() {
        Err(FlatDdError::AllocationFailed { .. }) => {}
        other => panic!("job C must hit its injected allocation fault, got {other:?}"),
    }
    match d.join().unwrap() {
        Err(FlatDdError::NumericalDivergence { .. }) => {}
        other => panic!("job D must trip the watchdog on its injected NaN, got {other:?}"),
    }

    // Per-job gate counters reflect each job's own circuit, nothing else.
    assert_eq!(
        stats_a.gates_dd + stats_a.gates_dmav,
        circuit.num_gates(),
        "job A stats polluted by a neighbor"
    );
    assert_eq!(
        stats_b.gates_dd + stats_b.gates_dmav,
        big.num_gates(),
        "job B stats polluted by a neighbor"
    );
    let a_gates = ctx_a.metrics().counter("core.gates_dd").get()
        + ctx_a.metrics().counter("core.gates_dmav").get();
    assert_eq!(a_gates, circuit.num_gates() as u64);
    let b_gates = ctx_b.metrics().counter("core.gates_dd").get()
        + ctx_b.metrics().counter("core.gates_dmav").get();
    assert_eq!(b_gates, big.num_gates() as u64);
    assert_eq!(
        ctx_a.metrics().counter("core.runs").get(),
        1,
        "each isolated registry sees exactly its own run"
    );
    assert_eq!(ctx_b.metrics().counter("core.runs").get(), 1);

    // The armed registries fired only for their own jobs.
    assert!(
        ctx_c.fires("alloc.flat").is_some(),
        "C stays armed (always)"
    );
    assert!(
        ctx_a.fires("alloc.flat").is_none(),
        "A must never see C's fault"
    );
    assert!(
        ctx_b.fires("state.nan").is_none(),
        "B must never see D's fault"
    );
}

/// Two jobs running their *DD phases* concurrently with `dd_threads = 2`
/// each own an independent `DdPackage` (unique/complex/compute tables) and
/// an independent worker pool: both produce their own sequential reference
/// amplitudes, and each job's parallel-apply counter counts only its own
/// gates. Before the per-job `RunContext` refactor the DD package was
/// effectively global; this pins the de-globalized behavior under the new
/// threaded engine.
#[test]
fn concurrent_dd_phase_jobs_use_independent_packages() {
    let n = 8;
    // Irregular circuits so the state DD crosses the parallel-dispatch
    // threshold and the threaded apply actually runs.
    let mk = |seed: u64| {
        let mut c = Circuit::new(n);
        for l in 0..12 {
            for q in 0..n {
                if (l + q + seed as usize).is_multiple_of(3) {
                    c.cx(q, (q + 1) % n);
                } else {
                    c.rx(0.17 + 0.05 * ((l * n + q) as f64 + seed as f64), q);
                }
            }
        }
        c
    };
    let (ca, cb) = (mk(0), mk(5));
    let cfg = FlatDdConfig {
        threads: 1,
        dd_threads: 2,
        conversion: ConversionPolicy::Never,
        ..Default::default()
    };
    let seq = FlatDdConfig {
        dd_threads: 1,
        ..cfg
    };
    let reference = |c: &Circuit| {
        let mut sim = FlatDdSimulator::try_new(n, seq).unwrap();
        sim.run(c).unwrap();
        sim.amplitudes()
    };
    let (want_a, want_b) = (reference(&ca), reference(&cb));

    let ctx_a = RunContext::isolated();
    let ctx_b = RunContext::isolated();
    let spawn = |c: Circuit, ctx: RunContext| {
        std::thread::spawn(move || {
            let mut sim = FlatDdSimulator::try_new_with(n, cfg, ctx).unwrap();
            sim.run(&c).unwrap();
            sim.amplitudes()
        })
    };
    let a = spawn(ca.clone(), ctx_a.clone());
    let b = spawn(cb.clone(), ctx_b.clone());
    let got_a = a.join().unwrap();
    let got_b = b.join().unwrap();

    let da = state_distance(&got_a, &want_a);
    let db = state_distance(&got_b, &want_b);
    assert!(
        da < 1e-12,
        "job A deviates by {da:.3e} — packages not isolated?"
    );
    assert!(
        db < 1e-12,
        "job B deviates by {db:.3e} — packages not isolated?"
    );

    // Each context counted parallel DD applies for its own job only: both
    // jobs took the threaded path, and neither counter double-counts the
    // neighbor (a shared package/pool would funnel both jobs through one
    // registry).
    let pa = ctx_a.metrics().counter("core.dd_parallel_applies").get();
    let pb = ctx_b.metrics().counter("core.dd_parallel_applies").get();
    assert!(pa > 0, "job A never dispatched a parallel apply");
    assert!(pb > 0, "job B never dispatched a parallel apply");
    assert!(
        pa <= ca.num_gates() as u64 && pb <= cb.num_gates() as u64,
        "parallel-apply counters bled between jobs (A={pa}, B={pb})"
    );
}
