//! Cross-engine agreement for the measurement layer: expectation values,
//! sampling distributions, marginals, and projective measurement must match
//! across the DD engine, the array engine, FlatDD (both phases), and the
//! dense reference.

use flatdd::{ConversionPolicy, FlatDdConfig, FlatDdSimulator};
use qcircuit::{dense, generators, Hamiltonian, PauliString};
use qdd::{DdPackage, SplitMix64};

fn dd_state(c: &qcircuit::Circuit) -> (DdPackage, qdd::VEdge) {
    let pkg = DdPackage::default();
    let mut s = pkg.basis_state(c.num_qubits(), 0);
    for g in c.iter() {
        s = pkg.apply_gate(s, g, c.num_qubits());
    }
    (pkg, s)
}

#[test]
fn expectations_agree_across_all_engines() {
    let n = 6;
    let c = generators::random_circuit(n, 60, 5);
    let v = dense::simulate(&c);
    let (mut pkg, s) = dd_state(&c);
    let mut flat = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    flat.run(&c).unwrap();

    let observables = vec![
        PauliString::z(1.0, 0),
        PauliString::x(0.5, n - 1),
        PauliString::zz(-0.7, 1, 4),
        PauliString::parse("0.3 * XYZIZX").unwrap(),
        PauliString::identity(1.25),
    ];
    for p in observables {
        let want = p.expectation_dense(&v);
        let by_dd = pkg.expectation_pauli(s, &p, n);
        let by_array = qarray::expectation_pauli(&v, &p);
        let by_flat = flat.expectation_pauli(&p);
        assert!((by_dd - want).abs() < 1e-8, "dd: {p}");
        assert!((by_array - want).abs() < 1e-9, "array: {p}");
        assert!((by_flat - want).abs() < 1e-8, "flatdd: {p}");
    }
}

#[test]
fn hamiltonian_energies_agree() {
    let n = 7;
    let c = generators::vqe(n, 2, 11);
    let v = dense::simulate(&c);
    for ham in [
        Hamiltonian::transverse_ising(n, 1.0, 0.3),
        Hamiltonian::heisenberg_xxz(n, 0.8, 1.2),
        Hamiltonian::maxcut(&generators::qaoa_edges(n, 4), 1.0),
    ] {
        let want = ham.expectation_dense(&v);
        let (mut pkg, s) = dd_state(&c);
        assert!((pkg.expectation(s, &ham, n) - want).abs() < 1e-7);
        assert!((qarray::expectation(&v, &ham) - want).abs() < 1e-8);
        let mut flat = FlatDdSimulator::new(
            n,
            FlatDdConfig {
                threads: 2,
                conversion: ConversionPolicy::Immediate,
                ..Default::default()
            },
        );
        flat.run(&c).unwrap();
        assert!((flat.expectation(&ham) - want).abs() < 1e-7);
    }
}

#[test]
fn sampling_distributions_match_probabilities_chi_square() {
    // Chi-square-style check: empirical frequencies from both samplers stay
    // within a few sigma of the exact probabilities.
    let n = 5;
    let c = generators::qft(n); // uniform output from |0>: p = 1/32 each
    let v = dense::simulate(&c);
    let (pkg, s) = dd_state(&c);
    let shots = 64_000usize;
    let mut r1 = SplitMix64::new(1);
    let mut r2 = SplitMix64::new(2);
    let dd_counts = pkg.sample_counts(s, shots, &mut r1.as_fn());
    let ar_counts = qarray::sample_counts(&v, shots, &mut r2.as_fn());
    let expect = shots as f64 / 32.0;
    let sigma = (shots as f64 * (1.0 / 32.0) * (31.0 / 32.0)).sqrt();
    for counts in [dd_counts, ar_counts] {
        assert_eq!(
            counts.len(),
            32,
            "QFT|0> output is uniform over all 32 outcomes"
        );
        for &(idx, cnt) in &counts {
            assert!(
                (cnt as f64 - expect).abs() < 5.0 * sigma,
                "outcome {idx}: {cnt} vs expected {expect}"
            );
        }
    }
}

#[test]
fn marginals_agree_on_every_family() {
    for c in [
        generators::ghz(6),
        generators::w_state(6),
        generators::dnn(6, 2, 3),
        generators::qaoa(6, 2, 3),
    ] {
        let v = dense::simulate(&c);
        let (pkg, s) = dd_state(&c);
        let mut flat = FlatDdSimulator::new(
            6,
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        );
        flat.run(&c).unwrap();
        for q in 0..6 {
            let want = qarray::qubit_probability_one(&v, q);
            assert!(
                (pkg.qubit_probability_one(s, q) - want).abs() < 1e-9,
                "{} q{q}",
                c.name()
            );
            assert!(
                (flat.qubit_probability_one(q) - want).abs() < 1e-8,
                "{} q{q}",
                c.name()
            );
        }
    }
}

#[test]
fn measurement_statistics_match_marginals() {
    // Measure qubit 0 of a W state many times: p(1) must track 1/n.
    let n = 5;
    let c = generators::w_state(n);
    let mut ones = 0usize;
    let trials = 3000;
    let mut rng = SplitMix64::new(17);
    let (mut pkg, s) = dd_state(&c);
    for _ in 0..trials {
        let (outcome, _) = pkg.measure_qubit(s, 0, n, &mut rng.as_fn());
        ones += outcome as usize;
    }
    let f = ones as f64 / trials as f64;
    assert!((f - 0.2).abs() < 0.04, "f = {f}");
}

#[test]
fn flatdd_sampling_consistent_before_and_after_conversion() {
    // Sampling from the same circuit must produce statistically identical
    // marginals whether FlatDD stayed in the DD phase or was forced flat.
    let n = 8;
    let c = generators::qaoa(n, 2, 9);
    let mut dd_phase = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 2,
            conversion: ConversionPolicy::Never,
            ..Default::default()
        },
    );
    dd_phase.run(&c).unwrap();
    let mut flat_phase = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 2,
            conversion: ConversionPolicy::Immediate,
            ..Default::default()
        },
    );
    flat_phase.run(&c).unwrap();
    let shots = 20_000;
    let mut r1 = SplitMix64::new(31);
    let mut r2 = SplitMix64::new(32);
    let a = dd_phase.sample_counts(shots, &mut r1.as_fn());
    let b = flat_phase.sample_counts(shots, &mut r2.as_fn());
    // Compare per-qubit one-frequencies of the two sample sets.
    let freq = |counts: &[(usize, usize)], q: usize| -> f64 {
        counts
            .iter()
            .filter(|&&(i, _)| (i >> q) & 1 == 1)
            .map(|&(_, c)| c)
            .sum::<usize>() as f64
            / shots as f64
    };
    for q in 0..n {
        let (fa, fb) = (freq(&a, q), freq(&b, q));
        assert!((fa - fb).abs() < 0.03, "q{q}: {fa} vs {fb}");
    }
}

#[test]
fn optimized_qaoa_cut_values_beat_random_guessing() {
    // Full QAOA workflow: coarsely optimize (gamma, beta) for p = 1 against
    // the MaxCut Hamiltonian, then sample cuts from the optimized circuit —
    // they must beat the random-assignment baseline |E|/2.
    let n = 8;
    let seed = 7;
    let edges = generators::qaoa_edges(n, seed);
    let ham = Hamiltonian::maxcut(&edges, 1.0);

    let cut_expectation = |gamma: f64, beta: f64| -> f64 {
        let c = generators::qaoa_with_angles(n, &edges, &[(gamma, beta)]);
        let mut sim = FlatDdSimulator::new(
            n,
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        );
        sim.run(&c).unwrap();
        sim.expectation(&ham)
    };
    let mut best = (0.0, 0.0, f64::NEG_INFINITY);
    for i in 1..8 {
        for j in 1..8 {
            let (g, b) = (i as f64 * 0.125, j as f64 * 0.125);
            let e = cut_expectation(g, b);
            if e > best.2 {
                best = (g, b, e);
            }
        }
    }
    let random_baseline = edges.len() as f64 / 2.0;
    // p = 1 QAOA gives a modest but real advantage on irregular graphs.
    assert!(
        best.2 > random_baseline + 0.2,
        "grid search found no angles above random: best E[cut] = {}",
        best.2
    );

    // Sample from the optimized circuit and check the empirical mean cut.
    let c = generators::qaoa_with_angles(n, &edges, &[(best.0, best.1)]);
    let mut sim = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    sim.run(&c).unwrap();
    let mut rng = SplitMix64::new(4);
    let shots = 4000;
    let counts = sim.sample_counts(shots, &mut rng.as_fn());
    let cut = |bits: usize| -> f64 {
        edges
            .iter()
            .filter(|&&(a, b)| ((bits >> a) ^ (bits >> b)) & 1 == 1)
            .count() as f64
    };
    let mean_cut: f64 = counts.iter().map(|&(i, c)| cut(i) * c as f64).sum::<f64>() / shots as f64;
    assert!(
        mean_cut > random_baseline,
        "QAOA mean cut {mean_cut} did not beat random {random_baseline}"
    );
    // Sampled mean must agree with the computed expectation.
    assert!((mean_cut - best.2).abs() < 0.3, "{mean_cut} vs {}", best.2);
}
