//! End-to-end daemon behavior over real HTTP: submission, status,
//! metrics, health, bounded-queue rejection, cancellation, and worker
//! panic containment.

#![cfg(unix)]

#[path = "serve_util/mod.rs"]
mod util;

use std::time::Duration;
use util::*;

#[test]
fn submit_over_http_run_to_completion_and_observe() {
    let spool = fresh_spool("basic");
    let daemon = Daemon::start(&spool, &["--workers", "2"]);
    let port = daemon.port;

    let (code, body) = http(port, "GET", "/healthz", None);
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(r#"{"circuit":"ghz:8","threads":1,"seed":5}"#),
    );
    assert_eq!(code, 202, "{body}");
    let id = job_id(&body);

    let status = wait_terminal(port, id, Duration::from_secs(60));
    assert_eq!(job_state(&status), "done", "{status}");
    assert!(
        status.contains("\"total_gates\":"),
        "result payload missing: {status}"
    );
    // GHZ heaviest outcomes are |0..0> and |1..1> at p = 1/2 each.
    let heavy = heavy_amplitudes(&status);
    assert!(heavy.len() >= 2, "expected heavy amplitudes: {status}");
    let idxs: Vec<usize> = heavy.iter().take(2).map(|h| h.0).collect();
    assert!(idxs.contains(&0) && idxs.contains(&255), "{heavy:?}");

    let (code, body) = http(port, "GET", "/jobs", None);
    assert_eq!(code, 200);
    assert!(body.contains("\"circuit\":\"ghz:8\""), "{body}");

    let (code, body) = http(port, "GET", "/metrics", None);
    assert_eq!(code, 200);
    assert!(
        field_u64(&body, "\"serve.jobs_completed\":") >= Some(1),
        "{body}"
    );

    let (code, _) = http(port, "GET", "/jobs/99999", None);
    assert_eq!(code, 404);

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}

#[test]
fn worker_panic_fails_one_job_and_spares_the_daemon() {
    let spool = fresh_spool("panic");
    let daemon = Daemon::start(&spool, &["--workers", "2"]);
    let port = daemon.port;

    // The poisoned job panics on a conversion worker thread; the clean
    // job must be completely unaffected, and the daemon must keep
    // serving.
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(
            r#"{"circuit":"supremacy:10,8","threads":2,"convert_at_gate":16,"faults":"convert.worker_panic:panic:once"}"#,
        ),
    );
    assert_eq!(code, 202, "{body}");
    let poisoned = job_id(&body);
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(r#"{"circuit":"ghz:8","threads":1}"#),
    );
    assert_eq!(code, 202, "{body}");
    let clean = job_id(&body);

    let status = wait_terminal(port, poisoned, Duration::from_secs(60));
    assert_eq!(job_state(&status), "failed", "{status}");
    assert_eq!(
        field_u64(&status, "\"exit_code\":"),
        Some(10),
        "worker panic must map to exit code 10: {status}"
    );

    let status = wait_terminal(port, clean, Duration::from_secs(60));
    assert_eq!(
        job_state(&status),
        "done",
        "the neighbor of a panicking job must finish: {status}"
    );

    // The daemon itself survived.
    let (code, body) = http(port, "GET", "/healthz", None);
    assert_eq!(code, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}

#[test]
fn bounded_queue_rejects_and_cancel_works() {
    let spool = fresh_spool("queue");
    let daemon = Daemon::start(&spool, &["--workers", "1", "--queue-cap", "1"]);
    let port = daemon.port;

    // A long-running job to occupy the single worker.
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(r#"{"circuit":"supremacy:18,12","threads":1,"seed":3}"#),
    );
    assert_eq!(code, 202, "{body}");
    let running = job_id(&body);
    // Wait until it is actually running (i.e. out of the queue).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = http(port, "GET", &format!("/jobs/{running}"), None);
        if job_state(&body) == "running" {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Fill the queue (capacity 1), then overflow it.
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(r#"{"circuit":"ghz:6","threads":1}"#),
    );
    assert_eq!(code, 202, "{body}");
    let queued = job_id(&body);
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(r#"{"circuit":"ghz:6","threads":1}"#),
    );
    assert_eq!(code, 429, "expected queue-full rejection, got {body}");

    // Cancel the queued job (immediate) and the running one (next gate
    // boundary).
    let (code, body) = http(port, "POST", &format!("/jobs/{queued}/cancel"), None);
    assert_eq!(code, 200, "{body}");
    let status = wait_terminal(port, queued, Duration::from_secs(10));
    assert_eq!(job_state(&status), "cancelled", "{status}");

    let (code, body) = http(port, "DELETE", &format!("/jobs/{running}"), None);
    assert_eq!(code, 200, "{body}");
    let status = wait_terminal(port, running, Duration::from_secs(60));
    assert_eq!(job_state(&status), "cancelled", "{status}");

    // Cancelling a finished job conflicts.
    let (code, _) = http(port, "POST", &format!("/jobs/{queued}/cancel"), None);
    assert_eq!(code, 409);

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}

#[test]
fn crash_loop_is_poisoned_after_the_retry_budget() {
    let spool = fresh_spool("crash-loop");
    let daemon = Daemon::start(&spool, &["--workers", "1", "--retry-max", "1"]);
    let port = daemon.port;

    // The injected `panic` action at the checkpoint install point models
    // the worker dying mid-job on every attempt: attempt 1 panics and
    // re-queues, attempt 2 panics and exhausts the retry budget.
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(
            r#"{"circuit":"ghz:10","threads":1,"checkpoint_every":4,"faults":"checkpoint.enospc:panic:always"}"#,
        ),
    );
    assert_eq!(code, 202, "{body}");
    let id = job_id(&body);

    let status = wait_terminal(port, id, Duration::from_secs(60));
    assert_eq!(job_state(&status), "failed", "{status}");
    assert_eq!(field_u64(&status, "\"exit_code\":"), Some(10), "{status}");
    assert!(
        status.contains("poisoned"),
        "error should mark the job as crash-loop poisoned: {status}"
    );
    // Both attempts are accounted in the persisted record.
    assert_eq!(field_u64(&status, "\"panics\":"), Some(2), "{status}");

    // The daemon itself survived both panics and still serves work.
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(r#"{"circuit":"ghz:8","threads":1}"#),
    );
    assert_eq!(code, 202, "{body}");
    let clean = job_id(&body);
    let status = wait_terminal(port, clean, Duration::from_secs(60));
    assert_eq!(job_state(&status), "done", "{status}");
    let (_, metrics) = http(port, "GET", "/metrics", None);
    assert!(
        field_u64(&metrics, "\"serve.worker_panics\":") >= Some(2),
        "{metrics}"
    );

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}

#[test]
fn approximate_degradation_stamps_the_result() {
    let spool = fresh_spool("approx");
    let daemon = Daemon::start(&spool, &["--workers", "1"]);
    let port = daemon.port;

    // Pure-DD job (conversion gate beyond the circuit) under a budget its
    // exact run cannot hold; the armed per-job floor turns the breach into
    // a completed, fidelity-stamped approximate result.
    let (code, body) = http(
        port,
        "POST",
        "/jobs",
        Some(
            r#"{"circuit":"vqe:12,3","seed":7,"threads":1,"convert_at_gate":100000,"memory_budget_mb":24,"approx_fidelity_floor":0.9}"#,
        ),
    );
    assert_eq!(code, 202, "{body}");
    let id = job_id(&body);

    let status = wait_terminal(port, id, Duration::from_secs(120));
    assert_eq!(job_state(&status), "done", "{status}");
    assert!(
        status.contains("\"approximate\":true"),
        "result must self-describe as approximate: {status}"
    );
    let fidelity = status
        .split("\"fidelity\":")
        .nth(1)
        .and_then(|s| {
            s.split(|c: char| c == ',' || c == '}')
                .next()?
                .trim()
                .parse::<f64>()
                .ok()
        })
        .expect("result carries a fidelity");
    assert!(
        (0.9..1.0).contains(&fidelity),
        "fidelity {fidelity} outside [0.9, 1.0): {status}"
    );

    daemon.drain(Duration::from_secs(30));
    std::fs::remove_dir_all(&spool).ok();
}
