//! Satellite regression: a *transient* periodic-checkpoint write failure
//! must be retried with capped backoff and must not kill the run.
//!
//! The `checkpoint.truncate` fault site damages the temp file before its
//! atomic install, so the write itself "succeeds" — only the post-install
//! header verification in the retry loop can catch it. Armed to fire on
//! the first hit only, the first periodic attempt installs a corrupt file
//! and the retry must replace it with a good one.

use flatdd::{
    read_header, CheckpointPolicy, ConversionPolicy, FlatDdConfig, FlatDdSimulator, RunContext,
};
use qcircuit::complex::state_distance;
use qcircuit::Circuit;

fn layered_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..6 {
        for q in 0..n {
            if (l + q) % 3 == 0 {
                c.cx(q, (q + 1) % n);
            } else {
                c.rx(0.21 + 0.07 * (l * n + q) as f64, q);
            }
        }
    }
    c
}

#[test]
fn transient_truncate_is_retried_and_the_run_completes() {
    let c = layered_circuit(6);
    let cfg = FlatDdConfig {
        threads: 1,
        conversion: ConversionPolicy::AtGate(12),
        ..Default::default()
    };
    let mut clean = FlatDdSimulator::try_new(6, cfg).unwrap();
    clean.run(&c).unwrap();
    let want = clean.amplitudes();

    let path = std::env::temp_dir().join(format!(
        "flatdd-ckpt-retry-test-{}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Truncate to 100 bytes (inside the header region) on the first
    // checkpoint write only — a one-shot torn write.
    let ctx = RunContext::isolated()
        .with_faults_spec("checkpoint.truncate:truncate=100:1")
        .unwrap();
    let mut sim = FlatDdSimulator::try_new_with(6, cfg, ctx.clone()).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path).every(5).retries(2, 1)));
    sim.run(&c)
        .expect("a transient checkpoint failure must not fail the run");

    // The verification loop saw the torn install and retried.
    assert!(
        ctx.metrics().counter("checkpoint.write_failures").get() >= 1,
        "the damaged install must be counted as a write failure"
    );
    assert!(
        ctx.metrics().counter("checkpoint.write_retries").get() >= 1,
        "the retry must be counted"
    );

    // The installed checkpoint is the retried (good) one: loadable, and
    // resuming from it reproduces the uninterrupted amplitudes.
    read_header(&path).expect("final installed checkpoint must be valid");
    let (mut resumed, _header) = FlatDdSimulator::resume_from(&path, cfg, &c).unwrap();
    resumed.run_from(&c).unwrap();
    let d = state_distance(&resumed.amplitudes(), &want);
    assert!(d < 1e-12, "resumed state deviates by {d:.3e}");
    let _ = std::fs::remove_file(&path);
}

/// With no retry budget the old single-best-effort behavior holds: the
/// torn install stays, the run still completes (periodic checkpoints are
/// best-effort), and the failure is visible in the per-job metrics.
#[test]
fn exhausted_retries_leave_run_alive_and_failures_counted() {
    let c = layered_circuit(6);
    let cfg = FlatDdConfig {
        threads: 1,
        conversion: ConversionPolicy::AtGate(12),
        ..Default::default()
    };
    let path = std::env::temp_dir().join(format!(
        "flatdd-ckpt-retry-exhaust-{}.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let ctx = RunContext::isolated()
        .with_faults_spec("checkpoint.truncate:truncate=100:always")
        .unwrap();
    let mut sim = FlatDdSimulator::try_new_with(6, cfg, ctx.clone()).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path).every(5).retries(1, 1)));
    sim.run(&c)
        .expect("even unrecoverable periodic-checkpoint failures must not fail the run");

    let failures = ctx.metrics().counter("checkpoint.write_failures").get();
    let retries = ctx.metrics().counter("checkpoint.write_retries").get();
    assert!(failures >= 2, "every attempt fails; got {failures}");
    assert!(retries >= 1, "the retry budget was consumed; got {retries}");
    assert!(
        read_header(&path).is_err(),
        "with the fault always armed the installed file stays torn"
    );
    let _ = std::fs::remove_file(&path);
}
