//! Integration tests for the unified telemetry surface: per-run stats
//! semantics, structured event-stream invariants, the JSONL and Chrome
//! trace exporters, and the global metrics registry.
//!
//! The event-sink registry is process-global, so every test that installs
//! a sink serializes on [`TELEMETRY_LOCK`] and filters recorded events by
//! its own simulator's `telemetry_id`.

use flatdd::telemetry::{self, Event};
use flatdd::{CachingPolicy, ConversionPolicy, FlatDdConfig, FlatDdSimulator};
use qcircuit::generators;
use std::sync::{Mutex, MutexGuard};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn sink_lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn irregular_circuit() -> qcircuit::Circuit {
    generators::dnn(10, 2, 1)
}

#[test]
fn stats_reset_between_runs() {
    let c = irregular_circuit();
    let mut sim = FlatDdSimulator::new(
        10,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let first = sim.run(&c).expect("first run").stats;
    assert!(first.gates_dd > 0, "run starts in the DD phase");
    assert!(first.converted_at.is_some(), "DNN must convert");
    assert!(first.ct_mv_lookups > 0, "DD gates hit the MV compute table");

    // The second run starts in the DMAV phase; its stats must describe only
    // itself, not the accumulated lifetime of the simulator.
    let second = sim.run(&c).expect("second run").stats;
    assert_eq!(second.gates_dd, 0, "second run never touches the DD phase");
    assert_eq!(second.converted_at, None, "conversion is not re-reported");
    assert_eq!(
        second.gates_dmav,
        c.num_gates(),
        "every gate of the second run is a DMAV"
    );
    assert_eq!(
        second.ct_mv_lookups, 0,
        "compute-table deltas are re-baselined per run"
    );
    assert!(
        second.dmav_plan_hits + second.dmav_plan_misses <= 2 * c.num_gates(),
        "plan-cache deltas are per-run, not lifetime"
    );
}

#[test]
fn conversion_and_run_events_emitted_exactly_once() {
    let _g = sink_lock();
    let rec = telemetry::Recorder::new();
    let id = telemetry::add_sink(rec.sink());
    let c = irregular_circuit();
    let mut sim = FlatDdSimulator::new(
        10,
        FlatDdConfig {
            threads: 2,
            conversion: ConversionPolicy::AtGate(5),
            ..Default::default()
        },
    );
    sim.run(&c).expect("run");
    let me = sim.telemetry_id();
    telemetry::remove_sink(id);

    let mut conversions = 0;
    let mut transitions = 0;
    let mut starts = 0;
    let mut ends = 0;
    let mut gates = 0;
    for e in rec.events() {
        match e {
            Event::Conversion { sim, at_gate, .. } if sim == me => {
                conversions += 1;
                assert_eq!(at_gate, 4, "AtGate(5) converts after the 5th gate");
            }
            Event::PhaseTransition { sim, policy, .. } if sim == me => {
                transitions += 1;
                assert_eq!(policy, "at-gate");
            }
            Event::RunStart { sim, .. } if sim == me => starts += 1,
            Event::RunEnd { sim, ok, .. } if sim == me => {
                ends += 1;
                assert!(ok);
            }
            Event::Gate { sim, .. } if sim == me => gates += 1,
            _ => {}
        }
    }
    assert_eq!(conversions, 1, "conversion event exactly once");
    assert_eq!(transitions, 1, "phase-transition event exactly once");
    assert_eq!((starts, ends), (1, 1));
    assert_eq!(gates, c.num_gates(), "one gate event per applied gate");
}

#[test]
fn plan_cache_accounting_covers_every_dmav_gate() {
    let c = irregular_circuit();
    let mut sim = FlatDdSimulator::new(
        10,
        FlatDdConfig {
            threads: 2,
            conversion: ConversionPolicy::Immediate,
            caching: CachingPolicy::Always,
            ..Default::default()
        },
    );
    let stats = sim.run(&c).expect("run").stats;
    assert_eq!(stats.gates_dd, 0, "Immediate converts at construction");
    assert_eq!(stats.gates_dmav, c.num_gates());
    assert_eq!(
        stats.dmav_plan_hits + stats.dmav_plan_misses,
        stats.gates_dmav,
        "with CachingPolicy::Always every DMAV gate is exactly one plan \
         lookup, and each lookup is a hit or a miss"
    );
    assert!(stats.dmav_plan_hits > 0, "repeated gate matrices must hit");
}

#[test]
fn jsonl_sink_writes_one_valid_object_per_line() {
    let _g = sink_lock();
    let path = std::env::temp_dir().join(format!("flatdd-events-{}.jsonl", std::process::id()));
    let sink = telemetry::JsonlSink::create(&path).expect("create JSONL sink");
    let id = telemetry::add_sink(Box::new(sink));
    let mut sim = FlatDdSimulator::new(
        10,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    sim.run(&irregular_circuit()).expect("run");
    let me = sim.telemetry_id();
    telemetry::remove_sink(id); // flushes

    let text = std::fs::read_to_string(&path).expect("read JSONL");
    let _ = std::fs::remove_file(&path);
    let mine: Vec<&str> = text
        .lines()
        .filter(|l| l.contains(&format!("\"sim\":{me},")))
        .collect();
    assert!(!mine.is_empty(), "the run must have produced events");
    for line in mine {
        assert!(line.starts_with("{\"type\":\""), "line: {line}");
        assert!(line.ends_with('}'), "line: {line}");
        assert!(line.contains("\"ts_us\":"), "line: {line}");
    }
    assert!(text.lines().any(|l| l.contains("\"type\":\"conversion\"")));
}

#[test]
fn chrome_trace_renders_phases_and_workers() {
    let _g = sink_lock();
    let rec = telemetry::Recorder::new();
    let id = telemetry::add_sink(rec.sink());
    let mut sim = FlatDdSimulator::new(
        10,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    sim.run(&irregular_circuit()).expect("run");
    telemetry::remove_sink(id);

    let json = telemetry::chrome_trace_json(&rec.events());
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    for needle in [
        "\"dd phase\"",
        "\"dmav phase\"",
        "\"conversion\"",
        "\"conversion worker 0\"",
        "\"thread_name\"",
    ] {
        assert!(json.contains(needle), "missing {needle}");
    }
}

#[test]
fn metrics_registry_round_trips_and_resets() {
    // Unique names so concurrent tests mutating engine metrics cannot
    // interfere with the values asserted here.
    let ctr = telemetry::counter("test.roundtrip_counter");
    ctr.add(41);
    ctr.inc();
    telemetry::gauge("test.roundtrip_gauge").set(2.5);
    telemetry::set_label("test.roundtrip_label", "hello \"world\"");
    let json = telemetry::metrics_json();
    assert!(json.contains("\"test.roundtrip_counter\": 42"), "{json}");
    assert!(json.contains("\"test.roundtrip_gauge\": 2.5"), "{json}");
    assert!(json.contains("\"test.roundtrip_label\": \"hello \\\"world\\\"\""));
    assert!(json.starts_with("{\n  \"counters\": {"));

    telemetry::reset_metrics();
    assert_eq!(ctr.get(), 0, "reset zeroes live counter handles");
    let json = telemetry::metrics_json();
    assert!(json.contains("\"test.roundtrip_counter\": 0"));
}
