//! Workspace-level checks of the tooling layer: DD serialization through
//! the FlatDD pipeline, DOT export on simulation states, gate census, and
//! QASM parser edge cases.

use flatdd::{FlatDdConfig, FlatDdSimulator};
use qcircuit::complex::state_distance;
use qcircuit::{generators, parse_qasm};
use qdd::serialize::{vector_dd_from_bytes, vector_dd_to_bytes};
use qdd::{DdPackage, DdSimulator};

#[test]
fn checkpoint_and_resume_a_simulation() {
    // Run half a circuit, serialize the state DD, load it elsewhere, run
    // the rest: must equal the uninterrupted run.
    let n = 8;
    let c = generators::qft(n);
    let half = c.num_gates() / 2;

    let mut first = DdSimulator::new(n);
    for g in c.gates().iter().take(half) {
        first.apply(g);
    }
    let bytes = vector_dd_to_bytes(first.package(), first.state(), n).unwrap();

    // "Resume" in a brand-new package.
    let mut pkg = DdPackage::default();
    let (mut state, n2) = vector_dd_from_bytes(&mut pkg, &bytes).unwrap();
    assert_eq!(n2, n);
    for g in c.gates().iter().skip(half) {
        state = pkg.apply_gate(state, g, n);
    }
    let resumed = pkg.vector_to_array(state, n);
    let reference = qdd::sim::simulate(&c);
    assert!(state_distance(&resumed, &reference) < 1e-9);
}

#[test]
fn serialized_states_feed_the_array_engine() {
    // DD checkpoint -> flat array -> array engine continues.
    let n = 7;
    let c = generators::w_state(n);
    let mut sim = DdSimulator::new(n);
    sim.run(&c);
    let bytes = vector_dd_to_bytes(sim.package(), sim.state(), n).unwrap();
    let mut pkg = DdPackage::default();
    let (state, _) = vector_dd_from_bytes(&mut pkg, &bytes).unwrap();
    let flat = pkg.vector_to_array(state, n);
    let mut arr = qarray::ArraySimulator::from_state(flat, 2);
    arr.run(&{
        let mut tail = qcircuit::Circuit::new(n);
        tail.h(0).cx(0, 1);
        tail
    });
    assert!((arr.norm_sqr() - 1.0).abs() < 1e-9);
}

#[test]
fn dot_export_works_on_live_simulation_states() {
    let mut sim = FlatDdSimulator::new(
        6,
        FlatDdConfig {
            threads: 1,
            ..Default::default()
        },
    );
    sim.run(&generators::w_state(6)).unwrap();
    // W state stays in the DD phase; package + a fresh DD of its amplitudes
    // render to DOT.
    let amps = sim.amplitudes();
    let pkg = DdPackage::default();
    let e = pkg.vector_from_slice(&amps);
    let dot = qdd::dot::vector_to_dot(&pkg, e, "wstate");
    assert!(dot.contains("digraph wstate"));
    assert!(dot.matches("->").count() > 6);
}

#[test]
fn census_reflects_generator_structure() {
    let c = generators::supremacy_n(8, 10, 3);
    let census = c.gate_census();
    let get = |k: &str| {
        census
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(get("h"), 8, "one initial H per qubit");
    assert!(get("cz") > 0);
    assert!(
        get("sx") + get("sy") + get("t") == 10 * 8,
        "one 1q gate per qubit per cycle"
    );
}

#[test]
fn qasm_edge_cases() {
    // Unterminated string.
    assert!(parse_qasm("include \"qelib1.inc;\nqreg q[1];").is_err());
    // Register size zero.
    assert!(parse_qasm("qreg q[0];").is_err());
    // Duplicate register.
    assert!(parse_qasm("qreg q[2]; qreg q[3];").is_err());
    // Opaque rejected.
    assert!(parse_qasm("qreg q[1]; opaque magic a;").is_err());
    // Gate bodies may not index registers.
    assert!(parse_qasm("qreg q[2]; gate bad a { cx a, q[0]; } bad q[1];").is_err());
    // Broadcast mismatch.
    assert!(parse_qasm("qreg a[2]; qreg b[3]; cx a, b;").is_err());
    // Deep-but-finite nesting is fine; a recursive definition errors out.
    assert!(parse_qasm("qreg q[1]; gate loop a { loop a; } loop q[0];").is_err());
    // Whitespace/comment-only program parses to an empty circuit over 1 qubit.
    let c = parse_qasm("// nothing\nqreg q[1];").unwrap();
    assert_eq!(c.num_gates(), 0);
}

#[test]
fn equivalence_checking_validates_peephole_on_qasm_inputs() {
    let src = qcircuit::qasm::to_qasm(&generators::qft(5));
    let parsed = parse_qasm(&src).unwrap();
    let optimized = qcircuit::transform::peephole_optimize(&parsed);
    assert!(qdd::check_equivalence(&parsed, &optimized).is_equivalent());
}
