//! Circuit-transformation passes verified with the DD equivalence checker —
//! the workflow of Burgholzer & Wille \[11\]: optimize, then formally verify
//! the optimized circuit against the original.

use flatdd::FlatDdConfig;
use qcircuit::complex::state_distance_up_to_phase;
use qcircuit::transform::{fuse_single_qubit_runs, peephole_optimize};
use qcircuit::{generators, Circuit};
use qdd::check_equivalence;

#[test]
fn peephole_output_is_formally_equivalent() {
    for seed in 0..8u64 {
        let c = generators::random_circuit(5, 70, seed);
        let opt = peephole_optimize(&c);
        assert!(
            check_equivalence(&c, &opt).is_equivalent(),
            "seed {seed}: optimizer broke the circuit ({} -> {} gates)",
            c.num_gates(),
            opt.num_gates()
        );
    }
}

#[test]
fn single_qubit_fusion_is_formally_equivalent() {
    for seed in 0..8u64 {
        let c = generators::random_circuit(5, 70, seed + 50);
        let fused = fuse_single_qubit_runs(&c);
        assert!(check_equivalence(&c, &fused).is_equivalent(), "seed {seed}");
    }
}

#[test]
fn stacked_passes_compose() {
    let c = generators::random_circuit(6, 120, 7);
    let opt = fuse_single_qubit_runs(&peephole_optimize(&c));
    assert!(opt.num_gates() <= c.num_gates());
    assert!(check_equivalence(&c, &opt).is_equivalent());
    // And the engines agree on the optimized circuit.
    let a = flatdd::simulate(
        &c,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    let b = flatdd::simulate(
        &opt,
        FlatDdConfig {
            threads: 2,
            ..Default::default()
        },
    );
    assert!(state_distance_up_to_phase(&a, &b) < 1e-8);
}

#[test]
fn optimizer_shrinks_redundant_benchmarks() {
    // QFT + inverse QFT is pure redundancy.
    let n = 6;
    let mut c = generators::qft(n);
    c.extend(&generators::qft(n).dagger());
    let opt = peephole_optimize(&c);
    assert_eq!(
        opt.num_gates(),
        0,
        "QFT·QFT† must vanish, kept {}",
        opt.num_gates()
    );
}

#[test]
fn optimizer_keeps_irreducible_circuits_intact() {
    // GHZ has nothing to cancel.
    let c = generators::ghz(8);
    let opt = peephole_optimize(&c);
    assert_eq!(opt.num_gates(), c.num_gates());
}

#[test]
fn fusion_speeds_up_gate_count_on_rotation_heavy_ansatz() {
    let c = generators::vqe(8, 3, 3);
    let fused = fuse_single_qubit_runs(&c);
    // Each qubit's RY+RZ pair fuses to one Unitary: ~25% fewer gates.
    assert!(
        fused.num_gates() * 4 < c.num_gates() * 3,
        "expected >25% gate reduction: {} -> {}",
        c.num_gates(),
        fused.num_gates()
    );
    assert!(check_equivalence(&c, &fused).is_equivalent());
}

#[test]
fn optimized_circuits_simulate_identically_on_all_engines() {
    let c = {
        let mut c = Circuit::new(5);
        // Deliberately redundant program.
        c.h(0)
            .h(0)
            .t(1)
            .t(1)
            .t(1)
            .t(1)
            .cx(0, 2)
            .x(3)
            .cx(0, 2)
            .x(3)
            .ry(0.7, 4)
            .ry(-0.7, 4);
        c.h(2).s(2).sdg(2).h(2);
        c
    };
    let opt = peephole_optimize(&c);
    assert!(opt.num_gates() < c.num_gates());
    let dense_ref = qcircuit::dense::simulate(&c);
    for state in [
        qdd::sim::simulate(&opt),
        qarray::simulate(&opt),
        flatdd::simulate(
            &opt,
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
        ),
    ] {
        assert!(state_distance_up_to_phase(&state, &dense_ref) < 1e-8);
    }
}
