//! A SIGINT/SIGTERM flag raised while the simulator is in the *fused*
//! flat phase must be honored at the next fused-matrix boundary — not
//! silently ignored until the circuit finishes — and the on-breach
//! checkpoint it triggers must resume to the uninterrupted amplitudes.
//!
//! This lives in its own integration binary: the signal flag is
//! process-global, and a raised flag would poison any other test whose
//! simulator polls it concurrently.

use flatdd::{
    signal, CheckpointPolicy, ConversionPolicy, FlatDdConfig, FlatDdError, FlatDdSimulator,
    FusionPolicy, Phase,
};
use qcircuit::complex::state_distance;
use qcircuit::Circuit;

/// Deterministic 36-gate circuit over 6 qubits (mirrors the
/// checkpoint_resume harness).
fn layered_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..6 {
        for q in 0..n {
            if (l + q) % 3 == 0 {
                c.cx(q, (q + 1) % n);
            } else {
                c.rx(0.21 + 0.07 * (l * n + q) as f64, q);
            }
        }
    }
    c
}

#[test]
fn signal_during_fused_flat_phase_interrupts_checkpoints_and_resumes() {
    let c = layered_circuit(6);
    let cfg = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(12),
        fusion: FusionPolicy::DmavAware,
        ..Default::default()
    };
    let mut clean = FlatDdSimulator::try_new(6, cfg).unwrap();
    clean.run(&c).unwrap();
    let want = clean.amplitudes();

    let path = std::env::temp_dir().join(format!(
        "flatdd-fused-signal-test-{}.ckpt",
        std::process::id()
    ));
    let mut sim = FlatDdSimulator::try_new(6, cfg).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    sim.run_prefix(&c, 20).unwrap();
    assert_eq!(sim.phase(), Phase::Dmav, "cut must land in the flat phase");

    // The flag is polled at the top of each fused-matrix iteration, so the
    // continuation must stop at gate 20 instead of running to completion.
    signal::raise_flag(signal::SIGTERM);
    match sim.run_from(&c) {
        Err(FlatDdError::Interrupted { signal: s, partial }) => {
            assert_eq!(s, signal::SIGTERM);
            assert_eq!(partial.gates_applied, 20);
        }
        other => panic!("expected Interrupted from the fused loop, got {other:?}"),
    }
    assert_eq!(signal::pending(), None, "the poll must consume the flag");
    drop(sim);

    // The on-breach checkpoint resumes to the uninterrupted amplitudes.
    let (mut resumed, header) = FlatDdSimulator::resume_from(&path, cfg, &c).unwrap();
    assert_eq!(header.gate_cursor, 20);
    resumed.run_from(&c).unwrap();
    let d = state_distance(&resumed.amplitudes(), &want);
    assert!(d < 1e-12, "resumed state deviates by {d:.3e}");
    let _ = std::fs::remove_file(&path);
}
