//! Checkpoint/resume integration: a run cut at an arbitrary gate and
//! resumed from the checkpoint file must match the uninterrupted run to
//! 1e-12 in both phases (including a cut exactly at the DD-to-DMAV
//! conversion boundary), and corrupted or mismatched checkpoints must be
//! rejected with typed errors — never a panic.

use flatdd::{
    CheckpointPolicy, ConversionPolicy, FlatDdConfig, FlatDdError, FlatDdSimulator, FusionPolicy,
    Phase,
};
use proptest::prelude::*;
use qcircuit::complex::state_distance;
use qcircuit::gate::{Control, Gate, GateKind};
use qcircuit::{generators, Circuit};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const TOL: f64 = 1e-12;

fn tmp_ckpt(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "flatdd-ckpt-test-{}-{tag}-{seq}.ckpt",
        std::process::id()
    ))
}

/// Reference run, then the same circuit cut at `cut` gates: checkpoint at
/// the boundary, resume from the file, finish, compare amplitudes.
fn assert_resume_matches(circuit: &Circuit, cfg: &FlatDdConfig, cut: usize, tag: &str) {
    let n = circuit.num_qubits();
    let mut clean = FlatDdSimulator::try_new(n, *cfg).unwrap();
    clean.run(circuit).unwrap();
    let want = clean.amplitudes();

    let path = tmp_ckpt(tag);
    let mut first = FlatDdSimulator::try_new(n, *cfg).unwrap();
    first.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    first.run_prefix(circuit, cut).unwrap();
    let phase_at_cut = first.phase();
    first.save_checkpoint().unwrap();
    drop(first);

    let (mut resumed, header) = FlatDdSimulator::resume_from(&path, *cfg, circuit).unwrap();
    assert_eq!(header.gate_cursor as usize, cut, "{tag}: cursor");
    assert_eq!(
        resumed.phase(),
        phase_at_cut,
        "{tag}: phase survives resume"
    );
    assert_eq!(resumed.gates_applied(), cut, "{tag}: gates_applied");
    resumed.run_from(circuit).unwrap();
    let got = resumed.amplitudes();
    let d = state_distance(&got, &want);
    assert!(
        d < TOL,
        "{tag}: resumed state deviates by {d:.3e} (cut at {cut}/{})",
        circuit.num_gates()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dd_phase_checkpoint_resumes_exactly() {
    // GHZ stays regular, so the whole run — and the checkpoint — is DD.
    let c = generators::ghz(10);
    let cfg = FlatDdConfig {
        threads: 2,
        ..Default::default()
    };
    for cut in [1, 5, c.num_gates() - 1] {
        assert_resume_matches(&c, &cfg, cut, "dd-phase");
    }
}

#[test]
fn flat_phase_checkpoint_resumes_exactly() {
    // Force an early conversion so the cut lands deep in the DMAV phase.
    let c = generators::from_spec("vqe:10,2", 7).unwrap();
    let cfg = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(10),
        ..Default::default()
    };
    for cut in [20, c.num_gates() / 2, c.num_gates() - 1] {
        assert_resume_matches(&c, &cfg, cut, "flat-phase");
    }
}

#[test]
fn conversion_boundary_checkpoint_resumes_exactly() {
    // Cut exactly at, one before, and one after the forced conversion
    // gate: the checkpoint straddling the representation switch must
    // restore whichever side it was taken on.
    let c = generators::from_spec("vqe:9,2", 11).unwrap();
    let k = 12;
    let cfg = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(k),
        ..Default::default()
    };
    for cut in [k - 1, k, k + 1] {
        assert_resume_matches(&c, &cfg, cut, "boundary");
    }
}

#[test]
fn whole_circuit_cuts_cover_both_phases() {
    // Sanity that the harness really exercises both payload kinds.
    let c = generators::from_spec("vqe:8,2", 3).unwrap();
    let k = c.num_gates() / 2;
    let cfg = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(k),
        ..Default::default()
    };
    let mut probe = FlatDdSimulator::try_new(8, cfg).unwrap();
    probe.run_prefix(&c, k - 1).unwrap();
    assert_eq!(probe.phase(), Phase::Dd);
    let mut probe = FlatDdSimulator::try_new(8, cfg).unwrap();
    probe.run_prefix(&c, k + 1).unwrap();
    assert_eq!(probe.phase(), Phase::Dmav);
}

#[test]
fn corrupted_checkpoints_are_rejected_not_panics() {
    let c = generators::ghz(8);
    let cfg = FlatDdConfig::default();
    let path = tmp_ckpt("corrupt");
    let mut sim = FlatDdSimulator::try_new(8, cfg).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    sim.run(&c).unwrap();
    sim.save_checkpoint().unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Single-bit flips across the file: typed rejection, never a panic.
    for pos in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x04;
        std::fs::write(&path, &bad).unwrap();
        match FlatDdSimulator::resume_from(&path, cfg, &c) {
            Err(FlatDdError::CorruptCheckpoint { .. }) => {}
            Err(FlatDdError::InvalidInput(_)) => {
                // A flip inside the header that still checksums clean is
                // impossible; but a flip in the *stored hash itself* is
                // caught by the CRC, so InvalidInput can only come from a
                // legitimate compatibility check. Either way: typed.
                panic!("bit flip at {pos} slipped past the checksums");
            }
            Err(e) => panic!("bit flip at {pos}: unexpected error class {e}"),
            Ok(_) => panic!("bit flip at {pos} was accepted"),
        }
    }

    // Truncations at every prefix length (sampled): typed rejection.
    for len in (0..bytes.len().saturating_sub(1)).step_by(13) {
        std::fs::write(&path, &bytes[..len]).unwrap();
        match FlatDdSimulator::resume_from(&path, cfg, &c) {
            Err(FlatDdError::CorruptCheckpoint { .. }) => {}
            Err(e) => panic!("truncation to {len}: unexpected error class {e}"),
            Ok(_) => panic!("truncation to {len} was accepted"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mismatched_circuit_or_config_is_invalid_input() {
    let c = generators::ghz(8);
    let cfg = FlatDdConfig::default();
    let path = tmp_ckpt("mismatch");
    let mut sim = FlatDdSimulator::try_new(8, cfg).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path)));
    sim.run_prefix(&c, 4).unwrap();
    sim.save_checkpoint().unwrap();

    // Different circuit content, same width.
    let other = generators::qft(8);
    match FlatDdSimulator::resume_from(&path, cfg, &other) {
        Err(FlatDdError::InvalidInput(msg)) => assert!(msg.contains("different circuit")),
        Err(e) => panic!("wrong circuit: expected InvalidInput, got {e}"),
        Ok(_) => panic!("wrong circuit was accepted"),
    }
    // Different width.
    let wider = generators::ghz(9);
    match FlatDdSimulator::resume_from(&path, cfg, &wider) {
        Err(FlatDdError::InvalidInput(_)) => {}
        Err(e) => panic!("wrong width: expected InvalidInput, got {e}"),
        Ok(_) => panic!("wrong width was accepted"),
    }
    // Result-affecting config change.
    let other_cfg = FlatDdConfig {
        conversion: ConversionPolicy::Never,
        ..Default::default()
    };
    match FlatDdSimulator::resume_from(&path, other_cfg, &c) {
        Err(FlatDdError::InvalidInput(msg)) => assert!(msg.contains("configuration")),
        Err(e) => panic!("wrong config: expected InvalidInput, got {e}"),
        Ok(_) => panic!("wrong config was accepted"),
    }
    // The original pairing still loads.
    FlatDdSimulator::resume_from(&path, cfg, &c).unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn periodic_checkpoints_fire_during_run() {
    let c = generators::from_spec("vqe:8,2", 5).unwrap();
    let path = tmp_ckpt("periodic");
    let mut sim = FlatDdSimulator::try_new(8, FlatDdConfig::default()).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path).every(8)));
    sim.run(&c).unwrap();
    // The file on disk is the last periodic checkpoint, and it resumes.
    let header = flatdd::read_header(&path).unwrap();
    assert!(header.gate_cursor > 0);
    assert_eq!(header.gate_cursor as usize % 8, 0);
    let (mut resumed, _) =
        FlatDdSimulator::resume_from(&path, FlatDdConfig::default(), &c).unwrap();
    resumed.run_from(&c).unwrap();
    assert_eq!(resumed.gates_applied(), c.num_gates());
    let _ = std::fs::remove_file(&path);
}

/// A deterministic 6-layer circuit over `n` qubits: `n` gates per layer,
/// mixing rotations and entanglers (used by the fused-phase tests, which
/// need an exact gate count).
fn layered_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..6 {
        for q in 0..n {
            if (l + q) % 3 == 0 {
                c.cx(q, (q + 1) % n);
            } else {
                c.rx(0.21 + 0.07 * (l * n + q) as f64, q);
            }
        }
    }
    c
}

#[test]
fn periodic_checkpoint_mid_fused_span_resumes_exactly() {
    // Fusion folds several original gates into each DMAV matrix; the gate
    // cursor must advance matrix by matrix so a checkpoint written inside
    // the fused span resumes without re-applying (or skipping) gates.
    // KOperations(4) + every(5) makes the cadence deterministic: with
    // conversion after gate 12 of 36, the last installed checkpoint lands
    // at a matrix boundary strictly inside the fused span.
    let c = layered_circuit(6);
    assert_eq!(c.num_gates(), 36);
    let cfg = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(12),
        fusion: FusionPolicy::KOperations(4),
        ..Default::default()
    };
    let mut clean = FlatDdSimulator::try_new(6, cfg).unwrap();
    clean.run(&c).unwrap();
    let want = clean.amplitudes();

    let path = tmp_ckpt("fused-periodic");
    let mut sim = FlatDdSimulator::try_new(6, cfg).unwrap();
    sim.set_checkpoint_policy(Some(CheckpointPolicy::at(&path).every(5)));
    sim.run(&c).unwrap();

    let header = flatdd::read_header(&path).unwrap();
    assert!(
        header.gate_cursor > 12 && (header.gate_cursor as usize) < c.num_gates(),
        "checkpoint cursor {} should sit strictly inside the fused flat span",
        header.gate_cursor
    );
    assert_eq!(header.phase, Phase::Dmav);

    let (mut resumed, _) = FlatDdSimulator::resume_from(&path, cfg, &c).unwrap();
    resumed.run_from(&c).unwrap();
    assert_eq!(resumed.gates_applied(), c.num_gates());
    let d = state_distance(&resumed.amplitudes(), &want);
    assert!(
        d < TOL,
        "resume from a mid-fused-span checkpoint deviates by {d:.3e}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dmav_aware_fusion_checkpoint_resumes_exactly() {
    // Same property under the cost-driven fusion policy (data-dependent
    // grouping): cut at exact gate boundaries across the fused span.
    let c = layered_circuit(6);
    let cfg = FlatDdConfig {
        threads: 2,
        conversion: ConversionPolicy::AtGate(12),
        fusion: FusionPolicy::DmavAware,
        ..Default::default()
    };
    for cut in [15, 24, c.num_gates() - 1] {
        assert_resume_matches(&c, &cfg, cut, "fused-dmav-aware");
    }
}

/// Strategy: one random gate over `n` qubits (mirrors the engine
/// cross-validation suite).
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let kind = prop_oneof![
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::S),
        Just(GateKind::T),
        (-3.2f64..3.2).prop_map(GateKind::RX),
        (-3.2f64..3.2).prop_map(GateKind::RY),
        (-3.2f64..3.2).prop_map(GateKind::RZ),
    ];
    (
        kind,
        0..n,
        proptest::collection::vec((0..n, any::<bool>()), 0..2),
    )
        .prop_map(move |(kind, target, raw_controls)| {
            let mut controls: Vec<Control> = Vec::new();
            for (q, pos) in raw_controls {
                if q != target && !controls.iter().any(|c| c.qubit == q) {
                    controls.push(Control {
                        qubit: q,
                        positive: pos,
                    });
                }
            }
            Gate::controlled(kind, target, controls)
        })
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 8..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Checkpoint at a random gate of a random circuit, with a random
    /// forced conversion point, and resume: amplitudes match to 1e-12.
    #[test]
    fn random_cut_resumes_exactly(
        c in arb_circuit(6, 48),
        cut_frac in 0.0f64..1.0,
        conv_frac in 0.0f64..1.0,
    ) {
        let total = c.num_gates();
        let cut = ((cut_frac * total as f64) as usize).min(total);
        let k = 1 + (conv_frac * total as f64) as usize;
        let cfg = FlatDdConfig {
            threads: 2,
            conversion: ConversionPolicy::AtGate(k),
            ..Default::default()
        };
        assert_resume_matches(&c, &cfg, cut, "proptest");
    }
}
