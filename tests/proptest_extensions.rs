//! Property tests for the extension modules: observables, sampling,
//! approximation, adjoint, transforms, and equivalence checking.

use proptest::prelude::*;
use qcircuit::complex::{norm_sqr, state_distance_up_to_phase};
use qcircuit::observable::{Pauli, PauliString};
use qcircuit::transform::{fuse_single_qubit_runs, peephole_optimize};
use qcircuit::{dense, Circuit, Complex64, Gate, GateKind};
use qdd::DdPackage;

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let kind = prop_oneof![
        Just(GateKind::H),
        Just(GateKind::X),
        Just(GateKind::S),
        Just(GateKind::Sdg),
        Just(GateKind::T),
        Just(GateKind::Tdg),
        (-3.0f64..3.0).prop_map(GateKind::RY),
        (-3.0f64..3.0).prop_map(GateKind::RZ),
    ];
    (kind, 0..n, proptest::option::of(0..n)).prop_map(move |(kind, target, ctl)| match ctl {
        Some(c) if c != target => Gate::controlled(kind, target, vec![qcircuit::Control::pos(c)]),
        _ => Gate::new(kind, target),
    })
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

fn arb_pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    (
        proptest::collection::vec(
            prop_oneof![
                Just(Pauli::I),
                Just(Pauli::X),
                Just(Pauli::Y),
                Just(Pauli::Z)
            ],
            n,
        ),
        -2.0f64..2.0,
    )
        .prop_map(|(ps, coeff)| PauliString::new(coeff, ps.into_iter().enumerate().collect()))
}

fn build_state(pkg: &mut DdPackage, c: &Circuit) -> qdd::VEdge {
    let mut s = pkg.basis_state(c.num_qubits(), 0);
    for g in c.iter() {
        s = pkg.apply_gate(s, g, c.num_qubits());
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn pauli_expectation_agrees_everywhere(c in arb_circuit(5, 30), p in arb_pauli_string(5)) {
        let v = dense::simulate(&c);
        let want = p.expectation_dense(&v);
        let mut pkg = DdPackage::default();
        let s = build_state(&mut pkg, &c);
        prop_assert!((pkg.expectation_pauli(s, &p, 5) - want).abs() < 1e-8);
        prop_assert!((qarray::expectation_pauli(&v, &p) - want).abs() < 1e-9);
        // Hermitian observables have real expectations bounded by |coeff|.
        prop_assert!(want.abs() <= p.coeff.abs() + 1e-9);
    }

    #[test]
    fn approximation_invariants(c in arb_circuit(6, 40), log_t in -8.0f64..-1.0) {
        let threshold = 10f64.powf(log_t);
        let mut pkg = DdPackage::default();
        let s = build_state(&mut pkg, &c);
        let r = pkg.approximate(s, threshold);
        // The result is always normalized...
        let arr = pkg.vector_to_array(r.state, 6);
        prop_assert!((norm_sqr(&arr) - 1.0).abs() < 1e-7);
        // ...never larger than the input...
        prop_assert!(r.nodes_after <= r.nodes_before);
        // ...with a valid fidelity in [0, 1].
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.fidelity));
        // Pruned mass bounds the infidelity loosely: fidelity >= 1 - nodes*threshold*C.
        if threshold < 1e-6 {
            prop_assert!(r.fidelity > 0.99, "fidelity {} at threshold {threshold}", r.fidelity);
        }
    }

    #[test]
    fn adjoint_respects_dagger_on_random_products(c in arb_circuit(4, 12)) {
        let mut pkg = DdPackage::default();
        let n = 4;
        let mut u = pkg.identity_dd(n);
        for g in c.iter() {
            let gd = pkg.gate_dd(g, n);
            u = pkg.mul_mm(gd, u);
        }
        let adj = pkg.adjoint(u);
        let prod = pkg.mul_mm(adj, u);
        let id = pkg.identity_dd(n);
        prop_assert_eq!(prod.n, id.n, "U†U must be (a phase times) the identity node");
        prop_assert!((pkg.cval(prod.w).abs() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn transforms_preserve_semantics(c in arb_circuit(5, 50)) {
        let want = dense::simulate(&c);
        let opt = peephole_optimize(&c);
        prop_assert!(opt.num_gates() <= c.num_gates());
        prop_assert!(state_distance_up_to_phase(&dense::simulate(&opt), &want) < 1e-8);
        let fused = fuse_single_qubit_runs(&c);
        prop_assert!(state_distance_up_to_phase(&dense::simulate(&fused), &want) < 1e-8);
    }

    #[test]
    fn equivalence_checker_accepts_self_and_rejects_perturbation(c in arb_circuit(4, 25)) {
        prop_assert!(qdd::check_equivalence(&c, &c.clone()).is_equivalent());
        let mut perturbed = c.clone();
        perturbed.ry(0.37, 1); // a non-trivial extra rotation
        prop_assert!(!qdd::check_equivalence(&c, &perturbed).is_equivalent());
    }

    #[test]
    fn inner_product_is_cauchy_schwarz_bounded(
        c1 in arb_circuit(5, 25),
        c2 in arb_circuit(5, 25),
    ) {
        let mut pkg = DdPackage::default();
        let a = build_state(&mut pkg, &c1);
        let b = build_state(&mut pkg, &c2);
        let ip = pkg.inner_product(a, b);
        prop_assert!(ip.abs() <= 1.0 + 1e-8, "|<a|b>| = {} > 1", ip.abs());
        // Consistency with the dense inner product.
        let va = dense::simulate(&c1);
        let vb = dense::simulate(&c2);
        let want: Complex64 = va.iter().zip(&vb).map(|(&x, &y)| x.conj() * y).sum();
        prop_assert!(ip.approx_eq(want, 1e-8));
    }

    #[test]
    fn dd_sampler_never_emits_zero_probability_outcomes(c in arb_circuit(5, 30), seed in 0u64..1000) {
        let mut pkg = DdPackage::default();
        let s = build_state(&mut pkg, &c);
        let v = dense::simulate(&c);
        let mut rng = qdd::SplitMix64::new(seed);
        for _ in 0..32 {
            let idx = pkg.sample(s, &mut rng.as_fn());
            prop_assert!(v[idx].norm_sqr() > 1e-18, "sampled impossible outcome {idx}");
        }
    }
}
