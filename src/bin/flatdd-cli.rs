//! `flatdd-cli` — run quantum circuits through the FlatDD engines.
//!
//! ```text
//! flatdd-cli run  <circuit> [options]   simulate and report
//! flatdd-cli gen  <circuit> [options]   emit the circuit as OpenQASM 2.0
//! flatdd-cli list                       list generator families
//!
//! <circuit> is either a path to an OpenQASM 2.0 file or a generator spec
//! like `ghz:12`, `supremacy:16,20`, `dnn:12,4` (see `list`).
//!
//! run options:
//!   --engine flatdd|dd|array   engine selection (default flatdd)
//!   --threads <t>              worker threads (default 4)
//!   --dd-threads <t>           DD-phase worker threads (default 1 =
//!                              sequential DDSIM-equivalent; or
//!                              FLATDD_DD_THREADS)
//!   --flat-shards <s>          flat-phase state shards (default auto = one
//!                              shard per thread; or FLATDD_FLAT_SHARDS)
//!   --shots <k>                sample k bitstrings from the output
//!   --top <k>                  print the k most probable outcomes (default 8)
//!   --seed <u64>               generator / sampling seed (default 42)
//!   --expect <pauli>           expectation of a Pauli label, e.g. "0.5*ZIZ"
//!   --stats                    print engine statistics (human-readable, stderr)
//!   --stats-json <path|->      write run stats as JSON (`-` = stdout)
//!   --trace-out <path>         write a Chrome-trace (chrome://tracing,
//!                              Perfetto) timeline of the run
//!   --metrics-out <path|->     write the unified metrics registry as JSON
//!   --events-out <path>        write the structured event stream as JSONL
//!   --memory-budget-mb <mb>    cap engine-accounted memory (flatdd engine)
//!   --rss-budget-mb <mb>       cap process RSS (flatdd engine)
//!   --deadline-secs <s>        wall-clock budget (flatdd engine)
//!   --approx-fidelity-floor <f> arm the approximation rung: on a memory
//!                              breach no exact relief can clear, truncate
//!                              the DD state as long as the cumulative
//!                              fidelity stays >= f (in (0,1]; flatdd
//!                              engine; or FLATDD_APPROX_FLOOR)
//!   --no-convert               never convert to the flat array: keep the
//!                              run DD-based end to end (flatdd engine)
//!   --checkpoint-path <path>   write crash-safe checkpoints here (flatdd)
//!   --checkpoint-every <g>     also checkpoint every g applied gates
//!   --resume-from <path>       resume a prior run from a checkpoint file
//! ```
//!
//! The environment variable `FLATDD_TRACE=<path>` is a `--events-out`
//! default (the flag wins when both are given).
//!
//! Output-channel convention: machine-readable payloads (amplitudes,
//! samples, expectations, `--stats-json -`, `--metrics-out -`) go to
//! stdout; human commentary (circuit summaries, timings, `--stats`) goes
//! to stderr.
//!
//! Budget breaches exit with the error's typed exit code (see
//! `FlatDdError::exit_code`): 4 memory, 5 deadline, 6 divergence,
//! 8 interrupted (SIGINT/SIGTERM), 9 corrupt checkpoint, 10 worker panic.
//! Resumable exits (4, 5, 8) write a final checkpoint when a
//! `--checkpoint-path` is configured and print the `--resume-from` hint.

use flatdd::{FlatDdConfig, FlatDdError, FlatDdSimulator, GovernorConfig, Phase};
use qcircuit::{generators, qasm, Circuit, PauliString};
use qdd::SplitMix64;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("run") => cmd_run(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help") | Some("-h") | None => {
            eprintln!("{}", USAGE);
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
flatdd-cli — hybrid DD + flat-array quantum circuit simulator

Usage:
  flatdd-cli run <circuit> [--engine flatdd|dd|array] [--threads t] [--dd-threads t]
                 [--flat-shards s]
                 [--shots k] [--top k] [--seed s] [--expect PAULI] [--stats]
                 [--stats-json path|-] [--trace-out path]
                 [--metrics-out path|-] [--events-out path]
                 [--memory-budget-mb mb] [--rss-budget-mb mb]
                 [--deadline-secs s] [--approx-fidelity-floor f]
                 [--no-convert] [--checkpoint-path path]
                 [--checkpoint-every gates] [--resume-from path]
  flatdd-cli gen <circuit> [--seed s]
  flatdd-cli list

<circuit> = a .qasm file path, or a generator spec such as ghz:12 or
supremacy:16,20 (run `flatdd-cli list` for all families).";

fn load_circuit(spec: &str, seed: u64) -> Circuit {
    if spec.ends_with(".qasm") || std::path::Path::new(spec).exists() {
        let src = std::fs::read_to_string(spec).unwrap_or_else(|e| {
            eprintln!("cannot read {spec}: {e}");
            std::process::exit(FlatDdError::from(e).exit_code());
        });
        match qasm::parse_qasm(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(FlatDdError::from(e).exit_code());
            }
        }
    } else {
        match generators::from_spec(spec, seed) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

fn parse_or_die<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        std::process::exit(2);
    })
}

struct RunOpts {
    circuit: String,
    engine: String,
    threads: usize,
    dd_threads: Option<usize>,
    flat_shards: Option<usize>,
    shots: usize,
    top: usize,
    seed: u64,
    expect: Vec<String>,
    stats: bool,
    stats_json: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    events_out: Option<String>,
    memory_budget_mb: Option<u64>,
    rss_budget_mb: Option<u64>,
    deadline_secs: Option<f64>,
    approx_fidelity_floor: Option<f64>,
    no_convert: bool,
    checkpoint_path: Option<String>,
    checkpoint_every: Option<usize>,
    resume_from: Option<String>,
}

fn parse_run_opts(args: &[String]) -> RunOpts {
    let mut o = RunOpts {
        circuit: String::new(),
        engine: "flatdd".into(),
        threads: 4,
        dd_threads: None,
        flat_shards: None,
        shots: 0,
        top: 8,
        seed: 42,
        expect: Vec::new(),
        stats: false,
        stats_json: None,
        trace_out: None,
        metrics_out: None,
        events_out: None,
        memory_budget_mb: None,
        rss_budget_mb: None,
        deadline_secs: None,
        approx_fidelity_floor: None,
        no_convert: false,
        checkpoint_path: None,
        checkpoint_every: None,
        resume_from: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--engine" => o.engine = val("--engine"),
            "--threads" => o.threads = val("--threads").parse().unwrap_or(4),
            "--dd-threads" => {
                o.dd_threads =
                    Some(parse_or_die::<usize>("--dd-threads", &val("--dd-threads")).max(1))
            }
            "--flat-shards" => {
                o.flat_shards =
                    Some(parse_or_die::<usize>("--flat-shards", &val("--flat-shards")).max(1))
            }
            "--shots" => o.shots = val("--shots").parse().unwrap_or(0),
            "--top" => o.top = val("--top").parse().unwrap_or(8),
            "--seed" => o.seed = val("--seed").parse().unwrap_or(42),
            "--expect" => o.expect.push(val("--expect")),
            "--stats" => o.stats = true,
            "--stats-json" => o.stats_json = Some(val("--stats-json")),
            "--trace-out" => o.trace_out = Some(val("--trace-out")),
            "--metrics-out" => o.metrics_out = Some(val("--metrics-out")),
            "--events-out" => o.events_out = Some(val("--events-out")),
            // A mistyped budget must not silently run unbudgeted.
            "--memory-budget-mb" => {
                o.memory_budget_mb = Some(parse_or_die(
                    "--memory-budget-mb",
                    &val("--memory-budget-mb"),
                ))
            }
            "--rss-budget-mb" => {
                o.rss_budget_mb = Some(parse_or_die("--rss-budget-mb", &val("--rss-budget-mb")))
            }
            "--deadline-secs" => {
                let s: f64 = parse_or_die("--deadline-secs", &val("--deadline-secs"));
                if !s.is_finite() || s < 0.0 {
                    eprintln!("--deadline-secs: must be a non-negative number, got {s}");
                    std::process::exit(2);
                }
                o.deadline_secs = Some(s);
            }
            // A mistyped floor must not silently run exact (and die) or,
            // worse, accept arbitrarily lossy truncation.
            "--approx-fidelity-floor" => {
                let f: f64 = parse_or_die(
                    "--approx-fidelity-floor",
                    &val("--approx-fidelity-floor"),
                );
                if !f.is_finite() || f <= 0.0 || f > 1.0 {
                    eprintln!("--approx-fidelity-floor: must be in (0, 1], got {f}");
                    std::process::exit(2);
                }
                o.approx_fidelity_floor = Some(f);
            }
            "--no-convert" => o.no_convert = true,
            "--checkpoint-path" => o.checkpoint_path = Some(val("--checkpoint-path")),
            // A mistyped interval must not silently disable checkpointing.
            "--checkpoint-every" => {
                let g: usize = parse_or_die("--checkpoint-every", &val("--checkpoint-every"));
                if g == 0 {
                    eprintln!("--checkpoint-every: must be at least 1 gate");
                    std::process::exit(2);
                }
                o.checkpoint_every = Some(g);
            }
            "--resume-from" => o.resume_from = Some(val("--resume-from")),
            other if o.circuit.is_empty() && !other.starts_with("--") => {
                o.circuit = other.to_string()
            }
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if o.circuit.is_empty() {
        eprintln!("run: missing <circuit>\n\n{USAGE}");
        std::process::exit(2);
    }
    o
}

/// CLI telemetry plumbing: installs the requested sinks up front and, on
/// [`Telemetry::finish`], renders the Chrome trace / metrics JSON and
/// flushes everything (also on error paths, where `std::process::exit`
/// would otherwise drop buffered output).
struct Telemetry {
    recorder: Option<flatdd::telemetry::Recorder>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

impl Telemetry {
    fn init(o: &RunOpts) -> Telemetry {
        // The flag wins over the FLATDD_TRACE environment default.
        let events_path = o
            .events_out
            .clone()
            .or_else(|| std::env::var("FLATDD_TRACE").ok().filter(|s| !s.is_empty()));
        if let Some(path) = events_path {
            match flatdd::telemetry::JsonlSink::create(&path) {
                Ok(sink) => {
                    flatdd::telemetry::add_sink(Box::new(sink));
                }
                Err(e) => {
                    eprintln!("--events-out: cannot create {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        let recorder = o.trace_out.as_ref().map(|_| {
            let rec = flatdd::telemetry::Recorder::new();
            flatdd::telemetry::add_sink(rec.sink());
            rec
        });
        Telemetry {
            recorder,
            trace_out: o.trace_out.clone(),
            metrics_out: o.metrics_out.clone(),
        }
    }

    fn finish(&self) {
        flatdd::telemetry::flush_sinks();
        if let (Some(rec), Some(path)) = (&self.recorder, &self.trace_out) {
            let json = flatdd::telemetry::chrome_trace_json(&rec.events());
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("--trace-out: cannot write {path}: {e}");
            }
        }
        if let Some(path) = &self.metrics_out {
            let json = flatdd::telemetry::metrics_json();
            write_payload("--metrics-out", path, &json);
        }
    }
}

/// Writes a machine-readable payload to `path`, with `-` meaning stdout.
fn write_payload(flag: &str, path: &str, json: &str) {
    if path == "-" {
        println!("{json}");
    } else if let Err(e) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("{flag}: cannot write {path}: {e}");
    }
}

fn cmd_run(args: &[String]) {
    let o = parse_run_opts(args);
    let tele = Telemetry::init(&o);
    let circuit = load_circuit(&o.circuit, o.seed);
    let n = circuit.num_qubits();
    eprintln!(
        "circuit {}: {} qubits, {} gates, depth {}",
        if circuit.name().is_empty() {
            &o.circuit
        } else {
            circuit.name()
        },
        n,
        circuit.num_gates(),
        circuit.depth()
    );
    if o.stats {
        let census: Vec<String> = circuit
            .gate_census()
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect();
        eprintln!("gate census: {}", census.join(" "));
    }

    if o.engine != "flatdd"
        && (o.checkpoint_path.is_some() || o.checkpoint_every.is_some() || o.resume_from.is_some())
    {
        eprintln!("--checkpoint-path/--checkpoint-every/--resume-from: only supported by the flatdd engine");
        tele.finish();
        std::process::exit(2);
    }

    let start = Instant::now();
    // For sampling/expectation we need a live simulator; for dd/array
    // engines fall back to the flat state.
    let mut rng = SplitMix64::new(o.seed ^ 0xBEEF);
    match o.engine.as_str() {
        "flatdd" => {
            // Flags override the FLATDD_* environment variables.
            let mut governor = GovernorConfig::from_env();
            if let Some(mb) = o.memory_budget_mb {
                governor.memory_budget_bytes = Some((mb as usize) << 20);
            }
            if let Some(mb) = o.rss_budget_mb {
                governor.rss_budget_bytes = Some((mb as usize) << 20);
            }
            if let Some(s) = o.deadline_secs {
                governor.deadline = Some(std::time::Duration::from_secs_f64(s));
            }
            if let Some(f) = o.approx_fidelity_floor {
                governor.approx_fidelity_floor = Some(f);
            }
            let mut cfg = FlatDdConfig {
                threads: o.threads,
                governor,
                ..Default::default()
            };
            if o.no_convert {
                cfg.conversion = flatdd::ConversionPolicy::Never;
            }
            // Flag beats FLATDD_DD_THREADS (already folded into the default).
            if let Some(t) = o.dd_threads {
                cfg.dd_threads = t;
            }
            // Likewise --flat-shards beats FLATDD_FLAT_SHARDS.
            if let Some(s) = o.flat_shards {
                cfg.flat_shards = s;
            }
            // Flag-based signal handling: SIGINT/SIGTERM set a flag polled
            // at gate boundaries, so sinks flush and checkpoints install
            // even when the run is cut short.
            flatdd::signal::install_handlers();
            let (mut sim, resumed_seed) = match &o.resume_from {
                Some(path) => {
                    match FlatDdSimulator::resume_from(std::path::Path::new(path), cfg, &circuit) {
                        Ok((sim, header)) => {
                            eprintln!(
                                "resumed from {path}: gate {}/{} in {:?} phase",
                                header.gate_cursor,
                                circuit.num_gates(),
                                header.phase
                            );
                            (sim, Some(header.rng_seed))
                        }
                        Err(e) => {
                            eprintln!("--resume-from {path}: {e}");
                            tele.finish();
                            std::process::exit(e.exit_code());
                        }
                    }
                }
                None => match FlatDdSimulator::try_new(n, cfg) {
                    Ok(sim) => (sim, None),
                    Err(e) => {
                        eprintln!("{e}");
                        // Flush sinks before the typed death so a partial
                        // JSONL event file is still complete and parseable.
                        tele.finish();
                        std::process::exit(e.exit_code());
                    }
                },
            };
            // A resumed run inherits the original sampling seed so the final
            // output distribution matches the uninterrupted run.
            if let Some(seed) = resumed_seed {
                rng = SplitMix64::new(seed ^ 0xBEEF);
            }
            // Checkpointing continues on resume: default the path to the
            // file being resumed when no --checkpoint-path is given.
            let ckpt_path = o.checkpoint_path.clone().or_else(|| {
                (o.checkpoint_every.is_some() || o.resume_from.is_some()).then(|| {
                    o.resume_from
                        .clone()
                        .unwrap_or_else(|| "flatdd.ckpt".into())
                })
            });
            if let Some(path) = ckpt_path {
                // Startup hygiene: a crashed predecessor may have left a
                // torn `*.tmp` beside the checkpoint file; sweep before
                // writing new ones.
                let dir = std::path::Path::new(&path)
                    .parent()
                    .filter(|d| !d.as_os_str().is_empty())
                    .unwrap_or_else(|| std::path::Path::new("."));
                flatdd::sweep_stale_tmp(dir);
                let mut policy = flatdd::CheckpointPolicy::at(path);
                if let Some(g) = o.checkpoint_every {
                    policy = policy.every(g);
                }
                policy.rng_seed = resumed_seed.unwrap_or(o.seed);
                sim.set_checkpoint_policy(Some(policy));
            }
            let result = match o.resume_from {
                Some(_) => sim.run_from(&circuit),
                None => sim.run(&circuit),
            };
            if let Err(e) = result {
                eprintln!("{e}");
                if let Some(p) = e.partial_outcome() {
                    eprintln!(
                        "stopped after {}/{} gates in {:?} phase",
                        p.gates_applied, p.total_gates, p.phase
                    );
                    if o.stats {
                        eprintln!("{:#?}", p.stats);
                    }
                    if let Some(path) = &o.stats_json {
                        write_payload("--stats-json", path, &p.stats.to_json());
                    }
                }
                if e.is_resumable() {
                    if let Some(path) = sim.last_checkpoint() {
                        eprintln!("resumable: rerun with --resume-from {}", path.display());
                    }
                }
                sim.publish_metrics();
                tele.finish();
                std::process::exit(e.exit_code());
            }
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "flatdd: {secs:.3}s, phase {:?}, converted at {:?}",
                sim.phase(),
                sim.stats().converted_at
            );
            if sim.is_approximate() {
                eprintln!(
                    "APPROXIMATE result: {} truncation(s) under memory pressure, \
                     cumulative fidelity {:.12}",
                    sim.stats().approx_truncations,
                    sim.fidelity()
                );
            }
            if o.stats {
                eprintln!("{:#?}", sim.stats());
            }
            if let Some(path) = &o.stats_json {
                write_payload("--stats-json", path, &sim.stats().to_json());
            }
            sim.publish_metrics();
            for label in &o.expect {
                match PauliString::parse(label) {
                    Some(p) => println!("<{label}> = {:.6}", sim.expectation_pauli(&p)),
                    None => eprintln!("bad Pauli label `{label}`"),
                }
            }
            if o.shots > 0 {
                print_counts(
                    &sim.sample_counts(o.shots, &mut rng.as_fn()),
                    o.shots,
                    n,
                    o.top,
                );
            } else if sim.phase() == Phase::Dmav || n <= 22 {
                print_heavy(&sim.amplitudes(), n, o.top);
            }
        }
        "dd" => {
            let mut sim = qdd::DdSimulator::new(n);
            sim.run(&circuit);
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "dd engine: {secs:.3}s, state DD = {} nodes",
                sim.state_dd_size()
            );
            if o.stats {
                eprintln!("{:#?}", sim.stats());
                eprintln!("{:#?}", sim.package().stats());
            }
            if o.stats_json.is_some() {
                eprintln!("--stats-json: only supported by the flatdd engine");
            }
            sim.package().publish_metrics();
            for label in &o.expect {
                match PauliString::parse(label) {
                    Some(p) => {
                        let state = sim.state();
                        let e = sim.package_mut().expectation_pauli(state, &p, n);
                        println!("<{label}> = {e:.6}");
                    }
                    None => eprintln!("bad Pauli label `{label}`"),
                }
            }
            if o.shots > 0 {
                print_counts(
                    &sim.package()
                        .sample_counts(sim.state(), o.shots, &mut rng.as_fn()),
                    o.shots,
                    n,
                    o.top,
                );
            } else if n <= 22 {
                print_heavy(&sim.amplitudes(), n, o.top);
            }
        }
        "array" => {
            let mut sim = qarray::ArraySimulator::with_threads(n, o.threads);
            sim.run(&circuit);
            let secs = start.elapsed().as_secs_f64();
            eprintln!("array engine: {secs:.3}s");
            if o.stats_json.is_some() {
                eprintln!("--stats-json: only supported by the flatdd engine");
            }
            for label in &o.expect {
                match PauliString::parse(label) {
                    Some(p) => {
                        println!(
                            "<{label}> = {:.6}",
                            qarray::expectation_pauli(sim.state(), &p)
                        )
                    }
                    None => eprintln!("bad Pauli label `{label}`"),
                }
            }
            if o.shots > 0 {
                print_counts(
                    &qarray::sample_counts(sim.state(), o.shots, &mut rng.as_fn()),
                    o.shots,
                    n,
                    o.top,
                );
            } else {
                print_heavy(sim.state(), n, o.top);
            }
        }
        other => {
            eprintln!("unknown engine `{other}` (flatdd | dd | array)");
            tele.finish();
            std::process::exit(2);
        }
    }
    tele.finish();
}

fn print_heavy(state: &[qcircuit::Complex64], n: usize, top: usize) {
    let mut idx: Vec<usize> = (0..state.len()).collect();
    idx.sort_by(|&a, &b| state[b].norm_sqr().total_cmp(&state[a].norm_sqr()));
    println!("most probable outcomes:");
    for &i in idx.iter().take(top) {
        let p = state[i].norm_sqr();
        if p < 1e-12 {
            break;
        }
        println!("  |{i:0n$b}>  p = {p:.6}");
    }
}

fn print_counts(counts: &[(usize, usize)], shots: usize, n: usize, top: usize) {
    println!("sampled {shots} shots:");
    for &(i, c) in counts.iter().take(top) {
        println!(
            "  |{i:0n$b}>  {c}  ({:.2}%)",
            100.0 * c as f64 / shots as f64
        );
    }
}

fn cmd_gen(args: &[String]) {
    let mut spec = String::new();
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            other if spec.is_empty() && !other.starts_with("--") => spec = other.to_string(),
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    if spec.is_empty() {
        eprintln!("gen: missing <circuit spec>");
        std::process::exit(2);
    }
    let c = load_circuit(&spec, seed);
    print!("{}", qasm::to_qasm(&c));
}

fn cmd_list() {
    println!("generator families (spec syntax `family:qubits[,param]`):");
    for (spec, desc) in [
        ("ghz:N", "GHZ state (regular)"),
        ("adder:N", "Cuccaro ripple-carry adder (regular; N even)"),
        ("qft:N", "quantum Fourier transform"),
        ("dnn:N,layers", "QNN feature-map circuit (irregular)"),
        ("vqe:N,depth", "hardware-efficient VQE ansatz (irregular)"),
        ("knn:N", "KNN swap-test kernel (N odd)"),
        ("swaptest:N", "swap test (N odd)"),
        (
            "supremacy:N,cycles",
            "Google-style random circuit (irregular)",
        ),
        ("grover:N[,marked]", "Grover search"),
        ("wstate:N", "W state"),
        ("qaoa:N,rounds", "QAOA MaxCut"),
        ("bv:N", "Bernstein-Vazirani"),
        ("dj:N", "Deutsch-Jozsa"),
        ("hs:N", "hidden shift (N even)"),
        ("qpe:N", "quantum phase estimation"),
        ("random:N,gates", "uniformly random circuit"),
    ] {
        println!("  {spec:<22} {desc}");
    }
}
