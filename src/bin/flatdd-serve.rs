//! `flatdd-serve` — a long-running simulation daemon.
//!
//! ```text
//! flatdd-serve --spool DIR [options]
//!
//!   --spool <dir>              job records + checkpoints + port file (required)
//!   --port <p>                 TCP port (default 0 = OS-assigned; the bound
//!                              port is written to <spool>/serve.port)
//!   --workers <n>              concurrently running jobs (default 2)
//!   --memory-budget-mb <mb>    server-wide admission budget (default 2048)
//!   --queue-cap <n>            bounded queue size, 429 beyond it (default 16)
//!   --retry-max <n>            transient-failure retries per job (default 3)
//!   --checkpoint-every <g>     default periodic checkpoint interval (gates)
//!   --dd-threads <t>           default DD-phase worker threads per job
//!                              (default 1 = sequential)
//!   --flat-shards <s>          default flat-phase state shards per job
//!                              (default auto = one shard per thread)
//! ```
//!
//! Submit with `POST /jobs`, poll `GET /jobs/{id}`, follow a running job
//! live with `GET /jobs/{id}/events` (chunked NDJSON, `?since=` resumes),
//! and observe `GET /metrics` (JSON, or Prometheus exposition via
//! `?format=prometheus`) and `GET /healthz`. SIGTERM/SIGINT drains:
//! admission stops, running jobs
//! are checkpointed and parked, state is persisted, and the process exits 0.
//! A daemon killed outright (SIGKILL, power loss) recovers on restart from
//! the same spool: queued, preempted, and mid-flight jobs are re-admitted,
//! resuming from their checkpoints.

use flatdd::serve::{self, http, Scheduler, ServeConfig};
use flatdd::signal;
use std::net::TcpListener;
use std::time::Duration;

const USAGE: &str = "\
flatdd-serve — long-running FlatDD simulation daemon

Usage:
  flatdd-serve --spool DIR [--port p] [--workers n] [--memory-budget-mb mb]
               [--queue-cap n] [--retry-max n] [--checkpoint-every gates]
               [--dd-threads t] [--flat-shards s]";

/// `GET /jobs/{id}/events` → `Some(id)`; anything else `None`.
fn event_stream_target(req: &http::Request) -> Option<u64> {
    if req.method != "GET" {
        return None;
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["jobs", id, "events"] => id.parse().ok(),
        _ => None,
    }
}

fn parse_or_die<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spool: Option<String> = None;
    let mut port: u16 = 0;
    let mut workers = 2usize;
    let mut memory_budget_mb = 2048u64;
    let mut queue_cap = 16usize;
    let mut retry_max = 3u32;
    let mut checkpoint_every: Option<usize> = None;
    let mut dd_threads: Option<usize> = None;
    let mut flat_shards: Option<usize> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--spool" => spool = Some(val("--spool")),
            "--port" => port = parse_or_die("--port", &val("--port")),
            "--workers" => workers = parse_or_die("--workers", &val("--workers")),
            "--memory-budget-mb" => {
                memory_budget_mb = parse_or_die("--memory-budget-mb", &val("--memory-budget-mb"))
            }
            "--queue-cap" => queue_cap = parse_or_die("--queue-cap", &val("--queue-cap")),
            "--retry-max" => retry_max = parse_or_die("--retry-max", &val("--retry-max")),
            "--checkpoint-every" => {
                let g: usize = parse_or_die("--checkpoint-every", &val("--checkpoint-every"));
                if g == 0 {
                    eprintln!("--checkpoint-every: must be at least 1 gate");
                    std::process::exit(2);
                }
                checkpoint_every = Some(g);
            }
            "--dd-threads" => {
                let t: usize = parse_or_die("--dd-threads", &val("--dd-threads"));
                dd_threads = Some(t.max(1));
            }
            "--flat-shards" => {
                let s: usize = parse_or_die("--flat-shards", &val("--flat-shards"));
                flat_shards = Some(s.max(1));
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(spool) = spool else {
        eprintln!("--spool is required\n\n{USAGE}");
        std::process::exit(2);
    };

    let mut cfg = ServeConfig::at(&spool);
    cfg.workers = workers.max(1);
    cfg.memory_budget_bytes = memory_budget_mb << 20;
    cfg.queue_cap = queue_cap.max(1);
    cfg.retry_max = retry_max;
    cfg.default_checkpoint_every = checkpoint_every;
    cfg.default_dd_threads = dd_threads;
    cfg.default_flat_shards = flat_shards;

    // Flag-based handlers: SIGTERM/SIGINT set a flag the accept loop polls,
    // so the drain runs on the main thread with everything still alive.
    signal::install_handlers();

    let scheduler = match Scheduler::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("flatdd-serve: cannot start scheduler: {e}");
            std::process::exit(e.exit_code());
        }
    };
    let handle = scheduler.handle();

    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("flatdd-serve: cannot bind 127.0.0.1:{port}: {e}");
            std::process::exit(7);
        }
    };
    let bound = listener
        .local_addr()
        .expect("bound listener has an address");
    // The accept loop must keep polling the signal flag, so the listener
    // cannot block indefinitely.
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on listener");
    let port_file = std::path::Path::new(&spool).join(serve::PORT_FILE);
    if let Err(e) = std::fs::write(&port_file, format!("{}\n", bound.port())) {
        eprintln!("flatdd-serve: cannot write {}: {e}", port_file.display());
        std::process::exit(7);
    }
    eprintln!("[flatdd-serve] listening on {bound}, spool {spool}");

    let drain_signal = loop {
        if let Some(sig) = signal::take() {
            break sig;
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => match http::read_request(&mut stream) {
                Ok(req) => {
                    // Live event streams are long-lived chunked responses;
                    // hand each its own thread so the accept loop stays
                    // responsive. Everything else is answered inline.
                    if let Some(id) = event_stream_target(&req) {
                        let h = handle.clone();
                        let since = req
                            .query_param("since")
                            .and_then(|s| s.parse().ok())
                            .unwrap_or(0);
                        let known = h.job(id).is_some();
                        if !known {
                            http::respond_json(&mut stream, 404, "{\"error\":\"no such job\"}");
                        } else {
                            std::thread::spawn(move || {
                                serve::stream::stream_events(&mut stream, &h, id, since);
                            });
                        }
                    } else {
                        let (status, content_type, body) = serve::route(&handle, &req);
                        http::respond(&mut stream, status, content_type, &body);
                    }
                }
                Err(e) => {
                    http::respond_json(
                        &mut stream,
                        400,
                        &format!("{{\"error\":{:?}}}", e.to_string()),
                    );
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("[flatdd-serve] accept error: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };

    eprintln!(
        "[flatdd-serve] received {}, draining: admission closed, checkpointing running jobs",
        signal::signal_name(drain_signal)
    );
    drop(listener);
    scheduler.drain();
    let _ = std::fs::remove_file(&port_file);
    eprintln!("[flatdd-serve] drain complete, exiting");
}
