//! Workspace root crate: hosts the runnable examples (`examples/`) and the
//! cross-crate integration and property test suites (`tests/`). The library
//! surface simply re-exports the member crates for convenience.

pub use flatdd;
pub use qarray;
pub use qcircuit;
pub use qdd;
