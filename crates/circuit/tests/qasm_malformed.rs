//! Table-driven fuzz-adjacent coverage of the OpenQASM parser: every
//! malformed input here must come back as a `QasmError` (with a sane line
//! number), never a panic, hang, or stack overflow. These shapes mirror
//! what real-world truncated downloads and adversarial files look like.

use qcircuit::qasm::{parse_qasm, parse_qasm_full};

/// (label, source) pairs that must all produce `Err(QasmError)`.
fn malformed_inputs() -> Vec<(&'static str, String)> {
    let deep_parens = format!(
        "OPENQASM 2.0;\nqreg q[1];\nrz({}1.0{}) q[0];\n",
        "(".repeat(20_000),
        ")".repeat(20_000)
    );
    let deep_unary = format!(
        "OPENQASM 2.0;\nqreg q[1];\nrz({}1.0) q[0];\n",
        "-".repeat(50_000)
    );
    let deep_pow = format!(
        "OPENQASM 2.0;\nqreg q[1];\nrz(2{}) q[0];\n",
        " ^ 2".repeat(20_000)
    );
    let deep_calls = format!(
        "OPENQASM 2.0;\nqreg q[1];\nrz({}0.5{}) q[0];\n",
        "sin(".repeat(20_000),
        ")".repeat(20_000)
    );
    vec![
        ("truncated header", "OPENQASM".into()),
        ("header missing version", "OPENQASM ;\nqreg q[1];".into()),
        (
            "truncated mid-statement",
            "OPENQASM 2.0;\nqreg q[2];\nh q[".into(),
        ),
        (
            "truncated mid-gate-def",
            "OPENQASM 2.0;\nqreg q[1];\ngate foo a { h a".into(),
        ),
        (
            "unterminated include string",
            "OPENQASM 2.0;\ninclude \"qelib1.inc;\nqreg q[1];".into(),
        ),
        (
            "unterminated string at EOF",
            "OPENQASM 2.0;\ninclude \"qelib1.inc".into(),
        ),
        (
            "index out of register range",
            "OPENQASM 2.0;\nqreg q[3];\nh q[3];".into(),
        ),
        (
            "index far out of range",
            "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[4095];".into(),
        ),
        (
            "unknown register",
            "OPENQASM 2.0;\nqreg q[2];\nh r[0];".into(),
        ),
        (
            "unknown gate",
            "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];".into(),
        ),
        (
            "missing semicolon",
            "OPENQASM 2.0;\nqreg q[2]\nh q[0];".into(),
        ),
        (
            "negative register size",
            "OPENQASM 2.0;\nqreg q[-2];\nh q[0];".into(),
        ),
        (
            "garbage bytes",
            "\u{0}\u{1}\u{2} not qasm at all %%%".into(),
        ),
        (
            "expression where operand expected",
            "OPENQASM 2.0;\nqreg q[1];\nh 1.5;".into(),
        ),
        (
            "dangling binary operator",
            "OPENQASM 2.0;\nqreg q[1];\nrz(1.0 + ) q[0];".into(),
        ),
        (
            "recursive gate definition",
            "OPENQASM 2.0;\nqreg q[1];\ngate loop a { loop a; }\nloop q[0];".into(),
        ),
        ("deeply nested parens", deep_parens),
        ("deep unary chain", deep_unary),
        ("deep pow chain", deep_pow),
        ("deep function-call nest", deep_calls),
    ]
}

#[test]
fn malformed_sources_error_without_panicking() {
    for (label, src) in malformed_inputs() {
        let res = parse_qasm(&src);
        let err = match res {
            Err(e) => e,
            Ok(c) => panic!(
                "{label}: expected QasmError, parsed {} gates",
                c.num_gates()
            ),
        };
        assert!(
            !err.message.is_empty(),
            "{label}: error must carry a message"
        );
        assert!(err.line >= 1, "{label}: line numbers are 1-based");
    }
}

#[test]
fn malformed_sources_error_via_full_parse_too() {
    // `parse_qasm_full` shares the code path but returns measurement info;
    // make sure the error surface is identical.
    for (label, src) in malformed_inputs() {
        assert!(parse_qasm_full(&src).is_err(), "{label}: expected error");
    }
}

#[test]
fn boundary_depth_still_parses() {
    // A reasonable nesting depth (well under the guard) must keep working.
    let src = format!(
        "OPENQASM 2.0;\nqreg q[1];\nrz({}0.25{}) q[0];\n",
        "(".repeat(100),
        ")".repeat(100)
    );
    let c = parse_qasm(&src).expect("100 nested parens is legitimate input");
    assert_eq!(c.num_gates(), 1);
}
