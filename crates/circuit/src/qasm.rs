//! OpenQASM 2.0 parser.
//!
//! Parses the subset of OpenQASM 2.0 used by QASMBench and MQT Bench into a
//! [`Circuit`]: register declarations, the built-in `U`/`CX` operations, the
//! `qelib1.inc` standard gates, user `gate` definitions (expanded inline),
//! register broadcasting, and constant parameter expressions. `measure`,
//! `barrier`, and `reset` are accepted and ignored (the simulators in this
//! workspace are strong/full-state simulators); `if` statements are rejected.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use std::collections::HashMap;
use std::fmt;

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QASM error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for QasmError {}

type Result<T> = std::result::Result<T, QasmError>;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Sym(char),
    Arrow, // ->
    Eq,    // ==
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(QasmError {
                        message: "unterminated string".into(),
                        line,
                    });
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(bytes[start..j].iter().collect()),
                    line,
                });
                i = j + 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                toks.push(SpannedTok {
                    tok: Tok::Arrow,
                    line,
                });
                i += 2;
            }
            '=' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                toks.push(SpannedTok { tok: Tok::Eq, line });
                i += 2;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && (bytes[i - 1] == 'e' || bytes[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let v: f64 = text.parse().map_err(|_| QasmError {
                    message: format!("bad number `{text}`"),
                    line,
                })?;
                toks.push(SpannedTok {
                    tok: Tok::Number(v),
                    line,
                });
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '+' | '-' | '*' | '/' | '^' => {
                toks.push(SpannedTok {
                    tok: Tok::Sym(c),
                    line,
                });
                i += 1;
            }
            other => {
                return Err(QasmError {
                    message: format!("unexpected character `{other}`"),
                    line,
                })
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// A constant arithmetic expression over gate parameters.
#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(f64),
    Pi,
    Param(String),
    Neg(Box<Expr>),
    Bin(char, Box<Expr>, Box<Expr>),
    Fun(String, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &HashMap<String, f64>, line: usize) -> Result<f64> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Pi => std::f64::consts::PI,
            Expr::Param(name) => *env.get(name).ok_or_else(|| QasmError {
                message: format!("unknown parameter `{name}`"),
                line,
            })?,
            Expr::Neg(e) => -e.eval(env, line)?,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(env, line)?, b.eval(env, line)?);
                match op {
                    '+' => a + b,
                    '-' => a - b,
                    '*' => a * b,
                    '/' => a / b,
                    '^' => a.powf(b),
                    _ => unreachable!(),
                }
            }
            Expr::Fun(name, e) => {
                let v = e.eval(env, line)?;
                match name.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    other => {
                        return Err(QasmError {
                            message: format!("unknown function `{other}`"),
                            line,
                        })
                    }
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A user-defined gate macro.
#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<GateCall>,
}

/// One statement inside a gate body or the main program.
#[derive(Debug, Clone)]
struct GateCall {
    name: String,
    params: Vec<Expr>,
    /// Operands: symbolic (inside gate bodies) or concrete register refs.
    args: Vec<Operand>,
    line: usize,
}

#[derive(Debug, Clone)]
enum Operand {
    /// `name` (whole register, or a gate-body formal argument).
    Name(String),
    /// `name[idx]`.
    Indexed(String, usize),
}

/// Maximum recursion frames while parsing one parameter expression. The
/// expression grammar is recursive-descent; without a cap, a file like
/// `(((((...1...)))))` recurses per paren and overflows the stack instead
/// of returning a `QasmError`. Each nesting level costs ~3 frames
/// (expr -> pow -> unary), so 1024 frames ≈ 340 parens — far beyond any
/// angle expression seen in practice, far below stack exhaustion.
const MAX_EXPR_DEPTH: usize = 1024;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    expr_depth: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|t| t.line)
            .unwrap_or_else(|| self.toks.last().map(|t| t.line).unwrap_or(1))
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(QasmError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => {
                self.pos -= 1;
                self.err(format!("expected `{c}`, found {other:?}"))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Bumps the expression-recursion depth, erroring out (rather than
    /// overflowing the stack) on pathologically nested input. Every
    /// recursive production pairs this with a `leave_expr`.
    fn enter_expr(&mut self) -> Result<()> {
        if self.expr_depth >= MAX_EXPR_DEPTH {
            return self.err("parameter expression nested too deeply");
        }
        self.expr_depth += 1;
        Ok(())
    }

    fn leave_expr(&mut self) {
        self.expr_depth -= 1;
    }

    // expr := term (('+'|'-') term)*
    fn parse_expr(&mut self) -> Result<Expr> {
        self.enter_expr()?;
        let r = self.parse_expr_inner();
        self.leave_expr();
        r
    }

    fn parse_expr_inner(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_term()?;
        loop {
            if self.eat_sym('+') {
                lhs = Expr::Bin('+', Box::new(lhs), Box::new(self.parse_term()?));
            } else if self.eat_sym('-') {
                lhs = Expr::Bin('-', Box::new(lhs), Box::new(self.parse_term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    // term := factor (('*'|'/') factor)*
    fn parse_term(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_pow()?;
        loop {
            if self.eat_sym('*') {
                lhs = Expr::Bin('*', Box::new(lhs), Box::new(self.parse_pow()?));
            } else if self.eat_sym('/') {
                lhs = Expr::Bin('/', Box::new(lhs), Box::new(self.parse_pow()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    // pow := unary ('^' pow)?   (right associative)
    fn parse_pow(&mut self) -> Result<Expr> {
        self.enter_expr()?;
        let r = self.parse_pow_inner();
        self.leave_expr();
        r
    }

    fn parse_pow_inner(&mut self) -> Result<Expr> {
        let base = self.parse_unary()?;
        if self.eat_sym('^') {
            Ok(Expr::Bin('^', Box::new(base), Box::new(self.parse_pow()?)))
        } else {
            Ok(base)
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        self.enter_expr()?;
        let r = self.parse_unary_inner();
        self.leave_expr();
        r
    }

    fn parse_unary_inner(&mut self) -> Result<Expr> {
        if self.eat_sym('-') {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_sym('+') {
            return self.parse_unary();
        }
        match self.next() {
            Some(Tok::Number(v)) => Ok(Expr::Num(v)),
            Some(Tok::Ident(name)) => {
                if name == "pi" {
                    Ok(Expr::Pi)
                } else if self.eat_sym('(') {
                    let inner = self.parse_expr()?;
                    self.expect_sym(')')?;
                    Ok(Expr::Fun(name, Box::new(inner)))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            Some(Tok::Sym('(')) => {
                let inner = self.parse_expr()?;
                self.expect_sym(')')?;
                Ok(inner)
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }

    fn parse_operand(&mut self) -> Result<Operand> {
        let name = self.expect_ident()?;
        if self.eat_sym('[') {
            let idx = match self.next() {
                Some(Tok::Number(v)) if v >= 0.0 && v.fract() == 0.0 => v as usize,
                other => {
                    self.pos -= 1;
                    return self.err(format!("expected index, found {other:?}"));
                }
            };
            self.expect_sym(']')?;
            Ok(Operand::Indexed(name, idx))
        } else {
            Ok(Operand::Name(name))
        }
    }

    /// Parses `name(params?) arg (, arg)* ;`.
    fn parse_gate_call(&mut self, name: String) -> Result<GateCall> {
        let line = self.line();
        let mut params = Vec::new();
        if self.eat_sym('(') && !self.eat_sym(')') {
            loop {
                params.push(self.parse_expr()?);
                if self.eat_sym(')') {
                    break;
                }
                self.expect_sym(',')?;
            }
        }
        let mut args = vec![self.parse_operand()?];
        while self.eat_sym(',') {
            args.push(self.parse_operand()?);
        }
        self.expect_sym(';')?;
        Ok(GateCall {
            name,
            params,
            args,
            line,
        })
    }
}

// ---------------------------------------------------------------------------
// Builder: expand calls into primitive gates
// ---------------------------------------------------------------------------

struct Builder {
    circuit: Circuit,
    /// register name -> (offset, size)
    qregs: HashMap<String, (usize, usize)>,
    qreg_order: Vec<String>,
    gate_defs: HashMap<String, GateDef>,
    /// Count of (ignored) measurement statements, for diagnostics.
    measurements: usize,
}

impl Builder {
    /// Resolves a main-program operand to concrete qubit indices.
    fn resolve(&self, op: &Operand, line: usize) -> Result<Vec<usize>> {
        match op {
            Operand::Name(name) => {
                let &(off, size) = self.qregs.get(name).ok_or_else(|| QasmError {
                    message: format!("unknown quantum register `{name}`"),
                    line,
                })?;
                Ok((off..off + size).collect())
            }
            Operand::Indexed(name, idx) => {
                let &(off, size) = self.qregs.get(name).ok_or_else(|| QasmError {
                    message: format!("unknown quantum register `{name}`"),
                    line,
                })?;
                if *idx >= size {
                    return Err(QasmError {
                        message: format!("index {idx} out of range for `{name}[{size}]`"),
                        line,
                    });
                }
                Ok(vec![off + idx])
            }
        }
    }

    /// Emits a standard-library gate on concrete qubits.
    fn emit_builtin(
        &mut self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        line: usize,
    ) -> Result<bool> {
        let c = &mut self.circuit;
        let p = |k: usize| params.get(k).copied().unwrap_or(0.0);
        let need = |n_params: usize, n_qubits: usize| -> Result<()> {
            if params.len() != n_params || qubits.len() != n_qubits {
                Err(QasmError {
                    message: format!(
                        "`{name}` expects {n_params} params / {n_qubits} qubits, got {} / {}",
                        params.len(),
                        qubits.len()
                    ),
                    line,
                })
            } else {
                Ok(())
            }
        };
        match name {
            "U" | "u3" | "u" => {
                need(3, 1)?;
                c.u3(p(0), p(1), p(2), qubits[0]);
            }
            "u2" => {
                need(2, 1)?;
                c.u3(std::f64::consts::FRAC_PI_2, p(0), p(1), qubits[0]);
            }
            "u1" | "p" | "phase" => {
                need(1, 1)?;
                c.p(p(0), qubits[0]);
            }
            "u0" => {
                need(1, 1)?; // explicit idle: no-op
            }
            "CX" | "cx" | "cnot" => {
                need(0, 2)?;
                c.cx(qubits[0], qubits[1]);
            }
            "id" => {
                need(0, 1)?;
                c.push(Gate::new(GateKind::Id, qubits[0]));
            }
            "x" => {
                need(0, 1)?;
                c.x(qubits[0]);
            }
            "y" => {
                need(0, 1)?;
                c.y(qubits[0]);
            }
            "z" => {
                need(0, 1)?;
                c.z(qubits[0]);
            }
            "h" => {
                need(0, 1)?;
                c.h(qubits[0]);
            }
            "s" => {
                need(0, 1)?;
                c.s(qubits[0]);
            }
            "sdg" => {
                need(0, 1)?;
                c.sdg(qubits[0]);
            }
            "t" => {
                need(0, 1)?;
                c.t(qubits[0]);
            }
            "tdg" => {
                need(0, 1)?;
                c.tdg(qubits[0]);
            }
            "sx" => {
                need(0, 1)?;
                c.sx(qubits[0]);
            }
            "sxdg" => {
                need(0, 1)?;
                c.push(Gate::new(GateKind::SqrtXdg, qubits[0]));
            }
            "rx" => {
                need(1, 1)?;
                c.rx(p(0), qubits[0]);
            }
            "ry" => {
                need(1, 1)?;
                c.ry(p(0), qubits[0]);
            }
            "rz" => {
                need(1, 1)?;
                c.rz(p(0), qubits[0]);
            }
            "cy" => {
                need(0, 2)?;
                c.cy(qubits[0], qubits[1]);
            }
            "cz" => {
                need(0, 2)?;
                c.cz(qubits[0], qubits[1]);
            }
            "ch" => {
                need(0, 2)?;
                c.ch(qubits[0], qubits[1]);
            }
            "crx" => {
                need(1, 2)?;
                c.crx(p(0), qubits[0], qubits[1]);
            }
            "cry" => {
                need(1, 2)?;
                c.cry(p(0), qubits[0], qubits[1]);
            }
            "crz" => {
                need(1, 2)?;
                c.crz(p(0), qubits[0], qubits[1]);
            }
            "cu1" | "cp" => {
                need(1, 2)?;
                c.cp(p(0), qubits[0], qubits[1]);
            }
            "cu3" => {
                need(3, 2)?;
                c.cu3(p(0), p(1), p(2), qubits[0], qubits[1]);
            }
            "ccx" | "toffoli" => {
                need(0, 3)?;
                c.ccx(qubits[0], qubits[1], qubits[2]);
            }
            "ccz" => {
                need(0, 3)?;
                c.ccz(qubits[0], qubits[1], qubits[2]);
            }
            "swap" => {
                need(0, 2)?;
                c.swap(qubits[0], qubits[1]);
            }
            "cswap" | "fredkin" => {
                need(0, 3)?;
                c.cswap(qubits[0], qubits[1], qubits[2]);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Expands a gate call with concrete qubits (recursing through user
    /// definitions).
    fn expand(
        &mut self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        line: usize,
        depth: usize,
    ) -> Result<()> {
        if depth > 64 {
            return Err(QasmError {
                message: "gate expansion too deep (cycle?)".into(),
                line,
            });
        }
        // User definitions shadow the standard library, matching the spec:
        // a file that defines `gate h ...` means that definition.
        if let Some(def) = self.gate_defs.get(name).cloned() {
            if def.params.len() != params.len() || def.qargs.len() != qubits.len() {
                return Err(QasmError {
                    message: format!("arity mismatch calling gate `{name}`"),
                    line,
                });
            }
            let env: HashMap<String, f64> = def
                .params
                .iter()
                .cloned()
                .zip(params.iter().copied())
                .collect();
            let qmap: HashMap<String, usize> = def
                .qargs
                .iter()
                .cloned()
                .zip(qubits.iter().copied())
                .collect();
            for call in &def.body {
                let sub_params: Vec<f64> = call
                    .params
                    .iter()
                    .map(|e| e.eval(&env, call.line))
                    .collect::<Result<_>>()?;
                let sub_qubits: Vec<usize> = call
                    .args
                    .iter()
                    .map(|a| match a {
                        Operand::Name(nm) => qmap.get(nm).copied().ok_or_else(|| QasmError {
                            message: format!("unknown qubit argument `{nm}` in gate `{name}`"),
                            line: call.line,
                        }),
                        Operand::Indexed(..) => Err(QasmError {
                            message: "indexed operands are not allowed inside gate bodies".into(),
                            line: call.line,
                        }),
                    })
                    .collect::<Result<_>>()?;
                self.expand(&call.name, &sub_params, &sub_qubits, call.line, depth + 1)?;
            }
            return Ok(());
        }
        if self.emit_builtin(name, params, qubits, line)? {
            return Ok(());
        }
        Err(QasmError {
            message: format!("unknown gate `{name}`"),
            line,
        })
    }
}

/// Parses OpenQASM 2.0 source into a [`Circuit`].
///
/// Returns the circuit and the number of (ignored) `measure` statements.
pub fn parse_qasm(src: &str) -> std::result::Result<Circuit, QasmError> {
    parse_qasm_full(src).map(|(c, _)| c)
}

/// Like [`parse_qasm`] but also reports the ignored measurement count.
pub fn parse_qasm_full(src: &str) -> std::result::Result<(Circuit, usize), QasmError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        expr_depth: 0,
    };
    // First pass: collect register declarations and gate defs while building.
    let mut calls: Vec<GateCall> = Vec::new();
    let mut b = Builder {
        circuit: Circuit::new(0),
        qregs: HashMap::new(),
        qreg_order: Vec::new(),
        gate_defs: HashMap::new(),
        measurements: 0,
    };
    let mut total_qubits = 0usize;

    while let Some(tok) = p.peek().cloned() {
        match tok {
            Tok::Ident(kw) if kw == "OPENQASM" => {
                p.next();
                match p.next() {
                    Some(Tok::Number(_)) => {}
                    _ => {
                        return Err(QasmError {
                            message: "bad OPENQASM header".into(),
                            line: p.line(),
                        })
                    }
                }
                p.expect_sym(';')?;
            }
            Tok::Ident(kw) if kw == "include" => {
                p.next();
                match p.next() {
                    Some(Tok::Str(_)) => {}
                    _ => {
                        return Err(QasmError {
                            message: "include expects a string".into(),
                            line: p.line(),
                        })
                    }
                }
                p.expect_sym(';')?;
            }
            Tok::Ident(kw) if kw == "qreg" || kw == "creg" => {
                p.next();
                let name = p.expect_ident()?;
                p.expect_sym('[')?;
                let size = match p.next() {
                    Some(Tok::Number(v)) if v >= 1.0 && v.fract() == 0.0 => v as usize,
                    _ => {
                        return Err(QasmError {
                            message: "register size must be a positive integer".into(),
                            line: p.line(),
                        })
                    }
                };
                p.expect_sym(']')?;
                p.expect_sym(';')?;
                if kw == "qreg" {
                    if b.qregs.contains_key(&name) {
                        return Err(QasmError {
                            message: format!("duplicate register `{name}`"),
                            line: p.line(),
                        });
                    }
                    b.qregs.insert(name.clone(), (total_qubits, size));
                    b.qreg_order.push(name);
                    total_qubits += size;
                }
                // cregs are parsed and dropped: measurement results are not
                // modelled by a strong simulator.
            }
            Tok::Ident(kw) if kw == "gate" => {
                p.next();
                let name = p.expect_ident()?;
                let mut params = Vec::new();
                if p.eat_sym('(') && !p.eat_sym(')') {
                    loop {
                        params.push(p.expect_ident()?);
                        if p.eat_sym(')') {
                            break;
                        }
                        p.expect_sym(',')?;
                    }
                }
                let mut qargs = vec![p.expect_ident()?];
                while p.eat_sym(',') {
                    qargs.push(p.expect_ident()?);
                }
                p.expect_sym('{')?;
                let mut body = Vec::new();
                loop {
                    match p.peek() {
                        Some(Tok::Sym('}')) => {
                            p.next();
                            break;
                        }
                        Some(Tok::Ident(id)) if id == "barrier" => {
                            // skip to `;`
                            while p.next().map(|t| t != Tok::Sym(';')).unwrap_or(false) {}
                        }
                        Some(Tok::Ident(_)) => {
                            let gname = p.expect_ident()?;
                            body.push(p.parse_gate_call(gname)?);
                        }
                        other => {
                            return Err(QasmError {
                                message: format!("unexpected token in gate body: {other:?}"),
                                line: p.line(),
                            })
                        }
                    }
                }
                b.gate_defs.insert(
                    name,
                    GateDef {
                        params,
                        qargs,
                        body,
                    },
                );
            }
            Tok::Ident(kw) if kw == "opaque" => {
                return Err(QasmError {
                    message: "opaque gates are not supported".into(),
                    line: p.line(),
                });
            }
            Tok::Ident(kw) if kw == "measure" => {
                p.next();
                let _q = p.parse_operand()?;
                match p.next() {
                    Some(Tok::Arrow) => {}
                    _ => {
                        return Err(QasmError {
                            message: "measure expects `->`".into(),
                            line: p.line(),
                        })
                    }
                }
                let _c = p.parse_operand()?;
                p.expect_sym(';')?;
                b.measurements += 1;
            }
            Tok::Ident(kw) if kw == "barrier" || kw == "reset" => {
                p.next();
                // consume operands up to `;`
                while p.peek().is_some() && !p.eat_sym(';') {
                    p.next();
                }
            }
            Tok::Ident(kw) if kw == "if" => {
                return Err(QasmError {
                    message: "classically controlled operations (`if`) are not supported".into(),
                    line: p.line(),
                });
            }
            Tok::Ident(_) => {
                let name = p.expect_ident()?;
                calls.push(p.parse_gate_call(name)?);
            }
            other => {
                return Err(QasmError {
                    message: format!("unexpected token {other:?}"),
                    line: p.line(),
                })
            }
        }
    }

    b.circuit = Circuit::new(total_qubits);
    let empty_env = HashMap::new();
    for call in calls {
        let params: Vec<f64> = call
            .params
            .iter()
            .map(|e| e.eval(&empty_env, call.line))
            .collect::<Result<_>>()?;
        // Resolve operands; broadcast whole registers.
        let resolved: Vec<Vec<usize>> = call
            .args
            .iter()
            .map(|a| b.resolve(a, call.line))
            .collect::<Result<_>>()?;
        let broadcast = resolved.iter().map(|v| v.len()).max().unwrap_or(1);
        for rep in 0..broadcast {
            let qubits: Vec<usize> = resolved
                .iter()
                .map(|v| if v.len() == 1 { v[0] } else { v[rep] })
                .collect();
            // Validate broadcast shapes.
            for v in &resolved {
                if v.len() != 1 && v.len() != broadcast {
                    return Err(QasmError {
                        message: "mismatched register sizes in broadcast".into(),
                        line: call.line,
                    });
                }
            }
            b.expand(&call.name, &params, &qubits, call.line, 0)?;
        }
    }

    Ok((b.circuit, b.measurements))
}

/// Serializes a circuit back to OpenQASM 2.0 (controls beyond Toffoli are
/// emitted as comments since qelib1 has no generic multi-control syntax).
pub fn to_qasm(c: &Circuit) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "OPENQASM 2.0;");
    let _ = writeln!(s, "include \"qelib1.inc\";");
    let _ = writeln!(s, "qreg q[{}];", c.num_qubits());
    for g in c.iter() {
        let tgt = g.target;
        let ctl: Vec<usize> = g.controls.iter().map(|x| x.qubit).collect();
        let line = match (g.kind, ctl.len()) {
            (GateKind::X, 0) => format!("x q[{tgt}];"),
            (GateKind::X, 1) => format!("cx q[{}],q[{tgt}];", ctl[0]),
            (GateKind::X, 2) => format!("ccx q[{}],q[{}],q[{tgt}];", ctl[0], ctl[1]),
            (GateKind::Y, 0) => format!("y q[{tgt}];"),
            (GateKind::Y, 1) => format!("cy q[{}],q[{tgt}];", ctl[0]),
            (GateKind::Z, 0) => format!("z q[{tgt}];"),
            (GateKind::Z, 1) => format!("cz q[{}],q[{tgt}];", ctl[0]),
            (GateKind::H, 0) => format!("h q[{tgt}];"),
            (GateKind::H, 1) => format!("ch q[{}],q[{tgt}];", ctl[0]),
            (GateKind::S, 0) => format!("s q[{tgt}];"),
            (GateKind::Sdg, 0) => format!("sdg q[{tgt}];"),
            (GateKind::T, 0) => format!("t q[{tgt}];"),
            (GateKind::Tdg, 0) => format!("tdg q[{tgt}];"),
            (GateKind::SqrtX, 0) => format!("sx q[{tgt}];"),
            (GateKind::SqrtXdg, 0) => format!("sxdg q[{tgt}];"),
            (GateKind::RX(t), 0) => format!("rx({t}) q[{tgt}];"),
            (GateKind::RY(t), 0) => format!("ry({t}) q[{tgt}];"),
            (GateKind::RZ(t), 0) => format!("rz({t}) q[{tgt}];"),
            (GateKind::RX(t), 1) => format!("crx({t}) q[{}],q[{tgt}];", ctl[0]),
            (GateKind::RY(t), 1) => format!("cry({t}) q[{}],q[{tgt}];", ctl[0]),
            (GateKind::RZ(t), 1) => format!("crz({t}) q[{}],q[{tgt}];", ctl[0]),
            (GateKind::Phase(l), 0) => format!("u1({l}) q[{tgt}];"),
            (GateKind::Phase(l), 1) => format!("cu1({l}) q[{}],q[{tgt}];", ctl[0]),
            (GateKind::U(a, bb, cc), 0) => format!("u3({a},{bb},{cc}) q[{tgt}];"),
            (GateKind::U(a, bb, cc), 1) => {
                format!("cu3({a},{bb},{cc}) q[{}],q[{tgt}];", ctl[0])
            }
            (GateKind::Id, 0) => format!("id q[{tgt}];"),
            _ => format!("// unsupported in qelib1: {g}"),
        };
        let _ = writeln!(s, "{line}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::state_distance_up_to_phase;
    use crate::dense::simulate;
    use crate::generators;

    #[test]
    fn parses_bell_pair() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            creg c[2];
            h q[0];
            cx q[0],q[1];
            measure q[0] -> c[0];
            measure q[1] -> c[1];
        "#;
        let (c, measures) = parse_qasm_full(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(measures, 2);
    }

    #[test]
    fn register_broadcast() {
        let src = "qreg q[3]; h q;";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 3);
    }

    #[test]
    fn two_register_layout() {
        let src = "qreg a[2]; qreg b[2]; cx a[1],b[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 4);
        let g = &c.gates()[0];
        assert_eq!(g.controls[0].qubit, 1);
        assert_eq!(g.target, 2);
    }

    #[test]
    fn parameter_expressions() {
        let src = "qreg q[1]; rz(pi/2) q[0]; rx(-pi) q[0]; ry(2*pi/4 + 0.5) q[0]; u1(pi^2) q[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 4);
        match c.gates()[0].kind {
            GateKind::RZ(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-14),
            ref k => panic!("wrong kind {k:?}"),
        }
        match c.gates()[2].kind {
            GateKind::RY(t) => assert!((t - (std::f64::consts::FRAC_PI_2 + 0.5)).abs() < 1e-14),
            ref k => panic!("wrong kind {k:?}"),
        }
        match c.gates()[3].kind {
            GateKind::Phase(t) => {
                assert!((t - std::f64::consts::PI * std::f64::consts::PI).abs() < 1e-12)
            }
            ref k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn custom_gate_definition_expands() {
        let src = r#"
            OPENQASM 2.0;
            qreg q[2];
            gate bell a, b { h a; cx a, b; }
            bell q[0], q[1];
        "#;
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.gates()[0].kind, GateKind::H);
    }

    #[test]
    fn parameterized_custom_gate() {
        let src = r#"
            qreg q[1];
            gate wiggle(theta) a { ry(theta/2) a; rz(-theta) a; }
            wiggle(pi) q[0];
        "#;
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 2);
        match c.gates()[0].kind {
            GateKind::RY(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-14),
            ref k => panic!("{k:?}"),
        }
    }

    #[test]
    fn nested_custom_gates() {
        let src = r#"
            qreg q[2];
            gate inner a { h a; }
            gate outer a, b { inner a; cx a, b; inner b; }
            outer q[0], q[1];
        "#;
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 3);
    }

    #[test]
    fn comments_and_whitespace() {
        let src = "// leading\nqreg q[1]; /* block\ncomment */ x q[0]; // trailing";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn barrier_and_reset_are_ignored() {
        let src = "qreg q[2]; h q[0]; barrier q; reset q[1]; x q[1];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn error_reports_line() {
        let src = "qreg q[1];\nx q[5];";
        let err = parse_qasm(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let err = parse_qasm("qreg q[1]; frobnicate q[0];").unwrap_err();
        assert!(err.message.contains("unknown gate"));
    }

    #[test]
    fn if_is_rejected() {
        let err = parse_qasm("qreg q[1]; creg c[1]; if (c==1) x q[0];").unwrap_err();
        assert!(err.message.contains("not supported"));
    }

    #[test]
    fn ccx_swap_cswap() {
        let src = "qreg q[3]; ccx q[0],q[1],q[2]; swap q[0],q[1]; cswap q[2],q[0],q[1];";
        let c = parse_qasm(src).unwrap();
        // ccx = 1 gate, swap = 3 CX, cswap = 3 gates
        assert_eq!(c.num_gates(), 1 + 3 + 3);
    }

    #[test]
    fn round_trip_ghz_through_qasm() {
        let orig = generators::ghz(5);
        let qasm = to_qasm(&orig);
        let parsed = parse_qasm(&qasm).unwrap();
        let a = simulate(&orig);
        let b = simulate(&parsed);
        assert!(state_distance_up_to_phase(&a, &b) < 1e-10);
    }

    #[test]
    fn round_trip_random_circuit_through_qasm() {
        let orig = generators::random_circuit(5, 60, 99);
        let qasm = to_qasm(&orig);
        let parsed = parse_qasm(&qasm).unwrap();
        let a = simulate(&orig);
        let b = simulate(&parsed);
        assert!(state_distance_up_to_phase(&a, &b) < 1e-9);
    }

    #[test]
    fn u2_matches_definition() {
        let src = "qreg q[1]; u2(0, pi) q[0];"; // u2(0,pi) = H
        let c = parse_qasm(src).unwrap();
        let v = simulate(&c);
        assert!((v[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn scientific_notation_numbers() {
        let src = "qreg q[1]; rz(1.5e-3) q[0]; rx(2E2) q[0];";
        let c = parse_qasm(src).unwrap();
        match c.gates()[0].kind {
            GateKind::RZ(t) => assert!((t - 1.5e-3).abs() < 1e-18),
            ref k => panic!("{k:?}"),
        }
        match c.gates()[1].kind {
            GateKind::RX(t) => assert!((t - 200.0).abs() < 1e-12),
            ref k => panic!("{k:?}"),
        }
    }

    #[test]
    fn functions_in_expressions() {
        let src = "qreg q[1]; rz(cos(0)) q[0]; ry(sqrt(4)) q[0];";
        let c = parse_qasm(src).unwrap();
        match c.gates()[0].kind {
            GateKind::RZ(t) => assert!((t - 1.0).abs() < 1e-14),
            ref k => panic!("{k:?}"),
        }
        match c.gates()[1].kind {
            GateKind::RY(t) => assert!((t - 2.0).abs() < 1e-14),
            ref k => panic!("{k:?}"),
        }
    }
}
