//! Quantum gates.
//!
//! Every operation is canonicalized to a **single-qubit unitary with an
//! arbitrary set of (positive or negative) controls**. This is the form both
//! the decision-diagram gate constructor and the array-kernel consume, and it
//! is expressive enough for the full benchmark set of the paper (CX, CZ,
//! Toffoli, controlled-phase, Fredkin via decomposition, ...).

use crate::complex::{Complex64, FRAC_1_SQRT_2};
use std::f64::consts::FRAC_PI_4;
#[cfg(test)]
use std::f64::consts::{FRAC_PI_2, PI};
use std::fmt;

/// A 2x2 complex matrix in row-major order: `[m00, m01, m10, m11]`.
pub type Mat2 = [Complex64; 4];

/// The single-qubit unitary applied at the target qubit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GateKind {
    /// Identity.
    Id,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S-dagger = diag(1, -i).
    Sdg,
    /// T = diag(1, e^{i pi/4}).
    T,
    /// T-dagger.
    Tdg,
    /// Square root of X (the supremacy-circuit `sqrt_x`).
    SqrtX,
    /// Inverse square root of X.
    SqrtXdg,
    /// Square root of Y (the supremacy-circuit `sqrt_y`).
    SqrtY,
    /// Inverse square root of Y.
    SqrtYdg,
    /// Square root of W = (X+Y)/sqrt(2) (used by Sycamore-style circuits).
    SqrtW,
    /// Rotation about X by `theta`.
    RX(f64),
    /// Rotation about Y by `theta`.
    RY(f64),
    /// Rotation about Z by `theta` (phase-symmetric convention).
    RZ(f64),
    /// Phase gate diag(1, e^{i lambda}) (OpenQASM `u1`/`p`).
    Phase(f64),
    /// General single-qubit unitary, OpenQASM `u3(theta, phi, lambda)`.
    U(f64, f64, f64),
    /// An explicit 2x2 unitary matrix (escape hatch; row-major).
    Unitary(Mat2),
}

impl GateKind {
    /// The 2x2 matrix of this gate, row-major.
    pub fn matrix(&self) -> Mat2 {
        use GateKind::*;
        let c = Complex64::new;
        let r = Complex64::real;
        match *self {
            Id => [r(1.0), r(0.0), r(0.0), r(1.0)],
            X => [r(0.0), r(1.0), r(1.0), r(0.0)],
            Y => [r(0.0), c(0.0, -1.0), c(0.0, 1.0), r(0.0)],
            Z => [r(1.0), r(0.0), r(0.0), r(-1.0)],
            H => [
                r(FRAC_1_SQRT_2),
                r(FRAC_1_SQRT_2),
                r(FRAC_1_SQRT_2),
                r(-FRAC_1_SQRT_2),
            ],
            S => [r(1.0), r(0.0), r(0.0), c(0.0, 1.0)],
            Sdg => [r(1.0), r(0.0), r(0.0), c(0.0, -1.0)],
            T => [r(1.0), r(0.0), r(0.0), Complex64::cis(FRAC_PI_4)],
            Tdg => [r(1.0), r(0.0), r(0.0), Complex64::cis(-FRAC_PI_4)],
            SqrtX => [c(0.5, 0.5), c(0.5, -0.5), c(0.5, -0.5), c(0.5, 0.5)],
            SqrtXdg => [c(0.5, -0.5), c(0.5, 0.5), c(0.5, 0.5), c(0.5, -0.5)],
            SqrtY => [c(0.5, 0.5), c(-0.5, -0.5), c(0.5, 0.5), c(0.5, 0.5)],
            SqrtYdg => [c(0.5, -0.5), c(0.5, -0.5), c(-0.5, 0.5), c(0.5, -0.5)],
            SqrtW => {
                // W = (X + Y)/sqrt(2) is an involution, so
                // sqrt(W) = e^{i pi/4} (I - iW)/sqrt(2), giving:
                [
                    c(0.5, 0.5),
                    c(0.0, -FRAC_1_SQRT_2),
                    c(FRAC_1_SQRT_2, 0.0),
                    c(0.5, 0.5),
                ]
            }
            RX(t) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                [r(co), c(0.0, -s), c(0.0, -s), r(co)]
            }
            RY(t) => {
                let (s, co) = ((t / 2.0).sin(), (t / 2.0).cos());
                [r(co), r(-s), r(s), r(co)]
            }
            RZ(t) => [
                Complex64::cis(-t / 2.0),
                r(0.0),
                r(0.0),
                Complex64::cis(t / 2.0),
            ],
            Phase(l) => [r(1.0), r(0.0), r(0.0), Complex64::cis(l)],
            U(theta, phi, lambda) => {
                let (s, co) = ((theta / 2.0).sin(), (theta / 2.0).cos());
                [
                    r(co),
                    -Complex64::cis(lambda) * s,
                    Complex64::cis(phi) * s,
                    Complex64::cis(phi + lambda) * co,
                ]
            }
            Unitary(m) => m,
        }
    }

    /// Hermitian conjugate (inverse, for unitaries) of this gate.
    pub fn dagger(&self) -> GateKind {
        use GateKind::*;
        match *self {
            Id | X | Y | Z | H => *self,
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            SqrtX => SqrtXdg,
            SqrtXdg => SqrtX,
            SqrtY => SqrtYdg,
            SqrtYdg => SqrtY,
            RX(t) => RX(-t),
            RY(t) => RY(-t),
            RZ(t) => RZ(-t),
            Phase(l) => Phase(-l),
            U(t, p, l) => U(-t, -l, -p),
            SqrtW | Unitary(_) => {
                let m = self.matrix();
                Unitary([m[0].conj(), m[2].conj(), m[1].conj(), m[3].conj()])
            }
        }
    }

    /// True when the matrix is diagonal (useful for regularity analysis).
    pub fn is_diagonal(&self) -> bool {
        let m = self.matrix();
        m[1].is_zero() && m[2].is_zero()
    }

    /// Short mnemonic name (lower case, OpenQASM-flavoured).
    pub fn name(&self) -> &'static str {
        use GateKind::*;
        match self {
            Id => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            SqrtX => "sx",
            SqrtXdg => "sxdg",
            SqrtY => "sy",
            SqrtYdg => "sydg",
            SqrtW => "sw",
            RX(_) => "rx",
            RY(_) => "ry",
            RZ(_) => "rz",
            Phase(_) => "p",
            U(..) => "u3",
            Unitary(_) => "unitary",
        }
    }
}

/// A control qubit with its polarity.
///
/// A *positive* control activates the gate when the qubit is |1>, a
/// *negative* control when it is |0>.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Control {
    /// Qubit index.
    pub qubit: usize,
    /// `true` for a |1>-control, `false` for a |0>-control.
    pub positive: bool,
}

impl Control {
    /// A standard positive control on `qubit`.
    pub fn pos(qubit: usize) -> Self {
        Control {
            qubit,
            positive: true,
        }
    }

    /// A negative (|0>-activated) control on `qubit`.
    pub fn neg(qubit: usize) -> Self {
        Control {
            qubit,
            positive: false,
        }
    }
}

/// A gate application: a single-qubit unitary on `target`, optionally
/// conditioned on `controls`.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// The single-qubit unitary.
    pub kind: GateKind,
    /// Target qubit index.
    pub target: usize,
    /// Control qubits (sorted by qubit index on construction).
    pub controls: Vec<Control>,
}

impl Gate {
    /// Uncontrolled gate.
    pub fn new(kind: GateKind, target: usize) -> Self {
        Gate {
            kind,
            target,
            controls: Vec::new(),
        }
    }

    /// Controlled gate. Controls are sorted by qubit index; duplicate or
    /// target-overlapping controls panic (they indicate a malformed circuit).
    pub fn controlled(kind: GateKind, target: usize, mut controls: Vec<Control>) -> Self {
        controls.sort_by_key(|c| c.qubit);
        for w in controls.windows(2) {
            assert_ne!(
                w[0].qubit, w[1].qubit,
                "duplicate control qubit {}",
                w[0].qubit
            );
        }
        assert!(
            controls.iter().all(|c| c.qubit != target),
            "control overlaps target qubit {target}"
        );
        Gate {
            kind,
            target,
            controls,
        }
    }

    /// Every qubit this gate touches (target + controls), unsorted.
    pub fn qubits(&self) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(self.target).chain(self.controls.iter().map(|c| c.qubit))
    }

    /// Largest qubit index touched.
    pub fn max_qubit(&self) -> usize {
        self.qubits().max().unwrap()
    }

    /// Number of controls.
    pub fn num_controls(&self) -> usize {
        self.controls.len()
    }

    /// The inverse gate (same controls, daggered unitary).
    pub fn dagger(&self) -> Gate {
        Gate {
            kind: self.kind.dagger(),
            target: self.target,
            controls: self.controls.clone(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.controls {
            write!(f, "{}", if c.positive { "c" } else { "nc" })?;
        }
        write!(f, "{}", self.kind.name())?;
        match self.kind {
            GateKind::RX(t) | GateKind::RY(t) | GateKind::RZ(t) | GateKind::Phase(t) => {
                write!(f, "({t:.4})")?
            }
            GateKind::U(a, b, c) => write!(f, "({a:.4},{b:.4},{c:.4})")?,
            _ => {}
        }
        write!(f, " ")?;
        for c in &self.controls {
            write!(f, "q{},", c.qubit)?;
        }
        write!(f, "q{}", self.target)
    }
}

/// Multiplies two 2x2 matrices: `a * b`.
pub fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// Checks that a 2x2 matrix is unitary within `tol`.
pub fn mat2_is_unitary(m: &Mat2, tol: f64) -> bool {
    let dag = [m[0].conj(), m[2].conj(), m[1].conj(), m[3].conj()];
    let p = mat2_mul(&dag, m);
    p[0].approx_eq(Complex64::ONE, tol)
        && p[3].approx_eq(Complex64::ONE, tol)
        && p[1].approx_zero(tol)
        && p[2].approx_zero(tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn all_kinds() -> Vec<GateKind> {
        use GateKind::*;
        vec![
            Id,
            X,
            Y,
            Z,
            H,
            S,
            Sdg,
            T,
            Tdg,
            SqrtX,
            SqrtXdg,
            SqrtY,
            SqrtYdg,
            SqrtW,
            RX(0.7),
            RY(-1.3),
            RZ(2.1),
            Phase(0.4),
            U(0.3, 1.1, -0.9),
        ]
    }

    #[test]
    fn all_gate_matrices_are_unitary() {
        for k in all_kinds() {
            assert!(
                mat2_is_unitary(&k.matrix(), TOL),
                "{} not unitary",
                k.name()
            );
        }
    }

    #[test]
    fn dagger_inverts() {
        for k in all_kinds() {
            let p = mat2_mul(&k.dagger().matrix(), &k.matrix());
            assert!(p[0].approx_eq(Complex64::ONE, 1e-10), "{}", k.name());
            assert!(p[1].approx_zero(1e-10), "{}", k.name());
            assert!(p[2].approx_zero(1e-10), "{}", k.name());
            assert!(p[3].approx_eq(Complex64::ONE, 1e-10), "{}", k.name());
        }
    }

    #[test]
    fn sqrt_gates_square_to_paulis() {
        let xx = mat2_mul(&GateKind::SqrtX.matrix(), &GateKind::SqrtX.matrix());
        let x = GateKind::X.matrix();
        for i in 0..4 {
            assert!(xx[i].approx_eq(x[i], TOL));
        }
        let yy = mat2_mul(&GateKind::SqrtY.matrix(), &GateKind::SqrtY.matrix());
        let y = GateKind::Y.matrix();
        for i in 0..4 {
            assert!(
                yy[i].approx_eq(y[i], TOL),
                "sqrtY^2 mismatch at {i}: {:?} vs {:?}",
                yy[i],
                y[i]
            );
        }
    }

    #[test]
    fn sqrt_w_squares_to_w() {
        let ww = mat2_mul(&GateKind::SqrtW.matrix(), &GateKind::SqrtW.matrix());
        // W = (X + Y)/sqrt(2)
        let x = GateKind::X.matrix();
        let y = GateKind::Y.matrix();
        for i in 0..4 {
            let w = (x[i] + y[i]) * FRAC_1_SQRT_2;
            assert!(ww[i].approx_eq(w, 1e-10), "at {i}: {:?} vs {:?}", ww[i], w);
        }
    }

    #[test]
    fn s_is_t_squared() {
        let tt = mat2_mul(&GateKind::T.matrix(), &GateKind::T.matrix());
        let s = GateKind::S.matrix();
        for i in 0..4 {
            assert!(tt[i].approx_eq(s[i], TOL));
        }
    }

    #[test]
    fn u3_specializations() {
        // u3(pi/2, 0, pi) = H
        let u = GateKind::U(FRAC_PI_2, 0.0, PI).matrix();
        let h = GateKind::H.matrix();
        for i in 0..4 {
            assert!(u[i].approx_eq(h[i], TOL));
        }
        // u3(pi, 0, pi) = X
        let u = GateKind::U(PI, 0.0, PI).matrix();
        let x = GateKind::X.matrix();
        for i in 0..4 {
            assert!(u[i].approx_eq(x[i], 1e-12), "at {i}");
        }
    }

    #[test]
    fn rz_vs_phase_differ_by_global_phase() {
        let t = 0.7;
        let rz = GateKind::RZ(t).matrix();
        let p = GateKind::Phase(t).matrix();
        let g = Complex64::cis(-t / 2.0);
        for i in 0..4 {
            assert!(rz[i].approx_eq(p[i] * g, TOL));
        }
    }

    #[test]
    fn diagonal_detection() {
        assert!(GateKind::Z.is_diagonal());
        assert!(GateKind::T.is_diagonal());
        assert!(GateKind::RZ(0.3).is_diagonal());
        assert!(!GateKind::H.is_diagonal());
        assert!(!GateKind::X.is_diagonal());
    }

    #[test]
    fn controlled_sorts_controls() {
        let g = Gate::controlled(GateKind::X, 0, vec![Control::pos(5), Control::neg(2)]);
        assert_eq!(g.controls[0].qubit, 2);
        assert_eq!(g.controls[1].qubit, 5);
        assert_eq!(g.max_qubit(), 5);
        assert_eq!(g.num_controls(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate control")]
    fn duplicate_controls_panic() {
        Gate::controlled(GateKind::X, 0, vec![Control::pos(1), Control::pos(1)]);
    }

    #[test]
    #[should_panic(expected = "control overlaps target")]
    fn control_on_target_panics() {
        Gate::controlled(GateKind::X, 1, vec![Control::pos(1)]);
    }

    #[test]
    fn display_is_readable() {
        let g = Gate::controlled(GateKind::X, 0, vec![Control::pos(2)]);
        assert_eq!(format!("{g}"), "cx q2,q0");
    }
}
