//! Benchmark circuit generators.
//!
//! Parameterized constructions of the circuit families used in the FlatDD
//! evaluation (QASMBench \[69\], MQT Bench \[88\], and Google quantum-supremacy
//! \[7\] style circuits). The generators stand in for the benchmark files the
//! paper downloads: they follow the published constructions and preserve the
//! property FlatDD exploits — Adder/GHZ stay *regular* (polynomial DD size)
//! while DNN/VQE/supremacy turn *irregular* (exponential DD size).
//!
//! All randomized families take an explicit seed so experiments are
//! reproducible.

use crate::circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// GHZ state preparation: `H` then a CNOT chain. Highly regular — the state
/// DD has O(n) nodes throughout.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::named(n, format!("ghz_{n}"));
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// Cuccaro ripple-carry adder over two `k`-bit registers (`n = 2k + 2`
/// qubits: carry-in, interleaved a/b registers, carry-out).
///
/// The inputs are prepared as basis states (`a_val`, `b_val`), so the state
/// stays a computational basis state throughout — the most regular workload
/// in the suite (matches the paper: DDSIM finishes the 28-qubit Adder in
/// milliseconds).
pub fn adder(k: usize, a_val: u64, b_val: u64) -> Circuit {
    assert!((1..=62).contains(&k));
    let n = 2 * k + 2;
    let mut c = Circuit::named(n, format!("adder_{n}"));
    // Layout: qubit 0 = carry-in c0; for bit i: a_i at 2i+1, b_i at 2i+2;
    // carry-out z at 2k+1 ... we place z at the last qubit index n-1.
    let a = |i: usize| 2 * i + 1;
    let b = |i: usize| 2 * i + 2;
    let cin = 0usize;
    let z = n - 1;
    // But b(k-1) = 2k, z = 2k+1 = n-1: consistent.

    // Input preparation.
    for i in 0..k {
        if (a_val >> i) & 1 == 1 {
            c.x(a(i));
        }
        if (b_val >> i) & 1 == 1 {
            c.x(b(i));
        }
    }
    // MAJ(x, y, z): cx z y; cx z x; ccx x y z  — using Cuccaro's ordering.
    let maj = |c: &mut Circuit, x: usize, y: usize, zz: usize| {
        c.cx(zz, y);
        c.cx(zz, x);
        c.ccx(x, y, zz);
    };
    // UMA(x, y, z): ccx x y z; cx z x; cx x y
    let uma = |c: &mut Circuit, x: usize, y: usize, zz: usize| {
        c.ccx(x, y, zz);
        c.cx(zz, x);
        c.cx(x, y);
    };
    maj(&mut c, cin, b(0), a(0));
    for i in 1..k {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(k - 1), z);
    for i in (1..k).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Convenience wrapper choosing register width from total qubit count
/// (`n = 2k + 2`) with fixed, interesting input values.
pub fn adder_n(n: usize) -> Circuit {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "adder needs an even qubit count >= 4"
    );
    let k = (n - 2) / 2;
    let mask = if k >= 62 { u64::MAX } else { (1u64 << k) - 1 };
    adder(
        k,
        0xAAAA_AAAA_AAAA_AAAA & mask,
        0x6DB6_DB6D_B6DB_6DB6 & mask,
    )
}

/// Quantum Fourier transform (with final qubit-reversal swaps).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::named(n, format!("qft_{n}"));
    for i in (0..n).rev() {
        c.h(i);
        for j in (0..i).rev() {
            c.cp(PI / (1u64 << (i - j)) as f64, j, i);
        }
    }
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// Quantum deep-neural-network circuit (QASMBench `dnn` style, after Beer
/// et al. \[10\]): an initial superposition wall, then `layers` of the
/// standard QNN block — a parameterized RY mixing wall followed by a
/// ZZ-feature-map entangler (`cx, rz, cx` per neighbor pair) with
/// pseudo-random angles. Highly *irregular* for a DD (dense amplitude
/// distribution with diverse phases), while the permutation/diagonal
/// entangler makes it the fusion-friendly workload of Table 2.
pub fn dnn(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("dnn_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..layers {
        for q in 0..n {
            c.ry(rng.gen_range(0.0..2.0 * PI), q);
        }
        for q in 0..n - 1 {
            // exp(-i theta/2 Z_q Z_{q+1}) via CX-RZ-CX.
            c.cx(q, q + 1);
            c.rz(rng.gen_range(0.0..2.0 * PI), q + 1);
            c.cx(q, q + 1);
        }
    }
    c
}

/// A `dnn` instance sized to roughly match the paper's gate counts
/// (DNN-16: 2032 gates, DNN-20: 6214, DNN-25: 9644).
pub fn dnn_paper(n: usize, seed: u64) -> Circuit {
    // gates = n + layers * (4n - 3) => layers ~ (target - n) / (4n - 3)
    let target = match n {
        16 => 2032,
        20 => 6214,
        25 => 9644,
        _ => 40 * n,
    };
    let layers = ((target - n) as f64 / (4.0 * n as f64 - 3.0))
        .round()
        .max(1.0) as usize;
    dnn(n, layers, seed)
}

/// Hardware-efficient VQE ansatz: `depth` layers of RY/RZ rotations with a
/// linear CX entangler, pseudo-random parameters. Irregular.
pub fn vqe(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("vqe_{n}"));
    for _ in 0..depth {
        for q in 0..n {
            c.ry(rng.gen_range(0.0..2.0 * PI), q);
            c.rz(rng.gen_range(0.0..2.0 * PI), q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    // Final rotation layer (standard for hardware-efficient ansatze).
    for q in 0..n {
        c.ry(rng.gen_range(0.0..2.0 * PI), q);
    }
    c
}

/// VQE sized to the paper's 16-qubit/95-gate instance (depth chosen so the
/// gate count lands near `3*depth*n - depth + n`).
pub fn vqe_paper(n: usize, seed: u64) -> Circuit {
    vqe(n, 2, seed)
}

/// Swap test between two `m`-qubit registers (`n = 2m + 1` qubits):
/// pseudo-random product-state preparation, then `H` on the ancilla, a
/// controlled-SWAP per register pair, and a closing `H`.
pub fn swap_test(m: usize, seed: u64) -> Circuit {
    let n = 2 * m + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("swaptest_{n}"));
    // Ancilla is qubit 0; register X at 1..=m, register Y at m+1..=2m.
    for q in 1..n {
        c.ry(rng.gen_range(0.0..PI), q);
    }
    c.h(0);
    for i in 0..m {
        c.cswap(0, 1 + i, 1 + m + i);
    }
    c.h(0);
    c
}

/// KNN kernel-distance circuit (QASMBench `knn` style): structurally a swap
/// test whose second register encodes training data — we use a different
/// angle distribution to distinguish the two preparations.
pub fn knn(m: usize, seed: u64) -> Circuit {
    let n = 2 * m + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("knn_{n}"));
    for q in 1..=m {
        c.ry(rng.gen_range(0.0..PI), q);
    }
    for q in m + 1..n {
        // Training register: RY then RZ (mixed-phase encoding).
        c.ry(rng.gen_range(0.0..PI), q);
        c.rz(rng.gen_range(0.0..2.0 * PI), q);
    }
    c.h(0);
    for i in 0..m {
        c.cswap(0, 1 + i, 1 + m + i);
    }
    c.h(0);
    c
}

/// Google quantum-supremacy-style random circuit on a `rows x cols` grid
/// \[7\]: per cycle, a random single-qubit gate from {sqrt(X), sqrt(Y), T}
/// on every qubit (never repeating the previous choice on the same qubit,
/// Hadamards in cycle 0), followed by a CZ layer whose pattern rotates
/// through eight grid configurations. Maximally irregular.
pub fn supremacy(rows: usize, cols: usize, cycles: usize, seed: u64) -> Circuit {
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("supremacy_{n}"));
    let q = |r: usize, col: usize| r * cols + col;

    for qu in 0..n {
        c.h(qu);
    }
    // last single-qubit gate id per qubit: 0=sx, 1=sy, 2=t, 3=h(none yet)
    let mut last = vec![3u8; n];
    for cycle in 0..cycles {
        // Single-qubit layer.
        #[allow(clippy::needless_range_loop)]
        for qu in 0..n {
            let mut g = rng.gen_range(0..3u8);
            while g == last[qu] {
                g = rng.gen_range(0..3u8);
            }
            last[qu] = g;
            match g {
                0 => c.sx(qu),
                1 => c.sy(qu),
                _ => c.t(qu),
            };
        }
        // CZ layer: eight patterns covering the grid couplers.
        let pattern = cycle % 8;
        match pattern {
            // Horizontal couplers, four phases.
            0 | 2 => {
                let off = if pattern == 0 { 0 } else { 1 };
                for r in 0..rows {
                    let mut col = off;
                    while col + 1 < cols {
                        c.cz(q(r, col), q(r, col + 1));
                        col += 2;
                    }
                }
            }
            4 | 6 => {
                let off = if pattern == 4 { 0 } else { 1 };
                for r in (0..rows).skip(1).step_by(2) {
                    let mut col = off;
                    while col + 1 < cols {
                        c.cz(q(r, col), q(r, col + 1));
                        col += 2;
                    }
                }
                for r in (0..rows).step_by(2) {
                    let mut col = 1 - off;
                    while col + 1 < cols {
                        c.cz(q(r, col), q(r, col + 1));
                        col += 2;
                    }
                }
            }
            // Vertical couplers, four phases.
            1 | 3 => {
                let off = if pattern == 1 { 0 } else { 1 };
                for col in 0..cols {
                    let mut r = off;
                    while r + 1 < rows {
                        c.cz(q(r, col), q(r + 1, col));
                        r += 2;
                    }
                }
            }
            _ => {
                let off = if pattern == 5 { 0 } else { 1 };
                for col in (0..cols).skip(1).step_by(2) {
                    let mut r = off;
                    while r + 1 < rows {
                        c.cz(q(r, col), q(r + 1, col));
                        r += 2;
                    }
                }
                for col in (0..cols).step_by(2) {
                    let mut r = 1 - off;
                    while r + 1 < rows {
                        c.cz(q(r, col), q(r + 1, col));
                        r += 2;
                    }
                }
            }
        }
    }
    c
}

/// Supremacy circuit for a qubit count, choosing a near-square grid and a
/// cycle count that lands near the paper's gate totals (4500 gates at n=20).
/// Sycamore-style random circuit (Arute et al. 2019, as flown on hardware):
/// per cycle, random single-qubit gates from {sqrt(X), sqrt(Y), sqrt(W)}
/// (never repeating on a qubit), followed by **fSim(pi/2, pi/6)** couplers
/// on the rotating grid pattern — the gate set of the actual supremacy
/// experiment, rather than the CZ-based 2017 proposal.
pub fn supremacy_fsim(rows: usize, cols: usize, cycles: usize, seed: u64) -> Circuit {
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("sycamore_{n}"));
    let q = |r: usize, col: usize| r * cols + col;
    let theta = std::f64::consts::FRAC_PI_2;
    let phi = std::f64::consts::PI / 6.0;

    for qu in 0..n {
        c.h(qu);
    }
    let mut last = vec![3u8; n];
    for cycle in 0..cycles {
        #[allow(clippy::needless_range_loop)]
        for qu in 0..n {
            let mut g = rng.gen_range(0..3u8);
            while g == last[qu] {
                g = rng.gen_range(0..3u8);
            }
            last[qu] = g;
            match g {
                0 => c.sx(qu),
                1 => c.sy(qu),
                _ => c.sw(qu),
            };
        }
        // Couplers: alternate horizontal/vertical with offset, 4 patterns.
        match cycle % 4 {
            0 | 1 => {
                let off = cycle % 2;
                for r in 0..rows {
                    let mut col = off;
                    while col + 1 < cols {
                        c.fsim(theta, phi, q(r, col), q(r, col + 1));
                        col += 2;
                    }
                }
            }
            _ => {
                let off = cycle % 2;
                for col in 0..cols {
                    let mut r = off;
                    while r + 1 < rows {
                        c.fsim(theta, phi, q(r, col), q(r + 1, col));
                        r += 2;
                    }
                }
            }
        }
    }
    c
}

/// Supremacy circuit for a qubit count with a near-square grid (CZ-coupler
/// variant; see [`supremacy_fsim`] for the Sycamore fSim gate set).
pub fn supremacy_n(n: usize, cycles: usize, seed: u64) -> Circuit {
    let (rows, cols) = best_grid(n);
    supremacy(rows, cols, cycles, seed)
}

/// Picks the most square `rows x cols = n` factorization.
pub fn best_grid(n: usize) -> (usize, usize) {
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

/// Grover search for a single marked item, with the textbook iteration count
/// `floor(pi/4 * sqrt(2^n))` unless overridden.
pub fn grover(n: usize, marked: usize, iterations: Option<usize>) -> Circuit {
    assert!(n >= 2);
    assert!(marked < (1usize << n));
    let iters =
        iterations.unwrap_or_else(|| (PI / 4.0 * ((1u64 << n) as f64).sqrt()).floor() as usize);
    let mut c = Circuit::named(n, format!("grover_{n}"));
    for q in 0..n {
        c.h(q);
    }
    let all_but_last: Vec<usize> = (0..n - 1).collect();
    for _ in 0..iters.max(1) {
        // Oracle: phase-flip |marked>.
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        c.mcz(&all_but_last, n - 1);
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion.
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            c.x(q);
        }
        c.mcz(&all_but_last, n - 1);
        for q in 0..n {
            c.x(q);
        }
        for q in 0..n {
            c.h(q);
        }
    }
    c
}

/// W-state preparation via the standard linear cascade of controlled
/// rotations: the excitation starts on the top qubit and at each step a
/// `1/sqrt(r)` share of the remaining amplitude is pinned in place while the
/// rest moves one qubit down.
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::named(n, format!("wstate_{n}"));
    c.x(n - 1);
    let mut r = n;
    for i in (1..n).rev() {
        let theta = 2.0 * (1.0 / (r as f64).sqrt()).acos();
        c.cry(theta, i, i - 1);
        c.cx(i - 1, i);
        r -= 1;
    }
    c
}

/// QAOA circuit for MaxCut with explicit per-round `(gamma, beta)` angles:
/// cost layers (CX-RZ-CX per edge) alternating with mixer layers (RX wall).
/// Diagonal-heavy, moderately irregular.
pub fn qaoa_with_angles(n: usize, edges: &[(usize, usize)], angles: &[(f64, f64)]) -> Circuit {
    assert!(n >= 3);
    let mut c = Circuit::named(n, format!("qaoa_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for &(gamma, beta) in angles {
        for &(a, b) in edges {
            c.cx(a, b);
            c.rz(2.0 * gamma, b);
            c.cx(a, b);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// QAOA circuit for MaxCut on a random ring-plus-chords graph with `p`
/// rounds of pseudo-random angles (use [`qaoa_with_angles`] +
/// [`qaoa_edges`] when you need optimized parameters).
pub fn qaoa(n: usize, p: usize, seed: u64) -> Circuit {
    let edges = qaoa_edges(n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA0A0);
    let angles: Vec<(f64, f64)> = (0..p)
        .map(|_| (rng.gen_range(0.0..PI), rng.gen_range(0.0..PI)))
        .collect();
    qaoa_with_angles(n, &edges, &angles)
}

/// QAOA's problem graph for a given `(n, seed)` — paired with [`qaoa`] so
/// callers can evaluate the cut value of sampled bitstrings.
pub fn qaoa_edges(n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges
}

/// Bernstein-Vazirani: recovers the hidden bitstring `secret` in one query.
/// `n` data qubits plus one ancilla (qubit `n`). Extremely regular.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    let mut c = Circuit::named(n + 1, format!("bv_{}", n + 1));
    c.x(n);
    for q in 0..=n {
        c.h(q);
    }
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Deutsch-Jozsa with a balanced inner-product oracle (`mask` != 0) or the
/// constant oracle (`mask` == 0). `n` data qubits + 1 ancilla.
pub fn deutsch_jozsa(n: usize, mask: u64) -> Circuit {
    let mut c = Circuit::named(n + 1, format!("dj_{}", n + 1));
    c.x(n);
    for q in 0..=n {
        c.h(q);
    }
    for q in 0..n {
        if (mask >> q) & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Hidden-shift circuit for bent-function duality (Maiorana-McFarland
/// style, as in QASMBench `hs` / Cirq's hidden-shift benchmark): finds the
/// shift `s` of a shifted bent function in one query. `n` must be even.
pub fn hidden_shift(n: usize, shift: u64) -> Circuit {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "hidden shift needs an even qubit count"
    );
    let mut c = Circuit::named(n, format!("hiddenshift_{n}"));
    let half = n / 2;
    for q in 0..n {
        c.h(q);
    }
    // Oracle for f(x + s): X-conjugated CZ pairs.
    for q in 0..n {
        if (shift >> q) & 1 == 1 {
            c.x(q);
        }
    }
    for i in 0..half {
        c.cz(i, i + half);
    }
    for q in 0..n {
        if (shift >> q) & 1 == 1 {
            c.x(q);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    // Dual bent function g = f for MM with identity permutation.
    for i in 0..half {
        c.cz(i, i + half);
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Quantum phase estimation of the phase gate `diag(1, e^{2 pi i theta})`
/// with `bits` counting qubits (total `bits + 1` qubits; the eigenstate
/// qubit is the last one).
pub fn phase_estimation(bits: usize, theta: f64) -> Circuit {
    let n = bits + 1;
    let target = bits;
    let mut c = Circuit::named(n, format!("qpe_{n}"));
    c.x(target); // eigenstate |1> of the phase gate
    for q in 0..bits {
        c.h(q);
    }
    for q in 0..bits {
        // Controlled-U^(2^q)
        let angle = 2.0 * PI * theta * (1u64 << q) as f64;
        c.cp(angle, q, target);
    }
    // Inverse QFT on the counting register.
    for i in 0..bits / 2 {
        c.swap(i, bits - 1 - i);
    }
    for i in 0..bits {
        for j in (0..i).rev() {
            c.cp(-PI / (1u64 << (i - j)) as f64, j, i);
        }
        c.h(i);
    }
    c
}

/// Uniformly random circuit over a universal gate set — used by property
/// tests to cross-validate the simulation engines.
pub fn random_circuit(n: usize, num_gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(n, format!("random_{n}_{num_gates}"));
    for _ in 0..num_gates {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..10u8) {
            0 => c.h(q),
            1 => c.x(q),
            2 => c.t(q),
            3 => c.s(q),
            4 => c.ry(rng.gen_range(0.0..2.0 * PI), q),
            5 => c.rz(rng.gen_range(0.0..2.0 * PI), q),
            6 => c.sx(q),
            7 | 8 if n >= 2 => {
                let mut p = rng.gen_range(0..n);
                while p == q {
                    p = rng.gen_range(0..n);
                }
                if rng.gen_bool(0.5) {
                    c.cx(p, q)
                } else {
                    c.cz(p, q)
                }
            }
            _ if n >= 3 => {
                let mut a = rng.gen_range(0..n);
                while a == q {
                    a = rng.gen_range(0..n);
                }
                let mut b = rng.gen_range(0..n);
                while b == q || b == a {
                    b = rng.gen_range(0..n);
                }
                c.ccx(a, b, q)
            }
            _ => c.h(q),
        };
    }
    c
}

/// Builds a circuit from a compact textual spec, e.g. `ghz:12`,
/// `supremacy:16,30`, `dnn:10,3`, `grover:10`, `qft:8`, `adder:14`,
/// `knn:13`, `swaptest:13`, `vqe:12,2`, `qaoa:10,2`, `bv:8`, `hs:8`,
/// `qpe:6`, `wstate:9`, `random:8,100`. The number after the colon is the
/// qubit count; extra comma-separated numbers are family parameters.
pub fn from_spec(spec: &str, seed: u64) -> Result<Circuit, String> {
    let (family, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad spec `{spec}`: expected `family:qubits[,param...]`"))?;
    let nums: Vec<usize> = rest
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad number `{s}` in `{spec}`"))
        })
        .collect::<Result<_, _>>()?;
    if nums.is_empty() {
        return Err(format!("spec `{spec}` needs a qubit count"));
    }
    let n = nums[0];
    let p = |k: usize, default: usize| nums.get(k).copied().unwrap_or(default);
    Ok(match family {
        "ghz" => ghz(n),
        "adder" => adder_n(if n.is_multiple_of(2) { n } else { n + 1 }),
        "qft" => qft(n),
        "dnn" => dnn(n, p(1, 8), seed),
        "vqe" => vqe(n, p(1, 2), seed),
        "knn" => knn((n.max(3) - 1) / 2, seed),
        "swaptest" => swap_test((n.max(3) - 1) / 2, seed),
        "supremacy" => supremacy_n(n, p(1, 20), seed),
        "sycamore" => {
            let (rows, cols) = best_grid(n);
            supremacy_fsim(rows, cols, p(1, 12), seed)
        }
        "grover" => grover(n, p(1, 1usize << (n / 2)) % (1 << n), None),
        "wstate" => w_state(n),
        "qaoa" => qaoa(n, p(1, 2), seed),
        "bv" => bernstein_vazirani(n.max(2) - 1, seed | 1),
        "dj" => deutsch_jozsa(n.max(2) - 1, (seed | 1) & ((1 << (n.max(2) - 1)) - 1)),
        "hs" => hidden_shift(
            if n.is_multiple_of(2) { n } else { n + 1 },
            seed & ((1 << n) - 1),
        ),
        "qpe" => phase_estimation(n.max(2) - 1, 0.3125),
        "random" => random_circuit(n, p(1, 20 * n), seed),
        other => return Err(format!("unknown circuit family `{other}`")),
    })
}

/// The twelve Table-1 workloads of the paper, scaled by `scale`:
/// `scale = 1.0` reproduces the paper's qubit counts; smaller values shrink
/// the qubit counts proportionally (floor at 6 qubits) so the full table can
/// run on small machines.
pub fn table1_suite(scale: f64, seed: u64) -> Vec<Circuit> {
    let sz = |n: usize| ((n as f64 * scale).round() as usize).max(6);
    let even = |n: usize| if n.is_multiple_of(2) { n } else { n + 1 };
    let odd = |n: usize| if n % 2 == 1 { n } else { n + 1 };
    vec![
        dnn_paper(sz(16), seed),
        dnn_paper(sz(20), seed + 1),
        dnn_paper(sz(25), seed + 2),
        adder_n(even(sz(28))),
        ghz(sz(23)),
        vqe_paper(sz(16), seed + 3),
        knn((odd(sz(25)) - 1) / 2, seed + 4),
        knn((odd(sz(31)) - 1) / 2, seed + 5),
        swap_test((odd(sz(25)) - 1) / 2, seed + 6),
        supremacy_n(sz(20), 30, seed + 7),
        supremacy_n(sz(24), 30, seed + 8),
        supremacy_n(sz(26), 30, seed + 9),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{norm_sqr, Complex64};
    use crate::dense::simulate;

    const TOL: f64 = 1e-10;

    #[test]
    fn ghz_state_is_correct() {
        let v = simulate(&ghz(4));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((v[0].re - s).abs() < TOL);
        assert!((v[15].re - s).abs() < TOL);
        for (i, amp) in v.iter().enumerate().take(15).skip(1) {
            assert!(amp.approx_zero(TOL), "i={i}");
        }
    }

    #[test]
    fn adder_adds() {
        // k=3 bits: a=3, b=5 => b' = 8 mod 8 = 0 with carry-out 1.
        for (a_val, b_val) in [(3u64, 5u64), (1, 2), (7, 7), (0, 0), (6, 1)] {
            let k = 3;
            let c = adder(k, a_val, b_val);
            let v = simulate(&c);
            // Find the single basis state with amplitude ~1.
            let idx = v
                .iter()
                .enumerate()
                .max_by(|(_, x), (_, y)| x.norm_sqr().total_cmp(&y.norm_sqr()))
                .unwrap()
                .0;
            assert!((v[idx].norm_sqr() - 1.0).abs() < TOL, "not a basis state");
            // Decode: a_i at 2i+1, b_i at 2i+2, carry-out at n-1.
            let mut a_out = 0u64;
            let mut b_out = 0u64;
            for i in 0..k {
                a_out |= (((idx >> (2 * i + 1)) & 1) as u64) << i;
                b_out |= (((idx >> (2 * i + 2)) & 1) as u64) << i;
            }
            let carry = (idx >> (2 * k + 1)) & 1;
            let sum = a_val + b_val;
            assert_eq!(a_out, a_val, "a register clobbered");
            assert_eq!(
                b_out,
                sum & ((1 << k) - 1),
                "sum bits wrong for {a_val}+{b_val}"
            );
            assert_eq!(carry as u64, sum >> k, "carry wrong for {a_val}+{b_val}");
        }
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let v = simulate(&qft(4));
        let expect = 1.0 / 4.0;
        for amp in &v {
            assert!((amp.re - expect).abs() < TOL && amp.im.abs() < TOL);
        }
    }

    #[test]
    fn qft_peaks_on_fourier_basis() {
        // QFT |k> then inverse QFT returns |k>.
        let n = 3;
        let mut c = Circuit::new(n);
        c.x(0).x(2); // |101> = index 5
        c.extend(&qft(n));
        c.extend(&qft(n).dagger());
        let v = simulate(&c);
        assert!((v[5].norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn generators_are_normalized() {
        let circuits = vec![
            ghz(5),
            adder_n(8),
            qft(5),
            dnn(5, 2, 7),
            vqe(5, 2, 7),
            swap_test(2, 7),
            knn(2, 7),
            supremacy(2, 3, 4, 7),
            grover(4, 9, Some(2)),
            w_state(5),
            random_circuit(5, 40, 7),
        ];
        for c in circuits {
            let v = simulate(&c);
            assert!(
                (norm_sqr(&v) - 1.0).abs() < 1e-8,
                "{} not normalized",
                c.name()
            );
        }
    }

    #[test]
    fn w_state_has_exactly_n_nonzero_amplitudes() {
        let n = 5;
        let v = simulate(&w_state(n));
        let expect = 1.0 / (n as f64).sqrt();
        let mut count = 0;
        for (i, amp) in v.iter().enumerate() {
            if amp.norm_sqr() > 1e-12 {
                count += 1;
                assert!(i.count_ones() == 1, "non-Hamming-1 index {i}");
                assert!((amp.abs() - expect).abs() < TOL);
            }
        }
        assert_eq!(count, n);
    }

    #[test]
    fn grover_amplifies_marked_item() {
        let n = 5;
        let marked = 19;
        let v = simulate(&grover(n, marked, None));
        let p_marked = v[marked].norm_sqr();
        assert!(p_marked > 0.9, "p={p_marked}");
    }

    #[test]
    fn swap_test_ancilla_statistics() {
        // Identical states => ancilla measures 0 with probability 1.
        let m = 2;
        let n = 2 * m + 1;
        let mut c = Circuit::named(n, "swaptest_eq");
        for q in 1..n {
            c.ry(0.7, q); // same angle in both registers
        }
        c.h(0);
        for i in 0..m {
            c.cswap(0, 1 + i, 1 + m + i);
        }
        c.h(0);
        let v = simulate(&c);
        let p1: f64 = v
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!(p1 < 1e-10, "identical states must give p(1)=0, got {p1}");
    }

    #[test]
    fn supremacy_gate_structure() {
        let c = supremacy(2, 2, 8, 42);
        // 4 initial H + per cycle 4 single-qubit, plus CZ layers.
        assert_eq!(c.num_qubits(), 4);
        assert!(c.num_gates() > 8 * 4);
        let (g0, g1, g2) = c.control_profile();
        assert!(g0 >= 4 + 8 * 4);
        assert!(g1 > 0, "no CZ gates emitted");
        assert_eq!(g2, 0);
    }

    #[test]
    fn supremacy_single_qubit_layers_never_repeat() {
        // The generator promises no consecutive identical single-qubit gate
        // on the same qubit after the initial H wall.
        use crate::gate::GateKind;
        let c = supremacy(2, 2, 10, 3);
        let mut last: Vec<Option<GateKind>> = vec![None; 4];
        for g in c.iter().skip(4) {
            if g.num_controls() == 0 {
                if let Some(prev) = last[g.target] {
                    assert_ne!(prev, g.kind, "repeated {:?} on q{}", g.kind, g.target);
                }
                last[g.target] = Some(g.kind);
            }
        }
    }

    #[test]
    fn best_grid_is_square_ish() {
        assert_eq!(best_grid(20), (4, 5));
        assert_eq!(best_grid(16), (4, 4));
        assert_eq!(best_grid(26), (2, 13));
        assert_eq!(best_grid(7), (1, 7));
    }

    #[test]
    fn dnn_paper_gate_counts_close() {
        for (n, target) in [(16usize, 2032usize), (20, 6214), (25, 9644)] {
            let c = dnn_paper(n, 1);
            let got = c.num_gates();
            let rel = (got as f64 - target as f64).abs() / target as f64;
            assert!(rel < 0.05, "n={n}: got {got}, want ~{target}");
        }
    }

    #[test]
    fn random_circuit_is_deterministic_per_seed() {
        let a = random_circuit(6, 50, 11);
        let b = random_circuit(6, 50, 11);
        assert_eq!(a, b);
        let c = random_circuit(6, 50, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn sycamore_fsim_circuit_is_valid_and_irregular() {
        let c = supremacy_fsim(2, 3, 6, 5);
        assert_eq!(c.num_qubits(), 6);
        let v = simulate(&c);
        assert!((crate::complex::norm_sqr(&v) - 1.0).abs() < 1e-8);
        // fSim entangling makes the state dense quickly.
        let nonzero = v.iter().filter(|a| a.norm_sqr() > 1e-12).count();
        assert!(nonzero > 32, "only {nonzero} nonzero amplitudes");
    }

    #[test]
    fn from_spec_covers_every_family() {
        for spec in [
            "ghz:8",
            "adder:10",
            "qft:6",
            "dnn:6,2",
            "vqe:6,2",
            "knn:7",
            "swaptest:7",
            "supremacy:6,5",
            "grover:5",
            "wstate:6",
            "qaoa:6,2",
            "bv:6",
            "dj:6",
            "hs:6",
            "qpe:5",
            "random:5,30",
        ] {
            let c = from_spec(spec, 42).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(c.num_gates() > 0, "{spec} produced an empty circuit");
            let v = simulate(&c);
            assert!(
                (crate::complex::norm_sqr(&v) - 1.0).abs() < 1e-8,
                "{spec} not normalized"
            );
        }
    }

    #[test]
    fn from_spec_rejects_garbage() {
        assert!(from_spec("nope:5", 1).is_err());
        assert!(from_spec("ghz", 1).is_err());
        assert!(from_spec("ghz:x", 1).is_err());
    }

    #[test]
    fn table1_suite_has_twelve_members() {
        let suite = table1_suite(0.3, 1);
        assert_eq!(suite.len(), 12);
        for c in &suite {
            assert!(c.num_qubits() >= 6);
            assert!(c.num_gates() > 0);
        }
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        let secret = 0b10110u64;
        let c = bernstein_vazirani(5, secret);
        let v = simulate(&c);
        // Data register holds the secret; ancilla is in |-> (superposed).
        let p: f64 = v
            .iter()
            .enumerate()
            .filter(|(i, _)| (i & 0b11111) as u64 == secret)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!((p - 1.0).abs() < TOL, "p = {p}");
    }

    #[test]
    fn deutsch_jozsa_constant_vs_balanced() {
        // Constant oracle: data register returns to |0...0>.
        let v = simulate(&deutsch_jozsa(4, 0));
        let p0: f64 = v
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 0b1111 == 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!((p0 - 1.0).abs() < TOL);
        // Balanced oracle: probability of |0...0> is exactly 0.
        let v = simulate(&deutsch_jozsa(4, 0b1010));
        let p0: f64 = v
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 0b1111 == 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!(p0 < TOL);
    }

    #[test]
    fn hidden_shift_finds_the_shift() {
        let shift = 0b1101u64;
        let c = hidden_shift(4, shift);
        let v = simulate(&c);
        assert!((v[shift as usize].norm_sqr() - 1.0).abs() < 1e-9, "{v:?}");
    }

    #[test]
    fn phase_estimation_reads_exact_binary_phases() {
        // theta = 3/8 is exactly representable in 3 bits: counting register
        // must read 011 reversed ... i.e. the integer 3.
        let bits = 3;
        let theta = 3.0 / 8.0;
        let v = simulate(&phase_estimation(bits, theta));
        // Eigenstate qubit is |1> (bit `bits`); counting register = 3.
        let want_idx = 3 | (1 << bits);
        assert!(
            (v[want_idx].norm_sqr() - 1.0).abs() < 1e-9,
            "estimate distribution: {:?}",
            v.iter().map(|a| a.norm_sqr()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn qaoa_structure_and_normalization() {
        let c = qaoa(6, 2, 3);
        assert_eq!(c.num_qubits(), 6);
        let v = simulate(&c);
        assert!((crate::complex::norm_sqr(&v) - 1.0).abs() < 1e-9);
        let edges = qaoa_edges(6, 3);
        assert!(edges.len() >= 6);
        assert!(edges.iter().all(|&(a, b)| a < 6 && b < 6 && a != b));
    }

    #[test]
    fn basis_input_stays_basis_through_adder() {
        // The adder on basis inputs must keep the state a basis state after
        // every gate (this is what makes it DD-friendly).
        let c = adder(2, 2, 1);
        let mut v = crate::dense::zero_state(c.num_qubits());
        for g in c.iter() {
            crate::dense::apply_gate(&mut v, g);
            let nonzero = v.iter().filter(|a| a.norm_sqr() > 1e-12).count();
            assert_eq!(nonzero, 1, "state left the computational basis");
        }
        let _ = Complex64::ZERO; // silence unused import in some cfgs
    }
}
