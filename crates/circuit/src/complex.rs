//! Double-precision complex arithmetic.
//!
//! A self-contained `Complex64` (no external dependency) used throughout the
//! workspace for state amplitudes, gate-matrix entries, and DD edge weights.
//! The layout is `#[repr(C)]` `(re, im)` so a `&[Complex64]` state vector can
//! be processed as a flat `f64` stream by auto-vectorized kernels.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// `1/sqrt(2)`, the ubiquitous Hadamard amplitude.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}` — a phase factor on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Squared magnitude `re^2 + im^2` (cheaper than [`Self::abs`]).
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `sqrt(re^2 + im^2)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns `ZERO` for a zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let n = self.norm_sqr();
        if n == 0.0 {
            Complex64::ZERO
        } else {
            Complex64::new(self.re / n, -self.im / n)
        }
    }

    /// Fused multiply-add convenience: `self + a * b` (a MAC operation —
    /// the unit the FlatDD cost model counts).
    #[inline(always)]
    pub fn mac(self, a: Complex64, b: Complex64) -> Self {
        Complex64::new(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// True when both components are exactly zero.
    #[inline(always)]
    pub fn is_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }

    /// True when within `tol` of `other` in Chebyshev (per-component) distance.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// True when within `tol` of zero in Chebyshev distance.
    #[inline]
    pub fn approx_zero(self, tol: f64) -> bool {
        self.re.abs() <= tol && self.im.abs() <= tol
    }

    /// Square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex64::from_polar(r.sqrt(), theta / 2.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs * self
    }
}

// Division via reciprocal is the standard complex formulation.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}{:+.*}i", prec, self.re, prec, self.im)
        } else {
            write!(f, "{}{:+}i", self.re, self.im)
        }
    }
}

/// Squared 2-norm of a state vector: `sum |a_i|^2`.
pub fn norm_sqr(v: &[Complex64]) -> f64 {
    v.iter().map(|c| c.norm_sqr()).sum()
}

/// Chebyshev distance between two vectors, after aligning the global phase of
/// `b` to `a` (quantum states are physically equivalent up to global phase).
///
/// Returns `f64::INFINITY` when lengths differ.
pub fn state_distance_up_to_phase(a: &[Complex64], b: &[Complex64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    // Align phases on the largest-magnitude entry of `a`.
    let (k, _) = a
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| x.norm_sqr().total_cmp(&y.norm_sqr()))
        .unwrap_or((0, &Complex64::ZERO));
    let phase = if a[k].is_zero() || b[k].is_zero() {
        Complex64::ONE
    } else {
        let p = a[k] / b[k];
        let m = p.abs();
        if m == 0.0 {
            Complex64::ONE
        } else {
            p / m
        }
    };
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y * phase).abs())
        .fold(0.0, f64::max)
}

/// Plain Chebyshev distance between two vectors (no phase alignment).
pub fn state_distance(a: &[Complex64], b: &[Complex64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a * Complex64::ONE).approx_eq(a, TOL));
        assert!((a + Complex64::ZERO).approx_eq(a, TOL));
        assert!((-a + a).approx_eq(Complex64::ZERO, TOL));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(3.0, 4.0);
        let b = Complex64::new(-1.0, 2.0);
        let p = a * b;
        assert_eq!(p, Complex64::new(-3.0 - 4.0 * 2.0, 3.0 * 2.0 + -4.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex64::I * Complex64::I).approx_eq(Complex64::real(-1.0), TOL));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!((a * a.conj()).approx_eq(Complex64::real(25.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let a = Complex64::new(-1.0, 1.0);
        let back = Complex64::from_polar(a.abs(), a.arg());
        assert!(back.approx_eq(a, TOL));
    }

    #[test]
    fn cis_quarter_turn() {
        assert!(Complex64::cis(PI / 2.0).approx_eq(Complex64::I, TOL));
        assert!(Complex64::cis(PI).approx_eq(Complex64::real(-1.0), TOL));
    }

    #[test]
    fn recip_of_zero_is_zero() {
        assert_eq!(Complex64::ZERO.recip(), Complex64::ZERO);
    }

    #[test]
    fn mac_matches_mul_add() {
        let acc = Complex64::new(0.5, 0.5);
        let a = Complex64::new(1.0, -2.0);
        let b = Complex64::new(3.0, 0.25);
        assert!(acc.mac(a, b).approx_eq(acc + a * b, TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &c in &[
            Complex64::new(4.0, 0.0),
            Complex64::new(0.0, 2.0),
            Complex64::new(-3.0, -4.0),
        ] {
            let r = c.sqrt();
            assert!((r * r).approx_eq(c, 1e-10));
        }
    }

    #[test]
    fn norm_sqr_of_vector() {
        let v = [
            Complex64::new(FRAC_1_SQRT_2, 0.0),
            Complex64::new(0.0, FRAC_1_SQRT_2),
        ];
        assert!((norm_sqr(&v) - 1.0).abs() < TOL);
    }

    #[test]
    fn distance_up_to_phase_ignores_global_phase() {
        let v = [Complex64::new(0.6, 0.0), Complex64::new(0.0, 0.8)];
        let phase = Complex64::cis(1.234);
        let w: Vec<_> = v.iter().map(|&c| c * phase).collect();
        assert!(state_distance_up_to_phase(&v, &w) < 1e-12);
        // Plain distance sees the phase.
        assert!(state_distance(&v, &w) > 0.1);
    }

    #[test]
    fn distance_detects_real_difference() {
        let v = [Complex64::ONE, Complex64::ZERO];
        let w = [Complex64::ZERO, Complex64::ONE];
        assert!(state_distance_up_to_phase(&v, &w) > 0.9);
    }

    #[test]
    fn display_formats() {
        let c = Complex64::new(1.25, -0.5);
        assert_eq!(format!("{c}"), "1.25-0.5i");
        assert_eq!(format!("{c:.1}"), "1.2-0.5i");
    }
}
