//! Circuit transformation passes.
//!
//! Lightweight peephole optimizations used to pre-process circuits before
//! simulation (and to generate interesting inputs for the DD equivalence
//! checker): inverse-pair cancellation, rotation merging, and single-qubit
//! run fusion into one `Unitary` gate. Every pass preserves the circuit's
//! unitary exactly (up to global phase for rotation merging of `RZ`/`Phase`
//! families), which `qdd::check_equivalence` verifies in the tests of the
//! `flatdd-repro` workspace.

use crate::circuit::Circuit;
use crate::complex::Complex64;
use crate::gate::{mat2_mul, Gate, GateKind, Mat2};

/// True when `a` followed by `b` is the identity (inverse pair on the same
/// target with identical controls).
fn is_inverse_pair(a: &Gate, b: &Gate) -> bool {
    if a.target != b.target || a.controls != b.controls {
        return false;
    }
    use GateKind::*;
    matches!(
        (a.kind, b.kind),
        (X, X)
            | (Y, Y)
            | (Z, Z)
            | (H, H)
            | (Id, Id)
            | (S, Sdg)
            | (Sdg, S)
            | (T, Tdg)
            | (Tdg, T)
            | (SqrtX, SqrtXdg)
            | (SqrtXdg, SqrtX)
            | (SqrtY, SqrtYdg)
            | (SqrtYdg, SqrtY)
    ) || matches!((a.kind, b.kind),
        (RX(x), RX(y)) | (RY(x), RY(y)) | (RZ(x), RZ(y)) | (Phase(x), Phase(y))
            if (x + y).abs() < 1e-12)
}

/// Merges two same-axis rotations into one, if possible.
fn merge_rotations(a: &Gate, b: &Gate) -> Option<Gate> {
    if a.target != b.target || a.controls != b.controls {
        return None;
    }
    use GateKind::*;
    let kind = match (a.kind, b.kind) {
        (RX(x), RX(y)) => RX(x + y),
        (RY(x), RY(y)) => RY(x + y),
        (RZ(x), RZ(y)) => RZ(x + y),
        (Phase(x), Phase(y)) => Phase(x + y),
        (T, T) => S,
        (Tdg, Tdg) => Sdg,
        (S, S) => Z,
        (Sdg, Sdg) => Z,
        (S, T) | (T, S) => Phase(3.0 * std::f64::consts::FRAC_PI_4),
        _ => return None,
    };
    Some(Gate {
        kind,
        target: a.target,
        controls: a.controls.clone(),
    })
}

/// Do the two gates act on disjoint qubit sets (and therefore commute)?
fn disjoint(a: &Gate, b: &Gate) -> bool {
    a.qubits().all(|q| b.qubits().all(|p| p != q))
}

/// One optimization round: cancel inverse pairs and merge rotations,
/// looking *through* gates on disjoint qubits. Returns the number of gates
/// removed.
fn optimize_round(gates: &mut Vec<Gate>) -> usize {
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    let mut removed = 0usize;
    'next: for g in gates.drain(..) {
        // Find the most recent emitted gate that shares a qubit with g;
        // everything after it commutes with g.
        for k in (0..out.len()).rev() {
            if disjoint(&out[k], &g) {
                continue;
            }
            if is_inverse_pair(&out[k], &g) {
                out.remove(k);
                removed += 2;
                continue 'next;
            }
            if let Some(merged) = merge_rotations(&out[k], &g) {
                out[k] = merged;
                removed += 1;
                continue 'next;
            }
            break; // blocked by a non-cancelling gate on a shared qubit
        }
        out.push(g);
    }
    // Drop explicit identities and zero-angle rotations.
    let before = out.len();
    out.retain(|g| {
        !matches!(g.kind, GateKind::Id)
            && !matches!(g.kind,
                GateKind::RX(t) | GateKind::RY(t) | GateKind::RZ(t) | GateKind::Phase(t)
                    if t.abs() < 1e-14)
    });
    removed += before - out.len();
    *gates = out;
    removed
}

/// Cancels inverse pairs and merges rotations to a fixed point.
pub fn peephole_optimize(circuit: &Circuit) -> Circuit {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    while optimize_round(&mut gates) > 0 {}
    let mut out = Circuit::named(circuit.num_qubits(), format!("{}_opt", circuit.name()));
    for g in gates {
        out.push(g);
    }
    out
}

/// Fuses maximal runs of *uncontrolled* single-qubit gates on the same
/// qubit into one `Unitary` gate (through disjoint gates), reducing gate
/// count for simulators that pay per gate.
pub fn fuse_single_qubit_runs(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out: Vec<Gate> = Vec::with_capacity(circuit.num_gates());
    // Pending accumulated matrix per qubit + insertion position guard.
    let mut pending: Vec<Option<Mat2>> = vec![None; n];

    let flush = |pending: &mut Vec<Option<Mat2>>, out: &mut Vec<Gate>, q: usize| {
        if let Some(m) = pending[q].take() {
            if !is_identity(&m) {
                out.push(Gate::new(GateKind::Unitary(m), q));
            }
        }
    };

    for g in circuit.iter() {
        if g.controls.is_empty() {
            let q = g.target;
            let m = g.kind.matrix();
            pending[q] = Some(match pending[q] {
                Some(acc) => mat2_mul(&m, &acc),
                None => m,
            });
        } else {
            // Controlled gate: flush every involved qubit first.
            for q in g.qubits() {
                flush(&mut pending, &mut out, q);
            }
            out.push(g.clone());
        }
    }
    for q in 0..n {
        flush(&mut pending, &mut out, q);
    }
    let mut c = Circuit::named(n, format!("{}_fused1q", circuit.name()));
    for g in out {
        c.push(g);
    }
    c
}

fn is_identity(m: &Mat2) -> bool {
    m[0].approx_eq(Complex64::ONE, 1e-12)
        && m[3].approx_eq(Complex64::ONE, 1e-12)
        && m[1].approx_zero(1e-12)
        && m[2].approx_zero(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::state_distance_up_to_phase;
    use crate::dense;
    use crate::generators;

    const TOL: f64 = 1e-9;

    fn same_action(a: &Circuit, b: &Circuit) -> bool {
        state_distance_up_to_phase(&dense::simulate(a), &dense::simulate(b)) < TOL
    }

    #[test]
    fn cancels_adjacent_inverse_pairs() {
        let mut c = Circuit::new(3);
        c.h(0).h(0).x(1).x(1).s(2).sdg(2).cx(0, 1).cx(0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.num_gates(), 0);
    }

    #[test]
    fn cancels_through_disjoint_gates() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(1, 2).h(0); // the two H(0) cancel across q1/q2 gates
        let opt = peephole_optimize(&c);
        assert_eq!(opt.num_gates(), 2);
        assert!(same_action(&c, &opt));
    }

    #[test]
    fn merges_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 0).rz(0.4, 0).t(1).t(1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.num_gates(), 2);
        match opt.gates()[0].kind {
            GateKind::RZ(t) => assert!((t - 0.7).abs() < 1e-12),
            ref k => panic!("{k:?}"),
        }
        assert_eq!(opt.gates()[1].kind, GateKind::S);
        assert!(same_action(&c, &opt));
    }

    #[test]
    fn opposite_rotations_cancel() {
        let mut c = Circuit::new(1);
        c.rx(0.9, 0).rx(-0.9, 0).ry(0.2, 0).ry(-0.2, 0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.num_gates(), 0);
    }

    #[test]
    fn blocked_cancellation_is_left_alone() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0); // H...H do NOT cancel across a shared-qubit CX
        let opt = peephole_optimize(&c);
        assert_eq!(opt.num_gates(), 3);
        assert!(same_action(&c, &opt));
    }

    #[test]
    fn controlled_pairs_cancel_with_matching_controls() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).ccx(0, 1, 2).crz(0.5, 0, 1).crz(-0.5, 0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.num_gates(), 0);
    }

    #[test]
    fn optimizer_preserves_semantics_on_random_circuits() {
        for seed in 0..6u64 {
            let c = generators::random_circuit(5, 60, seed);
            let opt = peephole_optimize(&c);
            assert!(opt.num_gates() <= c.num_gates());
            assert!(same_action(&c, &opt), "seed {seed}");
        }
    }

    #[test]
    fn dagger_composition_optimizes_to_nothing() {
        let c = generators::random_circuit(4, 30, 9);
        let mut round_trip = c.clone();
        round_trip.extend(&c.dagger());
        let opt = peephole_optimize(&round_trip);
        // Everything should cancel: the dagger is the exact reverse.
        assert_eq!(opt.num_gates(), 0, "leftover: {opt}");
    }

    #[test]
    fn single_qubit_fusion_reduces_gate_count() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).s(0).rz(0.3, 0).cx(0, 1).h(1).x(1);
        let fused = fuse_single_qubit_runs(&c);
        // q0 run fuses to 1 gate, then CX, then q1 run fuses to 1 gate.
        assert_eq!(fused.num_gates(), 3);
        assert!(same_action(&c, &fused));
    }

    #[test]
    fn single_qubit_fusion_preserves_semantics_on_random_circuits() {
        for seed in 0..6u64 {
            let c = generators::random_circuit(5, 80, seed + 100);
            let fused = fuse_single_qubit_runs(&c);
            assert!(fused.num_gates() <= c.num_gates());
            assert!(same_action(&c, &fused), "seed {seed}");
        }
    }

    #[test]
    fn fusion_drops_identity_runs() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let fused = fuse_single_qubit_runs(&c);
        assert_eq!(fused.num_gates(), 0);
    }

    #[test]
    fn fused_gates_are_unitary() {
        use crate::gate::mat2_is_unitary;
        let c = generators::random_circuit(4, 60, 3);
        let fused = fuse_single_qubit_runs(&c);
        for g in fused.iter() {
            if let GateKind::Unitary(m) = g.kind {
                assert!(mat2_is_unitary(&m, 1e-9));
            }
        }
    }
}
