//! Circuit container and builder.

use crate::gate::{Control, Gate, GateKind, Mat2};
use std::fmt;

/// A quantum circuit: an ordered list of gates over `n` qubits.
///
/// Qubit 0 is the **least significant** bit of a basis-state index, matching
/// the convention of the paper (amplitude `a_{* ... * b_k * ... *}` has bit
/// `b_k` of the index at position `k`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n: usize,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// An empty circuit over `n` qubits.
    pub fn new(n: usize) -> Self {
        Circuit {
            n,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// An empty named circuit (the name shows up in harness output).
    pub fn named(n: usize, name: impl Into<String>) -> Self {
        Circuit {
            n,
            gates: Vec::new(),
            name: name.into(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The circuit's name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit's name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The gate list.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate, validating qubit bounds.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        assert!(
            gate.max_qubit() < self.n,
            "gate {gate} touches qubit {} but circuit has {} qubits",
            gate.max_qubit(),
            self.n
        );
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other` (must have the same width).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.n, other.n, "circuit width mismatch");
        self.gates.extend(other.gates.iter().cloned());
        self
    }

    /// The adjoint circuit: reversed gate order, each gate daggered.
    pub fn dagger(&self) -> Circuit {
        let mut c = Circuit::named(self.n, format!("{}_dg", self.name));
        for g in self.gates.iter().rev() {
            c.push(g.dagger());
        }
        c
    }

    // ---- single-qubit builders -------------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::H, q))
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::X, q))
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Y, q))
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Z, q))
    }

    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::S, q))
    }

    /// S-dagger on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Sdg, q))
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::T, q))
    }

    /// T-dagger on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Tdg, q))
    }

    /// sqrt(X) on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::SqrtX, q))
    }

    /// sqrt(Y) on `q`.
    pub fn sy(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::SqrtY, q))
    }

    /// sqrt(W) on `q`.
    pub fn sw(&mut self, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::SqrtW, q))
    }

    /// X-rotation by `theta` on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::RX(theta), q))
    }

    /// Y-rotation by `theta` on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::RY(theta), q))
    }

    /// Z-rotation by `theta` on `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::RZ(theta), q))
    }

    /// Phase gate diag(1, e^{i lambda}) on `q`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Phase(lambda), q))
    }

    /// General u3(theta, phi, lambda) on `q`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::U(theta, phi, lambda), q))
    }

    /// An explicit 2x2 unitary on `q`.
    pub fn unitary(&mut self, m: Mat2, q: usize) -> &mut Self {
        self.push(Gate::new(GateKind::Unitary(m), q))
    }

    // ---- controlled builders ---------------------------------------------

    /// CNOT with control `c`, target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::X, t, vec![Control::pos(c)]))
    }

    /// Controlled-Y.
    pub fn cy(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::Y, t, vec![Control::pos(c)]))
    }

    /// Controlled-Z.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::Z, t, vec![Control::pos(c)]))
    }

    /// Controlled-H.
    pub fn ch(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(GateKind::H, t, vec![Control::pos(c)]))
    }

    /// Controlled phase gate.
    pub fn cp(&mut self, lambda: f64, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::Phase(lambda),
            t,
            vec![Control::pos(c)],
        ))
    }

    /// Controlled Z-rotation.
    pub fn crz(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::RZ(theta),
            t,
            vec![Control::pos(c)],
        ))
    }

    /// Controlled Y-rotation.
    pub fn cry(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::RY(theta),
            t,
            vec![Control::pos(c)],
        ))
    }

    /// Controlled X-rotation.
    pub fn crx(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::RX(theta),
            t,
            vec![Control::pos(c)],
        ))
    }

    /// Controlled u3.
    pub fn cu3(&mut self, theta: f64, phi: f64, lambda: f64, c: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::U(theta, phi, lambda),
            t,
            vec![Control::pos(c)],
        ))
    }

    /// Toffoli (CCX) with controls `c0`, `c1` and target `t`.
    pub fn ccx(&mut self, c0: usize, c1: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::X,
            t,
            vec![Control::pos(c0), Control::pos(c1)],
        ))
    }

    /// CCZ.
    pub fn ccz(&mut self, c0: usize, c1: usize, t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::Z,
            t,
            vec![Control::pos(c0), Control::pos(c1)],
        ))
    }

    /// Multi-controlled X (all positive controls).
    pub fn mcx(&mut self, controls: &[usize], t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::X,
            t,
            controls.iter().map(|&q| Control::pos(q)).collect(),
        ))
    }

    /// Multi-controlled Z (all positive controls).
    pub fn mcz(&mut self, controls: &[usize], t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::Z,
            t,
            controls.iter().map(|&q| Control::pos(q)).collect(),
        ))
    }

    /// Multi-controlled phase gate.
    pub fn mcp(&mut self, lambda: f64, controls: &[usize], t: usize) -> &mut Self {
        self.push(Gate::controlled(
            GateKind::Phase(lambda),
            t,
            controls.iter().map(|&q| Control::pos(q)).collect(),
        ))
    }

    // ---- composite builders (decompositions) ------------------------------

    /// SWAP decomposed into three CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.cx(a, b).cx(b, a).cx(a, b)
    }

    /// Fredkin gate (controlled SWAP): CSWAP(c; a, b) as CX + Toffoli + CX.
    pub fn cswap(&mut self, c: usize, a: usize, b: usize) -> &mut Self {
        self.cx(b, a);
        self.push(Gate::controlled(
            GateKind::X,
            b,
            vec![Control::pos(c), Control::pos(a)],
        ));
        self.cx(b, a)
    }

    /// Ising interaction `exp(-i theta/2 Z_a Z_b)` via CX-RZ-CX.
    pub fn rzz(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.cx(a, b).rz(theta, b).cx(a, b)
    }

    /// `exp(-i theta/2 X_a X_b)`: RZZ conjugated by Hadamards (H maps Z to X).
    pub fn rxx(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.h(a).h(b).rzz(theta, a, b).h(a).h(b)
    }

    /// `exp(-i theta/2 Y_a Y_b)`: RZZ conjugated by `U = S H` per qubit
    /// (`U Z U^dagger = Y`), applied as `U^dagger`, `rzz`, `U` in circuit
    /// order.
    pub fn ryy(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.sdg(a).h(a).sdg(b).h(b);
        self.rzz(theta, a, b);
        self.h(a).s(a).h(b).s(b)
    }

    /// fSim gate (the Sycamore two-qubit interaction):
    /// `diag-block(1, [cos t, -i sin t; -i sin t, cos t], e^{-i phi})`,
    /// decomposed as `rxx(t) . ryy(t) . cp(-phi)` (the XX and YY terms
    /// commute).
    pub fn fsim(&mut self, theta: f64, phi: f64, a: usize, b: usize) -> &mut Self {
        self.rxx(theta, a, b).ryy(theta, a, b).cp(-phi, a, b)
    }

    /// iSWAP (`|01> <-> i|10>`), as `fsim(-pi/2, 0)`.
    pub fn iswap(&mut self, a: usize, b: usize) -> &mut Self {
        self.fsim(-std::f64::consts::FRAC_PI_2, 0.0, a, b)
    }

    // ---- analysis ----------------------------------------------------------

    /// Counts gates by number of controls: `(uncontrolled, single, multi)`.
    pub fn control_profile(&self) -> (usize, usize, usize) {
        let mut p = (0, 0, 0);
        for g in &self.gates {
            match g.num_controls() {
                0 => p.0 += 1,
                1 => p.1 += 1,
                _ => p.2 += 1,
            }
        }
        p
    }

    /// Gate census: `(mnemonic, count)` sorted by decreasing count (the
    /// mnemonic includes a `c`/`cc`... prefix per control).
    pub fn gate_census(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for g in &self.gates {
            let name = format!("{}{}", "c".repeat(g.num_controls()), g.kind.name());
            *counts.entry(name).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Circuit depth: length of the longest chain of gates that share qubits
    /// (standard as-soon-as-possible scheduling depth).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n];
        let mut depth = 0;
        for g in &self.gates {
            let d = 1 + g.qubits().map(|q| level[q]).max().unwrap_or(0);
            for q in g.qubits() {
                level[q] = d;
            }
            depth = depth.max(d);
        }
        depth
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit {} (n={}, gates={})",
            if self.name.is_empty() {
                "<anon>"
            } else {
                &self.name
            },
            self.n,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.control_profile(), (1, 2, 0));
    }

    #[test]
    #[should_panic(expected = "touches qubit")]
    fn out_of_range_gate_panics() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn swap_is_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(c.num_gates(), 3);
        assert!(c
            .gates()
            .iter()
            .all(|g| g.kind == GateKind::X && g.num_controls() == 1));
    }

    #[test]
    fn cswap_is_cx_toffoli_cx() {
        let mut c = Circuit::new(3);
        c.cswap(2, 0, 1);
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.gates()[1].num_controls(), 2);
    }

    #[test]
    fn depth_counts_parallel_layers() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // depth 1: all parallel
        assert_eq!(c.depth(), 1);
        c.cx(0, 1).cx(2, 3); // depth 2
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // depth 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn dagger_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let d = c.dagger();
        assert_eq!(d.num_gates(), 3);
        assert_eq!(d.gates()[0].kind, GateKind::X); // the CX comes first
        assert_eq!(d.gates()[2].kind, GateKind::H);
        assert_eq!(d.gates()[1].kind, GateKind::Sdg);
    }

    #[test]
    fn extend_appends() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.x(1);
        a.extend(&b);
        assert_eq!(a.num_gates(), 2);
    }

    #[test]
    fn two_qubit_interaction_builders_match_their_matrices() {
        use crate::complex::Complex64;
        use crate::dense;
        let theta = 0.7;
        let phi = 0.4;
        let c64 = Complex64::new;
        let (co, si) = (f64::cos(theta / 2.0), f64::sin(theta / 2.0));

        // Reference 4x4 matrices (row-major, qubit 0 = LSB).
        let rzz_ref = [
            Complex64::cis(-theta / 2.0),
            Complex64::cis(theta / 2.0),
            Complex64::cis(theta / 2.0),
            Complex64::cis(-theta / 2.0),
        ];
        // rxx: cos on the diagonal, -i sin on the anti-diagonal.
        // ryy: like rxx but +i sin on the outer anti-diagonal corners.
        type Case = (&'static str, Box<dyn Fn(&mut Circuit)>, Vec<Complex64>);
        let cases: Vec<Case> = vec![
            (
                "rzz",
                Box::new(move |c: &mut Circuit| {
                    c.rzz(theta, 0, 1);
                }),
                {
                    let mut m = vec![Complex64::ZERO; 16];
                    for (k, &d) in rzz_ref.iter().enumerate() {
                        m[k * 4 + k] = d;
                    }
                    m
                },
            ),
            (
                "rxx",
                Box::new(move |c: &mut Circuit| {
                    c.rxx(theta, 0, 1);
                }),
                {
                    let mut m = vec![Complex64::ZERO; 16];
                    for k in 0..4 {
                        m[k * 4 + k] = c64(co, 0.0);
                        m[k * 4 + (3 - k)] = c64(0.0, -si);
                    }
                    m
                },
            ),
            (
                "ryy",
                Box::new(move |c: &mut Circuit| {
                    c.ryy(theta, 0, 1);
                }),
                {
                    let mut m = vec![Complex64::ZERO; 16];
                    for k in 0..4 {
                        m[k * 4 + k] = c64(co, 0.0);
                        let s = if k == 0 || k == 3 { si } else { -si };
                        m[k * 4 + (3 - k)] = c64(0.0, s);
                    }
                    m
                },
            ),
            (
                "fsim",
                Box::new(move |c: &mut Circuit| {
                    c.fsim(theta, phi, 0, 1);
                }),
                {
                    let (ct, st) = (theta.cos(), theta.sin());
                    let mut m = vec![Complex64::ZERO; 16];
                    m[0] = Complex64::ONE;
                    m[4 + 1] = c64(ct, 0.0);
                    m[4 + 2] = c64(0.0, -st);
                    m[2 * 4 + 1] = c64(0.0, -st);
                    m[2 * 4 + 2] = c64(ct, 0.0);
                    m[3 * 4 + 3] = Complex64::cis(-phi);
                    m
                },
            ),
            (
                "iswap",
                Box::new(|c: &mut Circuit| {
                    c.iswap(0, 1);
                }),
                {
                    let mut m = vec![Complex64::ZERO; 16];
                    m[0] = Complex64::ONE;
                    m[15] = Complex64::ONE;
                    m[4 + 2] = Complex64::I;
                    m[2 * 4 + 1] = Complex64::I;
                    m
                },
            ),
        ];
        for (name, build, want) in cases {
            let mut c = Circuit::new(2);
            build(&mut c);
            // Column k of the unitary = circuit applied to |k>.
            for col in 0..4 {
                let mut v = dense::basis_state(2, col);
                for g in c.iter() {
                    dense::apply_gate(&mut v, g);
                }
                for row in 0..4 {
                    assert!(
                        v[row].approx_eq(want[row * 4 + col], 1e-10),
                        "{name}[{row}][{col}] = {:?}, want {:?}",
                        v[row],
                        want[row * 4 + col]
                    );
                }
            }
        }
    }

    #[test]
    fn gate_census_counts_by_mnemonic() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cx(0, 1).ccx(0, 1, 2).t(2);
        let census = c.gate_census();
        assert_eq!(census[0], ("h".to_string(), 2));
        assert!(census.contains(&("cx".to_string(), 1)));
        assert!(census.contains(&("ccx".to_string(), 1)));
        assert!(census.contains(&("t".to_string(), 1)));
    }

    #[test]
    fn display_contains_gates() {
        let mut c = Circuit::named(2, "bell");
        c.h(0).cx(0, 1);
        let s = format!("{c}");
        assert!(s.contains("bell"));
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0,q1"));
    }
}
