//! # qcircuit — quantum circuit IR and benchmark workloads
//!
//! The base substrate of the FlatDD reproduction workspace:
//!
//! * [`complex`] — self-contained `f64` complex arithmetic ([`Complex64`]).
//! * [`gate`] — gates canonicalized to *single-qubit unitary + control set*.
//! * [`circuit`] — the [`Circuit`] container/builder.
//! * [`qasm`] — an OpenQASM 2.0 parser covering the QASMBench/MQT-Bench
//!   subset (custom gate definitions, broadcasting, parameter expressions).
//! * [`generators`] — parameterized constructions of every benchmark family
//!   in the paper's evaluation (GHZ, Adder, QFT, DNN, VQE, KNN, swap test,
//!   quantum-supremacy random circuits, Grover, W state).
//! * [`dense`] — naive dense reference simulation used as ground truth by
//!   the test suites of every crate.
//!
//! ## Conventions
//!
//! Qubit `0` is the least significant bit of a basis-state index. A state
//! vector over `n` qubits is a flat `Vec<Complex64>` of length `2^n` in
//! natural index order.

#![warn(missing_docs)]

pub mod circuit;
pub mod complex;
pub mod dense;
pub mod gate;
pub mod generators;
pub mod noise;
pub mod observable;
pub mod qasm;
pub mod transform;

pub use circuit::Circuit;
pub use complex::Complex64;
pub use gate::{Control, Gate, GateKind, Mat2};
pub use noise::{NoiseChannel, NoiseModel};
pub use observable::{Hamiltonian, ObservableError, Pauli, PauliString};
pub use qasm::{parse_qasm, QasmError};
