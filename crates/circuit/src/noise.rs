//! Stochastic Pauli-noise modeling (Monte-Carlo trajectories).
//!
//! A Pauli channel applied after every gate is *twirled* into randomly
//! sampled Pauli insertions: each trajectory is a plain (noise-free)
//! circuit, so any strong simulator in this workspace can run it, and
//! observable expectations are recovered by averaging over trajectories —
//! the standard stochastic alternative to density-matrix simulation
//! (cf. noise-aware DD simulation, Grurl et al. \[22\]).

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-qubit Pauli noise channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// With probability `p`, apply a uniformly random non-identity Pauli.
    Depolarizing {
        /// Error probability per qubit use.
        p: f64,
    },
    /// With probability `p`, apply X.
    BitFlip {
        /// Error probability per qubit use.
        p: f64,
    },
    /// With probability `p`, apply Z.
    PhaseFlip {
        /// Error probability per qubit use.
        p: f64,
    },
}

impl NoiseChannel {
    /// Samples the Pauli inserted by one use of the channel (None = no
    /// error).
    fn sample(&self, rng: &mut StdRng) -> Option<GateKind> {
        match *self {
            NoiseChannel::Depolarizing { p } => {
                if rng.gen::<f64>() < p {
                    Some(match rng.gen_range(0..3u8) {
                        0 => GateKind::X,
                        1 => GateKind::Y,
                        _ => GateKind::Z,
                    })
                } else {
                    None
                }
            }
            NoiseChannel::BitFlip { p } => (rng.gen::<f64>() < p).then_some(GateKind::X),
            NoiseChannel::PhaseFlip { p } => (rng.gen::<f64>() < p).then_some(GateKind::Z),
        }
    }

    fn probability(&self) -> f64 {
        match *self {
            NoiseChannel::Depolarizing { p }
            | NoiseChannel::BitFlip { p }
            | NoiseChannel::PhaseFlip { p } => p,
        }
    }
}

/// A gate-level noise model: one channel applied to every qubit a gate
/// touches, after the gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// The per-qubit channel.
    pub channel: NoiseChannel,
}

impl NoiseModel {
    /// Depolarizing noise with per-qubit-use error probability `p`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        NoiseModel {
            channel: NoiseChannel::Depolarizing { p },
        }
    }

    /// Bit-flip noise.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        NoiseModel {
            channel: NoiseChannel::BitFlip { p },
        }
    }

    /// Phase-flip noise.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        NoiseModel {
            channel: NoiseChannel::PhaseFlip { p },
        }
    }

    /// Samples one noisy trajectory: the original gates with Pauli errors
    /// inserted after each gate on each touched qubit.
    pub fn sample_trajectory(&self, circuit: &Circuit, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Circuit::named(circuit.num_qubits(), format!("{}_noisy", circuit.name()));
        for g in circuit.iter() {
            out.push(g.clone());
            let touched: Vec<usize> = g.qubits().collect();
            for q in touched {
                if let Some(kind) = self.channel.sample(&mut rng) {
                    out.push(Gate::new(kind, q));
                }
            }
        }
        out
    }

    /// Expected number of inserted errors for a circuit (diagnostic).
    pub fn expected_errors(&self, circuit: &Circuit) -> f64 {
        let uses: usize = circuit.iter().map(|g| g.qubits().count()).sum();
        uses as f64 * self.channel.probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::generators;
    use crate::observable::PauliString;

    #[test]
    fn zero_noise_is_the_identity_transform() {
        let c = generators::ghz(5);
        let noisy = NoiseModel::depolarizing(0.0).sample_trajectory(&c, 1);
        assert_eq!(noisy.num_gates(), c.num_gates());
    }

    #[test]
    fn full_bitflip_inserts_everywhere() {
        let c = generators::ghz(4); // 1 H + 3 CX = 1 + 3*2 = 7 qubit uses
        let model = NoiseModel::bit_flip(1.0);
        let noisy = model.sample_trajectory(&c, 1);
        assert_eq!(noisy.num_gates(), c.num_gates() + 7);
        assert_eq!(model.expected_errors(&c), 7.0);
    }

    #[test]
    fn trajectories_differ_across_seeds() {
        let c = generators::qft(4);
        let model = NoiseModel::depolarizing(0.3);
        let a = model.sample_trajectory(&c, 1);
        let b = model.sample_trajectory(&c, 2);
        assert_ne!(a, b, "different seeds should give different trajectories");
        let same = model.sample_trajectory(&c, 1);
        assert_eq!(a, same, "same seed must reproduce the trajectory");
    }

    #[test]
    fn phase_flip_decay_of_x_expectation() {
        // |+> under k phase-flip channels: <X> = (1-2p)^k exactly.
        let p = 0.2;
        let k = 5;
        let mut c = Circuit::new(1);
        c.h(0);
        for _ in 0..k - 1 {
            c.push(Gate::new(GateKind::Id, 0)); // idle steps, each noisy
        }
        let model = NoiseModel::phase_flip(p);
        let x = PauliString::x(1.0, 0);
        let trajectories = 6000;
        let mut acc = 0.0;
        for t in 0..trajectories {
            let noisy = model.sample_trajectory(&c, t as u64);
            let v = dense::simulate(&noisy);
            acc += x.expectation_dense(&v);
        }
        let got = acc / trajectories as f64;
        let want = (1.0 - 2.0 * p).powi(k);
        assert!(
            (got - want).abs() < 0.03,
            "decayed <X>: got {got}, want {want}"
        );
    }

    #[test]
    fn depolarizing_decay_of_z_expectation() {
        // |0> under k depolarizing channels: <Z> = (1 - 4p/3)^k.
        let p = 0.15;
        let k = 4;
        let mut c = Circuit::new(1);
        for _ in 0..k {
            c.push(Gate::new(GateKind::Id, 0));
        }
        let model = NoiseModel::depolarizing(p);
        let z = PauliString::z(1.0, 0);
        let trajectories = 8000;
        let mut acc = 0.0;
        for t in 0..trajectories {
            let noisy = model.sample_trajectory(&c, t as u64);
            let v = dense::simulate(&noisy);
            acc += z.expectation_dense(&v);
        }
        let got = acc / trajectories as f64;
        let want = (1.0 - 4.0 * p / 3.0).powi(k);
        assert!(
            (got - want).abs() < 0.03,
            "decayed <Z>: got {got}, want {want}"
        );
    }
}
