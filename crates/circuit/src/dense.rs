//! Naive dense reference implementations.
//!
//! Deliberately simple O(2^n)–O(4^n) routines used as ground truth by the
//! test suites of every crate in the workspace. Not meant to be fast.

use crate::circuit::Circuit;
use crate::complex::Complex64;
use crate::gate::Gate;

/// `|0...0>` over `n` qubits as a flat array of length `2^n`.
pub fn zero_state(n: usize) -> Vec<Complex64> {
    let mut v = vec![Complex64::ZERO; 1usize << n];
    v[0] = Complex64::ONE;
    v
}

/// A computational basis state `|index>` over `n` qubits.
pub fn basis_state(n: usize, index: usize) -> Vec<Complex64> {
    assert!(index < (1usize << n));
    let mut v = vec![Complex64::ZERO; 1usize << n];
    v[index] = Complex64::ONE;
    v
}

/// Applies `gate` to `state` with straightforward index arithmetic.
///
/// For every basis index whose control bits are satisfied, the amplitude pair
/// `(a_{..0_t..}, a_{..1_t..})` is multiplied by the gate's 2x2 matrix.
pub fn apply_gate(state: &mut [Complex64], gate: &Gate) {
    let m = gate.kind.matrix();
    let t = gate.target;
    let tbit = 1usize << t;
    for i in 0..state.len() {
        if i & tbit != 0 {
            continue; // visit each pair once, from its 0-side index
        }
        let controls_ok = gate
            .controls
            .iter()
            .all(|c| ((i >> c.qubit) & 1 == 1) == c.positive);
        if !controls_ok {
            continue;
        }
        let j = i | tbit;
        let a0 = state[i];
        let a1 = state[j];
        state[i] = m[0] * a0 + m[1] * a1;
        state[j] = m[2] * a0 + m[3] * a1;
    }
}

/// Runs a whole circuit on `|0...0>` and returns the final state.
pub fn simulate(circuit: &Circuit) -> Vec<Complex64> {
    let mut state = zero_state(circuit.num_qubits());
    for g in circuit.iter() {
        apply_gate(&mut state, g);
    }
    state
}

/// Builds the full `2^n x 2^n` matrix (row-major) of a single gate.
///
/// Exponential in `n`; for tests with small `n` only.
pub fn gate_matrix(n: usize, gate: &Gate) -> Vec<Complex64> {
    let dim = 1usize << n;
    let mut mat = vec![Complex64::ZERO; dim * dim];
    for col in 0..dim {
        let mut v = basis_state(n, col);
        apply_gate(&mut v, gate);
        for (row, &amp) in v.iter().enumerate() {
            mat[row * dim + col] = amp;
        }
    }
    mat
}

/// Dense matrix-matrix product of two row-major `dim x dim` matrices: `a * b`.
pub fn mat_mul(a: &[Complex64], b: &[Complex64], dim: usize) -> Vec<Complex64> {
    assert_eq!(a.len(), dim * dim);
    assert_eq!(b.len(), dim * dim);
    let mut out = vec![Complex64::ZERO; dim * dim];
    for i in 0..dim {
        for k in 0..dim {
            let aik = a[i * dim + k];
            if aik.is_zero() {
                continue;
            }
            for j in 0..dim {
                out[i * dim + j] += aik * b[k * dim + j];
            }
        }
    }
    out
}

/// Dense matrix-vector product of a row-major `dim x dim` matrix.
pub fn mat_vec(m: &[Complex64], v: &[Complex64]) -> Vec<Complex64> {
    let dim = v.len();
    assert_eq!(m.len(), dim * dim);
    let mut out = vec![Complex64::ZERO; dim];
    for i in 0..dim {
        let mut acc = Complex64::ZERO;
        for j in 0..dim {
            acc = acc.mac(m[i * dim + j], v[j]);
        }
        out[i] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{norm_sqr, state_distance};
    use crate::gate::{Control, GateKind};

    const TOL: f64 = 1e-12;

    #[test]
    fn zero_state_shape() {
        let v = zero_state(3);
        assert_eq!(v.len(), 8);
        assert_eq!(v[0], Complex64::ONE);
        assert!((norm_sqr(&v) - 1.0).abs() < TOL);
    }

    #[test]
    fn hadamard_makes_plus_state() {
        let mut v = zero_state(1);
        apply_gate(&mut v, &Gate::new(GateKind::H, 0));
        assert!((v[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        assert!((v[1].re - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
    }

    #[test]
    fn x_flips_target_bit_only() {
        let mut v = basis_state(3, 0b010);
        apply_gate(&mut v, &Gate::new(GateKind::X, 0));
        assert_eq!(v, basis_state(3, 0b011));
        apply_gate(&mut v, &Gate::new(GateKind::X, 2));
        assert_eq!(v, basis_state(3, 0b111));
    }

    #[test]
    fn cx_respects_control() {
        // control qubit 0, target qubit 1
        let g = Gate::controlled(GateKind::X, 1, vec![Control::pos(0)]);
        let mut v = basis_state(2, 0b00);
        apply_gate(&mut v, &g);
        assert_eq!(v, basis_state(2, 0b00)); // control 0: no-op
        let mut v = basis_state(2, 0b01);
        apply_gate(&mut v, &g);
        assert_eq!(v, basis_state(2, 0b11)); // control 1: flip target
    }

    #[test]
    fn negative_control_activates_on_zero() {
        let g = Gate::controlled(GateKind::X, 1, vec![Control::neg(0)]);
        let mut v = basis_state(2, 0b00);
        apply_gate(&mut v, &g);
        assert_eq!(v, basis_state(2, 0b10));
        let mut v = basis_state(2, 0b01);
        apply_gate(&mut v, &g);
        assert_eq!(v, basis_state(2, 0b01));
    }

    #[test]
    fn toffoli_truth_table() {
        let g = Gate::controlled(GateKind::X, 2, vec![Control::pos(0), Control::pos(1)]);
        for idx in 0..8usize {
            let mut v = basis_state(3, idx);
            apply_gate(&mut v, &g);
            let expect = if idx & 0b11 == 0b11 { idx ^ 0b100 } else { idx };
            assert_eq!(v, basis_state(3, expect), "idx={idx}");
        }
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let v = simulate(&c);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((v[0].re - s).abs() < TOL);
        assert!(v[1].approx_zero(TOL));
        assert!(v[2].approx_zero(TOL));
        assert!((v[3].re - s).abs() < TOL);
    }

    #[test]
    fn swap_decomposition_swaps() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let mut v = basis_state(2, 0b01);
        for g in c.iter() {
            apply_gate(&mut v, g);
        }
        assert_eq!(v, basis_state(2, 0b10));
    }

    #[test]
    fn cswap_decomposition_truth_table() {
        let mut c = Circuit::new(3);
        c.cswap(2, 0, 1);
        for idx in 0..8usize {
            let mut v = basis_state(3, idx);
            for g in c.iter() {
                apply_gate(&mut v, g);
            }
            let expect = if idx & 0b100 != 0 {
                // swap bits 0 and 1
                let b0 = idx & 1;
                let b1 = (idx >> 1) & 1;
                (idx & 0b100) | (b0 << 1) | b1
            } else {
                idx
            };
            assert!(
                state_distance(&v, &basis_state(3, expect)) < TOL,
                "idx={idx}, got {v:?}"
            );
        }
    }

    #[test]
    fn gate_matrix_of_cx_is_permutation() {
        // control 0, target 1 with q0 least significant:
        // |00>->|00>, |01>->|11>, |10>->|10>, |11>->|01>
        let g = Gate::controlled(GateKind::X, 1, vec![Control::pos(0)]);
        let m = gate_matrix(2, &g);
        let one = Complex64::ONE;
        let expected_rows = [0usize, 3, 2, 1]; // column -> row of the 1 entry
        for (col, &row) in expected_rows.iter().enumerate() {
            assert_eq!(m[row * 4 + col], one, "col={col}");
        }
    }

    #[test]
    fn mat_vec_matches_apply() {
        let g = Gate::controlled(GateKind::H, 0, vec![Control::pos(2)]);
        let m = gate_matrix(3, &g);
        let mut v: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.05))
            .collect();
        let by_mat = mat_vec(&m, &v);
        apply_gate(&mut v, &g);
        assert!(state_distance(&by_mat, &v) < TOL);
    }

    #[test]
    fn mat_mul_identity() {
        let g = Gate::new(GateKind::T, 1);
        let m = gate_matrix(2, &g);
        let mut id = vec![Complex64::ZERO; 16];
        for i in 0..4 {
            id[i * 4 + i] = Complex64::ONE;
        }
        let p = mat_mul(&m, &id, 4);
        assert!(state_distance(&p, &m) < TOL);
    }

    #[test]
    fn unitarity_of_simulation() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(2).ccx(0, 1, 3).ry(0.3, 2).cz(2, 3);
        let v = simulate(&c);
        assert!((norm_sqr(&v) - 1.0).abs() < 1e-10);
    }
}
