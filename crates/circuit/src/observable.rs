//! Pauli-string observables and Hamiltonians.
//!
//! The standard measurement layer on top of a strong simulator: weighted
//! sums of Pauli strings, with dense reference evaluation for tests. The
//! engines implement fast expectation values against these types (the array
//! engine via bit manipulation, the DD engine via operator DDs).

use crate::complex::Complex64;
use crate::gate::Mat2;
use std::fmt;

/// Error building or applying an observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservableError {
    /// The same qubit appears twice in one Pauli string.
    DuplicateQubit(usize),
    /// A Pauli factor references a qubit outside the register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register width.
        num_qubits: usize,
    },
}

impl fmt::Display for ObservableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObservableError::DuplicateQubit(q) => {
                write!(f, "duplicate qubit {q} in Pauli string")
            }
            ObservableError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "Pauli on qubit {qubit} but only {num_qubits} qubits")
            }
        }
    }
}

impl std::error::Error for ObservableError {}

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// The 2x2 matrix.
    pub fn matrix(self) -> Mat2 {
        let c = Complex64::new;
        let r = Complex64::real;
        match self {
            Pauli::I => [r(1.0), r(0.0), r(0.0), r(1.0)],
            Pauli::X => [r(0.0), r(1.0), r(1.0), r(0.0)],
            Pauli::Y => [r(0.0), c(0.0, -1.0), c(0.0, 1.0), r(0.0)],
            Pauli::Z => [r(1.0), r(0.0), r(0.0), r(-1.0)],
        }
    }

    /// Parses one character (case-insensitive).
    pub fn from_char(ch: char) -> Option<Pauli> {
        match ch.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }
}

/// A Pauli string: a tensor product of single-qubit Paulis with a real
/// coefficient (Hermitian by construction).
#[derive(Clone, Debug, PartialEq)]
pub struct PauliString {
    /// Real coefficient.
    pub coeff: f64,
    /// Non-identity factors as (qubit, operator), sorted by qubit.
    pub ops: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// Builds a string from (qubit, Pauli) pairs; identities are dropped,
    /// duplicate qubits are rejected.
    ///
    /// # Panics
    /// On duplicate qubits. Use [`Self::try_new`] for input that is not
    /// known to be well-formed.
    pub fn new(coeff: f64, ops: Vec<(usize, Pauli)>) -> Self {
        Self::try_new(coeff, ops).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::new`]: rejects duplicate qubits with a typed error
    /// instead of panicking.
    pub fn try_new(
        coeff: f64,
        mut ops: Vec<(usize, Pauli)>,
    ) -> std::result::Result<Self, ObservableError> {
        ops.retain(|&(_, p)| p != Pauli::I);
        ops.sort_by_key(|&(q, _)| q);
        for w in ops.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(ObservableError::DuplicateQubit(w[0].0));
            }
        }
        Ok(PauliString { coeff, ops })
    }

    /// The identity string with a coefficient (a constant energy offset).
    pub fn identity(coeff: f64) -> Self {
        PauliString {
            coeff,
            ops: Vec::new(),
        }
    }

    /// `coeff * Z_q`.
    pub fn z(coeff: f64, q: usize) -> Self {
        PauliString::new(coeff, vec![(q, Pauli::Z)])
    }

    /// `coeff * X_q`.
    pub fn x(coeff: f64, q: usize) -> Self {
        PauliString::new(coeff, vec![(q, Pauli::X)])
    }

    /// `coeff * Z_a Z_b`.
    pub fn zz(coeff: f64, a: usize, b: usize) -> Self {
        PauliString::new(coeff, vec![(a, Pauli::Z), (b, Pauli::Z)])
    }

    /// Parses a label like `"1.5 * XIZY"` or `"XIZY"` (qubit 0 is the
    /// RIGHTMOST character, matching ket notation `|q_{n-1} ... q_0>`).
    pub fn parse(label: &str) -> Option<PauliString> {
        let (coeff, body) = match label.split_once('*') {
            Some((c, b)) => (c.trim().parse::<f64>().ok()?, b.trim()),
            None => (1.0, label.trim()),
        };
        let mut ops = Vec::new();
        let chars: Vec<char> = body.chars().collect();
        let n = chars.len();
        for (i, &ch) in chars.iter().enumerate() {
            let p = Pauli::from_char(ch)?;
            if p != Pauli::I {
                ops.push((n - 1 - i, p));
            }
        }
        PauliString::try_new(coeff, ops).ok()
    }

    /// Largest qubit index referenced (None for the identity string).
    pub fn max_qubit(&self) -> Option<usize> {
        self.ops.last().map(|&(q, _)| q)
    }

    /// True when every factor is diagonal (I or Z).
    pub fn is_diagonal(&self) -> bool {
        self.ops.iter().all(|&(_, p)| matches!(p, Pauli::Z))
    }

    /// The per-level matrices of this string over `n` qubits
    /// (`mats[l]` acts on qubit `l`).
    ///
    /// # Panics
    /// When a factor references a qubit `>= n`; use
    /// [`Self::try_level_matrices`] for unvalidated widths.
    pub fn level_matrices(&self, n: usize) -> Vec<Mat2> {
        self.try_level_matrices(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::level_matrices`]: a factor outside the register is
    /// a typed error instead of a panic.
    pub fn try_level_matrices(&self, n: usize) -> std::result::Result<Vec<Mat2>, ObservableError> {
        let mut mats = vec![Pauli::I.matrix(); n];
        for &(q, p) in &self.ops {
            if q >= n {
                return Err(ObservableError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: n,
                });
            }
            mats[q] = p.matrix();
        }
        Ok(mats)
    }

    /// Dense-reference expectation `<psi| P |psi>` (O(2^n · |ops|)).
    pub fn expectation_dense(&self, state: &[Complex64]) -> f64 {
        let mut acc = Complex64::ZERO;
        for (idx, &amp) in state.iter().enumerate() {
            if amp.is_zero() {
                continue;
            }
            // P|idx> = phase * |jdx>
            let mut j = idx;
            let mut phase = Complex64::ONE;
            for &(q, p) in &self.ops {
                let bit = (idx >> q) & 1;
                match p {
                    Pauli::I => {}
                    Pauli::X => j ^= 1 << q,
                    Pauli::Y => {
                        j ^= 1 << q;
                        phase *= if bit == 0 {
                            Complex64::I
                        } else {
                            -Complex64::I
                        };
                    }
                    Pauli::Z => {
                        if bit == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            acc += state[j].conj() * phase * amp;
        }
        (acc * self.coeff).re
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} *", self.coeff)?;
        if self.ops.is_empty() {
            return write!(f, " I");
        }
        for &(q, p) in &self.ops {
            write!(f, " {:?}{}", p, q)?;
        }
        Ok(())
    }
}

/// A Hermitian observable: a weighted sum of Pauli strings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Hamiltonian {
    /// The terms.
    pub terms: Vec<PauliString>,
}

impl Hamiltonian {
    /// Empty Hamiltonian (zero operator).
    pub fn new() -> Self {
        Hamiltonian { terms: Vec::new() }
    }

    /// Adds a term.
    pub fn add(&mut self, term: PauliString) -> &mut Self {
        self.terms.push(term);
        self
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Largest qubit index referenced.
    pub fn max_qubit(&self) -> Option<usize> {
        self.terms.iter().filter_map(|t| t.max_qubit()).max()
    }

    /// Dense-reference expectation.
    pub fn expectation_dense(&self, state: &[Complex64]) -> f64 {
        self.terms.iter().map(|t| t.expectation_dense(state)).sum()
    }

    /// Transverse-field Ising chain:
    /// `H = -j * sum Z_i Z_{i+1} - h * sum X_i` over `n` sites.
    pub fn transverse_ising(n: usize, j: f64, h: f64) -> Self {
        let mut ham = Hamiltonian::new();
        for q in 0..n.saturating_sub(1) {
            ham.add(PauliString::zz(-j, q, q + 1));
        }
        for q in 0..n {
            ham.add(PauliString::x(-h, q));
        }
        ham
    }

    /// Heisenberg XXZ chain:
    /// `H = sum (jx X X + jx Y Y + jz Z Z)` over neighbors.
    pub fn heisenberg_xxz(n: usize, jx: f64, jz: f64) -> Self {
        let mut ham = Hamiltonian::new();
        for q in 0..n.saturating_sub(1) {
            ham.add(PauliString::new(jx, vec![(q, Pauli::X), (q + 1, Pauli::X)]));
            ham.add(PauliString::new(jx, vec![(q, Pauli::Y), (q + 1, Pauli::Y)]));
            ham.add(PauliString::new(jz, vec![(q, Pauli::Z), (q + 1, Pauli::Z)]));
        }
        ham
    }

    /// MaxCut cost Hamiltonian `sum_(a,b) w/2 * (1 - Z_a Z_b)` over edges.
    pub fn maxcut(edges: &[(usize, usize)], weight: f64) -> Self {
        let mut ham = Hamiltonian::new();
        for &(a, b) in edges {
            ham.add(PauliString::identity(weight / 2.0));
            ham.add(PauliString::zz(-weight / 2.0, a, b));
        }
        ham
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    const TOL: f64 = 1e-10;

    #[test]
    fn pauli_matrices_square_to_identity() {
        use crate::gate::mat2_mul;
        for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            let m = p.matrix();
            let sq = mat2_mul(&m, &m);
            assert!(sq[0].approx_eq(Complex64::ONE, TOL));
            assert!(sq[3].approx_eq(Complex64::ONE, TOL));
            assert!(sq[1].approx_zero(TOL));
            assert!(sq[2].approx_zero(TOL));
        }
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let z0 = PauliString::z(1.0, 0);
        assert!((z0.expectation_dense(&dense::basis_state(2, 0)) - 1.0).abs() < TOL);
        assert!((z0.expectation_dense(&dense::basis_state(2, 1)) + 1.0).abs() < TOL);
        assert!((z0.expectation_dense(&dense::basis_state(2, 2)) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut v = dense::zero_state(1);
        dense::apply_gate(&mut v, &crate::gate::Gate::new(crate::gate::GateKind::H, 0));
        assert!((PauliString::x(1.0, 0).expectation_dense(&v) - 1.0).abs() < TOL);
        assert!(PauliString::z(1.0, 0).expectation_dense(&v).abs() < TOL);
    }

    #[test]
    fn y_expectation_on_circular_state() {
        // |+i> = (|0> + i|1>)/sqrt2 has <Y> = +1.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let v = vec![Complex64::real(s), Complex64::new(0.0, s)];
        assert!(
            (PauliString::new(1.0, vec![(0, Pauli::Y)]).expectation_dense(&v) - 1.0).abs() < TOL
        );
    }

    #[test]
    fn zz_on_ghz_is_one() {
        let v = dense::simulate(&crate::generators::ghz(4));
        for q in 0..3 {
            assert!((PauliString::zz(1.0, q, q + 1).expectation_dense(&v) - 1.0).abs() < TOL);
        }
        // Single-qubit Z has expectation 0 on GHZ.
        assert!(PauliString::z(1.0, 2).expectation_dense(&v).abs() < TOL);
    }

    #[test]
    fn parse_labels() {
        let p = PauliString::parse("0.5 * XIZ").unwrap();
        assert_eq!(p.coeff, 0.5);
        // rightmost char = qubit 0: Z0, X2.
        assert_eq!(p.ops, vec![(0, Pauli::Z), (2, Pauli::X)]);
        let q = PauliString::parse("YZ").unwrap();
        assert_eq!(q.coeff, 1.0);
        assert_eq!(q.ops, vec![(0, Pauli::Z), (1, Pauli::Y)]);
        assert!(PauliString::parse("AB").is_none());
    }

    #[test]
    fn identity_string_is_constant() {
        let v = dense::simulate(&crate::generators::random_circuit(4, 30, 5));
        let e = PauliString::identity(2.5).expectation_dense(&v);
        assert!((e - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ising_ground_state_energy_of_aligned_state() {
        // |0000> on -J ZZ - h X: ZZ terms give -J(n-1), X terms give 0.
        let h = Hamiltonian::transverse_ising(4, 1.0, 0.5);
        let v = dense::zero_state(4);
        assert!((h.expectation_dense(&v) + 3.0).abs() < TOL);
        assert_eq!(h.len(), 3 + 4);
    }

    #[test]
    fn maxcut_counts_cut_edges() {
        // Edges of a path 0-1-2; state |010> cuts both edges => cost 2.
        let h = Hamiltonian::maxcut(&[(0, 1), (1, 2)], 1.0);
        let v = dense::basis_state(3, 0b010);
        assert!((h.expectation_dense(&v) - 2.0).abs() < TOL);
        // |000> cuts nothing.
        assert!(h.expectation_dense(&dense::basis_state(3, 0)).abs() < TOL);
    }

    #[test]
    fn heisenberg_is_hermitian_in_expectation() {
        // Expectations of Hermitian sums are real for random states; our
        // dense evaluator returns the real part — verify against a matrix-
        // free identity: <XX> on |00> is 0, on Bell is 1.
        let h = Hamiltonian::heisenberg_xxz(2, 1.0, 0.7);
        let mut bell = dense::zero_state(2);
        dense::apply_gate(
            &mut bell,
            &crate::gate::Gate::new(crate::gate::GateKind::H, 0),
        );
        dense::apply_gate(
            &mut bell,
            &crate::gate::Gate::controlled(
                crate::gate::GateKind::X,
                1,
                vec![crate::gate::Control::pos(0)],
            ),
        );
        // Bell: <XX> = 1, <YY> = -1, <ZZ> = 1 => jx - jx + jz = 0.7
        assert!((h.expectation_dense(&bell) - 0.7).abs() < TOL);
    }

    #[test]
    fn level_matrices_layout() {
        let p = PauliString::new(1.0, vec![(1, Pauli::X)]);
        let mats = p.level_matrices(3);
        assert_eq!(mats[0], Pauli::I.matrix());
        assert_eq!(mats[1], Pauli::X.matrix());
        assert_eq!(mats[2], Pauli::I.matrix());
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubits_rejected() {
        PauliString::new(1.0, vec![(1, Pauli::X), (1, Pauli::Z)]);
    }

    #[test]
    fn diagonal_detection() {
        assert!(PauliString::parse("ZIZ").unwrap().is_diagonal());
        assert!(!PauliString::parse("ZXZ").unwrap().is_diagonal());
        assert!(PauliString::identity(1.0).is_diagonal());
    }
}
