//! EWMA-based conversion timing (Section 3.1.1).
//!
//! While simulating in the DD phase, FlatDD records the DD size `s_i` of the
//! state vector after every gate and maintains an exponentially weighted
//! moving average `v_i = beta * v_{i-1} + (1 - beta) * s_i` (Equation 4).
//! The simulation converts from DD to DMAV when the current size jumps more
//! than `epsilon`x above the moving average — a drastic regularity loss.
//!
//! Note on the trigger direction: the paper states the comparison as
//! "convert when `epsilon * v_i < s_i`" with `v_0 = 0`. Taken literally
//! (update first, then compare) this fires on the very first gate for any
//! circuit, because `epsilon * (1-beta) < 1` for the paper's own defaults
//! (beta = 0.9, epsilon = 2). We therefore implement the stated *intent*:
//! the average is seeded with the first observed size, and gate `i`
//! triggers when `s_i > epsilon * v_{i-1}`; on non-triggering gates the
//! average is updated by Equation 4. See DESIGN.md.

/// Parameters of the EWMA conversion monitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EwmaConfig {
    /// History weight `beta` of Equation 4 (paper default 0.9).
    pub beta: f64,
    /// Trigger threshold `epsilon` (paper default 2.0).
    pub epsilon: f64,
    /// Minimum DD size below which conversion never triggers (guards the
    /// first few gates of tiny circuits, where a 3-node to 7-node jump is
    /// not "irregularity").
    pub min_size: usize,
}

impl Default for EwmaConfig {
    fn default() -> Self {
        // The values the paper reports as effective across circuits.
        EwmaConfig {
            beta: 0.9,
            epsilon: 2.0,
            min_size: 32,
        }
    }
}

/// The monitor: feed it one DD size per gate; it says when to convert.
#[derive(Clone, Debug)]
pub struct EwmaMonitor {
    cfg: EwmaConfig,
    v: f64,
    seeded: bool,
    observations: usize,
}

/// A monitor's mutable state, detached from its config — what a checkpoint
/// persists so a resumed run continues the moving average exactly where the
/// interrupted run left it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EwmaState {
    /// Current moving-average value `v_i`.
    pub v: f64,
    /// Whether the average has been seeded by a first observation.
    pub seeded: bool,
    /// Number of sizes observed so far.
    pub observations: usize,
}

impl EwmaMonitor {
    /// Creates a monitor.
    pub fn new(cfg: EwmaConfig) -> Self {
        assert!((0.0..1.0).contains(&cfg.beta), "beta must be in [0, 1)");
        assert!(
            cfg.epsilon >= 1.0,
            "epsilon < 1 would trigger on shrinking DDs"
        );
        EwmaMonitor {
            cfg,
            v: 0.0,
            seeded: false,
            observations: 0,
        }
    }

    /// Current moving-average value `v_i`.
    pub fn value(&self) -> f64 {
        self.v
    }

    /// Number of sizes observed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Exports the mutable state for checkpointing.
    pub fn state(&self) -> EwmaState {
        EwmaState {
            v: self.v,
            seeded: self.seeded,
            observations: self.observations,
        }
    }

    /// Restores a previously exported state (the config stays this
    /// monitor's own — resume validation rejects mismatched configs before
    /// this is reached).
    pub fn restore(&mut self, s: EwmaState) {
        self.v = s.v;
        self.seeded = s.seeded;
        self.observations = s.observations;
    }

    /// Records the DD size after one gate. Returns `true` when the
    /// simulation should convert from DD to DMAV *now*.
    pub fn observe(&mut self, size: usize) -> bool {
        self.observations += 1;
        let s = size as f64;
        if !self.seeded {
            self.v = s;
            self.seeded = true;
            return false;
        }
        if size >= self.cfg.min_size && s > self.cfg.epsilon * self.v {
            return true;
        }
        self.v = self.cfg.beta * self.v + (1.0 - self.cfg.beta) * s;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> EwmaMonitor {
        EwmaMonitor::new(EwmaConfig::default())
    }

    #[test]
    fn constant_sizes_never_trigger() {
        let mut m = monitor();
        for _ in 0..1000 {
            assert!(!m.observe(100));
        }
        assert!((m.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn slow_growth_never_triggers() {
        // 1% growth per gate stays under epsilon = 2 forever.
        let mut m = monitor();
        let mut s = 100.0f64;
        for _ in 0..500 {
            assert!(!m.observe(s as usize), "triggered at size {s}");
            s *= 1.01;
        }
    }

    #[test]
    fn sudden_blowup_triggers() {
        let mut m = monitor();
        for _ in 0..50 {
            assert!(!m.observe(100));
        }
        assert!(m.observe(250), "2.5x jump above the average must trigger");
    }

    #[test]
    fn small_dds_never_trigger() {
        // A 3 -> 30 node jump is under min_size: no conversion.
        let mut m = EwmaMonitor::new(EwmaConfig {
            min_size: 64,
            ..EwmaConfig::default()
        });
        m.observe(3);
        assert!(!m.observe(30));
        // ... but crossing min_size with a jump does trigger.
        assert!(m.observe(64));
    }

    #[test]
    fn first_observation_only_seeds() {
        let mut m = monitor();
        assert!(!m.observe(10_000), "first gate can never trigger");
        assert_eq!(m.observations(), 1);
        assert!((m.value() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_follows_equation_4() {
        let mut m = EwmaMonitor::new(EwmaConfig {
            beta: 0.5,
            epsilon: 10.0,
            min_size: 0,
        });
        m.observe(100); // seed
        m.observe(200); // v = 0.5*100 + 0.5*200 = 150
        assert!((m.value() - 150.0).abs() < 1e-9);
        m.observe(50); // v = 0.5*150 + 0.5*50 = 100
        assert!((m.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn trigger_does_not_update_average() {
        let mut m = EwmaMonitor::new(EwmaConfig {
            beta: 0.9,
            epsilon: 2.0,
            min_size: 0,
        });
        m.observe(100);
        let v_before = m.value();
        assert!(m.observe(1000));
        assert_eq!(
            m.value(),
            v_before,
            "triggering observation must not pollute v"
        );
    }

    #[test]
    fn state_round_trips() {
        let mut m = monitor();
        for s in [100, 120, 90, 400] {
            m.observe(s);
        }
        let saved = m.state();
        let mut fresh = monitor();
        fresh.restore(saved);
        assert_eq!(fresh.state(), saved);
        assert_eq!(fresh.value(), m.value());
        assert_eq!(fresh.observations(), m.observations());
        // Both copies must agree on every subsequent decision.
        for s in [100, 100, 500, 80] {
            assert_eq!(fresh.observe(s), m.observe(s));
            assert_eq!(fresh.value(), m.value());
        }
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_panics() {
        EwmaMonitor::new(EwmaConfig {
            beta: 1.5,
            epsilon: 2.0,
            min_size: 0,
        });
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        EwmaMonitor::new(EwmaConfig {
            beta: 0.9,
            epsilon: 0.5,
            min_size: 0,
        });
    }
}
