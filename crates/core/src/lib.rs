//! # flatdd — a hybrid DD + flat-array quantum circuit simulator
//!
//! Rust reproduction of **FlatDD** (Jiang et al., ICPP 2024): simulation
//! starts on compressed decision diagrams (fast while the state is
//! *regular*), monitors the state-vector DD size with an exponentially
//! weighted moving average, and — when regularity collapses — converts the
//! state to a flat array with a parallel conversion and continues with
//! **DMAV**: DD-based gate matrices multiplied onto the array-based state.
//!
//! Module map (paper section in parentheses):
//!
//! * [`ewma`] — conversion timing (3.1.1).
//! * [`convert`] — parallel DD-to-array conversion with load balancing and
//!   scalar-multiplication optimizations (3.1.2, Fig. 4).
//! * [`dmav`](mod@dmav) — DMAV without caching (3.2.1, Alg. 1).
//! * [`dmav_cache`] — DMAV with per-thread caching and buffer sharing
//!   (3.2.2, Alg. 2).
//! * [`cost`] — the MAC-count cost model `min(C1, C2)` (3.2.3).
//! * [`plan_cache`] — LRU memoization of DMAV assignments keyed by matrix
//!   root edge, invalidated on DD garbage collection.
//! * [`fusion`] — DMAV-aware gate fusion (3.3, Alg. 3) and the
//!   k-operations baseline.
//! * [`sim`] — [`FlatDdSimulator`], the hybrid driver (Fig. 3).
//! * [`pool`] — the fork-join thread pool behind every parallel kernel.
//! * [`memory`] — peak-RSS probes for Table-1-style measurements.
//! * [`govern`] — the resource governor: memory/time budgets, graceful
//!   degradation, and the numerical-health watchdog.
//! * [`error`] — [`FlatDdError`], the typed (panic-free) error surface,
//!   and [`RunOutcome`], the (possibly partial) run snapshot.
//! * [`checkpoint`] — crash-safe checkpoint files (checksummed sections,
//!   atomic rename installation) behind `--checkpoint-every` /
//!   `--resume-from`.
//! * [`signal`](mod@signal) — flag-based SIGINT/SIGTERM handling polled at
//!   gate boundaries.
//! * [`context`] — [`RunContext`], the per-run bundle of cancellation
//!   flag, metrics registry, and fault registry that makes concurrent
//!   jobs isolated from one another.
//! * [`faults`] — the deterministic fault-injection registry
//!   (`FLATDD_FAULTS`) that makes every degradation path testable.
//! * [`serve`] — the multi-job daemon behind `flatdd-serve`: HTTP/JSON
//!   job intake, admission control against a server-wide memory budget,
//!   checkpoint-based preemption, retry with backoff, and restart
//!   recovery from a spool directory.
//! * [`telemetry`] — the unified observability surface (structured gate
//!   events, Chrome-trace export, cross-crate metrics registry),
//!   re-exported from the `qtelemetry` crate.
//!
//! ## Quick start
//!
//! ```
//! use flatdd::{FlatDdConfig, FlatDdSimulator};
//! use qcircuit::generators;
//!
//! let circuit = generators::ghz(8);
//! let mut sim = FlatDdSimulator::new(8, FlatDdConfig { threads: 4, ..Default::default() });
//! sim.run(&circuit).unwrap();
//! let amp0 = sim.amplitude(0);
//! assert!((amp0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod context;
pub mod convert;
pub mod cost;
pub mod dmav;
pub mod dmav_cache;
pub mod error;
pub mod ewma;
pub mod faults;
pub mod fusion;
pub mod govern;
pub mod memory;
pub mod plan_cache;
pub mod pool;
pub mod serve;
pub mod signal;
pub mod sim;
pub mod trajectories;

/// The unified telemetry surface (structured events, Chrome-trace export,
/// cross-crate metrics registry), re-exported so downstream users need only
/// depend on `flatdd`.
pub use qtelemetry as telemetry;

pub use checkpoint::{
    circuit_fingerprint, config_fingerprint, read_checkpoint, read_header, sweep_stale_tmp,
    write_checkpoint, write_checkpoint_with, CheckpointHeader, CheckpointPayload, CheckpointPolicy,
    CheckpointState,
};
pub use context::RunContext;
pub use convert::{
    dd_to_array_parallel, dd_to_array_parallel_into, dd_to_array_parallel_into_with,
    dd_to_array_parallel_sharded_into_with, ConversionBreakdown, ConversionPlan,
};
pub use cost::{CostAnalysis, CostModel};
pub use dmav::{dmav, dmav_no_cache, DmavAssignment};
pub use dmav_cache::{dmav_cached, DmavCacheAssignment, DmavCacheRunStats, PartialBuffers};
pub use error::{FlatDdError, RunOutcome};
pub use ewma::{EwmaConfig, EwmaMonitor};
pub use fusion::{fuse_dmav_aware, fuse_k_operations, no_fusion, FusedGates};
pub use govern::{Breach, GovernorConfig, ResourceGovernor};
pub use plan_cache::PlanCache;
pub use pool::{clamp_shards, clamp_threads, ThreadPool};
pub use sim::{
    simulate, try_simulate, CachingPolicy, ConversionPolicy, FlatDdConfig, FlatDdSimulator,
    FlatDdStats, FusionPolicy, GateTrace, Phase,
};
pub use trajectories::{noisy_expectation, TrajectoryEstimate};
