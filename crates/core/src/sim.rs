//! The FlatDD hybrid simulator (Figure 3).
//!
//! Simulation starts DD-based (DDSIM-style). After every gate the
//! state-vector DD size feeds the EWMA monitor; when regularity collapses,
//! the state is converted to a flat array with the parallel conversion of
//! Section 3.1.2 and the simulation continues with DMAV (Section 3.2),
//! optionally after DMAV-aware gate fusion (Section 3.3).
//!
//! Every step runs under the [`ResourceGovernor`]: wall-clock deadlines are
//! checked before each gate, memory budgets after each gate (with a
//! degradation ladder — compute-table flush, GC, scratch release — tried
//! before erroring out), and a periodic numerical-health watchdog verifies
//! the state norm in both phases. A DD-to-array conversion that would bust
//! the memory budget is *refused* and the run continues in DD mode, with
//! the refusal recorded in [`FlatDdStats::conversion_refusals`].

use crate::checkpoint::{
    self, CheckpointHeader, CheckpointPayload, CheckpointPolicy, CheckpointState,
};
use crate::context::{Progress, RunContext};
use crate::convert::dd_to_array_parallel;
use crate::cost::CostModel;
use crate::dmav::{dmav_no_cache, DmavAssignment};
use crate::dmav_cache::{dmav_cached, DmavCacheAssignment, PartialBuffers};
use crate::error::{FlatDdError, RunOutcome};
use crate::ewma::{EwmaConfig, EwmaMonitor};
use crate::faults;
use crate::fusion::{fuse_dmav_aware, fuse_k_operations, no_fusion, FusedGates};
use crate::govern::{Breach, GovernorConfig, ResourceGovernor};
use crate::plan_cache::PlanCache;
use crate::pool::{clamp_threads, ThreadPool};
use qarray::vecops;
use qcircuit::{Circuit, Complex64, Gate};
use qdd::{DdPackage, MEdge, MacTable, VEdge};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// When to convert from DD-based simulation to DMAV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConversionPolicy {
    /// EWMA-triggered (Section 3.1.1) — the FlatDD default.
    Ewma(EwmaConfig),
    /// Convert unconditionally after this many gates (for experiments).
    AtGate(usize),
    /// Start in DMAV mode immediately (pure-DMAV ablation).
    Immediate,
    /// Never convert (pure-DD ablation; FlatDD then degenerates to DDSIM
    /// plus monitoring overhead).
    Never,
}

impl ConversionPolicy {
    /// Compact policy name used in telemetry events and the phase-transition
    /// log line (`"ewma"`, `"at-gate"`, `"immediate"`, `"never"`).
    pub fn label(&self) -> &'static str {
        match self {
            ConversionPolicy::Ewma(_) => "ewma",
            ConversionPolicy::AtGate(_) => "at-gate",
            ConversionPolicy::Immediate => "immediate",
            ConversionPolicy::Never => "never",
        }
    }
}

/// Per-gate kernel selection for DMAV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachingPolicy {
    /// Choose by the Section 3.2.3 cost model (`min(C1, C2)`) — default.
    CostModel,
    /// Always use the cached kernel (Algorithm 2).
    Always,
    /// Never cache (Algorithm 1 only).
    Never,
}

/// Gate-fusion strategy for the DMAV phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusionPolicy {
    /// One DMAV per gate.
    None,
    /// DMAV-aware greedy fusion (Algorithm 3).
    DmavAware,
    /// Fuse every `k` gates unconditionally (the k-operations baseline
    /// \[100\]).
    KOperations(usize),
}

/// FlatDD configuration.
#[derive(Clone, Copy, Debug)]
pub struct FlatDdConfig {
    /// Requested worker threads (clamped to a power of two `<= 2^(n-1)`).
    pub threads: usize,
    /// Worker threads for the *DD phase* (sharded unique/compute tables +
    /// task-graph gate apply). `1` (the default) runs the exact sequential
    /// DDSIM-equivalent path; higher values parallelize gate application
    /// once the state DD is large enough to amortize the fork-join.
    /// Defaults from `FLATDD_DD_THREADS` when set.
    pub dd_threads: usize,
    /// Flat-phase shard count: the dispatch granularity of conversion,
    /// DMAV, gate kernels, measurement, the health watchdog, and
    /// checkpoint chunking. `0` (the default) follows the worker-thread
    /// count; explicit values are clamped like a thread count (power of
    /// two, `log2 s < n`). Numerically the shard count is inert: `1`
    /// reproduces the serial path bit-for-bit, any other value agrees to
    /// rounding of the per-shard partial sums. Defaults from
    /// `FLATDD_FLAT_SHARDS` when set.
    pub flat_shards: usize,
    /// Conversion timing.
    pub conversion: ConversionPolicy,
    /// DMAV kernel selection.
    pub caching: CachingPolicy,
    /// Gate fusion in the DMAV phase (only applies to [`FlatDdSimulator::run`]).
    pub fusion: FusionPolicy,
    /// Cost-model tunables.
    pub cost_model: CostModel,
    /// Record a per-gate trace (Figure 11 instrumentation).
    pub trace: bool,
    /// GC period (in DDMMs) during fusion.
    pub fusion_gc_every: usize,
    /// Byte budget of the DMAV plan cache (memoized `Assign`/`AssignCache`
    /// task lists, keyed by matrix root edge). `0` disables memoization;
    /// every DMAV then replans from scratch.
    pub plan_cache_bytes: usize,
    /// Resource budgets and watchdog cadence. The default picks budgets up
    /// from `FLATDD_MEMORY_BUDGET_MB` / `FLATDD_RSS_BUDGET_MB` /
    /// `FLATDD_DEADLINE_SECS` so whole test suites and CI jobs can run
    /// governed without code changes.
    pub governor: GovernorConfig,
}

impl Default for FlatDdConfig {
    fn default() -> Self {
        FlatDdConfig {
            threads: 16,
            dd_threads: std::env::var("FLATDD_DD_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&t: &usize| t >= 1)
                .unwrap_or(1),
            flat_shards: std::env::var("FLATDD_FLAT_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            conversion: ConversionPolicy::Ewma(EwmaConfig::default()),
            caching: CachingPolicy::CostModel,
            fusion: FusionPolicy::None,
            cost_model: CostModel::default(),
            trace: false,
            fusion_gc_every: 64,
            plan_cache_bytes: 32 << 20,
            governor: GovernorConfig::from_env(),
        }
    }
}

/// Which representation currently holds the state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// DD-based simulation (before conversion).
    Dd,
    /// DMAV: DD matrices times a flat array state.
    Dmav,
}

impl Phase {
    /// Lower-case label used in telemetry events (`"dd"` / `"dmav"`).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Dd => "dd",
            Phase::Dmav => "dmav",
        }
    }
}

/// One per-gate trace record (the Figure 11 data).
#[derive(Clone, Copy, Debug)]
pub struct GateTrace {
    /// Gate index in application order.
    pub gate_index: usize,
    /// Phase the gate ran in.
    pub phase: Phase,
    /// Wall-clock seconds for this gate.
    pub seconds: f64,
    /// State-vector DD size after the gate (DD phase only).
    pub dd_size: Option<usize>,
}

/// Aggregate statistics of a FlatDD run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlatDdStats {
    /// Gates executed in the DD phase.
    pub gates_dd: usize,
    /// DMAV multiplications executed (post-fusion matrices count once).
    pub gates_dmav: usize,
    /// Gate index after which the conversion happened (`None` = never).
    pub converted_at: Option<usize>,
    /// Wall-clock seconds of the DD-to-array conversion.
    pub conversion_seconds: f64,
    /// DMAVs that used the cached kernel.
    pub cached_dmavs: usize,
    /// DMAVs that used the plain kernel.
    pub uncached_dmavs: usize,
    /// Total cache hits across cached DMAVs.
    pub cache_hits: usize,
    /// Matrices produced by fusion (0 when fusion is off).
    pub fused_matrices: usize,
    /// Total modeled DMAV cost (MACs/thread) accumulated.
    pub modeled_cost: f64,
    /// Largest state-vector DD observed during the DD phase.
    pub peak_state_dd_size: usize,
    /// DD-to-array conversions refused because the flat buffers would not
    /// fit in the memory budget (the run then stays in DD mode).
    pub conversion_refusals: usize,
    /// Times the memory-pressure degradation ladder (compute-table flush +
    /// GC + scratch release) ran in response to a budget breach.
    pub pressure_gcs: usize,
    /// DMAV plan-cache lookups answered by a memoized assignment (the
    /// recursive `Assign`/`AssignCache` descent was skipped).
    pub dmav_plan_hits: usize,
    /// DMAV plan-cache lookups that had to build a fresh assignment.
    pub dmav_plan_misses: usize,
    /// DD compute-table matrix-vector probes (since the last per-run reset).
    pub ct_mv_lookups: u64,
    /// DD compute-table matrix-vector hits.
    pub ct_mv_hits: u64,
    /// Matrix-vector hit ratio (`0.0` when there were no probes).
    pub ct_mv_hit_rate: f64,
    /// DD compute-table matrix-matrix probes.
    pub ct_mm_lookups: u64,
    /// DD compute-table matrix-matrix hits.
    pub ct_mm_hits: u64,
    /// Matrix-matrix hit ratio.
    pub ct_mm_hit_rate: f64,
    /// DD compute-table addition probes (vector + matrix adds).
    pub ct_add_lookups: u64,
    /// DD compute-table addition hits.
    pub ct_add_hits: u64,
    /// Addition hit ratio.
    pub ct_add_hit_rate: f64,
    /// Times the approximation rung truncated the DD state under memory
    /// pressure (0 = the run is exact).
    pub approx_truncations: usize,
    /// Cumulative fidelity product across every approximation-rung
    /// truncation. Exactly `1.0` for exact runs; the governor aborts before
    /// this would drop below the configured floor.
    pub fidelity: f64,
}

impl Default for FlatDdStats {
    fn default() -> Self {
        FlatDdStats {
            gates_dd: 0,
            gates_dmav: 0,
            converted_at: None,
            conversion_seconds: 0.0,
            cached_dmavs: 0,
            uncached_dmavs: 0,
            cache_hits: 0,
            fused_matrices: 0,
            modeled_cost: 0.0,
            peak_state_dd_size: 0,
            conversion_refusals: 0,
            pressure_gcs: 0,
            dmav_plan_hits: 0,
            dmav_plan_misses: 0,
            ct_mv_lookups: 0,
            ct_mv_hits: 0,
            ct_mv_hit_rate: 0.0,
            ct_mm_lookups: 0,
            ct_mm_hits: 0,
            ct_mm_hit_rate: 0.0,
            ct_add_lookups: 0,
            ct_add_hits: 0,
            ct_add_hit_rate: 0.0,
            approx_truncations: 0,
            // A run that never truncates has perfect fidelity.
            fidelity: 1.0,
        }
    }
}

impl FlatDdStats {
    /// True when the approximation rung fired at least once, i.e. the
    /// result is an approximate state with [`Self::fidelity`] < 1 possible.
    pub fn is_approximate(&self) -> bool {
        self.approx_truncations > 0
    }

    /// Serializes the statistics as one stable JSON object (fields in
    /// declaration order; `converted_at` is `null` when no conversion
    /// happened). This is what the CLI's `--stats-json` prints.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn num(o: &mut String, k: &str, v: f64) {
            use std::fmt::Write as _;
            if v.is_finite() {
                let _ = write!(o, "\"{k}\": {v}, ");
            } else {
                let _ = write!(o, "\"{k}\": null, ");
            }
        }
        let mut o = String::from("{");
        let _ = write!(o, "\"gates_dd\": {}, ", self.gates_dd);
        let _ = write!(o, "\"gates_dmav\": {}, ", self.gates_dmav);
        match self.converted_at {
            Some(at) => {
                let _ = write!(o, "\"converted_at\": {at}, ");
            }
            None => o.push_str("\"converted_at\": null, "),
        }
        num(&mut o, "conversion_seconds", self.conversion_seconds);
        let _ = write!(o, "\"cached_dmavs\": {}, ", self.cached_dmavs);
        let _ = write!(o, "\"uncached_dmavs\": {}, ", self.uncached_dmavs);
        let _ = write!(o, "\"cache_hits\": {}, ", self.cache_hits);
        let _ = write!(o, "\"fused_matrices\": {}, ", self.fused_matrices);
        num(&mut o, "modeled_cost", self.modeled_cost);
        let _ = write!(o, "\"peak_state_dd_size\": {}, ", self.peak_state_dd_size);
        let _ = write!(o, "\"conversion_refusals\": {}, ", self.conversion_refusals);
        let _ = write!(o, "\"pressure_gcs\": {}, ", self.pressure_gcs);
        let _ = write!(o, "\"dmav_plan_hits\": {}, ", self.dmav_plan_hits);
        let _ = write!(o, "\"dmav_plan_misses\": {}, ", self.dmav_plan_misses);
        let _ = write!(o, "\"ct_mv_lookups\": {}, ", self.ct_mv_lookups);
        let _ = write!(o, "\"ct_mv_hits\": {}, ", self.ct_mv_hits);
        num(&mut o, "ct_mv_hit_rate", self.ct_mv_hit_rate);
        let _ = write!(o, "\"ct_mm_lookups\": {}, ", self.ct_mm_lookups);
        let _ = write!(o, "\"ct_mm_hits\": {}, ", self.ct_mm_hits);
        num(&mut o, "ct_mm_hit_rate", self.ct_mm_hit_rate);
        let _ = write!(o, "\"ct_add_lookups\": {}, ", self.ct_add_lookups);
        let _ = write!(o, "\"ct_add_hits\": {}, ", self.ct_add_hits);
        num(&mut o, "ct_add_hit_rate", self.ct_add_hit_rate);
        let _ = write!(o, "\"approx_truncations\": {}, ", self.approx_truncations);
        let _ = write!(
            o,
            "\"approximate\": {}, ",
            if self.is_approximate() { "true" } else { "false" }
        );
        // Last field without the trailing separator.
        if self.fidelity.is_finite() {
            let _ = write!(o, "\"fidelity\": {}", self.fidelity);
        } else {
            o.push_str("\"fidelity\": null");
        }
        o.push('}');
        o
    }
}

enum Repr {
    Dd(VEdge),
    Flat {
        v: qarray::ShardedState,
        w: qarray::ShardedState,
    },
}

/// The FlatDD hybrid simulator.
pub struct FlatDdSimulator {
    cfg: FlatDdConfig,
    n: usize,
    t: usize,
    /// Flat-phase shard count (resolved from `cfg.flat_shards`): the
    /// dispatch granularity of every flat-phase subsystem.
    shards: usize,
    pool: ThreadPool,
    /// Extra pool for DD-phase gate application (`None` when
    /// `cfg.dd_threads <= 1`: the DD phase then runs the exact sequential
    /// path).
    dd_pool: Option<ThreadPool>,
    /// State-DD size observed by the last [`Self::maybe_convert`]; gates on
    /// a DD smaller than the adaptive grain
    /// ([`qdd::par::adaptive_parallel_cap`]) skip the parallel path, and
    /// mid-size DDs fork onto a capped subset of the pool.
    last_dd_size: usize,
    pkg: DdPackage,
    repr: Repr,
    ewma: EwmaMonitor,
    mac: MacTable,
    scratch: PartialBuffers,
    plans: PlanCache,
    stats: FlatDdStats,
    traces: Vec<GateTrace>,
    gates_seen: usize,
    gc_threshold: usize,
    gov: ResourceGovernor,
    /// Total gate count of the circuit an enclosing `run` is processing
    /// (`None` outside `run`); used to fill partial [`RunOutcome`]s.
    run_total: Option<usize>,
    /// Set after a refused conversion so the policy does not re-attempt
    /// (and re-refuse) the conversion on every subsequent gate.
    conversion_blocked: bool,
    /// Process-unique id stamped on this simulator's telemetry events.
    telemetry_id: u64,
    /// Plan-cache counters at the last per-run stats reset: the cache is
    /// shared across runs, so per-run numbers are deltas from here.
    plan_hits_base: u64,
    plan_misses_base: u64,
    /// Compute-table counters at the last per-run stats reset.
    compute_base: qdd::ComputeStats,
    /// Whether the most recent DMAV's plan lookup hit the cache.
    last_plan_hit: Option<bool>,
    /// Checkpoint triggers and destination (`None` = checkpointing off).
    ckpt: Option<CheckpointPolicy>,
    /// Gates applied since the last written checkpoint.
    gates_since_ckpt: usize,
    /// Path of the most recently written (or resumed-from) checkpoint.
    last_checkpoint: Option<PathBuf>,
    /// Fingerprint of the circuit an enclosing `run`/`run_from` is
    /// processing, stamped into checkpoints so resume can validate; 0 when
    /// no run provided one.
    active_circuit_hash: u64,
    /// Cached counter handles into this run's metrics registry (one
    /// registry lookup per simulator, one relaxed add per gate).
    ctr_gates_dd: qtelemetry::Counter,
    ctr_gates_dmav: qtelemetry::Counter,
    /// Cached latency-histogram handles (same one-lookup discipline as the
    /// counters above; an observe is three relaxed adds).
    hist_gate_dd: qtelemetry::Histogram,
    hist_gate_dmav: qtelemetry::Histogram,
    hist_ckpt_write: qtelemetry::Histogram,
    hist_convert: qtelemetry::Histogram,
    hist_plan_build: qtelemetry::Histogram,
    /// Span of the enclosing `run`/`run_from` ([`qtelemetry::Span::none`]
    /// outside a run); progress samples and span events carry its id so
    /// concurrent jobs' traces stay separable.
    run_span: qtelemetry::Span,
    /// Span of the current phase segment (DD or DMAV) within the run.
    phase_span: qtelemetry::Span,
    /// Telemetry-clock µs at which `phase_span` started.
    phase_start_us: f64,
    /// Progress-stream throttle: wall clock and gate cursor at the last
    /// published sample (`None` until the first).
    progress_last: Option<(Instant, usize)>,
    /// Per-run execution context: cancellation flag, metrics registry, and
    /// fault registry. [`RunContext::process`] for single-tenant callers;
    /// the serve scheduler hands each job an isolated one.
    ctx: RunContext,
}

impl FlatDdSimulator {
    /// Initializes `|0...0>` over `n` qubits.
    ///
    /// # Panics
    /// On invalid input or resource exhaustion; use [`Self::try_new`] for a
    /// typed error instead.
    pub fn new(n: usize, cfg: FlatDdConfig) -> Self {
        Self::try_new(n, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: `n == 0` is [`FlatDdError::InvalidInput`],
    /// thread-spawn failure is [`FlatDdError::Io`], and an `Immediate`
    /// conversion policy whose flat state does not fit in the memory budget
    /// falls back to a DD start (recorded as a conversion refusal) rather
    /// than failing.
    pub fn try_new(n: usize, cfg: FlatDdConfig) -> Result<Self, FlatDdError> {
        Self::try_new_with(n, cfg, RunContext::process())
    }

    /// [`Self::try_new`] with an explicit per-run context. Metrics and
    /// fault probes route through `ctx`, and the run is cancellable via
    /// [`RunContext::cancel`] — the isolation the multi-job daemon builds
    /// on.
    pub fn try_new_with(n: usize, cfg: FlatDdConfig, ctx: RunContext) -> Result<Self, FlatDdError> {
        if n == 0 {
            return Err(FlatDdError::InvalidInput(
                "simulator needs at least one qubit".into(),
            ));
        }
        let t = clamp_threads(cfg.threads, n);
        let shards = crate::pool::clamp_shards(cfg.flat_shards, t, n);
        let pool = ThreadPool::try_new(t)?;
        let dd_pool = if cfg.dd_threads > 1 {
            Some(ThreadPool::try_new(cfg.dd_threads)?)
        } else {
            None
        };
        let gov = ResourceGovernor::new(cfg.governor);
        let pkg = DdPackage::default();
        let mut stats = FlatDdStats::default();
        let mut conversion_blocked = false;
        let repr = match cfg.conversion {
            ConversionPolicy::Immediate => {
                let dim = 1usize << n;
                let bytes_each = dim * std::mem::size_of::<Complex64>();
                if !gov.admits_allocation(0, 2 * bytes_each) {
                    // The flat state would bust the budget before the first
                    // gate: refuse and start DD-based instead.
                    stats.conversion_refusals += 1;
                    conversion_blocked = true;
                    Repr::Dd(pkg.basis_state(n, 0))
                } else {
                    let mut v =
                        try_sharded_flat_buffer(dim, shards, &pool, "initial flat state", &ctx)?;
                    v[0] = Complex64::ONE;
                    let w =
                        try_sharded_flat_buffer(dim, shards, &pool, "initial flat scratch", &ctx)?;
                    Repr::Flat { v, w }
                }
            }
            _ => Repr::Dd(pkg.basis_state(n, 0)),
        };
        let ewma_cfg = match cfg.conversion {
            ConversionPolicy::Ewma(e) => e,
            _ => EwmaConfig::default(),
        };
        Ok(FlatDdSimulator {
            cfg,
            n,
            t,
            shards,
            pool,
            dd_pool,
            last_dd_size: 0,
            pkg,
            repr,
            ewma: EwmaMonitor::new(ewma_cfg),
            mac: MacTable::default(),
            scratch: PartialBuffers::default(),
            plans: PlanCache::new(cfg.plan_cache_bytes),
            stats,
            traces: Vec::new(),
            gates_seen: 0,
            gc_threshold: 1 << 16,
            gov,
            run_total: None,
            conversion_blocked,
            telemetry_id: qtelemetry::next_id(),
            plan_hits_base: 0,
            plan_misses_base: 0,
            compute_base: qdd::ComputeStats::default(),
            last_plan_hit: None,
            ckpt: None,
            gates_since_ckpt: 0,
            last_checkpoint: None,
            active_circuit_hash: 0,
            ctr_gates_dd: ctx.metrics().counter("core.gates_dd"),
            ctr_gates_dmav: ctx.metrics().counter("core.gates_dmav"),
            hist_gate_dd: ctx.metrics().histogram("sim.gate_dd_us"),
            hist_gate_dmav: ctx.metrics().histogram("sim.gate_dmav_us"),
            hist_ckpt_write: ctx.metrics().histogram("sim.ckpt_write_us"),
            hist_convert: ctx.metrics().histogram("sim.conversion_us"),
            hist_plan_build: ctx.metrics().histogram("sim.plan_build_us"),
            run_span: qtelemetry::Span::none(),
            phase_span: qtelemetry::Span::none(),
            phase_start_us: 0.0,
            progress_last: None,
            ctx,
        })
    }

    /// This simulator's execution context. Clone it to keep a remote
    /// control (e.g. to cancel the run from another thread).
    pub fn context(&self) -> &RunContext {
        &self.ctx
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Effective (clamped) thread count.
    pub fn threads(&self) -> usize {
        self.t
    }

    /// Effective flat-phase shard count (resolved from
    /// [`FlatDdConfig::flat_shards`]; `0` there follows the thread count).
    pub fn flat_shards(&self) -> usize {
        self.shards
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        match self.repr {
            Repr::Dd(_) => Phase::Dd,
            Repr::Flat { .. } => Phase::Dmav,
        }
    }

    /// Process-unique id identifying this simulator in telemetry events.
    pub fn telemetry_id(&self) -> u64 {
        self.telemetry_id
    }

    /// Aggregate run statistics, including the DD compute-table hit rates
    /// (computed as deltas from the last per-run reset).
    pub fn stats(&self) -> FlatDdStats {
        fn ratio(hits: u64, lookups: u64) -> f64 {
            if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            }
        }
        let mut s = self.stats;
        let c = self.pkg.compute_stats();
        s.ct_mv_lookups = c.mv_lookups.saturating_sub(self.compute_base.mv_lookups);
        s.ct_mv_hits = c.mv_hits.saturating_sub(self.compute_base.mv_hits);
        s.ct_mv_hit_rate = ratio(s.ct_mv_hits, s.ct_mv_lookups);
        s.ct_mm_lookups = c.mm_lookups.saturating_sub(self.compute_base.mm_lookups);
        s.ct_mm_hits = c.mm_hits.saturating_sub(self.compute_base.mm_hits);
        s.ct_mm_hit_rate = ratio(s.ct_mm_hits, s.ct_mm_lookups);
        s.ct_add_lookups = c.add_lookups.saturating_sub(self.compute_base.add_lookups);
        s.ct_add_hits = c.add_hits.saturating_sub(self.compute_base.add_hits);
        s.ct_add_hit_rate = ratio(s.ct_add_hits, s.ct_add_lookups);
        s
    }

    /// Cumulative fidelity product of the run so far (`1.0` = exact). Drops
    /// below 1 only when the approximation rung has truncated the state.
    pub fn fidelity(&self) -> f64 {
        self.stats.fidelity
    }

    /// True when the approximation rung fired and the state is approximate.
    pub fn is_approximate(&self) -> bool {
        self.stats.approx_truncations > 0
    }

    /// Per-gate trace (empty unless `cfg.trace`).
    pub fn traces(&self) -> &[GateTrace] {
        &self.traces
    }

    /// Gates applied over this simulator's lifetime (the checkpoint gate
    /// cursor).
    pub fn gates_applied(&self) -> usize {
        self.gates_seen
    }

    /// Installs (or removes) the checkpoint policy. With a policy in
    /// place, checkpoints are written every `every_gates` applied gates,
    /// and — when `on_breach` is set — once more when a resumable error
    /// (budget breach or polled signal) ends a [`Self::run`].
    pub fn set_checkpoint_policy(&mut self, policy: Option<CheckpointPolicy>) {
        self.ckpt = policy;
        self.gates_since_ckpt = 0;
    }

    /// The active checkpoint policy.
    pub fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.ckpt.as_ref()
    }

    /// Path of the most recently written (or resumed-from) checkpoint.
    pub fn last_checkpoint(&self) -> Option<&Path> {
        self.last_checkpoint.as_deref()
    }

    /// Writes a checkpoint to the policy path now, regardless of triggers.
    /// Returns the installed file's size in bytes.
    pub fn save_checkpoint(&mut self) -> Result<u64, FlatDdError> {
        let policy = self
            .ckpt
            .clone()
            .ok_or_else(|| FlatDdError::InvalidInput("no checkpoint policy configured".into()))?;
        let telemetry = qtelemetry::enabled();
        let ts_us = telemetry.then(qtelemetry::now_us);
        let start = Instant::now();
        let header = CheckpointHeader {
            circuit_hash: self.active_circuit_hash,
            config_fingerprint: checkpoint::config_fingerprint(&self.cfg),
            n: self.n as u32,
            gate_cursor: self.gates_seen as u64,
            phase: self.phase(),
            conversion_blocked: self.conversion_blocked,
            ewma: self.ewma.state(),
            rng_seed: policy.rng_seed,
            rng_pos: 0,
            stats: self.stats,
        };
        let bytes = match &self.repr {
            Repr::Dd(s) => {
                let b = qdd::serialize::vector_dd_to_bytes(&self.pkg, *s, self.n)?;
                checkpoint::write_checkpoint_with(
                    &policy.path,
                    &header,
                    CheckpointPayload::Dd(&b),
                    &self.ctx,
                )?
            }
            Repr::Flat { v, .. } => checkpoint::write_checkpoint_with(
                &policy.path,
                &header,
                CheckpointPayload::Flat {
                    amps: v,
                    shards: self.shards,
                },
                &self.ctx,
            )?,
        };
        let dur_us = start.elapsed().as_secs_f64() * 1e6;
        self.gates_since_ckpt = 0;
        self.last_checkpoint = Some(policy.path.clone());
        self.hist_ckpt_write.observe(dur_us as u64);
        self.ctx.metrics().counter("checkpoint.writes").inc();
        self.ctx
            .metrics()
            .gauge("checkpoint.bytes")
            .set(bytes as f64);
        self.ctx.metrics().gauge("checkpoint.write_us").set(dur_us);
        if telemetry {
            qtelemetry::emit(qtelemetry::Event::Checkpoint {
                sim: self.telemetry_id,
                ts_us: ts_us.unwrap_or(0.0),
                dur_us,
                op: "write",
                bytes,
                gate_cursor: self.gates_seen,
                phase: self.phase().label(),
            });
        }
        Ok(bytes)
    }

    /// Rebuilds a simulator from a checkpoint of an interrupted run over
    /// `circuit`. Validation order: file integrity first (magic, version,
    /// section checksums — [`FlatDdError::CorruptCheckpoint`]), then
    /// compatibility (circuit hash, config fingerprint, qubit count, gate
    /// cursor — [`FlatDdError::InvalidInput`]). On success the returned
    /// simulator is positioned exactly at the saved gate cursor in the
    /// saved phase; continue with [`Self::run_from`]. The returned header
    /// hands the caller the persisted RNG seed.
    ///
    /// Governor budgets start fresh: a deadline measures *this* process's
    /// wall clock, which is what makes "breach, checkpoint, retry with a
    /// larger budget" a sensible loop.
    pub fn resume_from(
        path: &Path,
        cfg: FlatDdConfig,
        circuit: &Circuit,
    ) -> Result<(Self, CheckpointHeader), FlatDdError> {
        Self::resume_from_with(path, cfg, circuit, RunContext::process())
    }

    /// [`Self::resume_from`] with an explicit per-run context (see
    /// [`Self::try_new_with`]).
    pub fn resume_from_with(
        path: &Path,
        cfg: FlatDdConfig,
        circuit: &Circuit,
        ctx: RunContext,
    ) -> Result<(Self, CheckpointHeader), FlatDdError> {
        let telemetry = qtelemetry::enabled();
        let ts_us = telemetry.then(qtelemetry::now_us);
        let start = Instant::now();
        let (header, state) = checkpoint::read_checkpoint(path)?;
        if header.n as usize != circuit.num_qubits() {
            return Err(FlatDdError::InvalidInput(format!(
                "checkpoint is over {} qubits but the circuit has {}",
                header.n,
                circuit.num_qubits()
            )));
        }
        if header.circuit_hash != checkpoint::circuit_fingerprint(circuit) {
            return Err(FlatDdError::InvalidInput(
                "checkpoint was taken for a different circuit (content hash mismatch)".into(),
            ));
        }
        if header.config_fingerprint != checkpoint::config_fingerprint(&cfg) {
            return Err(FlatDdError::InvalidInput(
                "checkpoint was taken under a different configuration \
                 (conversion/caching/fusion fingerprint mismatch)"
                    .into(),
            ));
        }
        if header.gate_cursor as usize > circuit.gates().len() {
            return Err(FlatDdError::CorruptCheckpoint {
                detail: format!(
                    "gate cursor {} is beyond the {}-gate circuit",
                    header.gate_cursor,
                    circuit.gates().len()
                ),
            });
        }
        let mut sim = Self::try_new_with(header.n as usize, cfg, ctx)?;
        match state {
            CheckpointState::Dd(bytes) => {
                let (root, n2) = qdd::serialize::vector_dd_from_bytes(&mut sim.pkg, &bytes)
                    .map_err(|e| FlatDdError::CorruptCheckpoint {
                        detail: format!("DD payload: {e}"),
                    })?;
                if n2 != header.n as usize {
                    return Err(FlatDdError::CorruptCheckpoint {
                        detail: format!("DD payload is over {n2} qubits, header says {}", header.n),
                    });
                }
                sim.repr = Repr::Dd(root);
                // Drop the |0...0> state try_new built.
                sim.pkg.gc(&[root], &[]);
            }
            CheckpointState::Flat(v) => {
                // The payload is shard-agnostic: re-shard under *this*
                // simulator's geometry, which may differ from the writer's.
                let w = try_sharded_flat_buffer(
                    v.len(),
                    sim.shards,
                    &sim.pool,
                    "resume scratch vector",
                    &sim.ctx,
                )?;
                sim.repr = Repr::Flat {
                    v: qarray::ShardedState::from_vec(v, sim.shards),
                    w,
                };
                sim.pkg.gc(&[], &[]);
            }
        }
        sim.gates_seen = header.gate_cursor as usize;
        sim.stats = header.stats;
        sim.conversion_blocked = header.conversion_blocked;
        sim.ewma.restore(header.ewma);
        sim.active_circuit_hash = header.circuit_hash;
        sim.last_checkpoint = Some(path.to_path_buf());
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        sim.ctx.metrics().counter("checkpoint.loads").inc();
        if telemetry {
            qtelemetry::emit(qtelemetry::Event::Checkpoint {
                sim: sim.telemetry_id,
                ts_us: ts_us.unwrap_or(0.0),
                dur_us: start.elapsed().as_secs_f64() * 1e6,
                op: "load",
                bytes,
                gate_cursor: sim.gates_seen,
                phase: sim.phase().label(),
            });
        }
        Ok((sim, header))
    }

    /// The underlying DD package.
    pub fn package(&self) -> &DdPackage {
        &self.pkg
    }

    /// A snapshot of how far the simulation has come, used both as the
    /// success value of [`Self::run`] and as the partial outcome carried by
    /// resource errors.
    fn snapshot(&self) -> RunOutcome {
        RunOutcome {
            gates_applied: self.gates_seen,
            total_gates: self.run_total.unwrap_or(self.gates_seen),
            phase: self.phase(),
            stats: self.stats(),
        }
    }

    fn breach_to_error(&self, breach: Breach) -> FlatDdError {
        if qtelemetry::enabled() {
            let (action, detail) = match &breach {
                Breach::Memory {
                    budget_bytes,
                    observed_bytes,
                    context,
                } => (
                    "memory_breach",
                    format!("budget={budget_bytes} observed={observed_bytes} ({context})"),
                ),
                Breach::Deadline { budget, elapsed } => (
                    "deadline_breach",
                    format!("budget={budget:?} elapsed={elapsed:?}"),
                ),
            };
            qtelemetry::emit(qtelemetry::Event::Governor {
                sim: self.telemetry_id,
                ts_us: qtelemetry::now_us(),
                action,
                detail,
            });
        }
        match breach {
            Breach::Memory {
                budget_bytes,
                observed_bytes,
                context,
            } => FlatDdError::MemoryBudgetExceeded {
                budget_bytes,
                observed_bytes,
                context,
                partial: Box::new(self.snapshot()),
            },
            Breach::Deadline { budget, elapsed } => FlatDdError::Deadline {
                budget,
                elapsed,
                partial: Box::new(self.snapshot()),
            },
        }
    }

    /// Runs the degradation ladder: release DMAV scratch, clear the MAC
    /// memo, GC dead DD nodes, and shrink the compute tables (the only rung
    /// that lowers *capacity*, which is what the accounting measures).
    fn relieve_pressure(&mut self) {
        self.scratch.release();
        self.mac.clear();
        self.plans.clear();
        match self.repr {
            Repr::Dd(s) => self.pkg.gc(&[s], &[]),
            Repr::Flat { .. } => self.pkg.gc(&[], &[]),
        };
        self.pkg.flush_caches();
        self.stats.pressure_gcs += 1;
        self.ctx.metrics().counter("core.pressure_gcs").inc();
        if qtelemetry::enabled() {
            qtelemetry::emit(qtelemetry::Event::Governor {
                sim: self.telemetry_id,
                ts_us: qtelemetry::now_us(),
                action: "pressure_gc",
                detail: format!("memory_bytes={}", self.memory_bytes()),
            });
        }
    }

    /// Re-probes the breached memory source after a relief rung ran.
    fn probe_breached(&self, context: &'static str) -> usize {
        if context == "process RSS" {
            crate::memory::current_rss_bytes().unwrap_or(u64::MAX) as usize
        } else {
            self.memory_bytes()
        }
    }

    /// The approximation rung: the ladder's last resort, armed only by
    /// `--approx-fidelity-floor` / `FLATDD_APPROX_FLOOR`. Repeatedly
    /// prunes the DD-phase state at the smallest effective threshold and
    /// compacts the package until the breach clears, each round accepted
    /// only if the cumulative fidelity product stays at or above the
    /// floor. Returns `true` when
    /// the budget holds again. In the flat phase there is nothing to
    /// truncate, so the rung never fires there.
    fn approx_truncate(&mut self, budget_bytes: usize, context: &'static str) -> bool {
        let Some(floor) = self.gov.config().approx_fidelity_floor else {
            return false;
        };
        let mut state = match &self.repr {
            Repr::Dd(s) => *s,
            Repr::Flat { .. } => return false,
        };
        loop {
            let nodes = self.pkg.vector_dd_size(state);
            if nodes <= 2 {
                return false; // nothing left to prune
            }
            // Cheapest effective prune: walk the threshold ladder up from
            // the bottom and take the first rung that removes any node at
            // all. Capacity breaches (bloated value/compute tables over a
            // healthy state) then cost almost no fidelity — the compaction
            // below is what actually releases the memory — while genuinely
            // oversized states escalate naturally on later rounds once
            // their low-mass tail is gone.
            let mut threshold = 1e-12;
            let mut r = self.pkg.approximate(state, threshold);
            while r.nodes_after >= nodes && threshold < 0.5 {
                threshold *= 16.0;
                r = self.pkg.approximate(state, threshold);
            }
            if r.nodes_after >= nodes || !(r.fidelity > 0.0) {
                return false; // pruning made no progress
            }
            let product = self.stats.fidelity * r.fidelity;
            if product < floor {
                // Accepting this step would cross the floor: keep the exact
                // state and let the breach surface as the usual typed error.
                return false;
            }
            state = r.state;
            self.repr = Repr::Dd(state);
            self.stats.fidelity = product;
            self.stats.approx_truncations += 1;
            self.ctx.metrics().counter("core.approx_truncations").inc();
            self.ctx.metrics().gauge("sim.fidelity").set(product);
            // Per-step fidelity histogram (integer buckets → parts per
            // million; 1e6 = lossless).
            self.ctx
                .metrics()
                .histogram("sim.approx_step_fidelity_ppm")
                .observe((r.fidelity * 1e6) as u64);
            if qtelemetry::enabled() {
                qtelemetry::emit(qtelemetry::Event::Governor {
                    sim: self.telemetry_id,
                    ts_us: qtelemetry::now_us(),
                    action: "approx_truncate",
                    detail: format!(
                        "nodes={}->{} step_fidelity={:.12} cumulative={:.12}",
                        r.nodes_before, r.nodes_after, r.fidelity, product
                    ),
                });
            }
            // Reclaiming dead nodes is not enough: the arena slabs are
            // append-only, so a sweep never lowers the capacity-based
            // accounting the budget is charged against. Compact for real by
            // rebuilding the surviving state in a fresh package and
            // dropping the old one (node ids change, so every id-keyed
            // cache goes with it).
            match qdd::serialize::vector_dd_to_bytes(&self.pkg, state, self.n) {
                Ok(bytes) => {
                    let mut fresh = DdPackage::default();
                    if let Ok((root, _)) = qdd::serialize::vector_dd_from_bytes(&mut fresh, &bytes)
                    {
                        self.pkg = fresh;
                        state = root;
                        self.repr = Repr::Dd(root);
                        self.mac.clear();
                        self.plans.clear();
                    } else {
                        self.pkg.gc(&[state], &[]);
                        self.pkg.flush_caches();
                    }
                }
                Err(_) => {
                    self.pkg.gc(&[state], &[]);
                    self.pkg.flush_caches();
                }
            }
            if self.probe_breached(context) <= budget_bytes {
                return true;
            }
        }
    }

    /// Memory-budget enforcement, called after each gate: on a breach the
    /// degradation ladder runs first (compute-table flush, GC, scratch
    /// release), then — when armed — the approximation rung, and only a
    /// still-standing breach becomes an error.
    fn enforce_memory(&mut self) -> Result<(), FlatDdError> {
        let used = self.memory_bytes();
        let breach = match self.gov.check_memory(used) {
            Ok(()) => return Ok(()),
            Err(b) => b,
        };
        self.relieve_pressure();
        if let Breach::Memory {
            budget_bytes,
            context,
            ..
        } = breach
        {
            if self.probe_breached(context) <= budget_bytes {
                return Ok(());
            }
            if self.approx_truncate(budget_bytes, context) {
                return Ok(());
            }
            let now = self.probe_breached(context);
            if now <= budget_bytes {
                return Ok(());
            }
            return Err(FlatDdError::MemoryBudgetExceeded {
                budget_bytes,
                observed_bytes: now,
                context,
                partial: Box::new(self.snapshot()),
            });
        }
        Err(self.breach_to_error(breach))
    }

    /// Periodic numerical-health watchdog. In the DD phase the
    /// normalization invariant (outgoing weights of every vector node have
    /// 2-norm 1) makes the state norm equal to the root weight's magnitude,
    /// so the check is O(1); in the DMAV phase it scans the flat array.
    /// Emits a watchdog telemetry event (no-op when telemetry is off).
    fn watchdog_note(&self, norm: f64, ok: bool) {
        if qtelemetry::enabled() {
            qtelemetry::emit(qtelemetry::Event::Watchdog {
                sim: self.telemetry_id,
                ts_us: qtelemetry::now_us(),
                norm,
                ok,
            });
        }
    }

    fn enforce_health(&mut self) -> Result<(), FlatDdError> {
        if !self.gov.health_check_due() {
            return Ok(());
        }
        self.ctx.metrics().counter("core.watchdog_checks").inc();
        let tol = self.gov.config().norm_tolerance;
        let norm = match &self.repr {
            Repr::Dd(s) => {
                let norm = if s.is_zero() {
                    0.0
                } else {
                    self.pkg.cval(s.w).abs()
                };
                if !norm.is_finite() || (norm - 1.0).abs() > tol {
                    self.watchdog_note(norm, false);
                    return Err(FlatDdError::NumericalDivergence {
                        norm,
                        detail: "DD root weight drifted from unit norm".into(),
                        partial: Box::new(self.snapshot()),
                    });
                }
                norm
            }
            Repr::Flat { v, .. } => {
                // The vectorized reduction propagates non-finite amplitudes
                // into the sum, so one pass covers both checks. The scan is
                // computed per shard (workers round-robin) and the partials
                // summed in shard order, so the result is deterministic for
                // a given shard count and bit-identical to the serial scan
                // at one shard.
                let sq = sharded_norm_sqr(v, &self.pool);
                if !sq.is_finite() {
                    self.watchdog_note(f64::NAN, false);
                    return Err(FlatDdError::NumericalDivergence {
                        norm: f64::NAN,
                        detail: "non-finite amplitude in flat state".into(),
                        partial: Box::new(self.snapshot()),
                    });
                }
                let norm = sq.sqrt();
                if (norm - 1.0).abs() > tol {
                    self.watchdog_note(norm, false);
                    return Err(FlatDdError::NumericalDivergence {
                        norm,
                        detail: "flat state norm drifted from 1".into(),
                        partial: Box::new(self.snapshot()),
                    });
                }
                norm
            }
        };
        self.watchdog_note(norm, true);
        Ok(())
    }

    /// Applies one gate (no fusion at this granularity).
    pub fn apply(&mut self, gate: &Gate) -> Result<(), FlatDdError> {
        // Cancellation poll (one relaxed load when quiet): a delivered
        // SIGINT/SIGTERM — or a per-job cancel on this run's context —
        // ends the run with a typed, resumable error at this gate boundary
        // instead of killing the process mid-write.
        if self.ctx.cancel_requested() {
            if let Some(sig) = self.ctx.take_cancel() {
                return Err(FlatDdError::Interrupted {
                    signal: sig,
                    partial: Box::new(self.snapshot()),
                });
            }
        }
        self.gov
            .check_deadline()
            .map_err(|b| self.breach_to_error(b))?;
        let telemetry = qtelemetry::enabled();
        let start = (self.cfg.trace || telemetry).then(Instant::now);
        let ts_us = telemetry.then(qtelemetry::now_us);
        let phase = self.phase();
        let mut dd_size = None;
        self.last_plan_hit = None;
        match &mut self.repr {
            Repr::Dd(_) => {
                self.apply_dd(gate);
                dd_size = self.maybe_convert()?;
            }
            Repr::Flat { .. } => {
                let m = self.pkg.gate_dd(gate, self.n);
                self.apply_dmav(m)?;
                if self.ctx.fires(faults::SITE_STATE_NAN).is_some() {
                    if let Repr::Flat { v, .. } = &mut self.repr {
                        if let Some(a) = v.first_mut() {
                            *a = Complex64::new(f64::NAN, 0.0);
                        }
                    }
                }
            }
        }
        let seconds = start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0);
        if self.cfg.trace {
            self.traces.push(GateTrace {
                gate_index: self.gates_seen,
                phase,
                seconds,
                dd_size,
            });
        }
        if telemetry {
            match phase {
                Phase::Dd => self.hist_gate_dd.observe((seconds * 1e6) as u64),
                Phase::Dmav => self.hist_gate_dmav.observe((seconds * 1e6) as u64),
            }
            qtelemetry::emit(qtelemetry::Event::Gate {
                sim: self.telemetry_id,
                ts_us: ts_us.unwrap_or(0.0),
                dur_us: seconds * 1e6,
                index: self.gates_seen,
                phase: phase.label(),
                dd_size,
                ewma: (phase == Phase::Dd).then(|| self.ewma.value()),
                plan_hit: self.last_plan_hit,
                fused: false,
            });
        }
        self.gates_seen += 1;
        self.maybe_publish_progress(false);
        self.enforce_memory()?;
        self.enforce_health()?;
        self.gates_since_ckpt += 1;
        if let Some(every) = self.ckpt.as_ref().and_then(|p| p.every_gates) {
            if self.gates_since_ckpt >= every {
                self.periodic_checkpoint();
            }
        }
        Ok(())
    }

    /// Periodic checkpoint write, best-effort: a transient failure (disk
    /// full, permissions, a torn write caught by post-install header
    /// verification) must not abort a run whose state is perfectly healthy.
    /// Failed attempts are retried up to `policy.write_retries` times with
    /// a doubling backoff (capped at
    /// [`CheckpointPolicy::MAX_RETRY_BACKOFF_MS`]); if every attempt fails
    /// the error is logged and counted while the previously installed
    /// checkpoint stays valid. The cadence counter resets either way, so
    /// the next attempt comes a full interval later instead of on every
    /// subsequent gate.
    fn periodic_checkpoint(&mut self) {
        let (retries, mut backoff_ms) = self
            .ckpt
            .as_ref()
            .map(|p| (p.write_retries, p.retry_backoff_ms))
            .unwrap_or((0, 0));
        let mut last_err: Option<FlatDdError> = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                backoff_ms = (backoff_ms * 2).min(CheckpointPolicy::MAX_RETRY_BACKOFF_MS);
                self.ctx.metrics().counter("checkpoint.write_retries").inc();
            }
            // `save_checkpoint` reports write-path errors; a write that
            // "succeeded" can still have been torn by a crash-adjacent
            // failure mode, so verify the installed header before trusting
            // it. The header CRC covers the cursor and phase — cheap, and
            // exactly what `resume_from` checks first.
            let result = self
                .save_checkpoint()
                .and_then(|_| checkpoint::read_header(&self.checkpoint_path_unchecked()));
            match result {
                Ok(_) => {
                    if attempt > 0 {
                        eprintln!("[flatdd] periodic checkpoint succeeded on retry {attempt}");
                    }
                    return;
                }
                Err(e) => {
                    self.ctx
                        .metrics()
                        .counter("checkpoint.write_failures")
                        .inc();
                    last_err = Some(e);
                }
            }
        }
        self.gates_since_ckpt = 0;
        if let Some(e) = last_err {
            eprintln!(
                "[flatdd] periodic checkpoint failed after {} attempt(s) (run continues): {e}",
                retries + 1
            );
        }
    }

    /// The policy path; only called while a policy is installed.
    fn checkpoint_path_unchecked(&self) -> PathBuf {
        self.ckpt
            .as_ref()
            .map(|p| p.path.clone())
            .unwrap_or_default()
    }

    /// Runs a whole circuit, honoring the fusion policy after conversion.
    ///
    /// Returns a [`RunOutcome`] describing the completed run; budget
    /// breaches come back as [`FlatDdError`]s carrying the same snapshot as
    /// a *partial* outcome, so a caller can see how far the run got.
    pub fn run(&mut self, circuit: &Circuit) -> Result<RunOutcome, FlatDdError> {
        if circuit.num_qubits() != self.n {
            return Err(FlatDdError::InvalidInput(format!(
                "circuit is over {} qubits but the simulator holds {}",
                circuit.num_qubits(),
                self.n
            )));
        }
        self.reset_run_stats();
        self.ctx.metrics().counter("core.runs").inc();
        let gates = circuit.gates();
        let total = self.gates_seen + gates.len();
        if self.ckpt.is_some() {
            self.active_circuit_hash = checkpoint::circuit_fingerprint(circuit);
        }
        self.run_span(gates, total)
    }

    /// Runs only the first `upto` gates of `circuit`, recording the *full*
    /// circuit's content hash, so a checkpoint written at the prefix
    /// boundary resumes cleanly over the same circuit with
    /// [`Self::resume_from`] + [`Self::run_from`] (staged execution; also
    /// the backbone of the checkpoint/resume tests).
    pub fn run_prefix(
        &mut self,
        circuit: &Circuit,
        upto: usize,
    ) -> Result<RunOutcome, FlatDdError> {
        if circuit.num_qubits() != self.n {
            return Err(FlatDdError::InvalidInput(format!(
                "circuit is over {} qubits but the simulator holds {}",
                circuit.num_qubits(),
                self.n
            )));
        }
        let gates = circuit.gates();
        if upto > gates.len() {
            return Err(FlatDdError::InvalidInput(format!(
                "prefix of {upto} gates requested from a {}-gate circuit",
                gates.len()
            )));
        }
        self.reset_run_stats();
        self.ctx.metrics().counter("core.runs").inc();
        if self.ckpt.is_some() {
            self.active_circuit_hash = checkpoint::circuit_fingerprint(circuit);
        }
        self.run_span(&gates[..upto], gates.len())
    }

    /// Continues an interrupted run: applies the gates of `circuit` *after*
    /// the current gate cursor ([`Self::gates_applied`], restored by
    /// [`Self::resume_from`]). Unlike [`Self::run`], per-run statistics are
    /// NOT reset — the restored counters keep accumulating, so a resumed
    /// run reports totals as if it had never been interrupted.
    pub fn run_from(&mut self, circuit: &Circuit) -> Result<RunOutcome, FlatDdError> {
        if circuit.num_qubits() != self.n {
            return Err(FlatDdError::InvalidInput(format!(
                "circuit is over {} qubits but the simulator holds {}",
                circuit.num_qubits(),
                self.n
            )));
        }
        let gates = circuit.gates();
        if self.gates_seen > gates.len() {
            return Err(FlatDdError::InvalidInput(format!(
                "gate cursor {} is beyond the {}-gate circuit",
                self.gates_seen,
                gates.len()
            )));
        }
        self.ctx.metrics().counter("core.resumed_runs").inc();
        self.active_circuit_hash = checkpoint::circuit_fingerprint(circuit);
        let start = self.gates_seen;
        self.run_span(&gates[start..], gates.len())
    }

    /// Shared tail of [`Self::run`] / [`Self::run_from`]: applies `gates`,
    /// emits the run start/end events, and — when a resumable error ends
    /// the run under an `on_breach` checkpoint policy — writes a final
    /// checkpoint at the (still consistent) gate boundary the error left
    /// the state at, so the run can be picked up with `--resume-from`.
    fn run_span(&mut self, gates: &[Gate], total: usize) -> Result<RunOutcome, FlatDdError> {
        // Span identities exist even with no sink installed: the daemon's
        // NDJSON progress stream carries the ids while timed Span *events*
        // stay behind `enabled()`.
        self.run_span = qtelemetry::Span::root();
        self.phase_span = self.run_span.child();
        let run_start_us = qtelemetry::now_us();
        self.phase_start_us = run_start_us;
        if qtelemetry::enabled() {
            qtelemetry::emit(qtelemetry::Event::RunStart {
                sim: self.telemetry_id,
                ts_us: run_start_us,
                qubits: self.n,
                threads: self.t,
                gates: gates.len(),
                phase: self.phase().label(),
            });
        }
        self.run_total = Some(total);
        let result = self.run_gates(gates);
        self.maybe_publish_progress(true);
        self.run_total = None;
        let phase_name = match self.phase() {
            Phase::Dd => "phase.dd",
            Phase::Dmav => "phase.dmav",
        };
        self.end_span(self.phase_span, phase_name, self.phase_start_us);
        self.end_span(self.run_span, "run", run_start_us);
        self.run_span = qtelemetry::Span::none();
        self.phase_span = qtelemetry::Span::none();
        if qtelemetry::enabled() {
            qtelemetry::emit(qtelemetry::Event::RunEnd {
                sim: self.telemetry_id,
                ts_us: qtelemetry::now_us(),
                gates_applied: self.gates_seen,
                phase: self.phase().label(),
                ok: result.is_ok(),
            });
        }
        if let Err(e) = &result {
            if e.is_resumable() && self.ckpt.as_ref().is_some_and(|p| p.on_breach) {
                // Best-effort: the original error is what the caller must
                // see; a failed final checkpoint only costs resumability.
                if let Err(ce) = self.save_checkpoint() {
                    self.ctx
                        .metrics()
                        .counter("checkpoint.write_failures")
                        .inc();
                    eprintln!("[flatdd] failed to write checkpoint on breach: {ce}");
                }
            }
        }
        result?;
        Ok(RunOutcome {
            gates_applied: self.gates_seen,
            total_gates: total,
            phase: self.phase(),
            stats: self.stats(),
        })
    }

    /// Emits a timed [`qtelemetry::Event::Span`] closing `span` (no-op for
    /// [`qtelemetry::Span::none`] or when telemetry is off).
    fn end_span(&self, span: qtelemetry::Span, name: &'static str, start_us: f64) {
        if span.is_none() || !qtelemetry::enabled() {
            return;
        }
        qtelemetry::emit(qtelemetry::Event::Span {
            sim: self.telemetry_id,
            ts_us: start_us,
            dur_us: (qtelemetry::now_us() - start_us).max(0.0),
            id: span.id,
            parent: span.parent,
            name,
        });
    }

    /// Publishes a [`Progress`] sample into the run context's ring (the
    /// source of `GET /jobs/{id}/events`). Throttled so the quiet path —
    /// 63 of every 64 gates — costs one branch, and at most one sample
    /// per ~100 ms lands otherwise; `force` bypasses the throttle at run
    /// and phase boundaries.
    fn maybe_publish_progress(&mut self, force: bool) {
        if !force && self.gates_seen & 0x3f != 0 {
            return;
        }
        let now = Instant::now();
        let gates_per_sec = match self.progress_last {
            Some((t, g)) => {
                let dt = now.duration_since(t).as_secs_f64();
                if !force && dt < 0.1 {
                    return;
                }
                if dt > 0.0 {
                    self.gates_seen.saturating_sub(g) as f64 / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        let (dd_nodes, shard_fill) = match &self.repr {
            Repr::Dd(_) => {
                let live = self.pkg.stats();
                (live.v_nodes + live.m_nodes, 0)
            }
            Repr::Flat { .. } => (0, self.shards),
        };
        // Degradation rung: 0 = unconstrained, 1 = memory pressure forced
        // GC sweeps, 2 = a conversion was refused (run pinned to DD mode),
        // 3 = the approximation rung truncated the state (approximate run).
        let governor_rung = if self.stats.approx_truncations > 0 {
            3
        } else if self.conversion_blocked {
            2
        } else if self.stats.pressure_gcs > 0 {
            1
        } else {
            0
        };
        self.ctx.publish_progress(Progress {
            seq: 0,
            ts_us: qtelemetry::now_us(),
            phase: self.phase().label(),
            gate: self.gates_seen,
            total_gates: self.run_total.unwrap_or(0),
            gates_per_sec,
            dd_nodes,
            governor_rung,
            shard_fill,
            run_span: self.run_span.id,
            phase_span: self.phase_span.id,
        });
        self.progress_last = Some((now, self.gates_seen));
    }

    /// Resets the per-run statistics at the top of [`Self::run`]: the
    /// aggregate counters restart from zero, while monotonic sources (plan
    /// cache, DD compute tables) are re-baselined so [`Self::stats`]
    /// reports deltas attributable to this run.
    fn reset_run_stats(&mut self) {
        self.stats = FlatDdStats::default();
        self.traces.clear();
        self.plan_hits_base = self.plans.hits();
        self.plan_misses_base = self.plans.misses();
        self.compute_base = self.pkg.compute_stats();
        self.last_plan_hit = None;
    }

    fn run_gates(&mut self, gates: &[Gate]) -> Result<(), FlatDdError> {
        let mut idx = 0;
        // DD phase (also handles Never / pre-conversion EWMA monitoring).
        while idx < gates.len() {
            if self.phase() == Phase::Dmav {
                break;
            }
            self.apply(&gates[idx])?;
            idx += 1;
        }
        let remaining = &gates[idx..];
        if remaining.is_empty() {
            return Ok(());
        }
        match self.cfg.fusion {
            FusionPolicy::None => {
                for g in remaining {
                    self.apply(g)?;
                }
                Ok(())
            }
            _ => self.run_fused(remaining),
        }
    }

    fn run_fused(&mut self, gates: &[Gate]) -> Result<(), FlatDdError> {
        debug_assert_eq!(self.phase(), Phase::Dmav);
        let telemetry = qtelemetry::enabled();
        let fuse_ts = telemetry.then(qtelemetry::now_us);
        let fuse_t0 = telemetry.then(Instant::now);
        let fused: FusedGates = match self.cfg.fusion {
            FusionPolicy::DmavAware => fuse_dmav_aware(
                &mut self.pkg,
                gates,
                self.n,
                self.t,
                &self.cfg.cost_model,
                self.cfg.fusion_gc_every,
            ),
            FusionPolicy::KOperations(k) => fuse_k_operations(
                &mut self.pkg,
                gates,
                self.n,
                self.t,
                k,
                &self.cfg.cost_model,
                self.cfg.fusion_gc_every,
            ),
            FusionPolicy::None => {
                no_fusion(&mut self.pkg, gates, self.n, self.t, &self.cfg.cost_model)
            }
        };
        self.mac.clear(); // fusion may have GC'd the package
        self.stats.fused_matrices = fused.matrices.len();
        if telemetry {
            qtelemetry::emit(qtelemetry::Event::Fusion {
                sim: self.telemetry_id,
                ts_us: fuse_ts.unwrap_or(0.0),
                dur_us: fuse_t0
                    .map(|t| t.elapsed().as_secs_f64() * 1e6)
                    .unwrap_or(0.0),
                gates_in: gates.len(),
                matrices_out: fused.matrices.len(),
            });
        }
        debug_assert_eq!(fused.gate_counts.iter().sum::<usize>(), gates.len());
        for (k, &m) in fused.matrices.iter().enumerate() {
            // Signal poll and deadline check both fire *before* this matrix
            // mutates the state, and the cursor advances right after each
            // matrix commits, so every resumable exit from this loop leaves
            // `gates_seen` in sync with the state — the on-breach checkpoint
            // written by `run_span` resumes without re-applying gates.
            if self.ctx.cancel_requested() {
                if let Some(sig) = self.ctx.take_cancel() {
                    return Err(FlatDdError::Interrupted {
                        signal: sig,
                        partial: Box::new(self.snapshot()),
                    });
                }
            }
            self.gov
                .check_deadline()
                .map_err(|b| self.breach_to_error(b))?;
            let start = (self.cfg.trace || telemetry).then(Instant::now);
            let ts_us = telemetry.then(qtelemetry::now_us);
            self.last_plan_hit = None;
            self.apply_dmav(m)?;
            let seconds = start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0);
            if self.cfg.trace {
                self.traces.push(GateTrace {
                    gate_index: self.gates_seen,
                    phase: Phase::Dmav,
                    seconds,
                    dd_size: None,
                });
            }
            if telemetry {
                self.hist_gate_dmav.observe((seconds * 1e6) as u64);
                qtelemetry::emit(qtelemetry::Event::Gate {
                    sim: self.telemetry_id,
                    ts_us: ts_us.unwrap_or(0.0),
                    dur_us: seconds * 1e6,
                    index: self.gates_seen,
                    phase: "dmav",
                    dd_size: None,
                    ewma: None,
                    plan_hit: self.last_plan_hit,
                    fused: true,
                });
            }
            self.gates_seen += fused.gate_counts[k];
            self.maybe_publish_progress(false);
            // GC between fused DMAVs keeps matrix DDs bounded; remaining
            // matrices are roots.
            let live = self.pkg.stats();
            if live.m_nodes + live.v_nodes > self.gc_threshold {
                self.pkg.gc(&[], &fused.matrices[k + 1..]);
                self.mac.clear();
            }
            self.enforce_memory()?;
            self.enforce_health()?;
            self.gates_since_ckpt += fused.gate_counts[k];
            if let Some(every) = self.ckpt.as_ref().and_then(|p| p.every_gates) {
                if self.gates_since_ckpt >= every {
                    self.periodic_checkpoint();
                }
            }
        }
        Ok(())
    }

    fn apply_dd(&mut self, gate: &Gate) {
        let state = match self.repr {
            Repr::Dd(s) => s,
            Repr::Flat { .. } => unreachable!(),
        };
        let g = self.pkg.gate_dd(gate, self.n);
        // Adaptive dispatch: cap the effective workers by the state-DD size
        // (one worker per `PAR_GRAIN_NODES` nodes) instead of an
        // all-or-nothing cutoff, so a wide pool never shreds a small DD
        // into tasks dominated by the fork-join barrier.
        let cap = qdd::par::adaptive_parallel_cap(self.last_dd_size);
        let new_state = match &self.dd_pool {
            Some(pool) if cap > 1 => {
                self.ctx.metrics().counter("core.dd_parallel_applies").inc();
                self.pkg.mul_mv_parallel_capped(pool, g, state, cap)
            }
            _ => self.pkg.mul_mv(g, state),
        };
        self.repr = Repr::Dd(new_state);
        self.stats.gates_dd += 1;
        self.ctr_gates_dd.inc();
        let live = self.pkg.stats();
        if live.v_nodes + live.m_nodes > self.gc_threshold {
            self.pkg.gc(&[new_state], &[]);
            self.mac.clear();
            let live = self.pkg.stats();
            self.gc_threshold = ((live.v_nodes + live.m_nodes) * 2).max(1 << 16);
        }
    }

    /// Monitors the DD size and converts when the policy says so. Returns
    /// the observed DD size (for tracing). A conversion the memory budget
    /// cannot admit is refused — the run stays in DD mode — rather than
    /// surfaced as an error.
    fn maybe_convert(&mut self) -> Result<Option<usize>, FlatDdError> {
        let state = match self.repr {
            Repr::Dd(s) => s,
            Repr::Flat { .. } => return Ok(None),
        };
        let size = self.pkg.vector_dd_size(state);
        self.last_dd_size = size;
        self.stats.peak_state_dd_size = self.stats.peak_state_dd_size.max(size);
        let convert = match self.cfg.conversion {
            ConversionPolicy::Ewma(_) => self.ewma.observe(size),
            ConversionPolicy::AtGate(k) => self.gates_seen + 1 >= k,
            ConversionPolicy::Immediate => true,
            ConversionPolicy::Never => false,
        };
        if convert && !self.conversion_blocked {
            match self.convert_now() {
                Ok(()) => {
                    self.phase_transition_note(size);
                    // Rotate the phase span: the DD segment ends here, the
                    // DMAV segment starts (inside a run only).
                    self.end_span(self.phase_span, "phase.dd", self.phase_start_us);
                    if !self.run_span.is_none() {
                        self.phase_span = self.run_span.child();
                        self.phase_start_us = qtelemetry::now_us();
                    }
                    self.maybe_publish_progress(true);
                }
                Err(
                    FlatDdError::MemoryBudgetExceeded { .. } | FlatDdError::AllocationFailed { .. },
                ) => {
                    // Graceful degradation: stay DD-based and stop
                    // re-attempting on every subsequent gate.
                    self.conversion_blocked = true;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Some(size))
    }

    /// Announces the DD-to-DMAV phase transition: a one-line human log on
    /// stderr (disable with `FLATDD_PHASE_LOG=0`) plus a structured
    /// [`qtelemetry::Event::PhaseTransition`] when telemetry is on.
    fn phase_transition_note(&self, dd_size: usize) {
        let at_gate = self.gates_seen;
        let ewma = self.ewma.value();
        let policy = self.cfg.conversion.label();
        if phase_log_enabled() {
            eprintln!(
                "[flatdd] phase transition at gate {at_gate}: dd_size={dd_size} \
                 ewma={ewma:.1} policy={policy} -> dmav"
            );
        }
        if qtelemetry::enabled() {
            qtelemetry::emit(qtelemetry::Event::PhaseTransition {
                sim: self.telemetry_id,
                ts_us: qtelemetry::now_us(),
                at_gate,
                dd_size,
                ewma,
                policy,
            });
        }
    }

    /// Forces the DD-to-DMAV conversion (parallel DD-to-array, Section
    /// 3.1.2), regardless of policy. The memory budget still applies: a
    /// conversion that cannot fit is counted as a refusal and returned as
    /// [`FlatDdError::MemoryBudgetExceeded`] (callers on the automatic path
    /// treat that as "stay in DD mode").
    pub fn convert_now(&mut self) -> Result<(), FlatDdError> {
        let state = match self.repr {
            Repr::Dd(s) => s,
            Repr::Flat { .. } => return Ok(()),
        };
        let dim = 1usize << self.n;
        let bytes_each = dim * std::mem::size_of::<Complex64>();
        if !self
            .gov
            .admits_allocation(self.memory_bytes(), 2 * bytes_each)
        {
            // Try to make room before giving up.
            self.relieve_pressure();
            if !self
                .gov
                .admits_allocation(self.memory_bytes(), 2 * bytes_each)
            {
                self.stats.conversion_refusals += 1;
                self.conversion_refusal_note();
                let budget = self.gov.config().memory_budget_bytes.unwrap_or(usize::MAX);
                return Err(FlatDdError::MemoryBudgetExceeded {
                    budget_bytes: budget,
                    observed_bytes: self.memory_bytes().saturating_add(2 * bytes_each),
                    context: "DD-to-array conversion",
                    partial: Box::new(self.snapshot()),
                });
            }
        }
        let telemetry = qtelemetry::enabled();
        let ts_us = telemetry.then(qtelemetry::now_us);
        let start = Instant::now();
        let mut v = match try_sharded_flat_buffer(
            dim,
            self.shards,
            &self.pool,
            "conversion output",
            &self.ctx,
        ) {
            Ok(v) => v,
            Err(e) => {
                self.stats.conversion_refusals += 1;
                self.conversion_refusal_note();
                return Err(e);
            }
        };
        // Worker panics (including injected ones) are contained here: the
        // pool re-raises a job panic on the dispatching thread, the DD
        // state is untouched, and the caller gets a typed error instead of
        // an abort.
        let breakdown = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::convert::dd_to_array_parallel_sharded_into_with(
                &self.pkg,
                state,
                self.n,
                &self.pool,
                self.shards,
                &mut v,
                &self.ctx,
            )
        })) {
            Ok(b) => b,
            Err(_) => {
                return Err(FlatDdError::WorkerPanic {
                    context: "DD-to-array conversion",
                    partial: Box::new(self.snapshot()),
                });
            }
        };
        let w = match try_sharded_flat_buffer(
            dim,
            self.shards,
            &self.pool,
            "DMAV scratch vector",
            &self.ctx,
        ) {
            Ok(w) => w,
            Err(e) => {
                self.stats.conversion_refusals += 1;
                self.conversion_refusal_note();
                return Err(e);
            }
        };
        self.stats.conversion_seconds = start.elapsed().as_secs_f64();
        self.stats.converted_at = Some(self.gates_seen);
        self.hist_convert
            .observe((self.stats.conversion_seconds * 1e6) as u64);
        self.ctx.metrics().counter("core.conversions").inc();
        if telemetry {
            // The load-balance breakdown is keyed by shard id (one entry
            // per conversion dispatch group).
            let workers = breakdown
                .fill_tasks
                .iter()
                .enumerate()
                .map(|(i, &tasks)| qtelemetry::WorkerFill {
                    worker: i,
                    tasks,
                    amps: breakdown.amp_spans.get(i).copied().unwrap_or(0),
                    dur_us: breakdown.worker_nanos.get(i).copied().unwrap_or(0) as f64 / 1e3,
                })
                .collect();
            let conv_start_us = ts_us.unwrap_or(0.0);
            qtelemetry::emit(qtelemetry::Event::Conversion {
                sim: self.telemetry_id,
                ts_us: conv_start_us,
                dur_us: self.stats.conversion_seconds * 1e6,
                at_gate: self.gates_seen,
                workers,
                scalar_tasks: breakdown.scalar_tasks,
            });
            // Span tree for the conversion: one span under the run (a root
            // span outside a run), one child per fill worker, so the trace
            // viewer separates concurrent jobs' conversions.
            let conv_span = if self.run_span.is_none() {
                qtelemetry::Span::root()
            } else {
                self.run_span.child()
            };
            for &nanos in breakdown.worker_nanos.iter() {
                let w = conv_span.child();
                qtelemetry::emit(qtelemetry::Event::Span {
                    sim: self.telemetry_id,
                    ts_us: conv_start_us,
                    dur_us: nanos as f64 / 1e3,
                    id: w.id,
                    parent: w.parent,
                    name: "conversion.worker",
                });
            }
            qtelemetry::emit(qtelemetry::Event::Span {
                sim: self.telemetry_id,
                ts_us: conv_start_us,
                dur_us: self.stats.conversion_seconds * 1e6,
                id: conv_span.id,
                parent: conv_span.parent,
                name: "conversion",
            });
        }
        self.repr = Repr::Flat { v, w };
        // Drop all vector nodes (and stale gate matrices).
        self.pkg.gc(&[], &[]);
        self.mac.clear();
        Ok(())
    }

    /// Telemetry note for a refused conversion (counter + governor event).
    fn conversion_refusal_note(&self) {
        self.ctx.metrics().counter("core.conversion_refusals").inc();
        if qtelemetry::enabled() {
            qtelemetry::emit(qtelemetry::Event::Governor {
                sim: self.telemetry_id,
                ts_us: qtelemetry::now_us(),
                action: "conversion_refused",
                detail: format!(
                    "at_gate={} memory_bytes={}",
                    self.gates_seen,
                    self.memory_bytes()
                ),
            });
        }
    }

    /// One DMAV step with the configured kernel policy. The assignment is
    /// fetched through the plan cache, so repeated gate matrices skip the
    /// recursive `Assign`/`AssignCache` descent.
    fn apply_dmav(&mut self, m: MEdge) -> Result<(), FlatDdError> {
        enum Plan {
            Cached(Arc<DmavCacheAssignment>),
            Plain(Arc<DmavAssignment>),
        }
        // Plans are built over the shard geometry (one assignment group per
        // shard); `PlanKey.t` therefore keys cached plans by shard count.
        let (n, t) = (self.n, self.shards);
        let hits_before = self.plans.hits();
        // Clock read for the plan-build histogram rides behind `enabled()`
        // (the overhead contract); the observe itself lands only on misses,
        // where a plan was actually built.
        let plan_t0 = qtelemetry::enabled().then(Instant::now);
        let plan = match self.cfg.caching {
            CachingPolicy::Always => Plan::Cached(self.plans.get_cached(&self.pkg, m, n, t)?),
            CachingPolicy::Never => Plan::Plain(self.plans.get_plain(&self.pkg, m, n, t)?),
            CachingPolicy::CostModel => {
                let asg = self.plans.get_cached(&self.pkg, m, n, t)?;
                let analysis = self.cfg.cost_model.analyze_with_assignment(
                    &self.pkg,
                    &mut self.mac,
                    &asg,
                    m,
                    n,
                    t,
                );
                self.stats.modeled_cost += analysis.cost();
                if analysis.prefer_cached() {
                    Plan::Cached(asg)
                } else {
                    Plan::Plain(self.plans.get_plain(&self.pkg, m, n, t)?)
                }
            }
        };
        // Cache counters are monotonic across the simulator's lifetime; the
        // stats report the delta attributable to the current run.
        self.stats.dmav_plan_hits = self.plans.hits().saturating_sub(self.plan_hits_base) as usize;
        self.stats.dmav_plan_misses =
            self.plans.misses().saturating_sub(self.plan_misses_base) as usize;
        self.last_plan_hit = Some(self.plans.hits() > hits_before);
        if let Some(t0) = plan_t0 {
            if self.last_plan_hit == Some(false) {
                self.hist_plan_build.observe_duration_us(t0.elapsed());
            }
        }
        let (v, w) = match &mut self.repr {
            Repr::Flat { v, w } => (v, w),
            Repr::Dd(_) => unreachable!("apply_dmav requires the flat representation"),
        };
        match &plan {
            Plan::Cached(asg) => {
                let st = dmav_cached(&self.pkg, asg, v, w, &self.pool, &mut self.scratch);
                self.stats.cache_hits += st.hits;
                self.stats.cached_dmavs += 1;
            }
            Plan::Plain(asg) => {
                dmav_no_cache(&self.pkg, asg, v, w, &self.pool);
                self.stats.uncached_dmavs += 1;
            }
        }
        std::mem::swap(v, w);
        self.stats.gates_dmav += 1;
        self.ctr_gates_dmav.inc();
        // Bound matrix-DD growth in long unfused DMAV phases. (The GC bumps
        // the package epoch, which invalidates the plan cache on the next
        // lookup — node ids may be recycled.)
        let live = self.pkg.stats();
        if live.m_nodes + live.v_nodes > self.gc_threshold {
            self.pkg.gc(&[], &[]);
            self.mac.clear();
        }
        Ok(())
    }

    /// The final amplitudes (DD phase: parallel conversion; DMAV phase: the
    /// flat array itself).
    pub fn amplitudes(&self) -> Vec<Complex64> {
        match &self.repr {
            Repr::Dd(s) => dd_to_array_parallel(&self.pkg, *s, self.n, &self.pool),
            Repr::Flat { v, .. } => v.to_vec(),
        }
    }

    /// Amplitude of a single basis state.
    pub fn amplitude(&self, index: usize) -> Complex64 {
        match &self.repr {
            Repr::Dd(s) => self.pkg.amplitude(*s, index),
            Repr::Flat { v, .. } => v[index],
        }
    }

    /// Converts the state back from the flat array to a DD (the reverse of
    /// [`Self::convert_now`]) — an extension beyond the paper, useful when
    /// a circuit's tail *disentangles* the state again (hidden-shift-style
    /// algorithms): the re-regularized DD is small and subsequent gates run
    /// in the cheap DD phase. Returns the DD size, or `None` when already
    /// in the DD phase.
    pub fn reconvert_to_dd(&mut self) -> Option<usize> {
        let v = match &self.repr {
            Repr::Flat { v, .. } => v.clone(),
            Repr::Dd(_) => return None,
        };
        let state = self.pkg.vector_from_slice(&v);
        let size = self.pkg.vector_dd_size(state);
        self.repr = Repr::Dd(state);
        self.pkg.gc(&[state], &[]);
        self.mac.clear();
        // Restart conversion monitoring from scratch.
        self.ewma = EwmaMonitor::new(match self.cfg.conversion {
            ConversionPolicy::Ewma(e) => e,
            _ => EwmaConfig::default(),
        });
        // The flat buffers are gone; a future conversion may fit again.
        self.conversion_blocked = false;
        Some(size)
    }

    /// Draws one basis-state index from the output distribution. In the DD
    /// phase this is a single O(n) walk (fast weak simulation); in the DMAV
    /// phase an inverse-CDF draw over the flat array.
    pub fn sample(&self, rand01: &mut impl FnMut() -> f64) -> usize {
        match &self.repr {
            Repr::Dd(s) => self.pkg.sample(*s, rand01),
            Repr::Flat { v, .. } => qarray::sample(v, rand01),
        }
    }

    /// Draws `shots` samples; returns `(index, count)` sorted by count.
    pub fn sample_counts(
        &self,
        shots: usize,
        rand01: &mut impl FnMut() -> f64,
    ) -> Vec<(usize, usize)> {
        match &self.repr {
            Repr::Dd(s) => self.pkg.sample_counts(*s, shots, rand01),
            Repr::Flat { v, .. } => qarray::sample_counts(v, shots, rand01),
        }
    }

    /// Marginal probability that qubit `q` measures 1.
    pub fn qubit_probability_one(&self, q: usize) -> f64 {
        match &self.repr {
            Repr::Dd(s) => self.pkg.qubit_probability_one(*s, q),
            Repr::Flat { v, .. } => {
                qarray::qubit_probability_one_sharded(v, q, self.shards, self.t)
            }
        }
    }

    /// Expectation value of one Pauli string on the current state.
    pub fn expectation_pauli(&mut self, p: &qcircuit::PauliString) -> f64 {
        let n = self.n;
        match &mut self.repr {
            Repr::Dd(s) => self.pkg.expectation_pauli(*s, p, n),
            Repr::Flat { v, .. } => qarray::expectation_pauli(v, p),
        }
    }

    /// Expectation value of a Pauli-sum Hamiltonian on the current state.
    pub fn expectation(&mut self, ham: &qcircuit::Hamiltonian) -> f64 {
        let n = self.n;
        match &mut self.repr {
            Repr::Dd(s) => self.pkg.expectation(*s, ham, n),
            Repr::Flat { v, .. } => qarray::expectation(v, ham),
        }
    }

    /// Projectively measures qubit `q`, collapsing the state, and returns
    /// the outcome.
    pub fn measure_qubit(&mut self, q: usize, rand01: &mut impl FnMut() -> f64) -> bool {
        let n = self.n;
        let (shards, threads) = (self.shards, self.t);
        match &mut self.repr {
            Repr::Dd(s) => {
                let (outcome, collapsed) = self.pkg.measure_qubit(*s, q, n, rand01);
                *s = collapsed;
                outcome
            }
            Repr::Flat { v, .. } => qarray::measure_qubit_sharded(v, q, rand01, shards, threads),
        }
    }

    /// Approximate resident bytes of all simulation data structures.
    pub fn memory_bytes(&self) -> usize {
        let flat = match &self.repr {
            Repr::Dd(_) => 0,
            Repr::Flat { v, w } => (v.capacity() + w.capacity()) * std::mem::size_of::<Complex64>(),
        };
        self.pkg.stats().memory_bytes
            + flat
            + self.scratch.memory_bytes()
            + self.plans.memory_bytes()
    }

    /// Publishes a gauge snapshot of this simulator (run stats, plan cache,
    /// governor, DD package) into the global [`qtelemetry`] metrics
    /// registry, for serialization via [`qtelemetry::metrics_json`].
    pub fn publish_metrics(&self) {
        let s = self.stats();
        self.ctx
            .metrics()
            .gauge("sim.gates_dd")
            .set(s.gates_dd as f64);
        self.ctx
            .metrics()
            .gauge("sim.gates_dmav")
            .set(s.gates_dmav as f64);
        self.ctx
            .metrics()
            .gauge("sim.converted_at")
            .set(s.converted_at.map_or(-1.0, |g| g as f64));
        self.ctx
            .metrics()
            .gauge("sim.conversion_seconds")
            .set(s.conversion_seconds);
        self.ctx
            .metrics()
            .gauge("sim.conversion_refusals")
            .set(s.conversion_refusals as f64);
        self.ctx
            .metrics()
            .gauge("sim.pressure_gcs")
            .set(s.pressure_gcs as f64);
        self.ctx
            .metrics()
            .gauge("sim.cached_dmavs")
            .set(s.cached_dmavs as f64);
        self.ctx
            .metrics()
            .gauge("sim.uncached_dmavs")
            .set(s.uncached_dmavs as f64);
        self.ctx
            .metrics()
            .gauge("sim.cache_hits")
            .set(s.cache_hits as f64);
        self.ctx
            .metrics()
            .gauge("sim.fused_matrices")
            .set(s.fused_matrices as f64);
        self.ctx
            .metrics()
            .gauge("sim.modeled_cost")
            .set(s.modeled_cost);
        self.ctx
            .metrics()
            .gauge("sim.peak_state_dd_size")
            .set(s.peak_state_dd_size as f64);
        self.ctx
            .metrics()
            .gauge("sim.dmav_plan_hits")
            .set(s.dmav_plan_hits as f64);
        self.ctx
            .metrics()
            .gauge("sim.dmav_plan_misses")
            .set(s.dmav_plan_misses as f64);
        self.ctx
            .metrics()
            .gauge("sim.ct_mv_hit_rate")
            .set(s.ct_mv_hit_rate);
        self.ctx
            .metrics()
            .gauge("sim.ct_mm_hit_rate")
            .set(s.ct_mm_hit_rate);
        self.ctx
            .metrics()
            .gauge("sim.ct_add_hit_rate")
            .set(s.ct_add_hit_rate);
        self.ctx.metrics().gauge("sim.fidelity").set(s.fidelity);
        self.ctx
            .metrics()
            .gauge("sim.approx_truncations")
            .set(s.approx_truncations as f64);
        self.ctx.metrics().gauge("sim.threads").set(self.t as f64);
        self.ctx
            .metrics()
            .gauge("sim.flat_shards")
            .set(self.shards as f64);
        self.ctx
            .metrics()
            .gauge("sim.memory_bytes")
            .set(self.memory_bytes() as f64);
        self.ctx
            .metrics()
            .gauge("plan_cache.entries")
            .set(self.plans.len() as f64);
        self.ctx
            .metrics()
            .gauge("plan_cache.memory_bytes")
            .set(self.plans.memory_bytes() as f64);
        self.ctx
            .metrics()
            .gauge("plan_cache.hits")
            .set(self.plans.hits() as f64);
        self.ctx
            .metrics()
            .gauge("plan_cache.misses")
            .set(self.plans.misses() as f64);
        self.ctx
            .metrics()
            .gauge("governor.elapsed_seconds")
            .set(self.gov.elapsed().as_secs_f64());
        if let Some(b) = self.gov.config().memory_budget_bytes {
            self.ctx
                .metrics()
                .gauge("governor.memory_budget_bytes")
                .set(b as f64);
        }
        // Forces backend detection so the `array.vecops_backend` label is
        // present even for runs that never left the DD phase.
        let _ = vecops::backend();
        self.pkg.publish_metrics();
    }
}

/// Whether the human-readable one-line phase-transition log is on (the
/// default); `FLATDD_PHASE_LOG=0` (or `false`/`off`) silences it.
fn phase_log_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        !matches!(
            std::env::var("FLATDD_PHASE_LOG").as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Fallibly allocates a zeroed, sharded flat buffer: the pool's workers
/// first-touch (zero) the shards they will own round-robin, so on NUMA
/// machines each shard's pages land on the node of the worker that operates
/// on it. Allocator refusal maps to [`FlatDdError::AllocationFailed`]; the
/// `alloc.flat` fault site makes the refusal injectable without a real OOM.
fn try_sharded_flat_buffer(
    dim: usize,
    shards: usize,
    pool: &ThreadPool,
    context: &'static str,
    ctx: &RunContext,
) -> Result<qarray::ShardedState, FlatDdError> {
    if ctx.fires(faults::SITE_ALLOC_FLAT).is_some() {
        return Err(FlatDdError::AllocationFailed {
            requested_bytes: dim * std::mem::size_of::<Complex64>(),
            context,
        });
    }
    let t = pool.size();
    qarray::ShardedState::try_new_zeroed_with(dim, shards, |z| {
        if t > 1 {
            pool.run(|tid| {
                for s in (tid..z.shards()).step_by(t) {
                    z.zero_shard(s);
                }
            });
        }
    })
    .map_err(|_| FlatDdError::AllocationFailed {
        requested_bytes: dim * std::mem::size_of::<Complex64>(),
        context,
    })
}

/// Squared 2-norm of a sharded state: per-shard partial sums (workers claim
/// shards round-robin) combined in shard order. One shard, or one worker,
/// falls back to the plain serial reduction bit-for-bit.
fn sharded_norm_sqr(v: &qarray::ShardedState, pool: &ThreadPool) -> f64 {
    let shards = v.shards();
    let t = pool.size();
    if t <= 1 || shards <= 1 {
        return vecops::norm_sqr(v);
    }
    let mut partials = vec![0.0f64; shards];
    let view = qarray::SyncUnsafeSlice::new(&mut partials);
    pool.run(|tid| {
        for s in (tid..shards).step_by(t) {
            let r = qarray::shard_range(v.len(), shards, s);
            // SAFETY: each partial slot is written by exactly one worker.
            unsafe { view.write(s, vecops::norm_sqr(&v[r])) };
        }
    });
    partials.iter().sum()
}

/// One-shot convenience: run `circuit` from `|0...0>` with `cfg`.
///
/// # Panics
/// On any [`FlatDdError`] (budget breach, divergence, invalid input); use
/// [`try_simulate`] under resource limits.
pub fn simulate(circuit: &Circuit, cfg: FlatDdConfig) -> Vec<Complex64> {
    try_simulate(circuit, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`simulate`]: returns the amplitudes or the typed error.
pub fn try_simulate(circuit: &Circuit, cfg: FlatDdConfig) -> Result<Vec<Complex64>, FlatDdError> {
    let mut sim = FlatDdSimulator::try_new(circuit.num_qubits(), cfg)?;
    sim.run(circuit)?;
    Ok(sim.amplitudes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::complex::state_distance;
    use qcircuit::{dense, generators};
    use std::time::Duration;

    const TOL: f64 = 1e-8;

    fn cfg(threads: usize) -> FlatDdConfig {
        FlatDdConfig {
            threads,
            governor: GovernorConfig::unlimited(),
            ..FlatDdConfig::default()
        }
    }

    #[test]
    fn default_config_matches_dense_on_all_families() {
        for c in [
            generators::ghz(7),
            generators::adder_n(8),
            generators::qft(6),
            generators::dnn(6, 2, 5),
            generators::vqe(6, 2, 5),
            generators::swap_test(3, 5),
            generators::knn(3, 5),
            generators::supremacy(2, 3, 6, 5),
            generators::w_state(6),
            generators::random_circuit(6, 80, 5),
        ] {
            let got = simulate(&c, cfg(4));
            let want = dense::simulate(&c);
            assert!(state_distance(&got, &want) < TOL, "{}", c.name());
        }
    }

    #[test]
    fn all_conversion_policies_agree() {
        let c = generators::dnn(6, 2, 9);
        let want = dense::simulate(&c);
        for conversion in [
            ConversionPolicy::Ewma(EwmaConfig::default()),
            ConversionPolicy::AtGate(5),
            ConversionPolicy::Immediate,
            ConversionPolicy::Never,
        ] {
            let got = simulate(
                &c,
                FlatDdConfig {
                    conversion,
                    ..cfg(2)
                },
            );
            assert!(state_distance(&got, &want) < TOL, "{conversion:?}");
        }
    }

    #[test]
    fn all_caching_policies_agree() {
        let c = generators::supremacy(2, 3, 6, 9);
        let want = dense::simulate(&c);
        for caching in [
            CachingPolicy::CostModel,
            CachingPolicy::Always,
            CachingPolicy::Never,
        ] {
            let got = simulate(
                &c,
                FlatDdConfig {
                    caching,
                    conversion: ConversionPolicy::Immediate,
                    ..cfg(4)
                },
            );
            assert!(state_distance(&got, &want) < TOL, "{caching:?}");
        }
    }

    #[test]
    fn all_fusion_policies_agree() {
        let c = generators::dnn(6, 3, 13);
        let want = dense::simulate(&c);
        for fusion in [
            FusionPolicy::None,
            FusionPolicy::DmavAware,
            FusionPolicy::KOperations(4),
        ] {
            let got = simulate(
                &c,
                FlatDdConfig {
                    fusion,
                    conversion: ConversionPolicy::Immediate,
                    ..cfg(4)
                },
            );
            assert!(state_distance(&got, &want) < TOL, "{fusion:?}");
        }
    }

    #[test]
    fn regular_circuits_never_convert() {
        let mut sim = FlatDdSimulator::new(10, cfg(2));
        let outcome = sim.run(&generators::ghz(10)).unwrap();
        assert_eq!(sim.phase(), Phase::Dd);
        assert_eq!(sim.stats().converted_at, None);
        assert_eq!(sim.stats().gates_dd, 10);
        assert_eq!(sim.stats().gates_dmav, 0);
        assert!(outcome.is_complete());
        assert_eq!(outcome.gates_applied, 10);
        assert_eq!(outcome.phase, Phase::Dd);
    }

    #[test]
    fn irregular_circuits_convert() {
        let n = 10;
        let mut sim = FlatDdSimulator::new(n, cfg(2));
        sim.run(&generators::dnn(n, 3, 21)).unwrap();
        assert_eq!(sim.phase(), Phase::Dmav, "DNN must trigger conversion");
        let at = sim.stats().converted_at.expect("conversion gate recorded");
        assert!(at > 0);
        assert!(sim.stats().gates_dmav > 0);
        let want = dense::simulate(&generators::dnn(n, 3, 21));
        assert!(state_distance(&sim.amplitudes(), &want) < TOL);
    }

    #[test]
    fn trace_records_phase_transition() {
        let n = 8;
        let c = generators::dnn(n, 3, 2);
        let mut sim = FlatDdSimulator::new(
            n,
            FlatDdConfig {
                trace: true,
                ..cfg(2)
            },
        );
        sim.run(&c).unwrap();
        let traces = sim.traces();
        assert!(!traces.is_empty());
        let dd_gates = traces.iter().filter(|t| t.phase == Phase::Dd).count();
        let dmav_gates = traces.iter().filter(|t| t.phase == Phase::Dmav).count();
        assert!(
            dd_gates > 0 && dmav_gates > 0,
            "dd={dd_gates} dmav={dmav_gates}"
        );
        // DD-phase records carry the DD size.
        assert!(traces
            .iter()
            .filter(|t| t.phase == Phase::Dd)
            .all(|t| t.dd_size.is_some()));
    }

    #[test]
    fn threads_are_clamped() {
        let sim = FlatDdSimulator::new(4, cfg(64));
        assert_eq!(sim.threads(), 8); // 2^(4-1)
        let sim = FlatDdSimulator::new(10, cfg(6));
        assert_eq!(sim.threads(), 4); // round down to power of two
    }

    #[test]
    fn apply_level_api_matches_run() {
        let c = generators::random_circuit(6, 50, 31);
        let mut a = FlatDdSimulator::new(6, cfg(2));
        for g in c.iter() {
            a.apply(g).unwrap();
        }
        let mut b = FlatDdSimulator::new(6, cfg(2));
        b.run(&c).unwrap();
        assert!(state_distance(&a.amplitudes(), &b.amplitudes()) < TOL);
    }

    #[test]
    fn amplitude_queries_work_in_both_phases() {
        let mut sim = FlatDdSimulator::new(5, cfg(2));
        sim.run(&generators::ghz(5)).unwrap();
        assert!(sim.amplitude(0).abs() > 0.7 - TOL);
        assert_eq!(sim.phase(), Phase::Dd);
        sim.convert_now().unwrap();
        assert_eq!(sim.phase(), Phase::Dmav);
        assert!(sim.amplitude(0).abs() > 0.7 - TOL);
        assert!(sim.amplitude(31).abs() > 0.7 - TOL);
    }

    #[test]
    fn cost_model_mixes_kernels_on_real_workloads() {
        let n = 8;
        let c = generators::supremacy(2, 4, 8, 7);
        let mut sim = FlatDdSimulator::new(
            n,
            FlatDdConfig {
                conversion: ConversionPolicy::Immediate,
                ..cfg(4)
            },
        );
        sim.run(&c).unwrap();
        let st = sim.stats();
        assert_eq!(st.cached_dmavs + st.uncached_dmavs, st.gates_dmav);
        assert!(st.gates_dmav >= c.num_gates());
        assert!(st.modeled_cost > 0.0);
    }

    #[test]
    fn plan_cache_hits_on_deep_repeated_gate_circuits() {
        // 50 identical layers: after the first layer every gate matrix is a
        // repeat, so nearly every DMAV plan lookup must hit.
        let n = 8;
        let mut c = Circuit::new(n);
        for _ in 0..50 {
            for q in 0..n {
                c.h(q);
                c.t(q);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
        }
        let mut sim = FlatDdSimulator::new(
            n,
            FlatDdConfig {
                conversion: ConversionPolicy::Immediate,
                ..cfg(4)
            },
        );
        sim.run(&c).unwrap();
        let st = sim.stats();
        // At least one plan lookup per DMAV (the cost-model path looks up
        // both variants when it prefers the plain kernel).
        let total = st.dmav_plan_hits + st.dmav_plan_misses;
        assert!(total >= st.gates_dmav);
        let rate = st.dmav_plan_hits as f64 / total as f64;
        assert!(rate > 0.9, "plan hit rate {rate} (hits {total})");

        // Disabling the cache must not change the result.
        let mut plain = FlatDdSimulator::new(
            n,
            FlatDdConfig {
                conversion: ConversionPolicy::Immediate,
                plan_cache_bytes: 0,
                ..cfg(4)
            },
        );
        plain.run(&c).unwrap();
        assert_eq!(plain.stats().dmav_plan_hits, 0);
        assert!(plain.stats().dmav_plan_misses >= plain.stats().gates_dmav);
        assert!(state_distance(&sim.amplitudes(), &plain.amplitudes()) < 1e-9);
    }

    #[test]
    fn memory_accounting_is_positive() {
        let mut sim = FlatDdSimulator::new(6, cfg(2));
        sim.run(&generators::dnn(6, 2, 1)).unwrap();
        assert!(sim.memory_bytes() > 0);
    }

    #[test]
    fn sampling_and_marginals_agree_across_phases() {
        let c = generators::ghz(6);
        // DD phase.
        let mut dd = FlatDdSimulator::new(6, cfg(2));
        dd.run(&c).unwrap();
        assert_eq!(dd.phase(), Phase::Dd);
        // Forced flat phase.
        let mut flat = FlatDdSimulator::new(6, cfg(2));
        flat.run(&c).unwrap();
        flat.convert_now().unwrap();
        assert_eq!(flat.phase(), Phase::Dmav);
        for q in 0..6 {
            let a = dd.qubit_probability_one(q);
            let b = flat.qubit_probability_one(q);
            assert!((a - b).abs() < 1e-9 && (a - 0.5).abs() < 1e-9, "q={q}");
        }
        let mut rng = qdd::SplitMix64::new(4);
        for _ in 0..50 {
            let x = dd.sample(&mut rng.as_fn());
            assert!(x == 0 || x == 63);
            let y = flat.sample(&mut rng.as_fn());
            assert!(y == 0 || y == 63);
        }
        let counts = flat.sample_counts(100, &mut rng.as_fn());
        assert!(counts.len() <= 2);
    }

    #[test]
    fn expectation_agrees_across_phases() {
        use qcircuit::{Hamiltonian, PauliString};
        let c = generators::vqe(6, 2, 5);
        let ham = Hamiltonian::transverse_ising(6, 1.0, 0.4);
        let mut a = FlatDdSimulator::new(
            6,
            FlatDdConfig {
                conversion: ConversionPolicy::Never,
                ..cfg(2)
            },
        );
        a.run(&c).unwrap();
        let ea = a.expectation(&ham);
        let mut b = FlatDdSimulator::new(
            6,
            FlatDdConfig {
                conversion: ConversionPolicy::Immediate,
                ..cfg(2)
            },
        );
        b.run(&c).unwrap();
        let eb = b.expectation(&ham);
        assert!((ea - eb).abs() < 1e-8, "{ea} vs {eb}");
        let p = PauliString::zz(1.0, 0, 1);
        assert!((a.expectation_pauli(&p) - b.expectation_pauli(&p)).abs() < 1e-8);
    }

    #[test]
    fn reconversion_restores_the_dd_phase() {
        // Hidden-shift ends in a basis state: after running flat, the back
        // conversion must produce a tiny DD.
        let n = 8;
        let shift = 0b1011_0010u64;
        let c = generators::hidden_shift(n, shift);
        let mut sim = FlatDdSimulator::new(
            n,
            FlatDdConfig {
                conversion: ConversionPolicy::Immediate,
                ..cfg(2)
            },
        );
        sim.run(&c).unwrap();
        assert_eq!(sim.phase(), Phase::Dmav);
        let size = sim.reconvert_to_dd().expect("was flat");
        assert_eq!(sim.phase(), Phase::Dd);
        assert!(
            size <= n,
            "final basis state must compress to <= n nodes, got {size}"
        );
        assert!((sim.amplitude(shift as usize).abs() - 1.0).abs() < 1e-8);
        // Reconverting again is a no-op.
        assert!(sim.reconvert_to_dd().is_none());
        // And the engine keeps working in the DD phase.
        sim.apply(&qcircuit::Gate::new(qcircuit::GateKind::X, 0))
            .unwrap();
        assert!((sim.amplitude((shift ^ 1) as usize).abs() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn round_trip_conversion_preserves_state() {
        let c = generators::dnn(7, 2, 3);
        let mut sim = FlatDdSimulator::new(7, cfg(2));
        sim.run(&c).unwrap();
        let before = sim.amplitudes();
        if sim.phase() == Phase::Dd {
            sim.convert_now().unwrap();
        }
        sim.reconvert_to_dd();
        sim.convert_now().unwrap();
        let after = sim.amplitudes();
        assert!(state_distance(&before, &after) < 1e-9);
    }

    #[test]
    fn measurement_collapse_in_both_phases() {
        let c = generators::ghz(5);
        let mut rng = qdd::SplitMix64::new(8);
        for convert in [false, true] {
            let mut sim = FlatDdSimulator::new(5, cfg(2));
            sim.run(&c).unwrap();
            if convert {
                sim.convert_now().unwrap();
            }
            let outcome = sim.measure_qubit(2, &mut rng.as_fn());
            for q in 0..5 {
                let p1 = sim.qubit_probability_one(q);
                assert!(
                    (p1 - if outcome { 1.0 } else { 0.0 }).abs() < 1e-9,
                    "convert={convert} q={q}"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Governor behavior
    // ------------------------------------------------------------------

    #[test]
    fn zero_qubits_is_invalid_input_not_a_panic() {
        let err = FlatDdSimulator::try_new(0, cfg(1)).err();
        assert!(
            matches!(err, Some(FlatDdError::InvalidInput(_))),
            "expected InvalidInput, got {err:?}"
        );
    }

    #[test]
    fn width_mismatch_is_invalid_input() {
        let mut sim = FlatDdSimulator::new(4, cfg(1));
        let err = sim.run(&generators::ghz(6)).unwrap_err();
        assert!(matches!(err, FlatDdError::InvalidInput(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn zero_deadline_returns_partial_outcome() {
        let mut g = cfg(2);
        g.governor.deadline = Some(Duration::ZERO);
        let mut sim = FlatDdSimulator::new(8, g);
        std::thread::sleep(Duration::from_millis(2));
        let err = sim.run(&generators::ghz(8)).unwrap_err();
        match &err {
            FlatDdError::Deadline { partial, .. } => {
                assert_eq!(partial.total_gates, 8);
                assert_eq!(partial.gates_applied, 0, "deadline checked pre-gate");
                assert!(!partial.is_complete());
                assert_eq!(partial.phase, Phase::Dd);
            }
            other => panic!("expected Deadline, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn refused_conversion_keeps_run_in_dd_mode() {
        // Budget admits the DD tables but not the two 2^20 flat buffers
        // (2 * 16 MiB), so the forced AtGate conversion must be refused and
        // the run still complete correctly in DD mode.
        let n = 20;
        let mut g = cfg(2);
        g.conversion = ConversionPolicy::AtGate(3);
        g.governor.memory_budget_bytes = Some(16 * 1024 * 1024);
        let mut sim = FlatDdSimulator::new(n, g);
        let c = generators::ghz(n);
        let outcome = sim.run(&c).expect("GHZ DD tables fit 16 MiB");
        assert!(outcome.is_complete());
        assert_eq!(sim.phase(), Phase::Dd, "conversion must have been refused");
        assert!(sim.stats().conversion_refusals >= 1);
        assert_eq!(sim.stats().converted_at, None);
        assert!((sim.amplitude(0).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn immediate_policy_over_budget_falls_back_to_dd() {
        // 2 * 2^20 * 16 = 32 MiB of flat state against a 16 MiB budget.
        let mut g = cfg(1);
        g.conversion = ConversionPolicy::Immediate;
        g.governor.memory_budget_bytes = Some(16 * 1024 * 1024);
        let sim = FlatDdSimulator::new(20, g);
        assert_eq!(sim.phase(), Phase::Dd);
        assert_eq!(sim.stats().conversion_refusals, 1);
    }

    #[test]
    fn forced_conversion_over_budget_errors_with_refusal_recorded() {
        let mut g = cfg(1);
        g.governor.memory_budget_bytes = Some(16 * 1024 * 1024);
        let mut sim = FlatDdSimulator::new(20, g);
        let err = sim.convert_now().unwrap_err();
        match err {
            FlatDdError::MemoryBudgetExceeded { context, .. } => {
                assert_eq!(context, "DD-to-array conversion");
            }
            other => panic!("expected MemoryBudgetExceeded, got {other:?}"),
        }
        assert_eq!(sim.stats().conversion_refusals, 1);
        assert_eq!(sim.phase(), Phase::Dd);
    }

    #[test]
    fn one_qubit_circuits_run_under_governor() {
        let mut g = cfg(8); // threads clamp to 1 for n = 1
        g.governor.memory_budget_bytes = Some(8 * 1024 * 1024);
        g.governor.deadline = Some(Duration::from_secs(60));
        let mut sim = FlatDdSimulator::new(1, g);
        assert_eq!(sim.threads(), 1);
        let mut c = Circuit::new(1);
        c.h(0);
        c.z(0);
        c.h(0);
        let outcome = sim.run(&c).unwrap();
        assert!(outcome.is_complete());
        assert!((sim.amplitude(1).abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn divergence_watchdog_catches_non_unitary_evolution() {
        use qcircuit::{Gate, GateKind};
        let mut g = cfg(1);
        g.governor.health_check_every = 1;
        let mut sim = FlatDdSimulator::new(3, g);
        // 2*I is not unitary: the state norm doubles on application.
        let double = [
            Complex64::new(2.0, 0.0),
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::new(2.0, 0.0),
        ];
        let err = sim
            .apply(&Gate::new(GateKind::Unitary(double), 0))
            .unwrap_err();
        match err {
            FlatDdError::NumericalDivergence { norm, .. } => {
                assert!((norm - 2.0).abs() < 1e-9, "norm {norm}");
            }
            other => panic!("expected NumericalDivergence, got {other:?}"),
        }
    }

    #[test]
    fn run_after_deadline_error_reports_progress() {
        // Set a deadline that expires mid-run: first gates apply, then the
        // error carries the partial gate count.
        let mut g = cfg(2);
        g.governor.deadline = Some(Duration::from_millis(5));
        let mut sim = FlatDdSimulator::new(10, g);
        // Enough gates that 5 ms cannot possibly finish them all... not
        // guaranteed on fast machines, so loop until the deadline trips.
        let c = generators::random_circuit(10, 200, 3);
        let mut last = None;
        for _ in 0..200 {
            match sim.run(&c) {
                Ok(_) => {}
                Err(e) => {
                    last = Some(e);
                    break;
                }
            }
        }
        let err = last.expect("repeated runs must eventually pass the 5 ms deadline");
        let partial = err.partial_outcome().expect("deadline carries partial");
        assert!(partial.gates_applied <= partial.total_gates);
    }
}
