//! Memoization of DMAV assignments (the "plan cache").
//!
//! `Assign` / `AssignCache` (Algorithms 1-2) walk the gate-matrix DD down to
//! the border level for **every** gate application, yet deep circuits apply
//! the same small set of gate matrices thousands of times — and DDs are
//! canonical, so a repeated gate produces the *identical* root edge. This
//! cache keys the finished task lists by `(root node id, root weight, n, t)`
//! and hands out shared [`Arc`]s, so repeated gates skip the recursive
//! descent entirely.
//!
//! Node ids are recycled by [`DdPackage::gc`], which makes a stale plan
//! silently wrong rather than just slow. Every lookup therefore compares the
//! package's [`DdPackage::gc_epoch`] against the epoch the cache was filled
//! under and drops everything on a mismatch. Held bytes are reported via
//! [`PlanCache::memory_bytes`] so the resource governor charges them like
//! any other cache, and the LRU budget keeps pathological circuits (many
//! distinct fused matrices) from hoarding memory.

use crate::dmav::DmavAssignment;
use crate::dmav_cache::DmavCacheAssignment;
use crate::error::FlatDdError;
use qdd::fxhash::FxHashMap;
use qdd::{DdPackage, MEdge};
use std::sync::Arc;

/// Identity of a DMAV plan: the matrix root edge (node id + interned
/// weight — canonical DDs make this a complete identity) plus the geometry
/// the assignment was built for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct PlanKey {
    node: u32,
    weight: qdd::CIdx,
    n: u32,
    t: u32,
}

impl PlanKey {
    fn new(m: MEdge, n: usize, t: usize) -> Self {
        PlanKey {
            node: m.n,
            weight: m.w,
            n: n as u32,
            t: t as u32,
        }
    }
}

/// Fixed per-entry overhead charged on top of the assignments' own heap
/// bytes (key, map slot, `Arc` control blocks).
const ENTRY_OVERHEAD: usize = 128;

struct Entry {
    plain: Option<Arc<DmavAssignment>>,
    cached: Option<Arc<DmavCacheAssignment>>,
    last_used: u64,
    bytes: usize,
}

/// LRU cache of [`DmavAssignment`] / [`DmavCacheAssignment`] values keyed
/// by matrix root edge, invalidated wholesale on DD garbage collection.
pub struct PlanCache {
    map: FxHashMap<PlanKey, Entry>,
    /// GC epoch the current contents were built under.
    epoch: u64,
    /// Logical LRU clock (bumped per lookup).
    clock: u64,
    budget_bytes: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `budget_bytes` of plan data.
    /// A budget of 0 disables storage: every lookup builds a fresh plan and
    /// counts as a miss.
    pub fn new(budget_bytes: usize) -> Self {
        PlanCache {
            map: FxHashMap::default(),
            epoch: 0,
            clock: 0,
            budget_bytes,
            bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the row-space assignment for `(m, n, t)`, building and
    /// memoizing it on a miss.
    pub fn get_plain(
        &mut self,
        pkg: &DdPackage,
        m: MEdge,
        n: usize,
        t: usize,
    ) -> Result<Arc<DmavAssignment>, FlatDdError> {
        self.sync_epoch(pkg.gc_epoch());
        self.clock += 1;
        let key = PlanKey::new(m, n, t);
        if let Some(e) = self.map.get_mut(&key) {
            if let Some(p) = &e.plain {
                e.last_used = self.clock;
                self.hits += 1;
                return Ok(Arc::clone(p));
            }
        }
        self.misses += 1;
        let asg = Arc::new(DmavAssignment::try_build(pkg, m, n, t)?);
        let cost = asg.memory_bytes();
        self.store(key, cost, |e| e.plain = Some(Arc::clone(&asg)));
        Ok(asg)
    }

    /// Returns the column-space (caching) assignment for `(m, n, t)`,
    /// building and memoizing it on a miss.
    pub fn get_cached(
        &mut self,
        pkg: &DdPackage,
        m: MEdge,
        n: usize,
        t: usize,
    ) -> Result<Arc<DmavCacheAssignment>, FlatDdError> {
        self.sync_epoch(pkg.gc_epoch());
        self.clock += 1;
        let key = PlanKey::new(m, n, t);
        if let Some(e) = self.map.get_mut(&key) {
            if let Some(p) = &e.cached {
                e.last_used = self.clock;
                self.hits += 1;
                return Ok(Arc::clone(p));
            }
        }
        self.misses += 1;
        let asg = Arc::new(DmavCacheAssignment::try_build(pkg, m, n, t)?);
        let cost = asg.memory_bytes();
        self.store(key, cost, |e| e.cached = Some(Arc::clone(&asg)));
        Ok(asg)
    }

    /// Drops every stored plan when the package's GC epoch moved (node ids
    /// may have been recycled). Hit/miss counters survive.
    fn sync_epoch(&mut self, epoch: u64) {
        if epoch != self.epoch {
            self.map.clear();
            self.bytes = 0;
            self.epoch = epoch;
        }
    }

    fn store(&mut self, key: PlanKey, cost: usize, fill: impl FnOnce(&mut Entry)) {
        if self.budget_bytes == 0 {
            return;
        }
        let clock = self.clock;
        let e = self.map.entry(key).or_insert(Entry {
            plain: None,
            cached: None,
            last_used: clock,
            bytes: ENTRY_OVERHEAD,
        });
        if e.bytes == ENTRY_OVERHEAD && e.plain.is_none() && e.cached.is_none() {
            self.bytes += ENTRY_OVERHEAD;
        }
        fill(e);
        e.bytes += cost;
        e.last_used = clock;
        self.bytes += cost;
        self.evict_over_budget();
    }

    /// Evicts least-recently-used entries until the budget holds. May evict
    /// the entry just stored if it alone exceeds the budget (oversized plans
    /// are simply never cached).
    fn evict_over_budget(&mut self) {
        while self.bytes > self.budget_bytes && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("map is non-empty");
            if let Some(e) = self.map.remove(&victim) {
                self.bytes = self.bytes.saturating_sub(e.bytes);
            }
        }
    }

    /// Drops all stored plans (memory-pressure relief). Counters survive.
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }

    /// Bytes currently charged to the cache.
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that built a fresh plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Stored plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no plans are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::gate::{Gate, GateKind};

    fn pkg_with_gate(n: usize) -> (DdPackage, MEdge) {
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 0), n);
        (pkg, m)
    }

    #[test]
    fn repeated_lookups_hit() {
        let (pkg, m) = pkg_with_gate(5);
        let mut cache = PlanCache::new(1 << 20);
        let a = cache.get_plain(&pkg, m, 5, 2).unwrap();
        let b = cache.get_plain(&pkg, m, 5, 2).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same plan");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // The cached-variant plan is a separate slot under the same key.
        cache.get_cached(&pkg, m, 5, 2).unwrap();
        let c = cache.get_cached(&pkg, m, 5, 2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        assert!(c.total_tasks() > 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn gc_epoch_bump_invalidates() {
        let (mut pkg, m) = pkg_with_gate(5);
        let mut cache = PlanCache::new(1 << 20);
        cache.get_plain(&pkg, m, 5, 2).unwrap();
        assert_eq!(cache.len(), 1);
        // GC recycles node ids: the cache must drop everything.
        pkg.gc(&[], &[m]);
        cache.get_plain(&pkg, m, 5, 2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert_eq!(cache.len(), 1, "refilled under the new epoch");
    }

    #[test]
    fn zero_budget_disables_storage() {
        let (pkg, m) = pkg_with_gate(5);
        let mut cache = PlanCache::new(0);
        cache.get_plain(&pkg, m, 5, 2).unwrap();
        cache.get_plain(&pkg, m, 5, 2).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
        assert_eq!(cache.memory_bytes(), 0);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let pkg = DdPackage::default();
        let gates: Vec<MEdge> = (0..4)
            .map(|q| pkg.gate_dd(&Gate::new(GateKind::H, q), 6))
            .collect();
        let mut cache = PlanCache::new(1 << 20);
        let one_plan = {
            let a = cache.get_plain(&pkg, gates[0], 6, 2).unwrap();
            a.memory_bytes() + ENTRY_OVERHEAD
        };
        // Budget for about two plans.
        let mut cache = PlanCache::new(2 * one_plan + ENTRY_OVERHEAD);
        for &g in &gates {
            cache.get_plain(&pkg, g, 6, 2).unwrap();
        }
        assert!(cache.memory_bytes() <= 2 * one_plan + ENTRY_OVERHEAD);
        assert!(cache.len() < gates.len(), "older plans must be evicted");
        // The most recent plan survives.
        cache.get_plain(&pkg, gates[3], 6, 2).unwrap();
        assert_eq!(cache.misses(), 4, "last plan answered from cache");
    }

    #[test]
    fn invalid_geometry_propagates_error() {
        let (pkg, m) = pkg_with_gate(5);
        let mut cache = PlanCache::new(1 << 20);
        assert!(matches!(
            cache.get_plain(&pkg, m, 5, 3),
            Err(FlatDdError::InvalidInput(_))
        ));
        assert!(cache.is_empty());
    }
}
