//! Gate fusion (Section 3.3, Algorithm 3) and the k-operations baseline
//! \[100\].
//!
//! After the DD-to-DMAV conversion, the remaining gates are DD matrices.
//! Two consecutive gates can be *fused* with a DD matrix-matrix multiply
//! (DDMM) into one matrix, trading one DMAV for a (cheap) DDMM — a win
//! exactly when the fused matrix's DMAV cost is below the sum of the two
//! separate DMAV costs (Figures 9 and 10 show both directions). FlatDD's
//! DMAV-aware fusion greedily fuses while the Eq. 5 cost decreases.
//!
//! The k-operations strategy of Zulehner & Wille (DATE'19) fuses every `k`
//! consecutive gates unconditionally; it is the comparison point of
//! Table 2.

use crate::cost::CostModel;
use qcircuit::Gate;
use qdd::{DdPackage, MEdge, MacTable};

/// A fusion result: the matrices FlatDD will DMAV, in application order.
#[derive(Debug)]
pub struct FusedGates {
    /// Fused gate matrices, in application order.
    pub matrices: Vec<MEdge>,
    /// How many original gates each matrix folds, aligned with
    /// `matrices` (a leading identity matrix folds 0). Summing a prefix
    /// gives the original-gate cursor at that matrix boundary, which is
    /// what makes a checkpoint written mid-span resumable.
    pub gate_counts: Vec<usize>,
    /// Total modeled DMAV cost (Eq. 5) of the fused sequence.
    pub total_cost: f64,
    /// Number of original gates that went in.
    pub original_gates: usize,
}

impl FusedGates {
    /// Number of DMAVs after fusion.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// True when no matrices were produced.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }
}

/// DMAV-aware gate fusion (Algorithm 3): fuse the running matrix with the
/// next gate iff the fused DMAV is modeled cheaper than the two separate
/// DMAVs (`C_i + C_p >= C_ip`).
///
/// `gc_every` bounds DD growth during fusion: after that many DDMMs the
/// package is garbage-collected with the surviving matrices as roots.
pub fn fuse_dmav_aware(
    pkg: &mut DdPackage,
    gates: &[Gate],
    n: usize,
    t: usize,
    model: &CostModel,
    gc_every: usize,
) -> FusedGates {
    let mut mac = MacTable::default();
    let mut out: Vec<MEdge> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut total_cost = 0.0f64;
    // M_p = identity, C_p = 0 (line 2).
    let mut m_p = pkg.identity_dd(n);
    let mut c_p = 0.0f64;
    let mut g_p = 0usize;
    let mut ddmm_since_gc = 0usize;

    for gate in gates {
        let m_i = pkg.gate_dd(gate, n);
        let c_i = model.cost_no_cache(mac.count(pkg, m_i), t);
        // M_ip = M_i * M_p: apply the accumulated M_p first, then M_i.
        let m_ip = pkg.mul_mm(m_i, m_p);
        let c_ip = model.cost_no_cache(mac.count(pkg, m_ip), t);
        if c_i + c_p < c_ip {
            // Sequential DMAV is cheaper: emit M_p, restart from M_i.
            out.push(m_p);
            counts.push(g_p);
            total_cost += c_p;
            m_p = m_i;
            c_p = c_i;
            g_p = 1;
        } else {
            m_p = m_ip;
            c_p = c_ip;
            g_p += 1;
        }
        ddmm_since_gc += 1;
        if ddmm_since_gc >= gc_every {
            let mut roots = out.clone();
            roots.push(m_p);
            roots.push(m_i);
            pkg.gc(&[], &roots);
            mac.clear(); // node ids may have been recycled
            ddmm_since_gc = 0;
        }
    }
    // Flush the trailing accumulated matrix (implicit in the paper).
    out.push(m_p);
    counts.push(g_p);
    total_cost += c_p;
    FusedGates {
        matrices: out,
        gate_counts: counts,
        total_cost,
        original_gates: gates.len(),
    }
}

/// The k-operations baseline: fuse every `k` consecutive gates via DDMM,
/// unconditionally.
pub fn fuse_k_operations(
    pkg: &mut DdPackage,
    gates: &[Gate],
    n: usize,
    t: usize,
    k: usize,
    model: &CostModel,
    gc_every: usize,
) -> FusedGates {
    assert!(k >= 1);
    let mut mac = MacTable::default();
    let mut out: Vec<MEdge> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut total_cost = 0.0f64;
    let mut ddmm_since_gc = 0usize;
    for chunk in gates.chunks(k) {
        let mut m = pkg.gate_dd(&chunk[0], n);
        for gate in &chunk[1..] {
            let gd = pkg.gate_dd(gate, n);
            m = pkg.mul_mm(gd, m);
            ddmm_since_gc += 1;
            if ddmm_since_gc >= gc_every {
                let mut roots = out.clone();
                roots.push(m);
                pkg.gc(&[], &roots);
                mac.clear();
                ddmm_since_gc = 0;
            }
        }
        total_cost += model.cost_no_cache(mac.count(pkg, m), t);
        out.push(m);
        counts.push(chunk.len());
    }
    FusedGates {
        matrices: out,
        gate_counts: counts,
        total_cost,
        original_gates: gates.len(),
    }
}

/// No fusion: one matrix per gate (for baseline comparisons).
pub fn no_fusion(
    pkg: &mut DdPackage,
    gates: &[Gate],
    n: usize,
    t: usize,
    model: &CostModel,
) -> FusedGates {
    let mut mac = MacTable::default();
    let mut out = Vec::with_capacity(gates.len());
    let mut total_cost = 0.0;
    for gate in gates {
        let m = pkg.gate_dd(gate, n);
        total_cost += model.cost_no_cache(mac.count(pkg, m), t);
        out.push(m);
    }
    FusedGates {
        gate_counts: vec![1; out.len()],
        matrices: out,
        total_cost,
        original_gates: gates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::complex::state_distance;
    use qcircuit::{dense, generators, Complex64};

    const TOL: f64 = 1e-8;

    /// Applies a fused sequence to |0...0> through dense matrices (ground
    /// truth check of semantic equivalence). Also asserts the per-matrix
    /// gate counts partition the original gate sequence — the invariant
    /// mid-span checkpoint cursors depend on.
    fn apply_fused(pkg: &DdPackage, fused: &FusedGates, n: usize) -> Vec<Complex64> {
        assert_eq!(fused.gate_counts.len(), fused.matrices.len());
        assert_eq!(
            fused.gate_counts.iter().sum::<usize>(),
            fused.original_gates
        );
        let mut v = dense::zero_state(n);
        for &m in &fused.matrices {
            let dm = pkg.matrix_to_dense(m, n);
            v = dense::mat_vec(&dm, &v);
        }
        v
    }

    #[test]
    fn dmav_aware_fusion_preserves_semantics() {
        let n = 5;
        for c in [
            generators::random_circuit(n, 40, 3),
            generators::ghz(n),
            generators::qft(n),
            generators::dnn(n, 2, 3),
        ] {
            let mut pkg = DdPackage::default();
            let fused = fuse_dmav_aware(&mut pkg, c.gates(), n, 4, &CostModel::default(), 64);
            let got = apply_fused(&pkg, &fused, n);
            let want = dense::simulate(&c);
            assert!(state_distance(&got, &want) < TOL, "{}", c.name());
            assert_eq!(fused.original_gates, c.num_gates());
        }
    }

    #[test]
    fn k_operations_preserves_semantics() {
        let n = 5;
        let c = generators::random_circuit(n, 30, 7);
        for k in [1usize, 2, 4, 7] {
            let mut pkg = DdPackage::default();
            let fused = fuse_k_operations(&mut pkg, c.gates(), n, 4, k, &CostModel::default(), 64);
            assert_eq!(fused.len(), c.num_gates().div_ceil(k));
            let got = apply_fused(&pkg, &fused, n);
            let want = dense::simulate(&c);
            assert!(state_distance(&got, &want) < TOL, "k={k}");
        }
    }

    #[test]
    fn fusion_reduces_gate_count_on_diagonal_runs() {
        // A run of diagonal gates fuses into very few matrices: the fused
        // matrix stays diagonal, so cost never grows.
        let n = 6;
        let mut c = qcircuit::Circuit::new(n);
        for q in 0..n {
            c.t(q).rz(0.3, q).s(q);
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1);
        }
        let mut pkg = DdPackage::default();
        let fused = fuse_dmav_aware(&mut pkg, c.gates(), n, 4, &CostModel::default(), 256);
        assert!(
            fused.len() <= 2,
            "diagonal run should fuse into at most identity+1 matrices, got {}",
            fused.len()
        );
    }

    #[test]
    fn fusion_never_costs_more_than_no_fusion() {
        // The greedy rule only fuses when strictly cheaper, so total modeled
        // cost is <= the unfused total.
        let n = 6;
        for seed in [1u64, 2, 3] {
            let c = generators::dnn(n, 2, seed);
            let mut pkg1 = DdPackage::default();
            let fused = fuse_dmav_aware(&mut pkg1, c.gates(), n, 4, &CostModel::default(), 256);
            let mut pkg2 = DdPackage::default();
            let plain = no_fusion(&mut pkg2, c.gates(), n, 4, &CostModel::default());
            assert!(
                fused.total_cost <= plain.total_cost + 1e-9,
                "seed {seed}: fused {} > plain {}",
                fused.total_cost,
                plain.total_cost
            );
            assert!(fused.len() <= plain.len());
        }
    }

    #[test]
    fn gc_during_fusion_is_safe() {
        let n = 5;
        let c = generators::random_circuit(n, 50, 11);
        let mut pkg = DdPackage::default();
        // GC after every DDMM: maximum stress on root tracking.
        let fused = fuse_dmav_aware(&mut pkg, c.gates(), n, 2, &CostModel::default(), 1);
        let got = apply_fused(&pkg, &fused, n);
        assert!(state_distance(&got, &dense::simulate(&c)) < TOL);
    }

    #[test]
    fn single_gate_circuit() {
        let n = 3;
        let mut c = qcircuit::Circuit::new(n);
        c.h(1);
        let mut pkg = DdPackage::default();
        let fused = fuse_dmav_aware(&mut pkg, c.gates(), n, 2, &CostModel::default(), 64);
        // Identity fuses into H: exactly one matrix out.
        assert_eq!(fused.len(), 1);
        let got = apply_fused(&pkg, &fused, n);
        assert!(state_distance(&got, &dense::simulate(&c)) < TOL);
    }

    #[test]
    fn empty_gate_list_yields_identity() {
        let mut pkg = DdPackage::default();
        let fused = fuse_dmav_aware(&mut pkg, &[], 3, 2, &CostModel::default(), 64);
        assert_eq!(fused.len(), 1);
        let got = apply_fused(&pkg, &fused, 3);
        assert!(state_distance(&got, &dense::zero_state(3)) < TOL);
    }
}
