//! The typed error surface of the hybrid simulator.
//!
//! Every fallible operation on the simulation and parsing paths returns
//! [`FlatDdError`] instead of panicking: callers under memory or time
//! budgets receive a structured description of what was exhausted together
//! with a partial [`RunOutcome`] snapshot, so a run can be retried with a
//! different policy (more budget, `Never` conversion, fewer threads) instead
//! of taking the process down.

use crate::sim::{FlatDdStats, Phase};
use std::fmt;
use std::time::Duration;

/// How far a run got — returned on success and carried inside
/// [`FlatDdError::Deadline`] (and the other resource errors) as a partial
/// result.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Gates fully applied so far. During the fused DMAV phase this counts
    /// the gates handed to the fusion pass only once they have all been
    /// multiplied in.
    pub gates_applied: usize,
    /// Gates in the circuit handed to [`crate::FlatDdSimulator::run`]. For
    /// errors raised from the `apply` level (no enclosing run), this equals
    /// `gates_applied`.
    pub total_gates: usize,
    /// Representation the simulator was in when the snapshot was taken.
    pub phase: Phase,
    /// Aggregate statistics at snapshot time.
    pub stats: FlatDdStats,
}

impl RunOutcome {
    /// True when every gate of the circuit was applied.
    pub fn is_complete(&self) -> bool {
        self.gates_applied >= self.total_gates
    }
}

/// Typed error of the FlatDD stack.
#[derive(Debug)]
pub enum FlatDdError {
    /// The configured memory budget was exceeded and the degradation ladder
    /// (cache flush, garbage collection, conversion refusal) could not get
    /// back under it.
    MemoryBudgetExceeded {
        /// Configured budget in bytes.
        budget_bytes: usize,
        /// Observed usage in bytes when the breach was detected.
        observed_bytes: usize,
        /// Which probe detected the breach (allocator accounting or RSS).
        context: &'static str,
        /// Snapshot of the run at the point of failure.
        partial: Box<RunOutcome>,
    },
    /// The wall-clock deadline elapsed; `partial` tells the caller how far
    /// the run got so it can be resumed or retried under another policy.
    Deadline {
        /// Configured deadline.
        budget: Duration,
        /// Elapsed wall-clock time when the breach was detected.
        elapsed: Duration,
        /// Snapshot of the run at the point of failure.
        partial: Box<RunOutcome>,
    },
    /// The numerical-health watchdog found a non-finite amplitude or a
    /// state norm drifted away from 1.
    NumericalDivergence {
        /// Observed state norm (NaN when a non-finite amplitude was found).
        norm: f64,
        /// Human-readable diagnostics (which probe tripped, where).
        detail: String,
        /// Snapshot of the run at the point of failure.
        partial: Box<RunOutcome>,
    },
    /// An allocation was refused by the allocator (`try_reserve` failed).
    AllocationFailed {
        /// Bytes the failed allocation asked for.
        requested_bytes: usize,
        /// What the allocation was for.
        context: &'static str,
    },
    /// OpenQASM parsing failed.
    Qasm(qcircuit::qasm::QasmError),
    /// An I/O operation (file access, DD deserialization) failed.
    Io(std::io::Error),
    /// Malformed caller input (wrong circuit width, zero qubits, ...).
    InvalidInput(String),
    /// The run was interrupted by a signal (SIGINT/SIGTERM) polled at a
    /// gate boundary. When checkpointing is configured the simulator wrote
    /// a checkpoint before raising this, so the run is resumable.
    Interrupted {
        /// The delivered signal number.
        signal: i32,
        /// Snapshot of the run at the interruption point.
        partial: Box<RunOutcome>,
    },
    /// A checkpoint file failed validation (bad magic/version, checksum
    /// mismatch, truncation, or a header that does not match the circuit
    /// and config being resumed).
    CorruptCheckpoint {
        /// What failed, and where in the file.
        detail: String,
    },
    /// A worker thread panicked during a parallel section (DD-to-array
    /// conversion). The panic was contained; the simulator state may be
    /// stale but the process survives with a typed error.
    WorkerPanic {
        /// Which parallel section the panic escaped from.
        context: &'static str,
        /// Snapshot of the run at the point of failure.
        partial: Box<RunOutcome>,
    },
}

impl FlatDdError {
    /// A stable process exit code per error class, used by the CLI binaries:
    /// `2` usage/invalid input, `3` QASM parse error, `4` memory budget or
    /// allocation failure, `5` deadline, `6` numerical divergence, `7` I/O,
    /// `8` interrupted by signal (resumable when a checkpoint was written),
    /// `9` corrupt/mismatched checkpoint, `10` contained worker panic.
    pub fn exit_code(&self) -> i32 {
        match self {
            FlatDdError::InvalidInput(_) => 2,
            FlatDdError::Qasm(_) => 3,
            FlatDdError::MemoryBudgetExceeded { .. } | FlatDdError::AllocationFailed { .. } => 4,
            FlatDdError::Deadline { .. } => 5,
            FlatDdError::NumericalDivergence { .. } => 6,
            FlatDdError::Io(_) => 7,
            FlatDdError::Interrupted { .. } => 8,
            FlatDdError::CorruptCheckpoint { .. } => 9,
            FlatDdError::WorkerPanic { .. } => 10,
        }
    }

    /// The partial run snapshot, when this error carries one.
    pub fn partial_outcome(&self) -> Option<&RunOutcome> {
        match self {
            FlatDdError::MemoryBudgetExceeded { partial, .. }
            | FlatDdError::Deadline { partial, .. }
            | FlatDdError::NumericalDivergence { partial, .. }
            | FlatDdError::Interrupted { partial, .. }
            | FlatDdError::WorkerPanic { partial, .. } => Some(partial),
            _ => None,
        }
    }

    /// True for errors after which the run can be picked up from a
    /// checkpoint (`--resume-from`): budget breaches and signal
    /// interruptions, where the state itself is still sound.
    pub fn is_resumable(&self) -> bool {
        matches!(
            self,
            FlatDdError::MemoryBudgetExceeded { .. }
                | FlatDdError::Deadline { .. }
                | FlatDdError::Interrupted { .. }
        )
    }
}

impl fmt::Display for FlatDdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatDdError::MemoryBudgetExceeded {
                budget_bytes,
                observed_bytes,
                context,
                partial,
            } => write!(
                f,
                "memory budget exceeded ({context}): {observed_bytes} bytes observed \
                 against a budget of {budget_bytes} after {} gates",
                partial.gates_applied
            ),
            FlatDdError::Deadline {
                budget,
                elapsed,
                partial,
            } => write!(
                f,
                "deadline exceeded: {:.3}s elapsed against a budget of {:.3}s \
                 ({} of {} gates applied)",
                elapsed.as_secs_f64(),
                budget.as_secs_f64(),
                partial.gates_applied,
                partial.total_gates
            ),
            FlatDdError::NumericalDivergence { norm, detail, .. } => {
                write!(f, "numerical divergence (norm {norm}): {detail}")
            }
            FlatDdError::AllocationFailed {
                requested_bytes,
                context,
            } => write!(
                f,
                "allocation of {requested_bytes} bytes for {context} failed"
            ),
            FlatDdError::Qasm(e) => write!(f, "{e}"),
            FlatDdError::Io(e) => write!(f, "I/O error: {e}"),
            FlatDdError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            FlatDdError::Interrupted { signal, partial } => write!(
                f,
                "interrupted by {} after {} of {} gates",
                crate::signal::signal_name(*signal),
                partial.gates_applied,
                partial.total_gates
            ),
            FlatDdError::CorruptCheckpoint { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            FlatDdError::WorkerPanic { context, .. } => {
                write!(f, "worker thread panicked during {context}")
            }
        }
    }
}

impl std::error::Error for FlatDdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlatDdError::Qasm(e) => Some(e),
            FlatDdError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qcircuit::qasm::QasmError> for FlatDdError {
    fn from(e: qcircuit::qasm::QasmError) -> Self {
        FlatDdError::Qasm(e)
    }
}

impl From<std::io::Error> for FlatDdError {
    fn from(e: std::io::Error) -> Self {
        FlatDdError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        RunOutcome {
            gates_applied: 3,
            total_gates: 10,
            phase: Phase::Dd,
            stats: FlatDdStats::default(),
        }
    }

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let errs = [
            FlatDdError::InvalidInput("x".into()),
            FlatDdError::Qasm(qcircuit::qasm::QasmError {
                message: "m".into(),
                line: 1,
            }),
            FlatDdError::MemoryBudgetExceeded {
                budget_bytes: 1,
                observed_bytes: 2,
                context: "test",
                partial: Box::new(outcome()),
            },
            FlatDdError::Deadline {
                budget: Duration::from_secs(1),
                elapsed: Duration::from_secs(2),
                partial: Box::new(outcome()),
            },
            FlatDdError::NumericalDivergence {
                norm: f64::NAN,
                detail: "d".into(),
                partial: Box::new(outcome()),
            },
            FlatDdError::Io(std::io::Error::other("io")),
            FlatDdError::Interrupted {
                signal: 15,
                partial: Box::new(outcome()),
            },
            FlatDdError::CorruptCheckpoint {
                detail: "header checksum".into(),
            },
            FlatDdError::WorkerPanic {
                context: "conversion",
                partial: Box::new(outcome()),
            },
        ];
        let mut codes: Vec<i32> = errs.iter().map(|e| e.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "exit codes must be distinct");
        assert!(codes.iter().all(|&c| c != 0 && c != 1));
    }

    #[test]
    fn partial_outcome_carried_by_resource_errors() {
        let e = FlatDdError::Deadline {
            budget: Duration::ZERO,
            elapsed: Duration::from_millis(5),
            partial: Box::new(outcome()),
        };
        let p = e.partial_outcome().expect("deadline carries a partial");
        assert_eq!(p.gates_applied, 3);
        assert!(!p.is_complete());
        assert!(e.to_string().contains("3 of 10 gates"));
        assert!(FlatDdError::InvalidInput("x".into())
            .partial_outcome()
            .is_none());
    }

    #[test]
    fn resumable_classes() {
        assert!(FlatDdError::Interrupted {
            signal: 2,
            partial: Box::new(outcome()),
        }
        .is_resumable());
        assert!(FlatDdError::Deadline {
            budget: Duration::ZERO,
            elapsed: Duration::ZERO,
            partial: Box::new(outcome()),
        }
        .is_resumable());
        assert!(!FlatDdError::CorruptCheckpoint { detail: "x".into() }.is_resumable());
        assert!(!FlatDdError::NumericalDivergence {
            norm: f64::NAN,
            detail: "d".into(),
            partial: Box::new(outcome()),
        }
        .is_resumable());
        let i = FlatDdError::Interrupted {
            signal: 15,
            partial: Box::new(outcome()),
        };
        assert_eq!(i.exit_code(), 8);
        assert!(i.to_string().contains("SIGTERM"));
        assert!(i.partial_outcome().is_some());
    }

    #[test]
    fn error_conversions_preserve_class() {
        let q: FlatDdError = qcircuit::qasm::QasmError {
            message: "bad".into(),
            line: 7,
        }
        .into();
        assert_eq!(q.exit_code(), 3);
        let io: FlatDdError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(io.exit_code(), 7);
        assert!(std::error::Error::source(&io).is_some());
    }
}
