//! Process-memory probes.
//!
//! The paper measures "maximum resident set size (RSS) ... using /bin/time".
//! We read the same kernel counters (`VmHWM` = peak RSS, `VmRSS` = current)
//! from `/proc/self/status`, so harness numbers are directly comparable in
//! kind to Table 1's memory column. On non-Linux platforms the probes
//! return `None` and harnesses fall back to the allocator-level accounting
//! exposed by each engine.

/// Peak resident set size of this process in bytes (`VmHWM`), if available.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_field("VmHWM:")
}

/// Current resident set size of this process in bytes (`VmRSS`), if
/// available.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_field("VmRSS:")
}

fn read_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| parse_status_value(line.strip_prefix(field)?))
}

/// Parses the value part of a `/proc/self/status` line: a number followed
/// by an optional unit. Linux emits `kB` for the Vm* fields; a bare number
/// (no unit) is taken as bytes. Unknown units are rejected rather than
/// silently misscaled.
fn parse_status_value(rest: &str) -> Option<u64> {
    let rest = rest.trim();
    let (num, unit) = match rest.split_once(char::is_whitespace) {
        Some((num, unit)) => (num, unit.trim()),
        None => (rest, ""),
    };
    let value: u64 = num.parse().ok()?;
    let mult = match unit {
        "" => 1,
        "kB" => 1024,
        _ => return None,
    };
    value.checked_mul(mult)
}

/// Formats a byte count as mebibytes with two decimals (the unit of
/// Table 1).
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_probes_work_on_linux() {
        if cfg!(target_os = "linux") {
            let peak = peak_rss_bytes().expect("VmHWM must exist on Linux");
            let cur = current_rss_bytes().expect("VmRSS must exist on Linux");
            assert!(
                peak >= cur / 2,
                "peak {peak} unreasonably below current {cur}"
            );
            assert!(peak > 1024 * 1024, "a Rust test process uses > 1 MiB");
        }
    }

    #[test]
    fn peak_monotone_under_allocation() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let before = peak_rss_bytes().unwrap();
        // Touch 32 MiB so RSS actually grows.
        let mut v = vec![0u8; 32 << 20];
        for i in (0..v.len()).step_by(4096) {
            v[i] = i as u8;
        }
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before);
        assert!(after >= 16 << 20);
        drop(v);
        // Note: VmHWM is monotone on mainline Linux, but sandboxed kernels
        // approximate it; only require it stays in a sane range.
        let peak_after_drop = peak_rss_bytes().unwrap();
        assert!(peak_after_drop >= after / 2, "peak collapsed after drop");
    }

    #[test]
    fn mib_formatting() {
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
        assert_eq!(fmt_mib(1536 * 1024), "1.50");
    }

    #[test]
    fn status_value_with_kb_unit() {
        // The exact shape Linux emits: "VmRSS:\t  123456 kB".
        assert_eq!(parse_status_value("  123456 kB"), Some(123456 * 1024));
        assert_eq!(parse_status_value("\t 1 kB"), Some(1024));
    }

    #[test]
    fn status_value_without_unit_is_bytes() {
        // Fields like "Threads:" carry a bare number; previously these were
        // silently dropped because split_once found no whitespace.
        assert_eq!(parse_status_value(" 42"), Some(42));
        assert_eq!(parse_status_value("0"), Some(0));
    }

    #[test]
    fn status_value_rejects_unknown_units_and_garbage() {
        // "mB" is not a unit Linux emits; guessing a scale would be worse
        // than refusing.
        assert_eq!(parse_status_value(" 10 mB"), None);
        assert_eq!(parse_status_value(" 10 MB"), None);
        assert_eq!(parse_status_value("abc kB"), None);
        assert_eq!(parse_status_value(""), None);
        assert_eq!(parse_status_value(" -5 kB"), None);
    }

    #[test]
    fn status_value_overflow_is_rejected_not_wrapped() {
        assert_eq!(parse_status_value(&format!("{} kB", u64::MAX)), None);
    }
}
