//! Minimal JSON reader/writer for the serving surface.
//!
//! The daemon speaks JSON over HTTP but the crate policy is *no external
//! dependencies*, so this module carries exactly the subset the job API
//! needs: parse a request body into a [`Json`] tree, serialize a response
//! tree back out. Numbers are `f64` (every value the API exchanges —
//! ids, seeds, qubit counts — fits in the 53-bit integer range), strings
//! understand the standard escapes, and [`Json::Raw`] lets pre-rendered
//! payloads (e.g. [`crate::sim::FlatDdStats::to_json`] output or a
//! metrics-registry dump) embed without a re-parse round trip.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed (or to-be-serialized) JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A (decoded) string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialization deterministic.
    Obj(BTreeMap<String, Json>),
    /// Pre-serialized JSON spliced verbatim into the output. Never
    /// produced by [`parse`]; only for building responses from payloads
    /// that are already JSON text.
    Raw(String),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects negatives,
    /// NaN, and values with a fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no Inf/NaN; null is the least-surprising spelling.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
            Json::Raw(s) => f.write_str(s),
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not reassembled; lone
                        // surrogates map to U+FFFD. The job API never
                        // needs astral-plane text.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let src = r#"{"circuit":"ghz:8","seed":42,"deep":[1,2.5,-3e2,null,true],"s":"a\"b\n"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("circuit").unwrap().as_str(), Some("ghz:8"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(42));
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn f64_roundtrips_exactly() {
        let x = std::f64::consts::FRAC_1_SQRT_2;
        let v = parse(&Json::Num(x).to_string()).unwrap();
        assert_eq!(v.as_f64(), Some(x), "shortest-roundtrip printing must hold");
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = Json::obj(vec![("stats", Json::Raw("{\"a\":1}".into()))]);
        assert_eq!(v.to_string(), "{\"stats\":{\"a\":1}}");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
