//! Admission, supervision, preemption, and recovery for the job daemon.
//!
//! The scheduler owns a bounded priority queue of [`JobRecord`]s and a
//! fixed pool of worker threads. Its robustness contract, layer by layer:
//!
//! * **Isolation** — every job runs on its own [`RunContext`]: scoped
//!   metrics registry, scoped fault registry, per-job cancellation flag.
//!   Cancelling or chaos-testing one job cannot touch its neighbors.
//! * **Admission** — a job is only dispatched while the sum of admitted
//!   per-job memory estimates stays under the server-wide budget; a full
//!   queue rejects new submissions (HTTP 429 at the edge).
//! * **Preemption** — when a higher-priority job is starved by the memory
//!   budget, the lowest-priority running job is cancelled; the simulator's
//!   on-breach checkpoint makes that a *suspend*, not a kill, and the job
//!   re-queues as `preempted`.
//! * **Containment** — a worker panic inside one job (e.g. the
//!   `convert.worker_panic` fault) becomes a `failed` record with exit
//!   code 10 for that job only; the daemon and its other jobs continue.
//! * **Retry** — transient failures (I/O, memory pressure) re-queue with
//!   capped exponential backoff, resuming from the job's checkpoint.
//! * **Recovery** — on startup the spool is swept of stale temp files and
//!   every non-terminal record is re-admitted, resuming from its
//!   checkpoint when one is installed. [`Scheduler::drain`] is the
//!   flip side: checkpoint everything running, persist, exit cleanly.

use super::jobs::{JobRecord, JobResult, JobSpec, JobState};
use crate::checkpoint::{self, CheckpointPolicy};
use crate::context::RunContext;
use crate::error::FlatDdError;
use crate::govern::GovernorConfig;
use crate::sim::{FlatDdConfig, FlatDdSimulator};
use crate::{faults, signal};
use parking_lot::{Condvar, Mutex};
use qcircuit::{generators, qasm, Circuit};
use qtelemetry::MetricsRegistry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon-wide configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Spool directory: job records, checkpoints, the port file.
    pub spool: PathBuf,
    /// Concurrent worker threads (= concurrently running jobs).
    pub workers: usize,
    /// Server-wide admission budget over per-job memory estimates.
    pub memory_budget_bytes: u64,
    /// Maximum queued (not yet running) jobs before submissions bounce.
    pub queue_cap: usize,
    /// Transient-failure retries per job.
    pub retry_max: u32,
    /// First retry backoff; doubles per retry, capped at
    /// [`ServeConfig::MAX_RETRY_BACKOFF_MS`].
    pub retry_backoff_ms: u64,
    /// Periodic checkpoint interval (gates) for jobs that do not set one.
    pub default_checkpoint_every: Option<usize>,
    /// DD-phase worker threads for jobs that do not set `dd_threads`
    /// (`None` = sequential DD phase).
    pub default_dd_threads: Option<usize>,
    /// Flat-phase state shards for jobs that do not set `flat_shards`
    /// (`None` = auto: one shard per worker thread).
    pub default_flat_shards: Option<usize>,
}

impl ServeConfig {
    /// Ceiling for the doubling retry backoff.
    pub const MAX_RETRY_BACKOFF_MS: u64 = 2_000;

    /// Defaults: 2 workers, 2 GiB admission budget, queue of 16.
    pub fn at(spool: impl Into<PathBuf>) -> Self {
        ServeConfig {
            spool: spool.into(),
            workers: 2,
            memory_budget_bytes: 2 << 30,
            queue_cap: 16,
            retry_max: 3,
            retry_backoff_ms: 50,
            default_checkpoint_every: None,
            default_dd_threads: None,
            default_flat_shards: None,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The daemon is draining and no longer admits work.
    Draining,
    /// The bounded queue is full (HTTP 429).
    QueueFull,
    /// The spec is malformed or can never be admitted.
    Invalid(String),
}

/// Outcome of a cancellation request.
#[derive(Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// No such job.
    NotFound,
    /// The job already reached a terminal state.
    AlreadyTerminal,
    /// The job was cancelled (immediately if queued; at its next gate
    /// boundary if running).
    Cancelled,
}

/// How many per-job [`RunContext`]s (progress ring + scoped metrics) the
/// scheduler keeps reachable after the job leaves the worker, so late
/// `GET /jobs/{id}/events` subscribers and the Prometheus scrape still see
/// recently finished jobs. Oldest ids are evicted first.
const RETAINED_JOB_CTXS: usize = 64;

struct SchedState {
    records: BTreeMap<u64, JobRecord>,
    /// Admission estimate per non-terminal job.
    est: HashMap<u64, u64>,
    /// Remote-control contexts of currently running jobs.
    ctxs: HashMap<u64, RunContext>,
    /// Most recent context per job (running *or* finished, capped at
    /// [`RETAINED_JOB_CTXS`]): the progress ring behind the event stream
    /// and the scoped registry behind the per-job Prometheus scrape.
    job_ctxs: BTreeMap<u64, RunContext>,
    /// Wall-clock enqueue instant per queued job (set on submit, re-queue,
    /// and recovery; consumed into `serve.queue_wait_us` at claim).
    enqueued_at: HashMap<u64, Instant>,
    /// Jobs the client cancelled (distinguishes a user cancel from a
    /// preemption when `Interrupted` comes back).
    cancelled: HashSet<u64>,
    /// Running jobs already asked to yield for a higher-priority one.
    preempting: HashSet<u64>,
    queue: Vec<u64>,
    next_id: u64,
    mem_in_use: u64,
    running: usize,
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
    metrics: MetricsRegistry,
    /// Cached handles into `metrics` (one lookup at startup).
    hist_queue_wait: qtelemetry::Histogram,
    hist_run: qtelemetry::Histogram,
    draining: AtomicBool,
    /// Daemon start instant, for `/healthz` uptime reporting.
    started: Instant,
}

/// The job scheduler. Cheap handles are obtained with [`Scheduler::handle`]
/// for the HTTP edge; the owning instance joins its workers on
/// [`Scheduler::drain`].
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// A clonable, non-owning view for request handlers.
#[derive(Clone)]
pub struct SchedulerHandle {
    inner: Arc<Inner>,
}

impl Scheduler {
    /// Creates the scheduler, recovers the spool, and starts the workers.
    pub fn start(cfg: ServeConfig) -> Result<Scheduler, FlatDdError> {
        std::fs::create_dir_all(&cfg.spool)?;
        // Satellite sweep: stale FDCP1 `*.tmp` siblings from a crashed
        // checkpoint write, plus torn record installs.
        checkpoint::sweep_stale_tmp(&cfg.spool);
        sweep_record_tmps(&cfg.spool);

        let mut state = SchedState {
            records: BTreeMap::new(),
            est: HashMap::new(),
            ctxs: HashMap::new(),
            job_ctxs: BTreeMap::new(),
            enqueued_at: HashMap::new(),
            cancelled: HashSet::new(),
            preempting: HashSet::new(),
            queue: Vec::new(),
            next_id: 1,
            mem_in_use: 0,
            running: 0,
        };
        let metrics = MetricsRegistry::new();
        // Spool fsck: corrupt records were moved to `<spool>/quarantine/`
        // by `load_spool`; surface the count so operators can alert on it.
        let loaded = super::jobs::load_spool(&cfg.spool);
        metrics
            .counter("serve.quarantined")
            .add(loaded.quarantined as u64);
        for mut rec in loaded.records {
            state.next_id = state.next_id.max(rec.id + 1);
            if !rec.state.is_terminal() {
                // A record caught `running` by a crash resumes from its
                // checkpoint exactly like a preempted one.
                if rec.state == JobState::Running {
                    rec.state = JobState::Preempted;
                }
                match job_estimate(&cfg, &rec.spec) {
                    Ok(est) => {
                        eprintln!(
                            "[flatdd-serve] recovered job {} ({}) as {}",
                            rec.id,
                            rec.spec.circuit,
                            rec.state.label()
                        );
                        let _ = rec.persist(&cfg.spool);
                        state.est.insert(rec.id, est);
                        state.queue.push(rec.id);
                        state.enqueued_at.insert(rec.id, Instant::now());
                        metrics.counter("serve.jobs_recovered").inc();
                    }
                    Err(e) => {
                        rec.state = JobState::Failed;
                        rec.exit_code = Some(2);
                        rec.error = Some(format!("unrecoverable spec: {e}"));
                        let _ = rec.persist(&cfg.spool);
                    }
                }
            }
            state.records.insert(rec.id, rec);
        }

        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(state),
            cv: Condvar::new(),
            hist_queue_wait: metrics.histogram("serve.queue_wait_us"),
            hist_run: metrics.histogram("serve.run_us"),
            metrics,
            draining: AtomicBool::new(false),
            started: Instant::now(),
        });
        publish_gauges(&inner, &inner.state.lock());
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("flatdd-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Scheduler { inner, workers })
    }

    /// A clonable handle for the HTTP edge.
    pub fn handle(&self) -> SchedulerHandle {
        SchedulerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Graceful shutdown: stop admitting, cancel every running job (each
    /// writes its on-breach checkpoint and re-queues as `preempted`),
    /// persist, and join the workers. Queued and preempted jobs stay in
    /// the spool for the next daemon instance.
    pub fn drain(self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        {
            let st = self.inner.state.lock();
            for ctx in st.ctxs.values() {
                ctx.cancel(signal::SIGTERM);
            }
        }
        self.inner.cv.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

impl SchedulerHandle {
    /// True once [`Scheduler::drain`] has begun.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// The daemon-level metrics registry (`serve.*` counters/gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Admits a job, returning its id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        if self.draining() {
            return Err(SubmitError::Draining);
        }
        if let Some(fspec) = &spec.faults {
            faults::FaultRegistry::from_spec(fspec).map_err(SubmitError::Invalid)?;
        }
        // Validate the circuit and size it before taking a queue slot.
        build_circuit(&spec).map_err(|e| SubmitError::Invalid(e.to_string()))?;
        let est = job_estimate(&self.inner.cfg, &spec).map_err(SubmitError::Invalid)?;
        let mut st = self.inner.state.lock();
        if st.queue.len() >= self.inner.cfg.queue_cap {
            self.inner
                .metrics
                .counter("serve.jobs_rejected_queue_full")
                .inc();
            return Err(SubmitError::QueueFull);
        }
        let id = st.next_id;
        st.next_id += 1;
        let rec = JobRecord::new(id, spec);
        let _ = rec.persist(&self.inner.cfg.spool);
        st.records.insert(id, rec);
        st.est.insert(id, est);
        st.queue.push(id);
        st.enqueued_at.insert(id, Instant::now());
        self.inner.metrics.counter("serve.jobs_submitted").inc();
        self.publish_gauges(&st);
        drop(st);
        self.inner.cv.notify_all();
        Ok(id)
    }

    /// Requests cancellation of a job.
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut st = self.inner.state.lock();
        let Some(rec) = st.records.get(&id) else {
            return CancelOutcome::NotFound;
        };
        if rec.state.is_terminal() {
            return CancelOutcome::AlreadyTerminal;
        }
        st.cancelled.insert(id);
        if let Some(ctx) = st.ctxs.get(&id) {
            // Running: interrupt at the next gate boundary.
            ctx.cancel(signal::SIGTERM);
        } else {
            // Queued or preempted: finalize immediately.
            st.queue.retain(|&q| q != id);
            st.est.remove(&id);
            st.enqueued_at.remove(&id);
            let spool = self.inner.cfg.spool.clone();
            if let Some(rec) = st.records.get_mut(&id) {
                rec.state = JobState::Cancelled;
                let _ = rec.persist(&spool);
            }
            self.inner.metrics.counter("serve.jobs_cancelled").inc();
            self.publish_gauges(&st);
        }
        drop(st);
        self.inner.cv.notify_all();
        CancelOutcome::Cancelled
    }

    /// Snapshot of one record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.inner.state.lock().records.get(&id).cloned()
    }

    /// Snapshot of every record, ascending by id.
    pub fn jobs(&self) -> Vec<JobRecord> {
        self.inner.state.lock().records.values().cloned().collect()
    }

    /// `(running, queued)` counts for health reporting.
    pub fn load(&self) -> (usize, usize) {
        let st = self.inner.state.lock();
        (st.running, st.queue.len())
    }

    /// Blocks until every non-terminal job reaches a terminal state (test
    /// helper; returns false on timeout).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            let busy = st.running > 0 || !st.queue.is_empty();
            if !busy {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.cv.wait_for(&mut st, deadline - now);
        }
    }

    fn publish_gauges(&self, st: &SchedState) {
        publish_gauges(&self.inner, st);
    }

    /// Seconds since the scheduler started, for `/healthz`.
    pub fn uptime_secs(&self) -> f64 {
        self.inner.started.elapsed().as_secs_f64()
    }

    /// Execution context of a running or recently finished job: the
    /// progress ring behind `GET /jobs/{id}/events` and the scoped metrics
    /// registry. `None` once the context has aged out (see
    /// [`RETAINED_JOB_CTXS`]) or for ids the daemon never ran.
    pub fn job_context(&self, id: u64) -> Option<RunContext> {
        self.inner.state.lock().job_ctxs.get(&id).cloned()
    }

    /// `(id, registry)` for every tracked job, ascending by id — the
    /// per-job section of the Prometheus scrape.
    pub fn job_registries(&self) -> Vec<(u64, MetricsRegistry)> {
        self.inner
            .state
            .lock()
            .job_ctxs
            .iter()
            .map(|(&id, c)| (id, c.metrics().clone()))
            .collect()
    }
}

/// Removes torn `job-*.json.tmp` installs left by a crash mid-rename.
fn sweep_record_tmps(spool: &std::path::Path) {
    let Ok(entries) = std::fs::read_dir(spool) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("job-") && name.ends_with(".json.tmp") {
            let p = entry.path();
            if std::fs::remove_file(&p).is_ok() {
                eprintln!("[flatdd-serve] removed stale record temp {}", p.display());
            }
        }
    }
}

/// Builds the circuit a spec describes (deterministic in `seed`).
pub fn build_circuit(spec: &JobSpec) -> Result<Circuit, FlatDdError> {
    match &spec.qasm {
        Some(src) => qasm::parse_qasm(src).map_err(FlatDdError::Qasm),
        None => generators::from_spec(&spec.circuit, spec.seed).map_err(FlatDdError::InvalidInput),
    }
}

/// Admission estimate in bytes: the job's own budget when it declares one,
/// else two flat `2^n` buffers plus fixed overhead. Rejects jobs that can
/// never fit under the server budget (they would starve forever).
fn job_estimate(cfg: &ServeConfig, spec: &JobSpec) -> Result<u64, String> {
    const OVERHEAD: u64 = 32 << 20;
    let est = match spec.memory_budget_mb {
        Some(mb) => mb << 20,
        None => {
            let circuit = build_circuit(spec).map_err(|e| e.to_string())?;
            let n = circuit.num_qubits() as u32;
            let amps = 1u64.checked_shl(n).unwrap_or(u64::MAX);
            amps.saturating_mul(32).saturating_add(OVERHEAD)
        }
    };
    if est > cfg.memory_budget_bytes {
        return Err(format!(
            "job needs ~{est} bytes but the server admission budget is {} bytes",
            cfg.memory_budget_bytes
        ));
    }
    Ok(est)
}

/// Picks the best admissible queued job: highest priority that fits the
/// remaining memory budget, oldest id as tie-break.
fn pick(st: &SchedState, budget: u64) -> Option<u64> {
    let free = budget - st.mem_in_use;
    st.queue
        .iter()
        .copied()
        .filter(|id| st.est.get(id).is_some_and(|&e| e <= free))
        .max_by_key(|id| (st.records[id].spec.priority, std::cmp::Reverse(*id)))
}

/// When the best queued job is starved by memory, asks the lowest-priority
/// strictly-lower running job to yield (at most one outstanding request).
fn maybe_preempt(inner: &Inner, st: &mut SchedState) {
    let Some(starved) = st
        .queue
        .iter()
        .copied()
        .max_by_key(|id| (st.records[id].spec.priority, std::cmp::Reverse(*id)))
    else {
        return;
    };
    let starved_prio = st.records[&starved].spec.priority;
    let victim = st
        .ctxs
        .keys()
        .copied()
        .filter(|id| !st.preempting.contains(id))
        .filter(|id| st.records[id].spec.priority < starved_prio)
        .min_by_key(|id| (st.records[id].spec.priority, *id));
    if let Some(victim) = victim {
        eprintln!(
            "[flatdd-serve] preempting job {victim} (priority {}) for job {starved} (priority {starved_prio})",
            st.records[&victim].spec.priority
        );
        st.preempting.insert(victim);
        st.ctxs[&victim].cancel(signal::SIGTERM);
        inner.metrics.counter("serve.preemptions_requested").inc();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim phase: wait for an admissible job (or drain).
        let (id, ctx) = {
            let mut st = inner.state.lock();
            loop {
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = pick(&st, inner.cfg.memory_budget_bytes) {
                    st.queue.retain(|&q| q != id);
                    let est = st.est[&id];
                    st.mem_in_use += est;
                    st.running += 1;
                    let spool = inner.cfg.spool.clone();
                    let rec = st.records.get_mut(&id).unwrap();
                    rec.state = JobState::Running;
                    let _ = rec.persist(&spool);
                    let mut ctx = RunContext::isolated();
                    if let Some(fspec) = &rec.spec.faults {
                        // Validated at submit; a scoped arming failure here
                        // would mean the grammar changed under us.
                        ctx = ctx
                            .with_faults_spec(fspec)
                            .unwrap_or_else(|_| RunContext::isolated());
                    }
                    if let Some(t) = st.enqueued_at.remove(&id) {
                        let wait_us = t.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        inner.hist_queue_wait.observe(wait_us);
                        ctx.metrics().gauge("serve.queue_wait_us").set(wait_us as f64);
                    }
                    st.ctxs.insert(id, ctx.clone());
                    st.job_ctxs.insert(id, ctx.clone());
                    while st.job_ctxs.len() > RETAINED_JOB_CTXS {
                        let oldest = *st.job_ctxs.keys().next().unwrap();
                        st.job_ctxs.remove(&oldest);
                    }
                    publish_gauges(inner, &st);
                    break (id, ctx);
                }
                maybe_preempt(inner, &mut st);
                inner.cv.wait_for(&mut st, Duration::from_millis(200));
            }
        };

        // Run phase: outside the lock. Any panic that escapes the
        // simulator's own containment is still confined to this job.
        let spec = inner.state.lock().records[&id].spec.clone();
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(inner, id, &spec, &ctx)
        }));
        let elapsed = started.elapsed().as_secs_f64();
        inner.hist_run.observe((elapsed * 1e6) as u64);

        // Transition phase.
        let mut backoff: Option<Duration> = None;
        {
            let mut st = inner.state.lock();
            let est = st.est[&id];
            st.mem_in_use -= est;
            st.running -= 1;
            st.ctxs.remove(&id);
            st.preempting.remove(&id);
            let was_cancelled = st.cancelled.remove(&id);
            let spool = inner.cfg.spool.clone();
            let retry_budget = inner.cfg.retry_max;
            let mut rec = st.records.remove(&id).unwrap();
            match outcome {
                Ok(Ok(mut result)) => {
                    result.elapsed_secs = elapsed;
                    rec.state = JobState::Done;
                    rec.result = Some(result);
                    inner.metrics.counter("serve.jobs_completed").inc();
                }
                Ok(Err(FlatDdError::Interrupted { .. })) => {
                    if was_cancelled {
                        rec.state = JobState::Cancelled;
                        inner.metrics.counter("serve.jobs_cancelled").inc();
                    } else {
                        // Preemption or drain: the on-breach checkpoint is
                        // installed; park the job for a later worker (or
                        // the next daemon instance).
                        rec.state = JobState::Preempted;
                        rec.preemptions += 1;
                        inner.metrics.counter("serve.jobs_preempted").inc();
                        st.queue.push(id);
                        st.enqueued_at.insert(id, Instant::now());
                    }
                }
                Ok(Err(e)) if is_transient(&e) && rec.retries < retry_budget => {
                    rec.retries += 1;
                    let exp = rec.retries.saturating_sub(1).min(16);
                    backoff = Some(Duration::from_millis(
                        (inner.cfg.retry_backoff_ms << exp).min(ServeConfig::MAX_RETRY_BACKOFF_MS),
                    ));
                    eprintln!(
                        "[flatdd-serve] job {id} transient failure (retry {}/{retry_budget}): {e}",
                        rec.retries
                    );
                    rec.state = JobState::Queued;
                    inner.metrics.counter("serve.job_retries").inc();
                    st.queue.push(id);
                    st.enqueued_at.insert(id, Instant::now());
                }
                Ok(Err(e)) => {
                    rec.state = JobState::Failed;
                    rec.exit_code = Some(e.exit_code());
                    rec.error = Some(e.to_string());
                    inner.metrics.counter("serve.jobs_failed").inc();
                }
                Err(_panic) => {
                    // Crash-loop containment: a panicking job gets
                    // `retry_max` fresh attempts (each resumes from its
                    // checkpoint when one is installed), then is poisoned.
                    // The count is persisted in the spool record, so a
                    // crash-restart cycle of the daemon itself cannot
                    // launder the attempt history.
                    rec.panics += 1;
                    inner.metrics.counter("serve.worker_panics").inc();
                    if rec.panics <= retry_budget {
                        eprintln!(
                            "[flatdd-serve] job {id} worker panicked (attempt {}/{}); re-queueing",
                            rec.panics, retry_budget
                        );
                        rec.state = JobState::Queued;
                        inner.metrics.counter("serve.job_panic_requeues").inc();
                        st.queue.push(id);
                        st.enqueued_at.insert(id, Instant::now());
                    } else {
                        rec.state = JobState::Failed;
                        rec.exit_code = Some(10);
                        rec.error = Some(format!(
                            "worker thread panicked repeatedly (crash-loop poisoned after {} attempts)",
                            rec.panics
                        ));
                        inner.metrics.counter("serve.jobs_failed").inc();
                        inner.metrics.counter("serve.jobs_poisoned").inc();
                    }
                }
            }
            if rec.state.is_terminal() {
                st.est.remove(&id);
            }
            let _ = rec.persist(&spool);
            st.records.insert(id, rec);
            publish_gauges(inner, &st);
        }
        inner.cv.notify_all();
        if let Some(d) = backoff {
            // Backoff outside the lock; this worker sits out the delay, the
            // others keep draining the queue.
            std::thread::sleep(d);
            inner.cv.notify_all();
        }
    }
}

fn publish_gauges(inner: &Inner, st: &SchedState) {
    let m = &inner.metrics;
    m.gauge("serve.queue_depth").set(st.queue.len() as f64);
    m.gauge("serve.jobs_running").set(st.running as f64);
    m.gauge("serve.mem_admitted_bytes")
        .set(st.mem_in_use as f64);
}

fn is_transient(e: &FlatDdError) -> bool {
    matches!(
        e,
        FlatDdError::Io(_)
            | FlatDdError::MemoryBudgetExceeded { .. }
            | FlatDdError::AllocationFailed { .. }
    )
}

/// Runs one attempt of one job on the worker thread.
fn execute_job(
    inner: &Inner,
    id: u64,
    spec: &JobSpec,
    ctx: &RunContext,
) -> Result<JobResult, FlatDdError> {
    let circuit = build_circuit(spec)?;
    let n = circuit.num_qubits();
    let mut governor = GovernorConfig::default();
    if let Some(mb) = spec.memory_budget_mb {
        governor.memory_budget_bytes = Some((mb as usize) << 20);
    }
    if let Some(s) = spec.deadline_secs {
        governor.deadline = Some(Duration::from_secs_f64(s));
    }
    if let Some(f) = spec.approx_fidelity_floor {
        governor.approx_fidelity_floor = Some(f);
    }
    let mut cfg = FlatDdConfig {
        threads: spec.threads,
        governor,
        ..Default::default()
    };
    if let Some(t) = spec.dd_threads.or(inner.cfg.default_dd_threads) {
        cfg.dd_threads = t;
    }
    if let Some(s) = spec.flat_shards.or(inner.cfg.default_flat_shards) {
        cfg.flat_shards = s;
    }
    if let Some(g) = spec.convert_at_gate {
        cfg.conversion = crate::sim::ConversionPolicy::AtGate(g);
    }

    let ckpt = JobRecord::ckpt_path(&inner.cfg.spool, id);
    // Resume when a loadable checkpoint is installed (prior preemption,
    // drain, retry, or daemon crash); otherwise start fresh. A corrupt
    // checkpoint is logged and ignored — losing progress beats losing
    // the job.
    let (mut sim, resumed) = if checkpoint::read_header(&ckpt).is_ok() {
        match FlatDdSimulator::resume_from_with(&ckpt, cfg, &circuit, ctx.clone()) {
            Ok((sim, header)) => {
                eprintln!(
                    "[flatdd-serve] job {id} resuming from gate {}/{}",
                    header.gate_cursor,
                    circuit.num_gates()
                );
                (sim, true)
            }
            Err(e) => {
                eprintln!("[flatdd-serve] job {id} checkpoint unusable ({e}); restarting");
                (FlatDdSimulator::try_new_with(n, cfg, ctx.clone())?, false)
            }
        }
    } else {
        (FlatDdSimulator::try_new_with(n, cfg, ctx.clone())?, false)
    };

    let mut policy = CheckpointPolicy::at(&ckpt);
    if let Some(g) = spec.checkpoint_every.or(inner.cfg.default_checkpoint_every) {
        policy = policy.every(g);
    }
    policy.rng_seed = spec.seed;
    sim.set_checkpoint_policy(Some(policy));

    let run = if resumed {
        sim.run_from(&circuit)
    } else {
        sim.run(&circuit)
    };
    let outcome = run?;

    let mut result = JobResult {
        gates_applied: outcome.gates_applied,
        total_gates: outcome.total_gates,
        phase: sim.phase().label().to_string(),
        elapsed_secs: 0.0,
        heavy: Vec::new(),
        stats_json: sim.stats().to_json(),
        metrics_json: String::new(),
        approximate: sim.is_approximate(),
        fidelity: sim.fidelity(),
    };
    // Top amplitudes at full precision (bounded work: only for states a
    // status payload can sensibly carry).
    if n <= 24 {
        let amps = sim.amplitudes();
        let mut idx: Vec<usize> = (0..amps.len()).collect();
        idx.sort_by(|&a, &b| {
            amps[b]
                .norm_sqr()
                .total_cmp(&amps[a].norm_sqr())
                .then(a.cmp(&b))
        });
        result.heavy = idx
            .into_iter()
            .take(8)
            .map(|i| (i, amps[i].re, amps[i].im))
            .collect();
    }
    sim.publish_metrics();
    result.metrics_json = ctx.metrics().to_json();
    // The run is complete; its checkpoint has served its purpose.
    let _ = std::fs::remove_file(&ckpt);
    Ok(result)
}
