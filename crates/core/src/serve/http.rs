//! A deliberately small HTTP/1.1 server edge for the job API.
//!
//! Parses one request per connection (the daemon answers with
//! `Connection: close`, so clients like `curl` work out of the box) and
//! enforces the two limits that matter for a robust daemon: a read
//! timeout, so a stalled client cannot wedge the accept loop, and a body
//! cap, so a hostile `Content-Length` cannot balloon memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (inline QASM included).
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Per-connection read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw query string after `?` (empty when none), e.g. `format=prometheus`.
    pub query: String,
    /// `Accept` header value (empty when absent), for content negotiation.
    pub accept: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Value of query parameter `name` (`a=1&b=2` grammar, no
    /// percent-decoding — the API's values are numbers and short tokens).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Reads and parses one request from `stream`. `Err` is a human-readable
/// reason suitable for a 400 response (or a log line when the client is
/// already gone).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut accept = String::new();
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            } else if name.eq_ignore_ascii_case("accept") {
                accept = value.trim().to_string();
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(Request {
        method,
        path,
        query,
        accept,
        body,
    })
}

/// Writes the head of a chunked streaming response (no `Content-Length`;
/// terminate with [`write_chunk`]`(stream, "")`). Used by the NDJSON job
/// event stream, where the body length is unknowable up front.
pub fn respond_stream_head(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one HTTP/1.1 chunk. An empty `data` writes the terminating
/// zero-length chunk. Errors surface so the streamer can stop on hangup.
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    if data.is_empty() {
        stream.write_all(b"0\r\n\r\n")?;
    } else {
        stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
        stream.write_all(data.as_bytes())?;
        stream.write_all(b"\r\n")?;
    }
    stream.flush()
}

/// Writes a full response and flushes. Errors are ignored (the client may
/// have hung up; the daemon must not care).
pub fn respond(stream: &mut TcpStream, status: u32, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Convenience: respond with a JSON payload.
pub fn respond_json(stream: &mut TcpStream, status: u32, body: &str) {
    respond(stream, status, "application/json", body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_post_with_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request(&mut s).unwrap()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"POST /jobs?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\n{\"\":1")
            .unwrap();
        // Body is 4 bytes even though we sent 6 — the parser must stop at
        // Content-Length, not at EOF.
        let req = t.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("y"), None);
        assert_eq!(req.body, b"{\"\":");
    }

    #[test]
    fn captures_accept_header_and_query() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request(&mut s).unwrap()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(
            b"GET /metrics?format=prometheus&x= HTTP/1.1\r\nAccept: text/plain; version=0.0.4\r\n\r\n",
        )
        .unwrap();
        let req = t.join().unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("x"), Some(""));
        assert_eq!(req.accept, "text/plain; version=0.0.4");
    }

    #[test]
    fn rejects_oversized_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request(&mut s)
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let huge = MAX_BODY_BYTES + 1;
        c.write_all(format!("POST / HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n").as_bytes())
            .unwrap();
        assert!(t.join().unwrap().is_err());
    }
}
