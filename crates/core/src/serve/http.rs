//! A deliberately small HTTP/1.1 server edge for the job API.
//!
//! Parses one request per connection (the daemon answers with
//! `Connection: close`, so clients like `curl` work out of the box) and
//! enforces the two limits that matter for a robust daemon: a read
//! timeout, so a stalled client cannot wedge the accept loop, and a body
//! cap, so a hostile `Content-Length` cannot balloon memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body (inline QASM included).
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Per-connection read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads and parses one request from `stream`. `Err` is a human-readable
/// reason suitable for a 400 response (or a log line when the client is
/// already gone).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Writes a full response and flushes. Errors are ignored (the client may
/// have hung up; the daemon must not care).
pub fn respond(stream: &mut TcpStream, status: u32, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Convenience: respond with a JSON payload.
pub fn respond_json(stream: &mut TcpStream, status: u32, body: &str) {
    respond(stream, status, "application/json", body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_post_with_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request(&mut s).unwrap()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"POST /jobs?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n\r\n{\"\":1")
            .unwrap();
        // Body is 4 bytes even though we sent 6 — the parser must stop at
        // Content-Length, not at EOF.
        let req = t.join().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"{\"\":");
    }

    #[test]
    fn rejects_oversized_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request(&mut s)
        });
        let mut c = TcpStream::connect(addr).unwrap();
        let huge = MAX_BODY_BYTES + 1;
        c.write_all(format!("POST / HTTP/1.1\r\nContent-Length: {huge}\r\n\r\n").as_bytes())
            .unwrap();
        assert!(t.join().unwrap().is_err());
    }
}
