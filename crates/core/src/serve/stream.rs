//! Live NDJSON event streaming for `GET /jobs/{id}/events`.
//!
//! The simulator publishes [`crate::context::Progress`] samples into its
//! job's bounded ring (see [`crate::context::RunContext`]); this module
//! turns that ring into an HTTP surface twice over:
//!
//! * [`events_batch`] — one-shot drain for the pure [`super::route`]
//!   dispatcher: everything after a `?since=` cursor as NDJSON, plus the
//!   new cursor. Pollable with plain request/response clients.
//! * [`stream_events`] — a chunked (`Transfer-Encoding: chunked`)
//!   long-lived response for `flatdd-serve`: samples are forwarded as they
//!   appear, a heartbeat line keeps idle connections alive, and the stream
//!   ends with an `end` line once the job is terminal and the ring is
//!   drained. A client that reconnects with the last `seq` it saw as
//!   `?since=` resumes without gaps (as long as the lossy ring has not
//!   wrapped past it — its capacity is
//!   [`crate::context::PROGRESS_RING_CAP`] samples).
//!
//! Every line is a complete JSON object; the `event` field tags the kind
//! (`progress`, `heartbeat`, `end`).

use super::scheduler::SchedulerHandle;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// NDJSON content type for both the batch and the streaming response.
pub const NDJSON_CONTENT_TYPE: &str = "application/x-ndjson";

/// Ring poll cadence while streaming.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// Idle interval after which a heartbeat line is sent.
const HEARTBEAT_INTERVAL: Duration = Duration::from_secs(2);

/// Drains every progress sample with `seq > since` from job `id`'s ring as
/// NDJSON (one object per line, trailing newline included when non-empty)
/// and returns it with the resume cursor. `None` when the job is unknown
/// or its context has aged out of retention.
pub fn events_batch(handle: &SchedulerHandle, id: u64, since: u64) -> Option<(String, u64)> {
    let ctx = handle.job_context(id)?;
    let (samples, cursor) = ctx.progress_since(since);
    let mut out = String::new();
    for s in &samples {
        out.push_str(&s.to_json());
        out.push('\n');
    }
    Some((out, cursor))
}

fn heartbeat_line(cursor: u64) -> String {
    format!(
        "{{\"event\":\"heartbeat\",\"ts_us\":{:.0},\"cursor\":{}}}\n",
        qtelemetry::now_us(),
        cursor
    )
}

fn end_line(state: &str, cursor: u64) -> String {
    format!(
        "{{\"event\":\"end\",\"state\":\"{state}\",\"cursor\":{cursor}}}\n"
    )
}

/// Serves one chunked NDJSON connection: forwards progress samples as the
/// ring fills, heartbeats while idle, and closes with an `end` line once
/// the job reaches a terminal state and its remaining samples are drained.
/// Returns when the stream ends or the client hangs up (write errors are
/// the hangup signal and are swallowed).
pub fn stream_events(stream: &mut TcpStream, handle: &SchedulerHandle, id: u64, since: u64) {
    // Streaming reuses the connection the accept loop handed over; undo
    // its nonblocking accept mode and its short request-read timeout.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    if super::http::respond_stream_head(stream, NDJSON_CONTENT_TYPE).is_err() {
        return;
    }
    let mut cursor = since;
    let mut last_write = Instant::now();
    loop {
        let state = match handle.job(id) {
            Some(rec) => rec.state,
            None => break,
        };
        let mut wrote = false;
        if let Some(ctx) = handle.job_context(id) {
            let (samples, latest) = ctx.progress_since(cursor);
            for s in &samples {
                let mut line = s.to_json();
                line.push('\n');
                if super::http::write_chunk(stream, &line).is_err() {
                    return;
                }
                wrote = true;
            }
            cursor = cursor.max(latest);
        }
        if state.is_terminal() {
            let _ = super::http::write_chunk(stream, &end_line(state.label(), cursor));
            break;
        }
        if wrote {
            last_write = Instant::now();
        } else if last_write.elapsed() >= HEARTBEAT_INTERVAL {
            if super::http::write_chunk(stream, &heartbeat_line(cursor)).is_err() {
                return;
            }
            last_write = Instant::now();
        }
        if handle.draining() {
            // The daemon is going down; end the stream cleanly rather than
            // holding the connection into the join.
            let _ = super::http::write_chunk(stream, &end_line("draining", cursor));
            break;
        }
        std::thread::sleep(POLL_INTERVAL);
    }
    // Terminating zero-length chunk; the peer may already be gone.
    let _ = super::http::write_chunk(stream, "");
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{ServeConfig, Scheduler};

    #[test]
    fn batch_resumes_from_cursor() {
        let spool = std::env::temp_dir().join(format!(
            "flatdd-serve-stream-batch-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&spool).ok();
        let mut cfg = ServeConfig::at(&spool);
        cfg.workers = 1;
        let sched = Scheduler::start(cfg).unwrap();
        let h = sched.handle();
        assert!(
            events_batch(&h, 999, 0).is_none(),
            "unknown job has no ring"
        );
        let id = h
            .submit(crate::serve::JobSpec {
                circuit: "ghz:8".into(),
                threads: 1,
                ..Default::default()
            })
            .expect("submit");
        assert!(h.wait_idle(Duration::from_secs(30)));
        let (all, cursor) = events_batch(&h, id, 0).expect("retained after completion");
        assert!(cursor >= 1, "the run must have published samples");
        assert!(all.contains("\"event\":\"progress\""), "{all}");
        // Resuming from the final cursor returns nothing new.
        let (rest, cursor2) = events_batch(&h, id, cursor).unwrap();
        assert!(rest.is_empty());
        assert_eq!(cursor2, cursor);
        // Resuming mid-way returns only the tail.
        if cursor > 1 {
            let (tail, _) = events_batch(&h, id, cursor - 1).unwrap();
            assert_eq!(tail.lines().count(), 1, "{tail}");
        }
        sched.drain();
        std::fs::remove_dir_all(&spool).ok();
    }
}
