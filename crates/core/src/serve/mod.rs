//! Multi-job serving: the engine behind the `flatdd-serve` daemon.
//!
//! PR 1–5 hardened one simulation at a time — typed errors, resource
//! governance, crash-safe checkpoints, fault injection. This module turns
//! those primitives into a long-running service that accepts circuits over
//! HTTP/JSON and runs many of them concurrently without letting them hurt
//! each other:
//!
//! * [`json`] / [`http`] — a dependency-free wire layer (the crate policy
//!   is no external crates; `std::net` and a small JSON codec suffice).
//! * [`jobs`] — the job model and its durable spool records.
//! * [`scheduler`] — admission against a server-wide memory budget,
//!   priority preemption via checkpoints, capped-backoff retry, worker
//!   panic containment, and restart recovery.
//!
//! The HTTP surface (JSON by default, `Connection: close`):
//!
//! | Method & path            | Purpose                                   |
//! |--------------------------|-------------------------------------------|
//! | `POST /jobs`             | submit a job spec; `202` with the id, `429` when the queue is full, `503` while draining |
//! | `GET /jobs`              | summaries of every known job              |
//! | `GET /jobs/{id}`         | full status: state, retries, result, stats, per-job metrics |
//! | `GET /jobs/{id}/events`  | live NDJSON progress stream (chunked in the daemon; one-shot batch through [`route`]); `?since=` resumes |
//! | `POST /jobs/{id}/cancel` | cancel (`DELETE /jobs/{id}` is an alias)  |
//! | `GET /metrics`           | daemon + per-job registries; `?format=prometheus` (or `Accept: text/plain`) switches to Prometheus exposition |
//! | `GET /healthz`           | liveness + `ok`/`draining` + load + uptime + build info |
//!
//! Routing is a pure function ([`route`]) so the whole API surface is
//! unit-testable without sockets; `flatdd-serve` owns only the listener
//! loop, the long-lived event-stream connections, and process signals.

pub mod http;
pub mod jobs;
pub mod json;
pub mod scheduler;
pub mod stream;

pub use jobs::{JobRecord, JobResult, JobSpec, JobState};
pub use scheduler::{CancelOutcome, Scheduler, SchedulerHandle, ServeConfig, SubmitError};

use json::Json;

/// Name of the file (inside the spool) holding the bound TCP port.
pub const PORT_FILE: &str = "serve.port";

fn err_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::Str(msg.into()))]).to_string()
}

/// JSON content type for the default API responses.
pub const JSON_CONTENT_TYPE: &str = "application/json";

/// True when the client asked for the Prometheus exposition format —
/// explicitly via `?format=prometheus`, or by `Accept`ing `text/plain` /
/// OpenMetrics without forcing `?format=json`.
fn wants_prometheus(req: &http::Request) -> bool {
    match req.query_param("format") {
        Some("prometheus") => true,
        Some(_) => false,
        None => {
            req.accept.contains("text/plain") || req.accept.contains("application/openmetrics-text")
        }
    }
}

/// Renders the full Prometheus scrape: build info, the daemon registry
/// (with `# HELP`/`# TYPE` headers), then every tracked job's scoped
/// registry labeled `job="<id>"` (headers suppressed — Prometheus allows
/// one `# TYPE` per metric name per exposition).
fn prometheus_body(handle: &SchedulerHandle) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# HELP flatdd_build_info Build metadata of the running daemon.\n");
    out.push_str("# TYPE flatdd_build_info gauge\n");
    out.push_str(&format!(
        "flatdd_build_info{{version=\"{}\",profile=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION"),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
    ));
    out.push_str(&qtelemetry::prometheus::render_registry(
        handle.metrics(),
        &[],
        true,
    ));
    for (id, reg) in handle.job_registries() {
        let id = id.to_string();
        out.push_str(&qtelemetry::prometheus::render_registry(
            &reg,
            &[("job", id.as_str())],
            false,
        ));
    }
    out
}

/// Dispatches one parsed request against the scheduler, returning
/// `(status, content type, body)`.
pub fn route(handle: &SchedulerHandle, req: &http::Request) -> (u32, &'static str, String) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let json = |status: u32, body: String| (status, JSON_CONTENT_TYPE, body);
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (running, queued) = handle.load();
            let status = if handle.draining() { "draining" } else { "ok" };
            json(
                200,
                Json::obj(vec![
                    ("status", Json::Str(status.into())),
                    ("running", Json::Num(running as f64)),
                    ("queued", Json::Num(queued as f64)),
                    ("uptime_secs", Json::Num(handle.uptime_secs())),
                    ("version", Json::Str(env!("CARGO_PKG_VERSION").into())),
                    (
                        "profile",
                        Json::Str(
                            if cfg!(debug_assertions) {
                                "debug"
                            } else {
                                "release"
                            }
                            .into(),
                        ),
                    ),
                ])
                .to_string(),
            )
        }
        ("GET", ["metrics"]) => {
            if wants_prometheus(req) {
                (
                    200,
                    qtelemetry::prometheus::CONTENT_TYPE,
                    prometheus_body(handle),
                )
            } else {
                json(200, handle.metrics().to_json())
            }
        }
        ("GET", ["jobs", id, "events"]) => {
            let Some(id) = parse_id(id) else {
                return json(400, err_body("bad job id"));
            };
            let since = req
                .query_param("since")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            match stream::events_batch(handle, id, since) {
                Some((body, cursor)) => {
                    let mut body = body;
                    body.push_str(&format!(
                        "{{\"event\":\"cursor\",\"cursor\":{cursor}}}\n"
                    ));
                    (200, stream::NDJSON_CONTENT_TYPE, body)
                }
                None => match handle.job(id) {
                    // Known but never dispatched (or aged out): an empty
                    // batch with a zero cursor, not an error.
                    Some(_) => (
                        200,
                        stream::NDJSON_CONTENT_TYPE,
                        "{\"event\":\"cursor\",\"cursor\":0}\n".into(),
                    ),
                    None => json(404, err_body("no such job")),
                },
            }
        }
        ("GET", ["jobs"]) => {
            let items: Vec<Json> = handle
                .jobs()
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("id", Json::Num(r.id as f64)),
                        ("state", Json::Str(r.state.label().into())),
                        ("circuit", Json::Str(r.spec.circuit.clone())),
                        ("priority", Json::Num(r.spec.priority as f64)),
                        ("retries", Json::Num(r.retries as f64)),
                    ])
                })
                .collect();
            json(200, Json::obj(vec![("jobs", Json::Arr(items))]).to_string())
        }
        ("POST", ["jobs"]) => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(s) => s,
                Err(_) => return json(400, err_body("body is not UTF-8")),
            };
            let spec = match json::parse(body).and_then(|v| JobSpec::from_json(&v)) {
                Ok(s) => s,
                Err(e) => return json(400, err_body(&e)),
            };
            match handle.submit(spec) {
                Ok(id) => json(
                    202,
                    Json::obj(vec![
                        ("id", Json::Num(id as f64)),
                        ("state", Json::Str("queued".into())),
                    ])
                    .to_string(),
                ),
                Err(SubmitError::QueueFull) => json(429, err_body("queue full")),
                Err(SubmitError::Draining) => json(503, err_body("draining")),
                Err(SubmitError::Invalid(e)) => json(400, err_body(&e)),
            }
        }
        ("GET", ["jobs", id]) => match parse_id(id) {
            Some(id) => match handle.job(id) {
                Some(rec) => json(200, format!("{}", rec.to_json())),
                None => json(404, err_body("no such job")),
            },
            None => json(400, err_body("bad job id")),
        },
        ("POST", ["jobs", id, "cancel"]) | ("DELETE", ["jobs", id]) => match parse_id(id) {
            Some(id) => match handle.cancel(id) {
                CancelOutcome::Cancelled => json(
                    200,
                    Json::obj(vec![
                        ("id", Json::Num(id as f64)),
                        ("cancelled", Json::Bool(true)),
                    ])
                    .to_string(),
                ),
                CancelOutcome::AlreadyTerminal => json(409, err_body("job already finished")),
                CancelOutcome::NotFound => json(404, err_body("no such job")),
            },
            None => json(400, err_body("bad job id")),
        },
        ("GET" | "POST" | "DELETE", _) => json(404, err_body("no such endpoint")),
        _ => json(405, err_body("method not allowed")),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> http::Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path.to_string(), String::new()),
        };
        http::Request {
            method: method.into(),
            path,
            query,
            accept: String::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn tiny_sched(name: &str) -> (Scheduler, std::path::PathBuf) {
        let spool =
            std::env::temp_dir().join(format!("flatdd-serve-route-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&spool).ok();
        let mut cfg = ServeConfig::at(&spool);
        cfg.workers = 1;
        cfg.queue_cap = 2;
        (Scheduler::start(cfg).unwrap(), spool)
    }

    #[test]
    fn healthz_metrics_and_404() {
        let (sched, spool) = tiny_sched("health");
        let h = sched.handle();
        let (code, ct, body) = route(&h, &req("GET", "/healthz", ""));
        assert_eq!(code, 200);
        assert_eq!(ct, JSON_CONTENT_TYPE);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"uptime_secs\":"), "{body}");
        assert!(body.contains("\"version\":"), "{body}");
        let (code, ct, body) = route(&h, &req("GET", "/metrics", ""));
        assert_eq!(code, 200);
        assert_eq!(ct, JSON_CONTENT_TYPE);
        json::parse(&body).expect("metrics must be valid JSON");
        assert_eq!(route(&h, &req("GET", "/nope", "")).0, 404);
        assert_eq!(route(&h, &req("PUT", "/jobs", "")).0, 405);
        assert_eq!(route(&h, &req("GET", "/jobs/zzz", "")).0, 400);
        sched.drain();
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn metrics_negotiates_prometheus() {
        let (sched, spool) = tiny_sched("prom");
        let h = sched.handle();
        // Explicit query parameter.
        let (code, ct, body) = route(&h, &req("GET", "/metrics?format=prometheus", ""));
        assert_eq!(code, 200);
        assert_eq!(ct, qtelemetry::prometheus::CONTENT_TYPE);
        assert!(body.contains("flatdd_build_info{"), "{body}");
        assert!(
            body.contains("# TYPE flatdd_serve_queue_depth gauge"),
            "{body}"
        );
        assert!(
            body.contains("flatdd_serve_queue_wait_us_bucket{"),
            "histograms must expose buckets: {body}"
        );
        // Accept-header negotiation.
        let mut r = req("GET", "/metrics", "");
        r.accept = "text/plain".into();
        let (_, ct, _) = route(&h, &r);
        assert_eq!(ct, qtelemetry::prometheus::CONTENT_TYPE);
        // format=json wins over Accept.
        let mut r = req("GET", "/metrics?format=json", "");
        r.accept = "text/plain".into();
        let (_, ct, _) = route(&h, &r);
        assert_eq!(ct, JSON_CONTENT_TYPE);
        sched.drain();
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn submit_poll_and_queue_full() {
        let (sched, spool) = tiny_sched("submit");
        let h = sched.handle();
        assert_eq!(route(&h, &req("POST", "/jobs", "not json")).0, 400);
        assert_eq!(
            route(&h, &req("POST", "/jobs", r#"{"circuit":"bogus:3"}"#)).0,
            400
        );
        let (code, _, body) = route(
            &h,
            &req("POST", "/jobs", r#"{"circuit":"ghz:6","threads":1}"#),
        );
        assert_eq!(code, 202, "{body}");
        let id = json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(h.wait_idle(std::time::Duration::from_secs(30)));
        let (code, _, body) = route(&h, &req("GET", &format!("/jobs/{id}"), ""));
        assert_eq!(code, 200);
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("state").and_then(Json::as_str), Some("done"));
        let (code, _, body) = route(&h, &req("GET", "/jobs", ""));
        assert_eq!(code, 200);
        assert!(body.contains("\"circuit\":\"ghz:6\""), "{body}");
        // The event batch endpoint serves the finished job's ring with a
        // trailing cursor line, and resumes past it cleanly.
        let (code, ct, body) = route(&h, &req("GET", &format!("/jobs/{id}/events"), ""));
        assert_eq!(code, 200);
        assert_eq!(ct, stream::NDJSON_CONTENT_TYPE);
        assert!(body.contains("\"event\":\"progress\""), "{body}");
        let cursor_line = body.lines().last().unwrap();
        assert!(cursor_line.starts_with("{\"event\":\"cursor\""), "{body}");
        let cursor = json::parse(cursor_line)
            .unwrap()
            .get("cursor")
            .and_then(Json::as_u64)
            .unwrap();
        let (code, _, body) = route(
            &h,
            &req("GET", &format!("/jobs/{id}/events?since={cursor}"), ""),
        );
        assert_eq!(code, 200);
        assert_eq!(
            body.lines().count(),
            1,
            "resume at the cursor must be empty: {body}"
        );
        assert_eq!(route(&h, &req("GET", "/jobs/999/events", "")).0, 404);
        sched.drain();
        std::fs::remove_dir_all(&spool).ok();
    }
}
