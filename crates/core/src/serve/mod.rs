//! Multi-job serving: the engine behind the `flatdd-serve` daemon.
//!
//! PR 1–5 hardened one simulation at a time — typed errors, resource
//! governance, crash-safe checkpoints, fault injection. This module turns
//! those primitives into a long-running service that accepts circuits over
//! HTTP/JSON and runs many of them concurrently without letting them hurt
//! each other:
//!
//! * [`json`] / [`http`] — a dependency-free wire layer (the crate policy
//!   is no external crates; `std::net` and a small JSON codec suffice).
//! * [`jobs`] — the job model and its durable spool records.
//! * [`scheduler`] — admission against a server-wide memory budget,
//!   priority preemption via checkpoints, capped-backoff retry, worker
//!   panic containment, and restart recovery.
//!
//! The HTTP surface (all responses JSON, `Connection: close`):
//!
//! | Method & path            | Purpose                                   |
//! |--------------------------|-------------------------------------------|
//! | `POST /jobs`             | submit a job spec; `202` with the id, `429` when the queue is full, `503` while draining |
//! | `GET /jobs`              | summaries of every known job              |
//! | `GET /jobs/{id}`         | full status: state, retries, result, stats, per-job metrics |
//! | `POST /jobs/{id}/cancel` | cancel (`DELETE /jobs/{id}` is an alias)  |
//! | `GET /metrics`           | the daemon's `serve.*` metrics registry   |
//! | `GET /healthz`           | liveness + `ok`/`draining` + load         |
//!
//! Routing is a pure function ([`route`]) so the whole API surface is
//! unit-testable without sockets; `flatdd-serve` owns only the listener
//! loop and process signals.

pub mod http;
pub mod jobs;
pub mod json;
pub mod scheduler;

pub use jobs::{JobRecord, JobResult, JobSpec, JobState};
pub use scheduler::{CancelOutcome, Scheduler, SchedulerHandle, ServeConfig, SubmitError};

use json::Json;

/// Name of the file (inside the spool) holding the bound TCP port.
pub const PORT_FILE: &str = "serve.port";

fn err_body(msg: &str) -> String {
    Json::obj(vec![("error", Json::Str(msg.into()))]).to_string()
}

/// Dispatches one parsed request against the scheduler, returning
/// `(status, JSON body)`.
pub fn route(handle: &SchedulerHandle, req: &http::Request) -> (u32, String) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let (running, queued) = handle.load();
            let status = if handle.draining() { "draining" } else { "ok" };
            (
                200,
                Json::obj(vec![
                    ("status", Json::Str(status.into())),
                    ("running", Json::Num(running as f64)),
                    ("queued", Json::Num(queued as f64)),
                ])
                .to_string(),
            )
        }
        ("GET", ["metrics"]) => (200, handle.metrics().to_json()),
        ("GET", ["jobs"]) => {
            let items: Vec<Json> = handle
                .jobs()
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("id", Json::Num(r.id as f64)),
                        ("state", Json::Str(r.state.label().into())),
                        ("circuit", Json::Str(r.spec.circuit.clone())),
                        ("priority", Json::Num(r.spec.priority as f64)),
                        ("retries", Json::Num(r.retries as f64)),
                    ])
                })
                .collect();
            (200, Json::obj(vec![("jobs", Json::Arr(items))]).to_string())
        }
        ("POST", ["jobs"]) => {
            let body = match std::str::from_utf8(&req.body) {
                Ok(s) => s,
                Err(_) => return (400, err_body("body is not UTF-8")),
            };
            let spec = match json::parse(body).and_then(|v| JobSpec::from_json(&v)) {
                Ok(s) => s,
                Err(e) => return (400, err_body(&e)),
            };
            match handle.submit(spec) {
                Ok(id) => (
                    202,
                    Json::obj(vec![
                        ("id", Json::Num(id as f64)),
                        ("state", Json::Str("queued".into())),
                    ])
                    .to_string(),
                ),
                Err(SubmitError::QueueFull) => (429, err_body("queue full")),
                Err(SubmitError::Draining) => (503, err_body("draining")),
                Err(SubmitError::Invalid(e)) => (400, err_body(&e)),
            }
        }
        ("GET", ["jobs", id]) => match parse_id(id) {
            Some(id) => match handle.job(id) {
                Some(rec) => (200, format!("{}", rec.to_json())),
                None => (404, err_body("no such job")),
            },
            None => (400, err_body("bad job id")),
        },
        ("POST", ["jobs", id, "cancel"]) | ("DELETE", ["jobs", id]) => match parse_id(id) {
            Some(id) => match handle.cancel(id) {
                CancelOutcome::Cancelled => (
                    200,
                    Json::obj(vec![
                        ("id", Json::Num(id as f64)),
                        ("cancelled", Json::Bool(true)),
                    ])
                    .to_string(),
                ),
                CancelOutcome::AlreadyTerminal => (409, err_body("job already finished")),
                CancelOutcome::NotFound => (404, err_body("no such job")),
            },
            None => (400, err_body("bad job id")),
        },
        ("GET" | "POST" | "DELETE", _) => (404, err_body("no such endpoint")),
        _ => (405, err_body("method not allowed")),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &str) -> http::Request {
        http::Request {
            method: method.into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn tiny_sched(name: &str) -> (Scheduler, std::path::PathBuf) {
        let spool =
            std::env::temp_dir().join(format!("flatdd-serve-route-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&spool).ok();
        let mut cfg = ServeConfig::at(&spool);
        cfg.workers = 1;
        cfg.queue_cap = 2;
        (Scheduler::start(cfg).unwrap(), spool)
    }

    #[test]
    fn healthz_metrics_and_404() {
        let (sched, spool) = tiny_sched("health");
        let h = sched.handle();
        let (code, body) = route(&h, &req("GET", "/healthz", ""));
        assert_eq!(code, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        let (code, body) = route(&h, &req("GET", "/metrics", ""));
        assert_eq!(code, 200);
        json::parse(&body).expect("metrics must be valid JSON");
        assert_eq!(route(&h, &req("GET", "/nope", "")).0, 404);
        assert_eq!(route(&h, &req("PUT", "/jobs", "")).0, 405);
        assert_eq!(route(&h, &req("GET", "/jobs/zzz", "")).0, 400);
        sched.drain();
        std::fs::remove_dir_all(&spool).ok();
    }

    #[test]
    fn submit_poll_and_queue_full() {
        let (sched, spool) = tiny_sched("submit");
        let h = sched.handle();
        assert_eq!(route(&h, &req("POST", "/jobs", "not json")).0, 400);
        assert_eq!(
            route(&h, &req("POST", "/jobs", r#"{"circuit":"bogus:3"}"#)).0,
            400
        );
        let (code, body) = route(
            &h,
            &req("POST", "/jobs", r#"{"circuit":"ghz:6","threads":1}"#),
        );
        assert_eq!(code, 202, "{body}");
        let id = json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Json::as_u64)
            .unwrap();
        assert!(h.wait_idle(std::time::Duration::from_secs(30)));
        let (code, body) = route(&h, &req("GET", &format!("/jobs/{id}"), ""));
        assert_eq!(code, 200);
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("state").and_then(Json::as_str), Some("done"));
        let (code, body) = route(&h, &req("GET", "/jobs", ""));
        assert_eq!(code, 200);
        assert!(body.contains("\"circuit\":\"ghz:6\""), "{body}");
        sched.drain();
        std::fs::remove_dir_all(&spool).ok();
    }
}
