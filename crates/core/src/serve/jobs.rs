//! Job model and spool persistence for the serving daemon.
//!
//! A **job** is one simulation request: a circuit (generator spec or
//! inline QASM), a seed, and per-job resource limits. Every job owns a
//! durable record in the **spool directory**:
//!
//! ```text
//! <spool>/job-<id>.json    the spec + last observed state (atomic rename)
//! <spool>/job-<id>.ckpt    FDCP1 checkpoint (periodic / preemption / drain)
//! <spool>/serve.port       the bound TCP port, written once at startup
//! ```
//!
//! The record is rewritten on every state transition, so a daemon killed
//! at any instant can rebuild its queue on restart: `queued`, `running`,
//! and `preempted` records are re-admitted (resuming from the checkpoint
//! when one is installed and loadable), terminal records are served as
//! history. This is the restart-recovery contract exercised by
//! `tests/serve_recovery.rs`.

use super::json::{self, Json};
use crate::error::FlatDdError;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Default priority for jobs that do not ask for one.
pub const DEFAULT_PRIORITY: i64 = 0;

/// What a client asked the daemon to run.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Generator spec (`ghz:12`, `supremacy:16,8`, ...). Ignored when
    /// `qasm` is set.
    pub circuit: String,
    /// Inline OpenQASM 2.0 source, overriding `circuit`.
    pub qasm: Option<String>,
    /// Generator / sampling seed.
    pub seed: u64,
    /// Worker threads for this job's simulator.
    pub threads: usize,
    /// DD-phase worker threads (`None` = the daemon default, which itself
    /// defaults to 1 = sequential).
    pub dd_threads: Option<usize>,
    /// Flat-phase state shards (`None` = the daemon default, which itself
    /// defaults to auto = one shard per worker thread).
    pub flat_shards: Option<usize>,
    /// Scheduling priority: higher runs first and may preempt lower.
    pub priority: i64,
    /// Per-job wall-clock budget.
    pub deadline_secs: Option<f64>,
    /// Per-job engine memory budget (also the admission estimate).
    pub memory_budget_mb: Option<u64>,
    /// Periodic checkpoint interval in gates (`None` = breach/drain only).
    pub checkpoint_every: Option<usize>,
    /// Force DD-to-array conversion at this gate index (`None` = the
    /// default EWMA trigger). Lets chaos tests drive the conversion path
    /// deterministically.
    pub convert_at_gate: Option<usize>,
    /// Scoped fault spec (`FLATDD_FAULTS` grammar) armed on this job's
    /// context only — chaos testing one tenant must not touch the others.
    pub faults: Option<String>,
    /// Arms the approximation rung for this job: on an unrelievable memory
    /// breach, truncate the DD state as long as the cumulative fidelity
    /// stays at or above this floor (in `(0, 1]`; `None` = exact, fatal
    /// behavior). Results produced this way are marked `approximate`.
    pub approx_fidelity_floor: Option<f64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            circuit: String::new(),
            qasm: None,
            seed: 42,
            threads: 2,
            dd_threads: None,
            flat_shards: None,
            priority: DEFAULT_PRIORITY,
            deadline_secs: None,
            memory_budget_mb: None,
            checkpoint_every: None,
            convert_at_gate: None,
            faults: None,
            approx_fidelity_floor: None,
        }
    }
}

impl JobSpec {
    /// Parses a client-submitted JSON body, rejecting unknown fields (a
    /// typo'd limit silently ignored is a limit not applied).
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let obj = match v {
            Json::Obj(m) => m,
            _ => return Err("job spec must be a JSON object".into()),
        };
        let mut spec = JobSpec::default();
        for (k, v) in obj {
            match k.as_str() {
                "circuit" => {
                    spec.circuit = v.as_str().ok_or("`circuit` must be a string")?.to_string()
                }
                "qasm" => {
                    spec.qasm = Some(v.as_str().ok_or("`qasm` must be a string")?.to_string())
                }
                "seed" => spec.seed = v.as_u64().ok_or("`seed` must be a non-negative integer")?,
                "threads" => {
                    let t = v.as_u64().ok_or("`threads` must be a positive integer")?;
                    if t == 0 {
                        return Err("`threads` must be at least 1".into());
                    }
                    spec.threads = t as usize;
                }
                "dd_threads" => {
                    let t = v
                        .as_u64()
                        .ok_or("`dd_threads` must be a positive integer")?;
                    if t == 0 {
                        return Err("`dd_threads` must be at least 1".into());
                    }
                    spec.dd_threads = Some(t as usize);
                }
                "flat_shards" => {
                    let s = v
                        .as_u64()
                        .ok_or("`flat_shards` must be a positive integer")?;
                    if s == 0 {
                        return Err("`flat_shards` must be at least 1".into());
                    }
                    spec.flat_shards = Some(s as usize);
                }
                "priority" => {
                    spec.priority = v.as_f64().ok_or("`priority` must be a number")? as i64
                }
                "deadline_secs" => {
                    let s = v.as_f64().ok_or("`deadline_secs` must be a number")?;
                    if !s.is_finite() || s <= 0.0 {
                        return Err("`deadline_secs` must be a positive number".into());
                    }
                    spec.deadline_secs = Some(s);
                }
                "memory_budget_mb" => {
                    spec.memory_budget_mb =
                        Some(v.as_u64().ok_or("`memory_budget_mb` must be an integer")?)
                }
                "checkpoint_every" => {
                    let g = v.as_u64().ok_or("`checkpoint_every` must be an integer")?;
                    if g == 0 {
                        return Err("`checkpoint_every` must be at least 1 gate".into());
                    }
                    spec.checkpoint_every = Some(g as usize);
                }
                "convert_at_gate" => {
                    spec.convert_at_gate =
                        Some(v.as_u64().ok_or("`convert_at_gate` must be an integer")? as usize)
                }
                "faults" => {
                    spec.faults = Some(v.as_str().ok_or("`faults` must be a string")?.to_string())
                }
                "approx_fidelity_floor" => {
                    let f = v
                        .as_f64()
                        .ok_or("`approx_fidelity_floor` must be a number")?;
                    if !f.is_finite() || f <= 0.0 || f > 1.0 {
                        return Err("`approx_fidelity_floor` must be in (0, 1]".into());
                    }
                    spec.approx_fidelity_floor = Some(f);
                }
                other => return Err(format!("unknown job field `{other}`")),
            }
        }
        if spec.circuit.is_empty() && spec.qasm.is_none() {
            return Err("job spec needs `circuit` or `qasm`".into());
        }
        Ok(spec)
    }

    /// Serializes the spec (inverse of [`JobSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("circuit".into(), Json::Str(self.circuit.clone()));
        if let Some(q) = &self.qasm {
            m.insert("qasm".into(), Json::Str(q.clone()));
        }
        m.insert("seed".into(), Json::Num(self.seed as f64));
        m.insert("threads".into(), Json::Num(self.threads as f64));
        if let Some(t) = self.dd_threads {
            m.insert("dd_threads".into(), Json::Num(t as f64));
        }
        if let Some(s) = self.flat_shards {
            m.insert("flat_shards".into(), Json::Num(s as f64));
        }
        m.insert("priority".into(), Json::Num(self.priority as f64));
        if let Some(s) = self.deadline_secs {
            m.insert("deadline_secs".into(), Json::Num(s));
        }
        if let Some(mb) = self.memory_budget_mb {
            m.insert("memory_budget_mb".into(), Json::Num(mb as f64));
        }
        if let Some(g) = self.checkpoint_every {
            m.insert("checkpoint_every".into(), Json::Num(g as f64));
        }
        if let Some(g) = self.convert_at_gate {
            m.insert("convert_at_gate".into(), Json::Num(g as f64));
        }
        if let Some(f) = &self.faults {
            m.insert("faults".into(), Json::Str(f.clone()));
        }
        if let Some(f) = self.approx_fidelity_floor {
            m.insert("approx_fidelity_floor".into(), Json::Num(f));
        }
        Json::Obj(m)
    }
}

/// Lifecycle of one job. `Preempted` is non-terminal: the job was
/// checkpointed to make room (or for a drain) and waits in the queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker and an admission slot.
    Queued,
    /// A worker is driving its simulator right now.
    Running,
    /// Checkpointed and re-queued (preemption or daemon drain).
    Preempted,
    /// Finished successfully.
    Done,
    /// Finished with a typed error; the exit code is recorded.
    Failed,
    /// Cancelled by the client.
    Cancelled,
}

impl JobState {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Preempted => "preempted",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire label.
    pub fn from_label(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "preempted" => JobState::Preempted,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// True once the job can never run again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// What a finished job reports back.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Gates applied (equals the circuit total on success).
    pub gates_applied: usize,
    /// Total gates in the circuit.
    pub total_gates: usize,
    /// Final simulation phase label (`dd` / `dmav`).
    pub phase: String,
    /// Wall-clock seconds spent simulating (all attempts).
    pub elapsed_secs: f64,
    /// `true` when the approximation rung truncated the state: the result
    /// is an approximate state with [`Self::fidelity`] possibly below 1.
    pub approximate: bool,
    /// Cumulative fidelity product achieved (`1.0` for exact runs).
    pub fidelity: f64,
    /// The top amplitudes by probability: `(basis index, re, im)`,
    /// descending. Full `f64` precision survives the JSON round trip, so
    /// recovery tests can compare against an uninterrupted run at 1e-12.
    pub heavy: Vec<(usize, f64, f64)>,
    /// `FlatDdStats::to_json` payload.
    pub stats_json: String,
    /// The job's scoped metrics registry, dumped as JSON.
    pub metrics_json: String,
}

impl Default for JobResult {
    fn default() -> Self {
        JobResult {
            gates_applied: 0,
            total_gates: 0,
            phase: String::new(),
            elapsed_secs: 0.0,
            approximate: false,
            fidelity: 1.0,
            heavy: Vec::new(),
            stats_json: String::new(),
            metrics_json: String::new(),
        }
    }
}

/// The durable record: spec + state + outcome, one JSON file per job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Daemon-assigned id (monotonic, persisted across restarts).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Exit code for `Failed` (the `FlatDdError::exit_code` table).
    pub exit_code: Option<i32>,
    /// Human-readable error for `Failed`.
    pub error: Option<String>,
    /// Transient-failure retries consumed so far.
    pub retries: u32,
    /// Times this job was preempted or drained mid-run.
    pub preemptions: u32,
    /// Worker panics this job has caused so far. Persisted so a crash-loop
    /// — a job that keeps panicking after checkpoint resumes, across
    /// daemon restarts — is bounded: past `retry_max` attempts the job is
    /// marked failed-poisoned instead of being retried forever.
    pub panics: u32,
    /// Result payload for `Done`.
    pub result: Option<JobResult>,
}

impl JobRecord {
    /// A fresh queued record.
    pub fn new(id: u64, spec: JobSpec) -> Self {
        JobRecord {
            id,
            spec,
            state: JobState::Queued,
            exit_code: None,
            error: None,
            retries: 0,
            preemptions: 0,
            panics: 0,
            result: None,
        }
    }

    /// The record file for job `id` in `spool`.
    pub fn path(spool: &Path, id: u64) -> PathBuf {
        spool.join(format!("job-{id}.json"))
    }

    /// The checkpoint file for job `id` in `spool`.
    pub fn ckpt_path(spool: &Path, id: u64) -> PathBuf {
        spool.join(format!("job-{id}.ckpt"))
    }

    /// Full status object served on `GET /jobs/{id}` (also the persisted
    /// on-disk form — one schema, one parser).
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("id".into(), Json::Num(self.id as f64));
        m.insert("state".into(), Json::Str(self.state.label().into()));
        m.insert("spec".into(), self.spec.to_json());
        m.insert("retries".into(), Json::Num(self.retries as f64));
        m.insert("preemptions".into(), Json::Num(self.preemptions as f64));
        m.insert("panics".into(), Json::Num(self.panics as f64));
        if let Some(c) = self.exit_code {
            m.insert("exit_code".into(), Json::Num(c as f64));
        }
        if let Some(e) = &self.error {
            m.insert("error".into(), Json::Str(e.clone()));
        }
        if let Some(r) = &self.result {
            let heavy: Vec<Json> = r
                .heavy
                .iter()
                .map(|&(i, re, im)| {
                    Json::obj(vec![
                        ("index", Json::Num(i as f64)),
                        ("re", Json::Num(re)),
                        ("im", Json::Num(im)),
                    ])
                })
                .collect();
            m.insert(
                "result".into(),
                Json::obj(vec![
                    ("gates_applied", Json::Num(r.gates_applied as f64)),
                    ("total_gates", Json::Num(r.total_gates as f64)),
                    ("phase", Json::Str(r.phase.clone())),
                    ("elapsed_secs", Json::Num(r.elapsed_secs)),
                    ("approximate", Json::Bool(r.approximate)),
                    ("fidelity", Json::Num(r.fidelity)),
                    ("heavy", Json::Arr(heavy)),
                    ("stats", raw_or_null(&r.stats_json)),
                    ("metrics", raw_or_null(&r.metrics_json)),
                ]),
            );
        }
        Json::Obj(m)
    }

    /// Parses a persisted record (tolerates `result` payloads from newer
    /// versions by ignoring fields it does not know).
    pub fn from_json(v: &Json) -> Result<JobRecord, String> {
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("record missing `id`")?;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::from_label)
            .ok_or("record missing `state`")?;
        let spec = JobSpec::from_json(v.get("spec").ok_or("record missing `spec`")?)?;
        let mut rec = JobRecord::new(id, spec);
        rec.state = state;
        rec.retries = v.get("retries").and_then(Json::as_u64).unwrap_or(0) as u32;
        rec.preemptions = v.get("preemptions").and_then(Json::as_u64).unwrap_or(0) as u32;
        // Absent in records written by older daemons: default to 0.
        rec.panics = v.get("panics").and_then(Json::as_u64).unwrap_or(0) as u32;
        rec.exit_code = v.get("exit_code").and_then(Json::as_f64).map(|c| c as i32);
        rec.error = v.get("error").and_then(Json::as_str).map(|s| s.to_string());
        if let Some(r) = v.get("result") {
            let mut result = JobResult {
                gates_applied: r.get("gates_applied").and_then(Json::as_u64).unwrap_or(0) as usize,
                total_gates: r.get("total_gates").and_then(Json::as_u64).unwrap_or(0) as usize,
                phase: r
                    .get("phase")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                elapsed_secs: r.get("elapsed_secs").and_then(Json::as_f64).unwrap_or(0.0),
                approximate: r
                    .get("approximate")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                fidelity: r.get("fidelity").and_then(Json::as_f64).unwrap_or(1.0),
                heavy: Vec::new(),
                stats_json: r.get("stats").map(|s| s.to_string()).unwrap_or_default(),
                metrics_json: r.get("metrics").map(|s| s.to_string()).unwrap_or_default(),
            };
            if let Some(Json::Arr(items)) = r.get("heavy") {
                for it in items {
                    let idx = it.get("index").and_then(Json::as_u64).unwrap_or(0) as usize;
                    let re = it.get("re").and_then(Json::as_f64).unwrap_or(0.0);
                    let im = it.get("im").and_then(Json::as_f64).unwrap_or(0.0);
                    result.heavy.push((idx, re, im));
                }
            }
            rec.result = Some(result);
        }
        Ok(rec)
    }

    /// Durably writes the record: tmp sibling, then atomic rename — the
    /// same install discipline as FDCP1 checkpoints, so a crash leaves
    /// either the old record or the new one, never a torn file.
    ///
    /// Probes the `spool.write` fault site (process-global registry —
    /// record persistence is a daemon-level concern, not scoped to any one
    /// job's chaos spec): when armed, the write reports an IO error and
    /// the on-disk record is left as it was.
    pub fn persist(&self, spool: &Path) -> Result<(), FlatDdError> {
        if crate::faults::fires(crate::faults::SITE_SPOOL_WRITE).is_some() {
            return Err(FlatDdError::Io(std::io::Error::other(format!(
                "injected IO error persisting job record {} (fault site {})",
                self.id,
                crate::faults::SITE_SPOOL_WRITE
            ))));
        }
        let path = Self::path(spool, self.id);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, format!("{}\n", self.to_json()))?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }
}

fn raw_or_null(s: &str) -> Json {
    if s.is_empty() {
        Json::Null
    } else {
        Json::Raw(s.to_string())
    }
}

/// Outcome of the startup spool fsck: the loadable records plus how many
/// corrupt files were moved aside.
#[derive(Debug, Default)]
pub struct SpoolLoad {
    /// Every loadable record, sorted by id.
    pub records: Vec<JobRecord>,
    /// Corrupt/unparseable record files quarantined to
    /// `<spool>/quarantine/` this pass.
    pub quarantined: usize,
}

/// Loads every `job-*.json` record in `spool`, sorted by id — the daemon's
/// startup fsck. A corrupt or unparseable record is *quarantined*: moved
/// to `<spool>/quarantine/` with one log line, so recovery continues and
/// the damaged file stays available for post-mortem instead of either
/// taking the daemon down or being silently re-read (and re-skipped) on
/// every restart.
pub fn load_spool(spool: &Path) -> SpoolLoad {
    let mut out = SpoolLoad::default();
    let entries = match std::fs::read_dir(spool) {
        Ok(e) => e,
        Err(_) => return out,
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if !name.starts_with("job-") || !name.ends_with(".json") {
            continue;
        }
        let path = entry.path();
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|src| json::parse(&src))
            .and_then(|v| JobRecord::from_json(&v));
        match parsed {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                let qdir = spool.join("quarantine");
                let moved = std::fs::create_dir_all(&qdir)
                    .and_then(|()| std::fs::rename(&path, qdir.join(&name)));
                match moved {
                    Ok(()) => {
                        out.quarantined += 1;
                        eprintln!(
                            "[flatdd-serve] quarantined corrupt record {} -> quarantine/{name}: {e}",
                            path.display()
                        );
                    }
                    // Quarantine failing (e.g. read-only spool) degrades to
                    // the old skip behavior — recovery still proceeds.
                    Err(me) => eprintln!(
                        "[flatdd-serve] skipping {} ({e}; quarantine failed: {me})",
                        path.display()
                    ),
                }
            }
        }
    }
    out.records.sort_by_key(|r| r.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            circuit: "ghz:6".into(),
            seed: 7,
            threads: 1,
            dd_threads: Some(4),
            flat_shards: Some(8),
            priority: 3,
            deadline_secs: Some(2.5),
            memory_budget_mb: Some(64),
            checkpoint_every: Some(10),
            convert_at_gate: Some(12),
            faults: Some("state.nan:nan:once".into()),
            approx_fidelity_floor: Some(0.95),
            ..JobSpec::default()
        }
    }

    #[test]
    fn spec_roundtrips() {
        let s = spec();
        let back = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn spec_rejects_unknown_and_invalid_fields() {
        assert!(
            JobSpec::from_json(&json::parse(r#"{"circuit":"ghz:4","turbo":1}"#).unwrap())
                .unwrap_err()
                .contains("unknown job field")
        );
        assert!(
            JobSpec::from_json(&json::parse(r#"{"circuit":"ghz:4","threads":0}"#).unwrap())
                .is_err()
        );
        assert!(JobSpec::from_json(&json::parse(r#"{"seed":1}"#).unwrap()).is_err());
        assert!(
            JobSpec::from_json(&json::parse(r#"{"circuit":"ghz:4","dd_threads":0}"#).unwrap())
                .is_err()
        );
        assert!(JobSpec::from_json(
            &json::parse(r#"{"circuit":"ghz:4","flat_shards":0}"#).unwrap()
        )
        .is_err());
        for bad in ["0", "-0.5", "1.5", "\"x\""] {
            let src = format!(r#"{{"circuit":"ghz:4","approx_fidelity_floor":{bad}}}"#);
            assert!(
                JobSpec::from_json(&json::parse(&src).unwrap()).is_err(),
                "floor {bad} must be rejected"
            );
        }
        let ok = JobSpec::from_json(
            &json::parse(r#"{"circuit":"ghz:4","approx_fidelity_floor":0.9}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(ok.approx_fidelity_floor, Some(0.9));
    }

    #[test]
    fn record_persist_and_reload() {
        let dir = std::env::temp_dir().join(format!("flatdd-jobs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut rec = JobRecord::new(12, spec());
        rec.state = JobState::Done;
        rec.retries = 1;
        rec.panics = 2;
        rec.result = Some(JobResult {
            gates_applied: 11,
            total_gates: 11,
            phase: "dmav".into(),
            elapsed_secs: 0.25,
            approximate: true,
            fidelity: 0.987654321098765,
            heavy: vec![(0, std::f64::consts::FRAC_1_SQRT_2, 0.0), (63, -0.5, 0.25)],
            stats_json: r#"{"gates_dd":5}"#.into(),
            metrics_json: String::new(),
        });
        rec.persist(&dir).unwrap();
        let loaded = load_spool(&dir);
        assert_eq!(loaded.quarantined, 0);
        let got = loaded.records.iter().find(|r| r.id == 12).unwrap();
        assert_eq!(got.state, JobState::Done);
        assert_eq!(got.spec, rec.spec);
        assert_eq!(got.panics, 2, "panic count must survive restarts");
        let r = got.result.as_ref().unwrap();
        assert_eq!(
            r.heavy[0].1,
            std::f64::consts::FRAC_1_SQRT_2,
            "f64 must roundtrip"
        );
        assert_eq!(r.heavy[1].0, 63);
        assert!(r.approximate);
        assert_eq!(r.fidelity, 0.987654321098765, "fidelity must roundtrip");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_records_are_quarantined_not_fatal() {
        let dir = std::env::temp_dir().join(format!("flatdd-fsck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = JobRecord::new(1, spec());
        rec.persist(&dir).unwrap();
        std::fs::write(dir.join("job-2.json"), "{ not json at all").unwrap();
        std::fs::write(dir.join("job-3.json"), r#"{"id":3}"#).unwrap(); // no state/spec
        let loaded = load_spool(&dir);
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].id, 1);
        assert_eq!(loaded.quarantined, 2);
        assert!(dir.join("quarantine").join("job-2.json").exists());
        assert!(dir.join("quarantine").join("job-3.json").exists());
        assert!(!dir.join("job-2.json").exists(), "original must be moved");
        // A second pass finds a clean spool: quarantine is idempotent.
        let again = load_spool(&dir);
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.quarantined, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
