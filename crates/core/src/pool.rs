//! A persistent barrier-style thread pool.
//!
//! FlatDD launches `t` threads for *every* DMAV and every conversion
//! (Algorithms 1 and 2 say "parallel for i in [0, t)"). Spawning OS threads
//! per gate would dominate the runtime of shallow gates, so the pool keeps
//! `t` workers parked and hands them one closure per dispatch; [`run`]
//! blocks until all workers finish, which is exactly the fork-join shape of
//! the paper's kernels.
//!
//! [`run`]: ThreadPool::run

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased job pointer. The pointed-to closure is guaranteed (by
/// `run` blocking) to outlive its execution.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the closure behind the pointer is `Sync`, and `run` keeps it alive
// until every worker has finished with it.
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    generation: u64,
    active: usize,
    shutdown: bool,
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Fixed-size fork-join thread pool.
pub struct ThreadPool {
    size: usize,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `size` workers (>= 1). A size-1 pool runs jobs
    /// inline on the caller with no worker threads.
    ///
    /// # Panics
    /// When the OS refuses to spawn a worker thread; use [`Self::try_new`]
    /// to handle that as an error.
    pub fn new(size: usize) -> Self {
        Self::try_new(size).expect("failed to spawn pool worker")
    }

    /// Fallible [`Self::new`]: surfaces thread-spawn failure (resource
    /// exhaustion under a tight process limit) as an `io::Error` instead of
    /// panicking. Already-spawned workers are joined cleanly on failure.
    pub fn try_new(size: usize) -> std::io::Result<Self> {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut workers = Vec::new();
        if size > 1 {
            for tid in 0..size {
                let shared_cl = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("flatdd-worker-{tid}"))
                    .spawn(move || worker_loop(tid, &shared_cl));
                match spawned {
                    Ok(h) => workers.push(h),
                    Err(e) => {
                        // Shut down what we already started before bailing.
                        {
                            let mut st = shared.state.lock();
                            st.shutdown = true;
                            shared.work_cv.notify_all();
                        }
                        for w in workers {
                            let _ = w.join();
                        }
                        return Err(e);
                    }
                }
            }
        }
        Ok(ThreadPool {
            size,
            shared,
            workers,
        })
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f(tid)` for every `tid in 0..size` and waits for completion.
    ///
    /// Must not be called re-entrantly (from inside a running job) or from
    /// two threads at once.
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if self.size == 1 {
            f(0);
            return;
        }
        // SAFETY: `f` outlives this call, and this call does not return
        // before every worker has finished executing the job — so erasing
        // the lifetime of the trait object is sound.
        let local: &(dyn Fn(usize) + Sync) = &f;
        let ptr: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(local)
        };
        let mut st = self.shared.state.lock();
        assert_eq!(st.active, 0, "ThreadPool::run is not re-entrant");
        st.job = Some(Job(ptr));
        st.generation += 1;
        st.active = self.size;
        self.shared.work_cv.notify_all();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
        if st.panicked {
            st.panicked = false;
            drop(st);
            panic!("a ThreadPool job panicked on a worker thread");
        }
    }
}

fn worker_loop(tid: usize, shared: &Shared) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            while st.generation == seen_gen && !st.shutdown {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen_gen = st.generation;
            st.job.expect("generation advanced without a job")
        };
        // SAFETY: the dispatcher keeps the closure alive until `active`
        // drops to zero, which happens strictly after this call returns.
        // A panicking job must still decrement `active`, or `run` would
        // deadlock; the panic is surfaced on the dispatcher side instead.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job.0)(tid) }));
        let mut st = shared.state.lock();
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Clamps a requested thread count to the largest power of two that the
/// DMAV assignment scheme supports for `n` qubits (`log2 t < n`).
pub fn clamp_threads(requested: usize, n: usize) -> usize {
    let r = requested.max(1);
    let mut t = r.next_power_of_two();
    if t != r {
        t /= 2; // round *down* to a power of two
    }
    let max = 1usize << n.saturating_sub(1).min(16);
    t.clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_tid_once() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.run(|tid| {
            hits.fetch_add(1, Ordering::Relaxed);
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn sequential_dispatches_reuse_workers() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = ThreadPool::new(1);
        let cell = AtomicUsize::new(0);
        pool.run(|tid| cell.store(tid + 99, Ordering::Relaxed));
        assert_eq!(cell.load(Ordering::Relaxed), 99);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn workers_partition_disjoint_slices() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        let view = qarray::SyncUnsafeSlice::new(&mut data);
        pool.run(|tid| {
            // SAFETY: 16-element ranges are disjoint per tid.
            let chunk = unsafe { view.slice_mut(tid * 16, 16) };
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = tid * 16 + i;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        pool.run(|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn panicking_job_does_not_deadlock() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(
            result.is_err(),
            "the dispatcher must re-raise the job panic"
        );
        // The pool is still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn clamp_threads_powers_of_two() {
        assert_eq!(clamp_threads(1, 10), 1);
        assert_eq!(clamp_threads(2, 10), 2);
        assert_eq!(clamp_threads(3, 10), 2);
        assert_eq!(clamp_threads(4, 10), 4);
        assert_eq!(clamp_threads(7, 10), 4);
        assert_eq!(clamp_threads(16, 10), 16);
        // n=3 allows at most 2^2 = 4 threads.
        assert_eq!(clamp_threads(16, 3), 4);
        assert_eq!(clamp_threads(0, 5), 1);
    }
}
