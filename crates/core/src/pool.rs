//! Thread-pool plumbing for the FlatDD phases.
//!
//! The persistent fork-join [`ThreadPool`] itself lives in [`qdd::par`] (the
//! bottom of the crate stack) so the DD phase, the DMAV kernels, and the
//! converters all share one worker implementation; this module re-exports it
//! and keeps the DMAV-specific thread-count clamp.

pub use qdd::par::ThreadPool;

/// Clamps a requested thread count to the largest power of two that the
/// DMAV assignment scheme supports for `n` qubits (`log2 t < n`).
pub fn clamp_threads(requested: usize, n: usize) -> usize {
    let r = requested.max(1);
    let mut t = r.next_power_of_two();
    if t != r {
        t /= 2; // round *down* to a power of two
    }
    let max = 1usize << n.saturating_sub(1).min(16);
    t.clamp(1, max)
}

/// Resolves a requested flat-phase shard count: `0` means "follow the
/// thread count" (the default), anything else is clamped exactly like a
/// thread count (power of two, `log2 s < n`) so shards stay usable as DMAV
/// assignment groups and conversion groups.
pub fn clamp_shards(requested: usize, threads: usize, n: usize) -> usize {
    if requested == 0 {
        clamp_threads(threads, n)
    } else {
        clamp_threads(requested, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn reexported_pool_runs_every_tid_once() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.run(|tid| {
            hits.fetch_add(1, Ordering::Relaxed);
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn workers_partition_disjoint_slices() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 64];
        let view = qarray::SyncUnsafeSlice::new(&mut data);
        pool.run(|tid| {
            // SAFETY: 16-element ranges are disjoint per tid.
            let chunk = unsafe { view.slice_mut(tid * 16, 16) };
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = tid * 16 + i;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn clamp_threads_powers_of_two() {
        assert_eq!(clamp_threads(1, 10), 1);
        assert_eq!(clamp_threads(2, 10), 2);
        assert_eq!(clamp_threads(3, 10), 2);
        assert_eq!(clamp_threads(4, 10), 4);
        assert_eq!(clamp_threads(7, 10), 4);
        assert_eq!(clamp_threads(16, 10), 16);
        // n=3 allows at most 2^2 = 4 threads.
        assert_eq!(clamp_threads(16, 3), 4);
        assert_eq!(clamp_threads(0, 5), 1);
    }

    #[test]
    fn clamp_shards_auto_follows_threads() {
        assert_eq!(clamp_shards(0, 4, 10), 4);
        assert_eq!(clamp_shards(0, 3, 10), 2);
        assert_eq!(clamp_shards(8, 2, 10), 8);
        assert_eq!(clamp_shards(5, 2, 10), 4);
        assert_eq!(clamp_shards(64, 4, 3), 4);
        assert_eq!(clamp_shards(1, 16, 10), 1);
    }
}
