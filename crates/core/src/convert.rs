//! Parallel DD-to-array conversion (Section 3.1.2, Figure 4).
//!
//! The state-vector DD is converted to a flat array by splitting the thread
//! group at each DD node, with the paper's two optimizations:
//!
//! * **Load balancing** (Fig. 4a): at a node with a zero outgoing edge, the
//!   thread group does *not* split — all threads follow the non-zero edge,
//!   so no thread idles on an empty subtree.
//! * **Scalar multiplication** (Fig. 4b): at a node whose two edges point to
//!   the *same* child, only the left half is converted (by the whole
//!   group); the right half is then produced by a SIMD-friendly scalar
//!   multiplication of the left half.
//!
//! Planning is a cheap O(t + #scalar-tasks) descent; the exponential work
//! (filling 2^n amplitudes) is done by the pool workers on disjoint ranges.

use crate::pool::ThreadPool;
use qarray::{vecops, SyncUnsafeSlice};
use qcircuit::Complex64;
use qdd::{DdPackage, VEdge};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A leaf work item: fill the sub-vector of `edge` starting at `index`.
#[derive(Clone, Copy, Debug)]
struct FillTask {
    edge: VEdge,
    index: usize,
    /// Product of edge weights *above* `edge` (exclusive).
    weight: Complex64,
}

/// A deferred scalar multiplication: `out[dst..dst+len] = factor * out[src..src+len]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalarTask {
    /// Source start index.
    pub src: usize,
    /// Destination start index.
    pub dst: usize,
    /// Segment length.
    pub len: usize,
    /// Multiplier (ratio of the two edge weights).
    pub factor: Complex64,
}

/// The plan produced by the descent: per-group fill lists plus ordered
/// scalar-multiplication tasks. A "group" is the dispatch unit — one state
/// shard in the sharded flat phase, one pool thread in the legacy layout
/// (`groups == pool.size()`).
pub struct ConversionPlan {
    fill: Vec<Vec<FillTask>>,
    scalar: Vec<ScalarTask>,
}

impl ConversionPlan {
    /// Builds a plan for converting `root` (over `n` qubits) into `threads`
    /// dispatch groups (shards).
    pub fn build(pkg: &DdPackage, root: VEdge, n: usize, threads: usize) -> Self {
        let t = threads.max(1);
        let mut plan = ConversionPlan {
            fill: vec![Vec::new(); t],
            scalar: Vec::new(),
        };
        plan.descend(pkg, root, 0, Complex64::ONE, 0, t);
        let _ = n;
        plan
    }

    /// Number of scalar-multiplication tasks discovered.
    pub fn scalar_tasks(&self) -> &[ScalarTask] {
        &self.scalar
    }

    /// Number of fill tasks assigned to each group.
    pub fn fill_counts(&self) -> Vec<usize> {
        self.fill.iter().map(|v| v.len()).collect()
    }

    /// Output-range coverage per group (amplitude slots each group's fill
    /// tasks span) — the load-balance metric of the Figure 4a optimization.
    pub fn coverage(&self, pkg: &DdPackage) -> Vec<usize> {
        self.fill
            .iter()
            .map(|tasks| {
                tasks
                    .iter()
                    .map(|t| {
                        if t.edge.is_terminal() {
                            1
                        } else {
                            1usize << (pkg.v_node(t.edge.n).level + 1)
                        }
                    })
                    .sum()
            })
            .collect()
    }

    fn descend(
        &mut self,
        pkg: &DdPackage,
        edge: VEdge,
        index: usize,
        weight: Complex64,
        lo: usize,
        hi: usize,
    ) {
        if edge.is_zero() {
            return;
        }
        if hi - lo == 1 || edge.is_terminal() {
            self.fill[lo].push(FillTask {
                edge,
                index,
                weight,
            });
            return;
        }
        let w = weight * pkg.cval(edge.w);
        let node = *pkg.v_node(edge.n);
        let half = 1usize << node.level;
        let (e0, e1) = (node.e[0], node.e[1]);
        if e0.is_zero() {
            // Load balancing: everyone takes the non-zero edge.
            self.descend(pkg, e1, index + half, w, lo, hi);
        } else if e1.is_zero() {
            self.descend(pkg, e0, index, w, lo, hi);
        } else if e0.n == e1.n && !e0.is_terminal() {
            // Scalar-multiplication optimization: identical children mean
            // the right half is a scalar multiple of the left half.
            let factor = pkg.cval(e1.w) / pkg.cval(e0.w);
            self.scalar.push(ScalarTask {
                src: index,
                dst: index + half,
                len: half,
                factor,
            });
            self.descend(pkg, e0, index, w, lo, hi);
        } else {
            let mid = lo + (hi - lo) / 2;
            self.descend(pkg, e0, index, w, lo, mid);
            self.descend(pkg, e1, index + half, w, mid, hi);
        }
    }
}

/// Sequential depth-first fill of one task's range (relative indexing into
/// the task's private sub-slice keeps bounds checks cheap).
fn fill_task(pkg: &DdPackage, task: &FillTask, view: &SyncUnsafeSlice<'_, Complex64>) {
    fill_rec(pkg, task.edge, task.index, task.weight, view);
}

fn fill_rec(
    pkg: &DdPackage,
    edge: VEdge,
    index: usize,
    weight: Complex64,
    view: &SyncUnsafeSlice<'_, Complex64>,
) {
    if edge.is_zero() {
        return;
    }
    let w = weight * pkg.cval(edge.w);
    if edge.is_terminal() {
        // SAFETY: index ranges of distinct fill tasks are disjoint by plan
        // construction; only this thread writes this element.
        unsafe { view.write(index, w) };
        return;
    }
    let node = pkg.v_node(edge.n);
    let half = 1usize << node.level;
    fill_rec(pkg, node.e[0], index, w, view);
    fill_rec(pkg, node.e[1], index + half, w, view);
}

/// Telemetry breakdown of one parallel conversion — the Figure 4a
/// load-balance data surfaced per dispatch group (shard).
#[derive(Clone, Debug, Default)]
pub struct ConversionBreakdown {
    /// Fill tasks assigned to each group (index = shard id).
    pub fill_tasks: Vec<usize>,
    /// Amplitude slots each group's fill tasks span — the load-balance
    /// metric (max/min across groups ≈ 1 means balanced).
    pub amp_spans: Vec<usize>,
    /// Wall-clock nanoseconds each group's fill took. Empty when telemetry
    /// is disabled — the per-group clocks are only read when a sink is
    /// listening.
    pub worker_nanos: Vec<u64>,
    /// Deferred scalar-multiplication tasks (the Figure 4b optimization).
    pub scalar_tasks: usize,
}

/// Converts a vector DD into a flat array using the pool — the FlatDD
/// parallel conversion of Figure 4. The output buffer is first-touch
/// zeroed by the pool workers, shard-per-thread.
pub fn dd_to_array_parallel(
    pkg: &DdPackage,
    root: VEdge,
    n: usize,
    pool: &ThreadPool,
) -> Vec<Complex64> {
    let t = pool.size();
    let mut out = Vec::new();
    qarray::first_touch_zeroed(&mut out, 1usize << n, t, |z| {
        if t > 1 {
            pool.run(|tid| {
                for s in (tid..z.shards()).step_by(t) {
                    z.zero_shard(s);
                }
            });
        }
    })
    .unwrap_or_else(|_| panic!("cannot allocate 2^{n} amplitudes"));
    let _ = dd_to_array_parallel_into(pkg, root, n, pool, &mut out);
    out
}

/// Same as [`dd_to_array_parallel`] but writing into a caller buffer
/// (which must be zeroed). Returns the per-group breakdown for telemetry.
/// Probes the process-global fault registry.
pub fn dd_to_array_parallel_into(
    pkg: &DdPackage,
    root: VEdge,
    n: usize,
    pool: &ThreadPool,
    out: &mut [Complex64],
) -> ConversionBreakdown {
    dd_to_array_parallel_into_probed(pkg, root, n, pool, pool.size(), out, &crate::faults::fires)
}

/// [`dd_to_array_parallel_into`] with the worker-panic fault site routed
/// through a per-run context instead of the global registry, so chaos
/// tests can panic one job's conversion without touching its neighbors.
pub fn dd_to_array_parallel_into_with(
    pkg: &DdPackage,
    root: VEdge,
    n: usize,
    pool: &ThreadPool,
    out: &mut [Complex64],
    ctx: &crate::RunContext,
) -> ConversionBreakdown {
    dd_to_array_parallel_sharded_into_with(pkg, root, n, pool, pool.size(), out, ctx)
}

/// Sharded conversion: the plan is built with `shards` dispatch groups
/// (instead of one per pool thread) and workers pick groups round-robin
/// (`tid, tid + T, ...`), so group `s` of the fill aligns with shard `s` of
/// the output state. `shards == pool.size()` reproduces the legacy
/// per-thread dispatch exactly; `shards == 1` is a serial conversion.
pub fn dd_to_array_parallel_sharded_into_with(
    pkg: &DdPackage,
    root: VEdge,
    n: usize,
    pool: &ThreadPool,
    shards: usize,
    out: &mut [Complex64],
    ctx: &crate::RunContext,
) -> ConversionBreakdown {
    dd_to_array_parallel_into_probed(pkg, root, n, pool, shards, out, &|site| ctx.fires(site))
}

fn dd_to_array_parallel_into_probed(
    pkg: &DdPackage,
    root: VEdge,
    n: usize,
    pool: &ThreadPool,
    shards: usize,
    out: &mut [Complex64],
    probe: &(dyn Fn(&str) -> Option<crate::faults::FaultAction> + Sync),
) -> ConversionBreakdown {
    assert_eq!(out.len(), 1usize << n);
    let t = pool.size();
    let shards = shards.max(1);
    let plan = ConversionPlan::build(pkg, root, n, shards);
    let view = SyncUnsafeSlice::new(out);
    // Phase 1: parallel fill of disjoint ranges, one group per shard,
    // workers picking groups round-robin. Per-group wall clocks are only
    // taken when a telemetry sink is installed.
    let timed = qtelemetry::enabled();
    let clocks: Vec<AtomicU64> = if timed {
        (0..shards).map(|_| AtomicU64::new(0)).collect()
    } else {
        Vec::new()
    };
    pool.run(|tid| {
        if tid == 0 && probe(crate::faults::SITE_CONVERT_WORKER).is_some() {
            panic!("fault injection: conversion worker panic");
        }
        for g in (tid..shards).step_by(t) {
            let t0 = timed.then(Instant::now);
            for task in &plan.fill[g] {
                fill_task(pkg, task, &view);
            }
            if let Some(t0) = t0 {
                clocks[g].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    });
    // Phase 2: scalar multiplications, deepest first (a shallower task's
    // source region contains the deeper tasks' destinations). Each task is
    // internally parallelized across the pool.
    for st in plan.scalar.iter().rev() {
        let chunk = st.len.div_ceil(t);
        pool.run(|tid| {
            let start = tid * chunk;
            if start >= st.len {
                return;
            }
            let len = chunk.min(st.len - start);
            // SAFETY: src and dst ranges of one task are disjoint (sibling
            // halves), and per-thread chunks partition them.
            let (src, dst) = unsafe {
                (
                    view.slice(st.src + start, len),
                    view.slice_mut(st.dst + start, len),
                )
            };
            vecops::scale(dst, st.factor, src);
        });
    }
    ConversionBreakdown {
        fill_tasks: plan.fill_counts(),
        amp_spans: if timed {
            plan.coverage(pkg)
        } else {
            Vec::new()
        },
        worker_nanos: clocks.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        scalar_tasks: plan.scalar.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::complex::state_distance;
    use qcircuit::{dense, generators};
    use qdd::DdSimulator;

    const TOL: f64 = 1e-9;

    fn convert_both_ways(
        circuit: &qcircuit::Circuit,
        threads: usize,
    ) -> (Vec<Complex64>, Vec<Complex64>) {
        let mut sim = DdSimulator::new(circuit.num_qubits());
        sim.run(circuit);
        let sequential = sim.amplitudes();
        let pool = ThreadPool::new(threads);
        let parallel =
            dd_to_array_parallel(sim.package(), sim.state(), circuit.num_qubits(), &pool);
        (sequential, parallel)
    }

    #[test]
    fn parallel_equals_sequential_on_generators() {
        for c in [
            generators::ghz(9),
            generators::w_state(7),
            generators::qft(6),
            generators::dnn(6, 2, 11),
            generators::supremacy(2, 3, 6, 11),
            generators::random_circuit(7, 80, 11),
        ] {
            for t in [1usize, 2, 4, 8] {
                let (seq, par) = convert_both_ways(&c, t);
                assert!(state_distance(&seq, &par) < TOL, "{} at t={t}", c.name());
            }
        }
    }

    #[test]
    fn matches_dense_ground_truth() {
        let c = generators::random_circuit(6, 60, 23);
        let (_, par) = convert_both_ways(&c, 4);
        let want = dense::simulate(&c);
        assert!(state_distance(&par, &want) < TOL);
    }

    #[test]
    fn sparse_state_with_zero_edges_load_balances() {
        // A basis state: every node has one zero edge, so all threads chase
        // a single path — exactly the Fig. 4a scenario.
        let pkg = DdPackage::default();
        let e = pkg.basis_state(10, 0b1100110011);
        let pool = ThreadPool::new(4);
        let plan = ConversionPlan::build(&pkg, e, 10, 4);
        let nonempty = plan.fill_counts().iter().filter(|&&c| c > 0).count();
        assert_eq!(nonempty, 1, "single path must collapse to one task");
        let out = dd_to_array_parallel(&pkg, e, 10, &pool);
        assert!(state_distance(&out, &dense::basis_state(10, 0b1100110011)) < TOL);
    }

    #[test]
    fn scalar_optimization_detected_for_product_states() {
        // |+>^n: every node has identical children — Fig. 4b territory.
        let n = 6;
        let c = {
            let mut c = qcircuit::Circuit::new(n);
            for q in 0..n {
                c.h(q);
            }
            c
        };
        let mut sim = DdSimulator::new(n);
        sim.run(&c);
        let plan = ConversionPlan::build(sim.package(), sim.state(), n, 4);
        assert!(
            !plan.scalar_tasks().is_empty(),
            "uniform superposition must trigger the scalar-multiplication path"
        );
        let pool = ThreadPool::new(4);
        let out = dd_to_array_parallel(sim.package(), sim.state(), n, &pool);
        assert!(state_distance(&out, &dense::simulate(&c)) < TOL);
    }

    #[test]
    fn nested_scalar_tasks_apply_in_the_right_order() {
        // ghz-like plus global H wall gives nested identical-children nodes.
        let n = 5;
        let mut c = qcircuit::Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        c.t(0).s(2);
        let mut sim = DdSimulator::new(n);
        sim.run(&c);
        let pool = ThreadPool::new(2);
        let out = dd_to_array_parallel(sim.package(), sim.state(), n, &pool);
        assert!(state_distance(&out, &dense::simulate(&c)) < TOL);
    }

    #[test]
    fn zero_root_yields_zero_vector() {
        let pkg = DdPackage::default();
        let pool = ThreadPool::new(2);
        let out = dd_to_array_parallel(&pkg, VEdge::ZERO, 4, &pool);
        assert!(out.iter().all(|a| a.is_zero()));
    }

    #[test]
    fn sharded_conversion_matches_per_thread_dispatch() {
        let c = generators::random_circuit(7, 80, 11);
        let mut sim = DdSimulator::new(7);
        sim.run(&c);
        let want = dense::simulate(&c);
        let ctx = crate::RunContext::default();
        for (threads, shards) in [(2, 8), (4, 1), (2, 2), (4, 16), (1, 4)] {
            let pool = ThreadPool::new(threads);
            let mut out = vec![Complex64::ZERO; 1 << 7];
            let bd = dd_to_array_parallel_sharded_into_with(
                sim.package(),
                sim.state(),
                7,
                &pool,
                shards,
                &mut out,
                &ctx,
            );
            assert_eq!(bd.fill_tasks.len(), shards, "t={threads} s={shards}");
            assert!(state_distance(&out, &want) < TOL, "t={threads} s={shards}");
        }
    }

    #[test]
    fn thread_counts_beyond_paths_are_safe() {
        let pkg = DdPackage::default();
        let e = pkg.basis_state(3, 5);
        let pool = ThreadPool::new(8); // more threads than amplitudes
        let out = dd_to_array_parallel(&pkg, e, 3, &pool);
        assert!(state_distance(&out, &dense::basis_state(3, 5)) < TOL);
    }
}
