//! DMAV without caching (Section 3.2.1, Algorithm 1, Figure 5).
//!
//! Multiplies a **DD-based gate matrix** by an **array-based state vector**:
//! `Assign` recursively splits the matrix into `h x h` sub-matrices down to
//! the *border level* `n - log2(t) - 1`, pairing each with sub-vector start
//! indices and accumulated weight products per thread; `Run` then evaluates
//! every task with a recursive descent whose terminal case is a single MAC
//! `W[I_W] += f_r * M_r.w * V[I_V]`.
//!
//! Each thread owns rows `[tid*h, (tid+1)*h)` of the output (row-space
//! evaluation), so the parallel writes are disjoint by construction.

use crate::error::FlatDdError;
use crate::pool::ThreadPool;
use qarray::{vecops, SyncUnsafeSlice};
use qcircuit::Complex64;
use qdd::{DdPackage, MEdge};

/// The per-thread multiplication tasks produced by `Assign`
/// (the paper's `v_M`, `v_V`, `v_f`).
pub struct DmavAssignment {
    /// Thread count (power of two).
    pub t: usize,
    /// Sub-vector size `h = 2^n / t`.
    pub h: usize,
    /// Qubit count.
    pub n: usize,
    /// Sub-matrix DD edges per thread (`v_M`).
    pub m_edges: Vec<Vec<MEdge>>,
    /// Sub-vector start indices in `V` per thread (`v_V`).
    pub iv: Vec<Vec<usize>>,
    /// Weight products along the descent, excluding the stored edge's own
    /// weight (`v_f`).
    pub f: Vec<Vec<Complex64>>,
}

impl DmavAssignment {
    /// Runs `Assign` (Algorithm 1, lines 8-14) for matrix `m` over `n`
    /// qubits on `t` threads. Panicking wrapper over [`Self::try_build`]
    /// for callers that have already validated `t` (tests, benches).
    pub fn build(pkg: &DdPackage, m: MEdge, n: usize, t: usize) -> Self {
        Self::try_build(pkg, m, n, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible `Assign`: `t` must be a power of two with `log2(t) <= n`,
    /// otherwise [`FlatDdError::InvalidInput`] is returned.
    pub fn try_build(pkg: &DdPackage, m: MEdge, n: usize, t: usize) -> Result<Self, FlatDdError> {
        if !t.is_power_of_two() {
            return Err(FlatDdError::InvalidInput(format!(
                "thread count must be a power of two, got {t}"
            )));
        }
        let log_t = t.trailing_zeros() as usize;
        if log_t > n {
            return Err(FlatDdError::InvalidInput(format!(
                "need log2(t) <= n for the border-level scheme, got t={t} n={n}"
            )));
        }
        let mut asg = DmavAssignment {
            t,
            h: (1usize << n) / t,
            n,
            m_edges: vec![Vec::new(); t],
            iv: vec![Vec::new(); t],
            f: vec![Vec::new(); t],
        };
        let border = n as i64 - log_t as i64 - 1;
        asg.assign(pkg, m, Complex64::ONE, 0, 0, n as i64 - 1, border);
        Ok(asg)
    }

    /// Total number of tasks across threads.
    pub fn total_tasks(&self) -> usize {
        self.m_edges.iter().map(|v| v.len()).sum()
    }

    /// Heap bytes held by the task lists (for plan-cache accounting).
    pub fn memory_bytes(&self) -> usize {
        let per_task = std::mem::size_of::<MEdge>()
            + std::mem::size_of::<usize>()
            + std::mem::size_of::<Complex64>();
        self.m_edges
            .iter()
            .map(|v| v.capacity() * per_task)
            .sum::<usize>()
            + 3 * self.t * std::mem::size_of::<Vec<()>>()
    }

    // The argument list mirrors Assign/AssignCache in the paper verbatim.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &mut self,
        pkg: &DdPackage,
        m_r: MEdge,
        f_r: Complex64,
        u: usize,
        i_v: usize,
        l: i64,
        border: i64,
    ) {
        if m_r.is_zero() {
            return;
        }
        if l == border {
            self.m_edges[u].push(m_r);
            self.iv[u].push(i_v);
            self.f[u].push(f_r);
            return;
        }
        let node = pkg.m_node(m_r.n);
        debug_assert_eq!(node.level as i64, l);
        let e = node.e;
        let w = f_r * pkg.cval(m_r.w);
        let stride = self.t >> (self.n as i64 - l) as usize; // t / 2^(n-l)
        for i in 0..2usize {
            for j in 0..2usize {
                self.assign(
                    pkg,
                    e[2 * i + j],
                    w,
                    u + i * stride,
                    i_v + (j << l),
                    l - 1,
                    border,
                );
            }
        }
    }
}

/// `Run` (Algorithm 1, lines 16-22): evaluates one task into the thread's
/// output chunk. `i_w` is relative to the chunk; `i_v` absolute into `V`.
///
/// Three structural fast paths keep the *average* per-MAC cost constant
/// (the indexing-efficiency claim of Section 3.2.1):
/// * edge weights of 1 (the common case after normalization) skip the
///   complex multiply,
/// * scalar-identity blocks — which dominate single-qubit gate DDs —
///   become a single SIMD-friendly axpy over the whole block,
/// * level-0 nodes are unrolled instead of recursed into.
pub(crate) fn run_task(
    pkg: &DdPackage,
    m_r: MEdge,
    v: &[Complex64],
    w: &mut [Complex64],
    i_v: usize,
    i_w: usize,
    f_r: Complex64,
) {
    if m_r.is_zero() {
        return;
    }
    if m_r.is_terminal() {
        w[i_w] = w[i_w].mac(f_r * pkg.cval(m_r.w), v[i_v]);
        return;
    }
    let f = if m_r.w.is_one() {
        f_r
    } else {
        f_r * pkg.cval(m_r.w)
    };
    let node = pkg.m_node(m_r.n);
    let l = node.level as usize;
    if pkg.identity_node_id(node.level) == Some(m_r.n) {
        // f * identity block: W[i_w..] += f * V[i_v..].
        let len = 1usize << (l + 1);
        vecops::axpy(&mut w[i_w..i_w + len], f, &v[i_v..i_v + len]);
        return;
    }
    if l == 0 {
        // Children are terminal: one dense 2x2 MAC (zero edges contribute
        // exact-zero coefficients, which the kernel multiplies out).
        let mut m = [Complex64::ZERO; 4];
        for (k, c) in m.iter_mut().enumerate() {
            let e = node.e[k];
            if !e.is_zero() {
                *c = f * pkg.cval(e.w);
            }
        }
        vecops::mac2x2(&mut w[i_w..i_w + 2], &m, v[i_v], v[i_v + 1]);
        return;
    }
    for i in 0..2usize {
        for j in 0..2usize {
            run_task(
                pkg,
                node.e[2 * i + j],
                v,
                w,
                i_v + (j << l),
                i_w + (i << l),
                f,
            );
        }
    }
}

/// DMAV without caching: `W = M * V` with `M` a matrix DD and `V`, `W` flat
/// arrays. `w` is fully overwritten.
///
/// The assignment's `asg.t` groups are the dispatch shards: each group owns
/// output rows `[g*h, (g+1)*h)` and pool workers pick groups round-robin
/// (`tid, tid + T, ...`), so a worker keeps writing the shards it
/// first-touched. `asg.t == pool.size()` reproduces the legacy one-group-
/// per-thread partition exactly.
pub fn dmav_no_cache(
    pkg: &DdPackage,
    asg: &DmavAssignment,
    v: &[Complex64],
    w: &mut [Complex64],
    pool: &ThreadPool,
) {
    assert_eq!(v.len(), 1usize << asg.n);
    assert_eq!(w.len(), v.len());
    let view = SyncUnsafeSlice::new(w);
    let h = asg.h;
    let t = pool.size();
    pool.run(|tid| {
        for g in (tid..asg.t).step_by(t) {
            // SAFETY: group `g` exclusively owns output rows
            // [g*h, (g+1)*h) — the row-space partition of Algorithm 1 —
            // and each group is claimed by exactly one worker.
            let chunk = unsafe { view.slice_mut(g * h, h) };
            // Each worker zeroes its own rows: first-touch locality, and
            // the dispatcher no longer walks all 2^n amplitudes serially.
            chunk.fill(Complex64::ZERO);
            for j in 0..asg.m_edges[g].len() {
                run_task(
                    pkg,
                    asg.m_edges[g][j],
                    v,
                    chunk,
                    asg.iv[g][j],
                    0,
                    asg.f[g][j],
                );
            }
        }
    });
}

/// Convenience: assignment + execution in one call.
pub fn dmav(pkg: &DdPackage, m: MEdge, v: &[Complex64], w: &mut [Complex64], pool: &ThreadPool) {
    let n = v.len().trailing_zeros() as usize;
    let asg = DmavAssignment::build(pkg, m, n, pool.size());
    dmav_no_cache(pkg, &asg, v, w, pool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::complex::state_distance;
    use qcircuit::gate::{Control, Gate, GateKind};
    use qcircuit::{dense, generators};

    const TOL: f64 = 1e-9;

    fn rand_state(n: usize, seed: u64) -> Vec<Complex64> {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as f64 / u64::MAX as f64) - 0.5
        };
        (0..(1usize << n))
            .map(|_| Complex64::new(next(), next()))
            .collect()
    }

    fn check_gate(g: &Gate, n: usize, t: usize) {
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(g, n);
        let v = rand_state(n, 7);
        let mut w = vec![Complex64::ZERO; 1 << n];
        let pool = ThreadPool::new(t);
        dmav(&pkg, m, &v, &mut w, &pool);
        let mut want = v.clone();
        dense::apply_gate(&mut want, g);
        assert!(state_distance(&w, &want) < TOL, "gate {g} n={n} t={t}");
    }

    #[test]
    fn single_thread_matches_dense() {
        for g in [
            Gate::new(GateKind::H, 0),
            Gate::new(GateKind::H, 4),
            Gate::new(GateKind::T, 2),
            Gate::controlled(GateKind::X, 1, vec![Control::pos(3)]),
            Gate::controlled(GateKind::Z, 4, vec![Control::pos(0)]),
        ] {
            check_gate(&g, 5, 1);
        }
    }

    #[test]
    fn multi_thread_matches_dense() {
        for t in [2usize, 4, 8] {
            for g in [
                Gate::new(GateKind::H, 0),
                Gate::new(GateKind::H, 5),
                Gate::new(GateKind::RY(0.9), 3),
                Gate::controlled(GateKind::X, 2, vec![Control::pos(5)]),
                Gate::controlled(GateKind::H, 5, vec![Control::neg(1)]),
                Gate::controlled(GateKind::X, 0, vec![Control::pos(2), Control::pos(4)]),
            ] {
                check_gate(&g, 6, t);
            }
        }
    }

    #[test]
    fn figure_5_shape_two_threads_three_qubits() {
        // n=3, t=2: border level q1. H on the top qubit gives each thread
        // two tasks (a*m2*V[0:4] / b*m2*V[4:8] for the blue thread).
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 2), 3);
        let asg = DmavAssignment::build(&pkg, m, 3, 2);
        assert_eq!(asg.h, 4);
        assert_eq!(asg.m_edges[0].len(), 2);
        assert_eq!(asg.m_edges[1].len(), 2);
        assert_eq!(asg.iv[0], vec![0, 4]);
        assert_eq!(asg.iv[1], vec![0, 4]);
        // Both of thread 0's tasks reference the same sub-matrix node (m2).
        assert_eq!(asg.m_edges[0][0].n, asg.m_edges[0][1].n);
    }

    #[test]
    fn zero_blocks_produce_no_tasks() {
        // A controlled gate's matrix has zero off-diagonal blocks at the
        // control level, so threads covering those rows get fewer tasks.
        let pkg = DdPackage::default();
        let g = Gate::controlled(GateKind::X, 0, vec![Control::pos(3)]);
        let m = pkg.gate_dd(&g, 4);
        let asg = DmavAssignment::build(&pkg, m, 4, 2);
        // Block structure: diag(I, X_block) — each thread exactly one task.
        assert_eq!(asg.m_edges[0].len(), 1);
        assert_eq!(asg.m_edges[1].len(), 1);
        assert_eq!(asg.iv[0], vec![0]);
        assert_eq!(asg.iv[1], vec![8]);
    }

    #[test]
    fn fused_matrices_multiply_correctly() {
        // DMAV must work for arbitrary (non-gate) DDs, e.g. fused products.
        let n = 5;
        let c = generators::random_circuit(n, 10, 3);
        let pkg = DdPackage::default();
        let mut fused = pkg.identity_dd(n);
        for g in c.iter() {
            let gd = pkg.gate_dd(g, n);
            fused = pkg.mul_mm(gd, fused);
        }
        let v = rand_state(n, 5);
        let mut w = vec![Complex64::ZERO; 1 << n];
        let pool = ThreadPool::new(4);
        dmav(&pkg, fused, &v, &mut w, &pool);
        let mut want = v.clone();
        for g in c.iter() {
            dense::apply_gate(&mut want, g);
        }
        assert!(state_distance(&w, &want) < TOL);
    }

    #[test]
    fn whole_circuit_via_dmav_matches_dense() {
        let n = 6;
        let c = generators::supremacy(2, 3, 5, 9);
        let pkg = DdPackage::default();
        let pool = ThreadPool::new(4);
        let mut v = dense::zero_state(n);
        let mut w = vec![Complex64::ZERO; 1 << n];
        for g in c.iter() {
            let m = pkg.gate_dd(g, n);
            dmav(&pkg, m, &v, &mut w, &pool);
            std::mem::swap(&mut v, &mut w);
        }
        assert!(state_distance(&v, &dense::simulate(&c)) < TOL);
    }

    #[test]
    fn shard_count_decoupled_from_pool_size() {
        // The assignment's group count (shards) no longer has to match the
        // pool: workers claim groups round-robin.
        let n = 6;
        let pkg = DdPackage::default();
        let g = Gate::controlled(GateKind::H, 5, vec![Control::neg(1)]);
        let m = pkg.gate_dd(&g, n);
        let v = rand_state(n, 11);
        let mut want = v.clone();
        dense::apply_gate(&mut want, &g);
        for (threads, shards) in [(2usize, 8usize), (4, 2), (1, 4), (3, 8), (4, 16)] {
            let asg = DmavAssignment::build(&pkg, m, n, shards);
            let mut w = vec![Complex64::ZERO; 1 << n];
            let pool = ThreadPool::new(threads);
            dmav_no_cache(&pkg, &asg, &v, &mut w, &pool);
            assert!(state_distance(&w, &want) < TOL, "t={threads} s={shards}");
        }
    }

    #[test]
    fn t_equals_dimension_over_two_is_supported() {
        // log2(t) == n - 1: border level 0, tasks are level-0 edges.
        check_gate(&Gate::new(GateKind::H, 1), 3, 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_threads_panics() {
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 0), 3);
        DmavAssignment::build(&pkg, m, 3, 3);
    }

    #[test]
    fn try_build_reports_invalid_input() {
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 0), 3);
        for t in [3usize, 16] {
            match DmavAssignment::try_build(&pkg, m, 3, t) {
                Err(FlatDdError::InvalidInput(msg)) => {
                    assert!(
                        msg.contains("power of two") || msg.contains("log2"),
                        "{msg}"
                    );
                }
                Err(e) => panic!("wrong error class for t={t}: {e}"),
                Ok(_) => panic!("expected InvalidInput for t={t}"),
            }
        }
        assert!(DmavAssignment::try_build(&pkg, m, 3, 4).is_ok());
    }
}
