//! Per-run execution context.
//!
//! PR 1–5 built the robustness primitives — governor budgets, FDCP1
//! checkpoints, fault injection, telemetry — on process-global state: one
//! signal flag, one `OnceLock` metrics registry, one `FLATDD_FAULTS` rule
//! set. That is correct for a batch CLI and fatally wrong for a daemon
//! running N jobs at once, where cancelling one job must not interrupt its
//! neighbors and one job's stats must not bleed into another's.
//!
//! [`RunContext`] is the bundle the simulator now carries instead:
//!
//! * a **cancellation flag** with the same signal-number semantics as
//!   [`crate::signal`] (the scheduler cancels a job by raising SIGTERM on
//!   its context; the CLI's default context additionally follows the real
//!   process flag),
//! * a **metrics registry** handle ([`qtelemetry::MetricsRegistry`]),
//! * a **fault registry** handle ([`crate::faults::FaultRegistry`]).
//!
//! Contexts are cheap to clone — clones share state, so the scheduler keeps
//! one clone as a remote control while the worker thread drives the
//! simulator with another. [`RunContext::process`] reproduces the old
//! single-tenant behavior exactly and is the default everywhere, so the
//! CLI, examples, and existing tests are unchanged.

use crate::faults::FaultRegistry;
use crate::signal;
use qtelemetry::MetricsRegistry;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

/// Shared, clonable execution context for one simulation run (one job).
#[derive(Clone)]
pub struct RunContext {
    /// Pending per-job cancellation signal; 0 = none. Same numbering as
    /// [`crate::signal`] so `Interrupted { signal }` reporting is uniform.
    cancel: Arc<AtomicI32>,
    /// When true (the CLI default), [`RunContext::poll_cancel`] also drains
    /// the process-global signal flag, preserving PR 5's Ctrl-C behavior.
    follow_process_signals: bool,
    metrics: MetricsRegistry,
    faults: Arc<FaultRegistry>,
}

impl std::fmt::Debug for RunContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunContext")
            .field("cancel", &self.cancel.load(Ordering::Relaxed))
            .field("follow_process_signals", &self.follow_process_signals)
            .finish_non_exhaustive()
    }
}

impl RunContext {
    /// The single-tenant default: global metrics registry, global fault
    /// registry, and cancellation follows the process signal flag. This is
    /// what `FlatDdSimulator::try_new` uses, so the CLI and every
    /// pre-existing caller keep their exact previous behavior.
    pub fn process() -> Self {
        RunContext {
            cancel: Arc::new(AtomicI32::new(0)),
            follow_process_signals: true,
            metrics: qtelemetry::metrics::global().clone(),
            faults: Arc::new(FaultRegistry::disarmed()),
        }
    }

    /// A fully isolated context: fresh metrics registry, disarmed fault
    /// registry, and cancellation only through [`RunContext::cancel`] —
    /// process signals are ignored. This is what the serve scheduler hands
    /// each job.
    pub fn isolated() -> Self {
        RunContext {
            cancel: Arc::new(AtomicI32::new(0)),
            follow_process_signals: false,
            metrics: MetricsRegistry::new(),
            faults: Arc::new(FaultRegistry::disarmed()),
        }
    }

    /// Replaces the metrics registry handle.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Arms this context's scoped fault registry from a `FLATDD_FAULTS`-
    /// grammar spec (replacing the current rule set).
    pub fn with_faults_spec(self, spec: &str) -> Result<Self, String> {
        self.faults.set_spec(spec)?;
        Ok(self)
    }

    /// This run's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// This run's fault registry. For a [`RunContext::process`] context the
    /// scoped registry is empty, and fault probes fall through to the
    /// process-global `FLATDD_FAULTS` registry (see [`RunContext::fires`]).
    pub fn faults(&self) -> &FaultRegistry {
        &self.faults
    }

    /// Probes a fault site: the scoped registry first, then — only for
    /// process contexts — the global `FLATDD_FAULTS` registry. Isolated
    /// contexts never observe globally armed faults.
    #[inline]
    pub fn fires(&self, site: &str) -> Option<crate::faults::FaultAction> {
        if let Some(a) = self.faults.fires(site) {
            return Some(a);
        }
        if self.follow_process_signals {
            return crate::faults::fires(site);
        }
        None
    }

    /// Requests cancellation of this run, as if signal `sig` (use
    /// [`signal::SIGTERM`] for a generic stop) had been delivered to it.
    /// The simulator honors it at its next gate / fused-matrix boundary.
    pub fn cancel(&self, sig: i32) {
        self.cancel.store(sig, Ordering::Relaxed);
    }

    /// True if cancellation is currently requested (without consuming it).
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed) != 0
            || (self.follow_process_signals && signal::pending().is_some())
    }

    /// Takes (and clears) the pending cancellation, per-job flag first,
    /// then — for process contexts — the process signal flag. The simulator
    /// calls this when it converts the flag into
    /// [`crate::FlatDdError::Interrupted`], so one cancellation interrupts
    /// one run instead of poisoning every run after it.
    pub fn take_cancel(&self) -> Option<i32> {
        match self.cancel.swap(0, Ordering::Relaxed) {
            0 => {
                if self.follow_process_signals {
                    signal::take()
                } else {
                    None
                }
            }
            s => Some(s),
        }
    }

    /// True if `other` is a handle to this same context's cancel flag.
    pub fn same_run_as(&self, other: &RunContext) -> bool {
        Arc::ptr_eq(&self.cancel, &other.cancel)
    }
}

impl Default for RunContext {
    fn default() -> Self {
        RunContext::process()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_cancel_is_per_context() {
        let a = RunContext::isolated();
        let b = RunContext::isolated();
        a.cancel(signal::SIGTERM);
        assert!(a.cancel_requested());
        assert!(!b.cancel_requested(), "cancel must not leak across jobs");
        assert_eq!(a.take_cancel(), Some(signal::SIGTERM));
        assert_eq!(a.take_cancel(), None, "take consumes the flag");
        assert_eq!(b.take_cancel(), None);
    }

    #[test]
    fn clones_share_the_flag() {
        let a = RunContext::isolated();
        let remote = a.clone();
        remote.cancel(signal::SIGINT);
        assert_eq!(a.take_cancel(), Some(signal::SIGINT));
        assert!(a.same_run_as(&remote));
        assert!(!a.same_run_as(&RunContext::isolated()));
    }

    #[test]
    fn isolated_ignores_process_flag_and_global_faults() {
        let ctx = RunContext::isolated();
        // Raise and immediately clear the process flag around the check so
        // this test cannot poison others even on failure.
        signal::raise_flag(signal::SIGTERM);
        let saw = ctx.cancel_requested();
        let took = ctx.take_cancel();
        signal::take();
        assert!(!saw, "isolated contexts must ignore process signals");
        assert_eq!(took, None);
    }

    #[test]
    fn scoped_faults_do_not_leak() {
        let a = RunContext::isolated()
            .with_faults_spec("alloc.flat:error:always")
            .unwrap();
        let b = RunContext::isolated();
        assert!(a.fires(crate::faults::SITE_ALLOC_FLAT).is_some());
        assert!(b.fires(crate::faults::SITE_ALLOC_FLAT).is_none());
    }

    #[test]
    fn isolated_metrics_do_not_touch_global() {
        let ctx = RunContext::isolated();
        ctx.metrics().counter("test.ctx.gates").add(7);
        assert_eq!(ctx.metrics().counter("test.ctx.gates").get(), 7);
        assert_eq!(qtelemetry::counter("test.ctx.gates").get(), 0);
    }
}
