//! Per-run execution context.
//!
//! PR 1–5 built the robustness primitives — governor budgets, FDCP1
//! checkpoints, fault injection, telemetry — on process-global state: one
//! signal flag, one `OnceLock` metrics registry, one `FLATDD_FAULTS` rule
//! set. That is correct for a batch CLI and fatally wrong for a daemon
//! running N jobs at once, where cancelling one job must not interrupt its
//! neighbors and one job's stats must not bleed into another's.
//!
//! [`RunContext`] is the bundle the simulator now carries instead:
//!
//! * a **cancellation flag** with the same signal-number semantics as
//!   [`crate::signal`] (the scheduler cancels a job by raising SIGTERM on
//!   its context; the CLI's default context additionally follows the real
//!   process flag),
//! * a **metrics registry** handle ([`qtelemetry::MetricsRegistry`]),
//! * a **fault registry** handle ([`crate::faults::FaultRegistry`]).
//!
//! Contexts are cheap to clone — clones share state, so the scheduler keeps
//! one clone as a remote control while the worker thread drives the
//! simulator with another. [`RunContext::process`] reproduces the old
//! single-tenant behavior exactly and is the default everywhere, so the
//! CLI, examples, and existing tests are unchanged.

use crate::faults::FaultRegistry;
use crate::signal;
use qtelemetry::MetricsRegistry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::{Arc, Mutex};

/// One live progress sample, published by the simulator at gate boundaries
/// and consumed by `GET /jobs/{id}/events`. `seq` is assigned by the ring
/// at publish time, monotonically from 1, and doubles as the stream's
/// `?since=` resume cursor.
#[derive(Clone, Debug, PartialEq)]
pub struct Progress {
    /// Ring-assigned sequence number (resume cursor), starting at 1.
    pub seq: u64,
    /// Timestamp on the telemetry clock (µs).
    pub ts_us: f64,
    /// Current phase label (`"dd"` / `"dmav"`).
    pub phase: &'static str,
    /// Gates applied so far in this run.
    pub gate: usize,
    /// Total gates the run will apply (0 when unknown).
    pub total_gates: usize,
    /// Smoothed recent throughput (gates per second; 0 until warmed up).
    pub gates_per_sec: f64,
    /// Live DD node count (vector + matrix; 0 in the flat phase).
    pub dd_nodes: usize,
    /// Resource-governor degradation rung (0 = unconstrained).
    pub governor_rung: u32,
    /// Flat-state shard count in use (0 during the DD phase).
    pub shard_fill: usize,
    /// Run span id (see [`qtelemetry::Span`]); 0 before the run starts.
    pub run_span: u64,
    /// Current phase span id; 0 before the run starts.
    pub phase_span: u64,
}

impl Progress {
    /// Serializes as one NDJSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::with_capacity(192);
        let _ = write!(
            o,
            "{{\"event\":\"progress\",\"seq\":{},\"ts_us\":{:.0},\"phase\":\"{}\",\"gate\":{},\"total_gates\":{},\"gates_per_sec\":{:.1},\"dd_nodes\":{},\"governor_rung\":{},\"shard_fill\":{},\"run_span\":{},\"phase_span\":{}}}",
            self.seq,
            self.ts_us,
            self.phase,
            self.gate,
            self.total_gates,
            self.gates_per_sec,
            self.dd_nodes,
            self.governor_rung,
            self.shard_fill,
            self.run_span,
            self.phase_span,
        );
        o
    }
}

/// Default capacity of the per-run progress ring. Sized so a client that
/// polls every few hundred milliseconds never observes a gap even at
/// hundreds of published samples per second, while one idle job holds at
/// most a few hundred KiB.
pub const PROGRESS_RING_CAP: usize = 4096;

struct ProgressRing {
    buf: VecDeque<Progress>,
    next_seq: u64,
    cap: usize,
}

/// Shared, clonable execution context for one simulation run (one job).
#[derive(Clone)]
pub struct RunContext {
    /// Pending per-job cancellation signal; 0 = none. Same numbering as
    /// [`crate::signal`] so `Interrupted { signal }` reporting is uniform.
    cancel: Arc<AtomicI32>,
    /// When true (the CLI default), [`RunContext::poll_cancel`] also drains
    /// the process-global signal flag, preserving PR 5's Ctrl-C behavior.
    follow_process_signals: bool,
    metrics: MetricsRegistry,
    faults: Arc<FaultRegistry>,
    /// Bounded lossy ring of [`Progress`] samples: the simulator publishes,
    /// the serve event stream reads with a cursor. Clones share the ring.
    progress: Arc<Mutex<ProgressRing>>,
}

impl std::fmt::Debug for RunContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunContext")
            .field("cancel", &self.cancel.load(Ordering::Relaxed))
            .field("follow_process_signals", &self.follow_process_signals)
            .finish_non_exhaustive()
    }
}

impl RunContext {
    /// The single-tenant default: global metrics registry, global fault
    /// registry, and cancellation follows the process signal flag. This is
    /// what `FlatDdSimulator::try_new` uses, so the CLI and every
    /// pre-existing caller keep their exact previous behavior.
    pub fn process() -> Self {
        RunContext {
            cancel: Arc::new(AtomicI32::new(0)),
            follow_process_signals: true,
            metrics: qtelemetry::metrics::global().clone(),
            faults: Arc::new(FaultRegistry::disarmed()),
            progress: Arc::new(Mutex::new(ProgressRing {
                buf: VecDeque::new(),
                next_seq: 1,
                cap: PROGRESS_RING_CAP,
            })),
        }
    }

    /// A fully isolated context: fresh metrics registry, disarmed fault
    /// registry, and cancellation only through [`RunContext::cancel`] —
    /// process signals are ignored. This is what the serve scheduler hands
    /// each job.
    pub fn isolated() -> Self {
        RunContext {
            cancel: Arc::new(AtomicI32::new(0)),
            follow_process_signals: false,
            metrics: MetricsRegistry::new(),
            faults: Arc::new(FaultRegistry::disarmed()),
            progress: Arc::new(Mutex::new(ProgressRing {
                buf: VecDeque::new(),
                next_seq: 1,
                cap: PROGRESS_RING_CAP,
            })),
        }
    }

    /// Replaces the metrics registry handle.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Arms this context's scoped fault registry from a `FLATDD_FAULTS`-
    /// grammar spec (replacing the current rule set).
    pub fn with_faults_spec(self, spec: &str) -> Result<Self, String> {
        self.faults.set_spec(spec)?;
        Ok(self)
    }

    /// This run's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// This run's fault registry. For a [`RunContext::process`] context the
    /// scoped registry is empty, and fault probes fall through to the
    /// process-global `FLATDD_FAULTS` registry (see [`RunContext::fires`]).
    pub fn faults(&self) -> &FaultRegistry {
        &self.faults
    }

    /// Probes a fault site: the scoped registry first, then — only for
    /// process contexts — the global `FLATDD_FAULTS` registry. Isolated
    /// contexts never observe globally armed faults.
    #[inline]
    pub fn fires(&self, site: &str) -> Option<crate::faults::FaultAction> {
        if let Some(a) = self.faults.fires(site) {
            return Some(a);
        }
        if self.follow_process_signals {
            return crate::faults::fires(site);
        }
        None
    }

    /// Requests cancellation of this run, as if signal `sig` (use
    /// [`signal::SIGTERM`] for a generic stop) had been delivered to it.
    /// The simulator honors it at its next gate / fused-matrix boundary.
    pub fn cancel(&self, sig: i32) {
        self.cancel.store(sig, Ordering::Relaxed);
    }

    /// True if cancellation is currently requested (without consuming it).
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed) != 0
            || (self.follow_process_signals && signal::pending().is_some())
    }

    /// Takes (and clears) the pending cancellation, per-job flag first,
    /// then — for process contexts — the process signal flag. The simulator
    /// calls this when it converts the flag into
    /// [`crate::FlatDdError::Interrupted`], so one cancellation interrupts
    /// one run instead of poisoning every run after it.
    pub fn take_cancel(&self) -> Option<i32> {
        match self.cancel.swap(0, Ordering::Relaxed) {
            0 => {
                if self.follow_process_signals {
                    signal::take()
                } else {
                    None
                }
            }
            s => Some(s),
        }
    }

    /// True if `other` is a handle to this same context's cancel flag.
    pub fn same_run_as(&self, other: &RunContext) -> bool {
        Arc::ptr_eq(&self.cancel, &other.cancel)
    }

    /// Publishes one progress sample into the ring, assigning its `seq`.
    /// Bounded and lossy: when the ring is full the oldest sample is
    /// dropped — a slow (or absent) stream consumer never blocks or
    /// bloats the simulation. Returns the assigned sequence number.
    pub fn publish_progress(&self, mut p: Progress) -> u64 {
        let mut ring = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        p.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
        }
        let seq = p.seq;
        ring.buf.push_back(p);
        seq
    }

    /// Samples with `seq > since`, in order, plus the cursor to pass next
    /// time (= the highest seq ever published, even if those samples have
    /// been evicted). An empty ring or an up-to-date cursor returns
    /// `(vec![], since)`-shaped results with the cursor clamped to what
    /// exists, so a stale client resumes cleanly after eviction.
    pub fn progress_since(&self, since: u64) -> (Vec<Progress>, u64) {
        let ring = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        let latest = ring.next_seq - 1;
        if since >= latest {
            return (Vec::new(), latest);
        }
        let out: Vec<Progress> = ring
            .buf
            .iter()
            .filter(|p| p.seq > since)
            .cloned()
            .collect();
        (out, latest)
    }

    /// The most recent sample, if any was ever published.
    pub fn progress_latest(&self) -> Option<Progress> {
        let ring = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        ring.buf.back().cloned()
    }
}

impl Default for RunContext {
    fn default() -> Self {
        RunContext::process()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_cancel_is_per_context() {
        let a = RunContext::isolated();
        let b = RunContext::isolated();
        a.cancel(signal::SIGTERM);
        assert!(a.cancel_requested());
        assert!(!b.cancel_requested(), "cancel must not leak across jobs");
        assert_eq!(a.take_cancel(), Some(signal::SIGTERM));
        assert_eq!(a.take_cancel(), None, "take consumes the flag");
        assert_eq!(b.take_cancel(), None);
    }

    #[test]
    fn clones_share_the_flag() {
        let a = RunContext::isolated();
        let remote = a.clone();
        remote.cancel(signal::SIGINT);
        assert_eq!(a.take_cancel(), Some(signal::SIGINT));
        assert!(a.same_run_as(&remote));
        assert!(!a.same_run_as(&RunContext::isolated()));
    }

    #[test]
    fn isolated_ignores_process_flag_and_global_faults() {
        let ctx = RunContext::isolated();
        // Raise and immediately clear the process flag around the check so
        // this test cannot poison others even on failure.
        signal::raise_flag(signal::SIGTERM);
        let saw = ctx.cancel_requested();
        let took = ctx.take_cancel();
        signal::take();
        assert!(!saw, "isolated contexts must ignore process signals");
        assert_eq!(took, None);
    }

    #[test]
    fn scoped_faults_do_not_leak() {
        let a = RunContext::isolated()
            .with_faults_spec("alloc.flat:error:always")
            .unwrap();
        let b = RunContext::isolated();
        assert!(a.fires(crate::faults::SITE_ALLOC_FLAT).is_some());
        assert!(b.fires(crate::faults::SITE_ALLOC_FLAT).is_none());
    }

    fn sample(gate: usize) -> Progress {
        Progress {
            seq: 0,
            ts_us: 0.0,
            phase: "dd",
            gate,
            total_gates: 100,
            gates_per_sec: 10.0,
            dd_nodes: 4,
            governor_rung: 0,
            shard_fill: 0,
            run_span: 1,
            phase_span: 2,
        }
    }

    #[test]
    fn progress_ring_assigns_seq_and_resumes_by_cursor() {
        let ctx = RunContext::isolated();
        assert_eq!(ctx.progress_since(0), (Vec::new(), 0));
        for g in 0..5 {
            ctx.publish_progress(sample(g));
        }
        let (all, cur) = ctx.progress_since(0);
        assert_eq!(all.len(), 5);
        assert_eq!(cur, 5);
        assert_eq!(all[0].seq, 1);
        assert_eq!(all[4].seq, 5);
        // Resume mid-stream: only newer samples come back, no overlap.
        let (tail, cur2) = ctx.progress_since(3);
        assert_eq!(tail.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(cur2, 5);
        // Up-to-date cursor: nothing new.
        assert_eq!(ctx.progress_since(5).0.len(), 0);
        assert_eq!(ctx.progress_latest().unwrap().seq, 5);
        // Clones share the ring.
        ctx.clone().publish_progress(sample(6));
        assert_eq!(ctx.progress_since(5).0.len(), 1);
    }

    #[test]
    fn progress_ring_is_bounded_and_lossy() {
        let ctx = RunContext::isolated();
        for g in 0..(PROGRESS_RING_CAP + 10) {
            ctx.publish_progress(sample(g));
        }
        let (got, cur) = ctx.progress_since(0);
        assert_eq!(got.len(), PROGRESS_RING_CAP, "ring must stay bounded");
        assert_eq!(cur, (PROGRESS_RING_CAP + 10) as u64);
        assert_eq!(got[0].seq, 11, "oldest samples evicted first");
    }

    #[test]
    fn progress_json_shape() {
        let ctx = RunContext::isolated();
        ctx.publish_progress(sample(7));
        let j = ctx.progress_latest().unwrap().to_json();
        assert!(j.starts_with("{\"event\":\"progress\",\"seq\":1,"), "{j}");
        assert!(j.contains("\"gate\":7"));
        assert!(j.contains("\"phase\":\"dd\""));
        assert!(j.contains("\"run_span\":1"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn isolated_metrics_do_not_touch_global() {
        let ctx = RunContext::isolated();
        ctx.metrics().counter("test.ctx.gates").add(7);
        assert_eq!(ctx.metrics().counter("test.ctx.gates").get(), 7);
        assert_eq!(qtelemetry::counter("test.ctx.gates").get(), 0);
    }
}
