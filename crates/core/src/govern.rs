//! The resource governor: memory/time budgets and the numerical watchdog.
//!
//! The hybrid simulator's defining move — converting the DD state into a
//! dense `2^n` array — is also its riskiest: on a large run under memory
//! pressure an unchecked conversion OOM-kills the process. The governor
//! turns every run into a *budgeted* operation:
//!
//! * **Memory**: an allocator-level budget checked after every gate against
//!   the simulator's own accounting, plus an optional whole-process RSS
//!   budget probed periodically from `/proc` (see [`crate::memory`]). A
//!   breach first triggers the degradation ladder (compute-table flush,
//!   garbage collection, scratch release) and only errors out when that is
//!   not enough; a conversion that cannot fit is *refused* and the run
//!   continues in DD mode.
//! * **Time**: a wall-clock deadline checked before every gate. On breach
//!   the run returns [`crate::FlatDdError::Deadline`] carrying a partial
//!   [`crate::RunOutcome`], so the caller can retry with a different policy.
//! * **Numerical health**: a periodic watchdog verifying the state norm and
//!   rejecting NaN/Inf amplitudes in both the DD and DMAV phases.

use std::time::{Duration, Instant};

/// Budgets and watchdog tunables of one simulator instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GovernorConfig {
    /// Budget on the simulator's own accounted bytes (DD tables, flat
    /// arrays, scratch); `None` = unlimited.
    pub memory_budget_bytes: Option<usize>,
    /// Budget on whole-process resident set size, probed from
    /// `/proc/self/status` every [`Self::rss_probe_every`] gates; `None` =
    /// unlimited. Note this is process-global: concurrent simulators (or a
    /// test harness) share it.
    pub rss_budget_bytes: Option<usize>,
    /// Wall-clock deadline measured from simulator construction; `None` =
    /// unlimited.
    pub deadline: Option<Duration>,
    /// Gates between `/proc` RSS probes (the probe reads a file, so it is
    /// much more expensive than the allocator accounting).
    pub rss_probe_every: usize,
    /// Gates between numerical-health checks (norm + NaN/Inf). In the DMAV
    /// phase one check costs `O(2^n)`.
    pub health_check_every: usize,
    /// Allowed drift of the state 2-norm away from 1 before the watchdog
    /// reports divergence.
    pub norm_tolerance: f64,
    /// Arms the approximation rung of the degradation ladder: on a memory
    /// breach that survives every exact relief measure, the DD-phase state
    /// may be truncated (lowest-contribution edges pruned, renormalized) as
    /// long as the *cumulative* fidelity product stays at or above this
    /// floor. `None` (the default) keeps the exact, fatal behavior. Valid
    /// values are in `(0, 1]`; a floor of exactly `1.0` arms the rung but
    /// only accepts lossless truncations, so results stay bit-identical.
    pub approx_fidelity_floor: Option<f64>,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            memory_budget_bytes: None,
            rss_budget_bytes: None,
            deadline: None,
            rss_probe_every: 256,
            health_check_every: 64,
            norm_tolerance: 1e-6,
            approx_fidelity_floor: None,
        }
    }
}

impl GovernorConfig {
    /// Unlimited budgets with default watchdog cadence.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Reads budgets from the environment on top of the defaults:
    /// `FLATDD_MEMORY_BUDGET_MB` (allocator-accounted bytes),
    /// `FLATDD_RSS_BUDGET_MB` (process RSS), `FLATDD_DEADLINE_SECS`
    /// (fractional seconds), and `FLATDD_APPROX_FLOOR` (cumulative fidelity
    /// floor in `(0, 1]` arming the approximation rung). Unparseable values
    /// are ignored. This is how CI runs the whole test suite under a budget
    /// without touching code.
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }

    /// [`Self::from_env`] with an injectable variable source (testable
    /// without mutating process-global environment).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let read = |name: &str| -> Option<f64> {
            let parsed = lookup(name)?.trim().parse::<f64>().ok()?;
            (parsed.is_finite() && parsed >= 0.0).then_some(parsed)
        };
        let mut cfg = Self::default();
        if let Some(mb) = read("FLATDD_MEMORY_BUDGET_MB") {
            cfg.memory_budget_bytes = Some((mb * 1024.0 * 1024.0) as usize);
        }
        if let Some(mb) = read("FLATDD_RSS_BUDGET_MB") {
            cfg.rss_budget_bytes = Some((mb * 1024.0 * 1024.0) as usize);
        }
        if let Some(secs) = read("FLATDD_DEADLINE_SECS") {
            cfg.deadline = Some(Duration::from_secs_f64(secs));
        }
        if let Some(raw) = lookup("FLATDD_APPROX_FLOOR") {
            if let Ok(f) = raw.trim().parse::<f64>() {
                if f.is_finite() && f > 0.0 && f <= 1.0 {
                    cfg.approx_fidelity_floor = Some(f);
                }
            }
        }
        cfg
    }

    /// True when no budget is configured (the watchdog may still run).
    pub fn is_unlimited(&self) -> bool {
        self.memory_budget_bytes.is_none()
            && self.rss_budget_bytes.is_none()
            && self.deadline.is_none()
    }
}

/// A detected budget breach. The simulator decides how to react (degrade,
/// refuse, or surface a typed error with a partial outcome).
#[derive(Clone, Debug, PartialEq)]
pub enum Breach {
    /// A memory budget was exceeded.
    Memory {
        /// Configured budget in bytes.
        budget_bytes: usize,
        /// Observed bytes at detection time.
        observed_bytes: usize,
        /// Which probe tripped (`"allocator accounting"` / `"process RSS"`).
        context: &'static str,
    },
    /// The wall-clock deadline elapsed.
    Deadline {
        /// Configured deadline.
        budget: Duration,
        /// Elapsed time at detection.
        elapsed: Duration,
    },
}

/// Per-simulator budget enforcement state.
#[derive(Debug)]
pub struct ResourceGovernor {
    cfg: GovernorConfig,
    start: Instant,
    gates_since_rss_probe: usize,
    gates_since_health: usize,
}

impl ResourceGovernor {
    /// Starts the governor's clock.
    pub fn new(cfg: GovernorConfig) -> Self {
        ResourceGovernor {
            cfg,
            start: Instant::now(),
            gates_since_rss_probe: 0,
            gates_since_health: 0,
        }
    }

    /// The configuration this governor enforces.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Wall-clock time since construction.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Checks the deadline alone (cheap; called before every gate).
    pub fn check_deadline(&self) -> Result<(), Breach> {
        if let Some(budget) = self.cfg.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > budget {
                return Err(Breach::Deadline { budget, elapsed });
            }
        }
        Ok(())
    }

    /// Checks the memory budgets against the caller's accounted bytes, and
    /// (periodically) the process RSS. Called after every gate.
    pub fn check_memory(&mut self, accounted_bytes: usize) -> Result<(), Breach> {
        if let Some(budget) = self.cfg.memory_budget_bytes {
            if accounted_bytes > budget {
                return Err(Breach::Memory {
                    budget_bytes: budget,
                    observed_bytes: accounted_bytes,
                    context: "allocator accounting",
                });
            }
        }
        if let Some(budget) = self.cfg.rss_budget_bytes {
            self.gates_since_rss_probe += 1;
            if self.gates_since_rss_probe >= self.cfg.rss_probe_every.max(1) {
                self.gates_since_rss_probe = 0;
                if let Some(rss) = crate::memory::current_rss_bytes() {
                    if rss as usize > budget {
                        return Err(Breach::Memory {
                            budget_bytes: budget,
                            observed_bytes: rss as usize,
                            context: "process RSS",
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Admission control for a proposed allocation of `extra_bytes` on top
    /// of `accounted_bytes`: `false` means the allocation would bust the
    /// memory budget and must be refused (e.g. a DD-to-array conversion).
    pub fn admits_allocation(&self, accounted_bytes: usize, extra_bytes: usize) -> bool {
        match self.cfg.memory_budget_bytes {
            Some(budget) => accounted_bytes.saturating_add(extra_bytes) <= budget,
            None => true,
        }
    }

    /// Advances the health-check counter; `true` means a numerical-health
    /// check is due this gate.
    pub fn health_check_due(&mut self) -> bool {
        self.gates_since_health += 1;
        if self.gates_since_health >= self.cfg.health_check_every.max(1) {
            self.gates_since_health = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_config_never_breaches() {
        let mut g = ResourceGovernor::new(GovernorConfig::default());
        assert!(g.config().is_unlimited());
        assert!(g.check_deadline().is_ok());
        assert!(g.check_memory(usize::MAX / 2).is_ok());
        assert!(g.admits_allocation(usize::MAX / 2, usize::MAX / 2));
    }

    #[test]
    fn memory_budget_breach_reports_both_sides() {
        let mut g = ResourceGovernor::new(GovernorConfig {
            memory_budget_bytes: Some(1000),
            ..GovernorConfig::default()
        });
        assert!(g.check_memory(1000).is_ok(), "budget is inclusive");
        match g.check_memory(1001) {
            Err(Breach::Memory {
                budget_bytes,
                observed_bytes,
                context,
            }) => {
                assert_eq!(budget_bytes, 1000);
                assert_eq!(observed_bytes, 1001);
                assert_eq!(context, "allocator accounting");
            }
            other => panic!("expected memory breach, got {other:?}"),
        }
    }

    #[test]
    fn allocation_admission_respects_budget_and_saturates() {
        let g = ResourceGovernor::new(GovernorConfig {
            memory_budget_bytes: Some(1 << 20),
            ..GovernorConfig::default()
        });
        assert!(g.admits_allocation(0, 1 << 20));
        assert!(!g.admits_allocation(1, 1 << 20));
        // Saturating add: a huge request must not wrap around into admission.
        assert!(!g.admits_allocation(usize::MAX, usize::MAX));
    }

    #[test]
    fn zero_deadline_breaches_immediately() {
        let g = ResourceGovernor::new(GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::default()
        });
        // Any nonzero elapsed time exceeds a zero budget.
        std::thread::sleep(Duration::from_millis(1));
        match g.check_deadline() {
            Err(Breach::Deadline { budget, elapsed }) => {
                assert_eq!(budget, Duration::ZERO);
                assert!(elapsed > Duration::ZERO);
            }
            other => panic!("expected deadline breach, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_does_not_breach() {
        let g = ResourceGovernor::new(GovernorConfig {
            deadline: Some(Duration::from_secs(3600)),
            ..GovernorConfig::default()
        });
        assert!(g.check_deadline().is_ok());
    }

    #[test]
    fn health_check_cadence() {
        let mut g = ResourceGovernor::new(GovernorConfig {
            health_check_every: 3,
            ..GovernorConfig::default()
        });
        let due: Vec<bool> = (0..7).map(|_| g.health_check_due()).collect();
        assert_eq!(due, [false, false, true, false, false, true, false]);
    }

    #[test]
    fn env_parsing_ignores_garbage() {
        let cfg = GovernorConfig::from_lookup(|name| match name {
            "FLATDD_MEMORY_BUDGET_MB" => Some("64".into()),
            "FLATDD_DEADLINE_SECS" => Some("not-a-number".into()),
            _ => None,
        });
        assert_eq!(cfg.memory_budget_bytes, Some(64 * 1024 * 1024));
        assert_eq!(cfg.deadline, None, "garbage deadline must be ignored");
        assert_eq!(cfg.rss_budget_bytes, None);

        let cfg = GovernorConfig::from_lookup(|name| match name {
            "FLATDD_DEADLINE_SECS" => Some("0.25".into()),
            "FLATDD_RSS_BUDGET_MB" => Some("-3".into()),
            _ => None,
        });
        assert_eq!(cfg.deadline, Some(Duration::from_millis(250)));
        assert_eq!(cfg.rss_budget_bytes, None, "negative budget ignored");
    }

    #[test]
    fn approx_floor_parsing_enforces_range() {
        let parse = |raw: &str| {
            GovernorConfig::from_lookup(|name| {
                (name == "FLATDD_APPROX_FLOOR").then(|| raw.to_string())
            })
            .approx_fidelity_floor
        };
        assert_eq!(parse("0.9"), Some(0.9));
        assert_eq!(parse(" 1.0 "), Some(1.0));
        assert_eq!(parse("0"), None, "floor must be strictly positive");
        assert_eq!(parse("1.5"), None, "floor above 1 is meaningless");
        assert_eq!(parse("-0.5"), None);
        assert_eq!(parse("NaN"), None);
        assert_eq!(parse("inf"), None);
        assert_eq!(parse("garbage"), None);
        assert_eq!(
            GovernorConfig::from_lookup(|_| None).approx_fidelity_floor,
            None,
            "unset stays exact"
        );
    }
}
