//! Crash-safe checkpoint files (format `FDCP1`).
//!
//! A checkpoint captures everything a resumed run needs to continue
//! *exactly* where an interrupted one stopped: the gate cursor, the phase,
//! the EWMA monitor, the persisted run statistics, the sampling RNG
//! position — and the state itself, in whichever representation was live.
//! The DD phase reuses the compact QDDV1 serializer (a regular state is
//! kilobytes on disk); the flat phase writes the raw amplitude array in
//! chunks.
//!
//! ## Byte layout (little-endian; see DESIGN.md §10)
//!
//! ```text
//! magic "FDCP1\0" | u32 version (=2)
//! u32 header_len | header bytes          | u32 CRC32(header bytes)
//! u8 payload kind (0=dd, 1=flat)
//! u64 payload_len | payload bytes        | u32 CRC32(payload bytes)
//! ```
//!
//! Header fields, in order: `u64 circuit_hash`, `u64 config_fingerprint`,
//! `u32 n`, `u64 gate_cursor`, `u8 phase`, `u8 conversion_blocked`,
//! EWMA state (`f64 v`, `u8 seeded`, `u64 observations`), `u64 rng_seed`,
//! `u64 rng_pos`, then the persisted [`FlatDdStats`] subset (14 fields).
//! Version 2 appended the approximation-rung fields
//! (`u64 approx_truncations`, `f64 fidelity`) so a resume preserves the
//! cumulative fidelity product; version-1 files are rejected as an
//! unsupported format version.
//!
//! ## Atomic installation
//!
//! A checkpoint is written to `<path>.tmp`, fsync'd, then renamed over
//! `<path>` (and the parent directory fsync'd), so `<path>` always holds
//! either the previous complete checkpoint or the new complete one — a
//! crash mid-write can never leave a half-written file under the real
//! name. Every structural defect a torn or bit-flipped file *can* exhibit
//! is detected at load time by the section CRCs and bounds checks and
//! surfaced as [`FlatDdError::CorruptCheckpoint`], never a panic.

use crate::error::FlatDdError;
use crate::ewma::EwmaState;
use crate::faults;
use crate::sim::{FlatDdStats, Phase};
use qcircuit::{Circuit, Complex64};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 6] = b"FDCP1\0";
const VERSION: u32 = 2;
/// Serialized header size for format version 2 (v1 + the two
/// approximation-rung stats fields).
const HEADER_LEN_V2: usize = 8 + 8 + 4 + 8 + 1 + 1 + (8 + 1 + 8) + 8 + 8 + 14 * 8;
/// Amplitudes per chunk when writing/reading the flat payload.
const FLAT_CHUNK: usize = 1 << 15;

/// When the simulator writes checkpoints, and where.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Installed checkpoint file (the `*.tmp` sibling is transient).
    pub path: PathBuf,
    /// Write a checkpoint every this many applied gates (`None` = only on
    /// breach/signal).
    pub every_gates: Option<usize>,
    /// Write a checkpoint when a resumable budget breach (memory/deadline)
    /// or a polled signal ends the run.
    pub on_breach: bool,
    /// Sampling RNG seed to persist, so a resumed run's measurement draws
    /// match the uninterrupted run's.
    pub rng_seed: u64,
    /// Extra attempts after a failed (or verification-rejected) periodic
    /// checkpoint write. `0` restores the old single-best-effort behavior.
    pub write_retries: u32,
    /// Backoff before the first retry, doubling per attempt (capped at
    /// [`CheckpointPolicy::MAX_RETRY_BACKOFF_MS`]).
    pub retry_backoff_ms: u64,
}

impl CheckpointPolicy {
    /// Ceiling for the doubling retry backoff.
    pub const MAX_RETRY_BACKOFF_MS: u64 = 200;

    /// Policy writing to `path` on breaches/signals only.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every_gates: None,
            on_breach: true,
            rng_seed: 0,
            write_retries: 2,
            retry_backoff_ms: 10,
        }
    }

    /// Adds a periodic trigger.
    pub fn every(mut self, gates: usize) -> Self {
        self.every_gates = (gates > 0).then_some(gates);
        self
    }

    /// Overrides the periodic-write retry budget.
    pub fn retries(mut self, attempts: u32, backoff_ms: u64) -> Self {
        self.write_retries = attempts;
        self.retry_backoff_ms = backoff_ms;
        self
    }
}

/// The parsed checkpoint header.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointHeader {
    /// FNV-1a fingerprint of the circuit (qubits + every gate).
    pub circuit_hash: u64,
    /// FNV-1a fingerprint of the result-relevant config (conversion,
    /// caching, fusion policies — thread count deliberately excluded).
    pub config_fingerprint: u64,
    /// Qubit count.
    pub n: u32,
    /// Gates already applied when the checkpoint was taken.
    pub gate_cursor: u64,
    /// Phase the state payload is in.
    pub phase: Phase,
    /// Whether conversion had been refused and blocked.
    pub conversion_blocked: bool,
    /// EWMA monitor state at the cursor.
    pub ewma: EwmaState,
    /// Sampling RNG seed (from [`CheckpointPolicy::rng_seed`]).
    pub rng_seed: u64,
    /// Reserved RNG stream position (0 until sampling mid-run exists).
    pub rng_pos: u64,
    /// Persisted run statistics (the compute-table delta fields are
    /// re-baselined on resume and intentionally not stored).
    pub stats: FlatDdStats,
}

/// The state payload of a loaded checkpoint.
#[derive(Debug)]
pub enum CheckpointState {
    /// QDDV1 bytes (DD phase) — deserialize with
    /// `qdd::serialize::vector_dd_from_bytes` into the resuming package.
    Dd(Vec<u8>),
    /// The flat amplitude array (DMAV phase).
    Flat(Vec<Complex64>),
}

/// The state payload to write (borrowed; nothing is copied up front).
pub enum CheckpointPayload<'a> {
    /// QDDV1 bytes.
    Dd(&'a [u8]),
    /// Flat amplitudes. `shards` is the writer's flat-phase shard geometry:
    /// encode chunks align to shard boundaries so encoding parallelizes per
    /// shard. The bytes on disk are a plain concatenation under one running
    /// CRC, so the file is byte-identical for every shard count and a
    /// resume is valid under a different `--flat-shards` value.
    Flat {
        /// The amplitude vector.
        amps: &'a [Complex64],
        /// Writer-side shard count (1 = serial encode).
        shards: usize,
    },
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) with a const-built table — no dependencies.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC32 (IEEE 802.3 polynomial).
#[derive(Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh digest.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// FNV-1a fingerprints.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Content fingerprint of a circuit: qubit count plus the `Debug` rendering
/// of every gate (which covers kind, targets, controls, and parameters).
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(circuit.num_qubits() as u64).to_le_bytes());
    h = fnv1a(h, &(circuit.gates().len() as u64).to_le_bytes());
    let mut buf = String::new();
    for g in circuit.iter() {
        use std::fmt::Write as _;
        buf.clear();
        let _ = write!(buf, "{g:?}");
        h = fnv1a(h, buf.as_bytes());
        h = fnv1a(h, b";");
    }
    h
}

/// Fingerprint of the result-relevant simulator configuration. Thread
/// count, trace/telemetry flags, and governor budgets are excluded: they
/// change performance, not the final state, so a resume may legitimately
/// use different values (e.g. a larger memory budget after a breach).
pub fn config_fingerprint(cfg: &crate::sim::FlatDdConfig) -> u64 {
    let s = format!("{:?}|{:?}|{:?}", cfg.conversion, cfg.caching, cfg.fusion);
    fnv1a(FNV_OFFSET, s.as_bytes())
}

// ---------------------------------------------------------------------------
// Write path.

fn corrupt(detail: impl Into<String>) -> FlatDdError {
    FlatDdError::CorruptCheckpoint {
        detail: detail.into(),
    }
}

fn encode_header(h: &CheckpointHeader) -> Vec<u8> {
    let mut b = Vec::with_capacity(HEADER_LEN_V2);
    b.extend_from_slice(&h.circuit_hash.to_le_bytes());
    b.extend_from_slice(&h.config_fingerprint.to_le_bytes());
    b.extend_from_slice(&h.n.to_le_bytes());
    b.extend_from_slice(&h.gate_cursor.to_le_bytes());
    b.push(match h.phase {
        Phase::Dd => 0,
        Phase::Dmav => 1,
    });
    b.push(h.conversion_blocked as u8);
    b.extend_from_slice(&h.ewma.v.to_le_bytes());
    b.push(h.ewma.seeded as u8);
    b.extend_from_slice(&(h.ewma.observations as u64).to_le_bytes());
    b.extend_from_slice(&h.rng_seed.to_le_bytes());
    b.extend_from_slice(&h.rng_pos.to_le_bytes());
    let s = &h.stats;
    b.extend_from_slice(&(s.gates_dd as u64).to_le_bytes());
    b.extend_from_slice(&(s.gates_dmav as u64).to_le_bytes());
    b.extend_from_slice(&s.converted_at.map_or(0u64, |g| g as u64 + 1).to_le_bytes());
    b.extend_from_slice(&s.conversion_seconds.to_le_bytes());
    b.extend_from_slice(&(s.cached_dmavs as u64).to_le_bytes());
    b.extend_from_slice(&(s.uncached_dmavs as u64).to_le_bytes());
    b.extend_from_slice(&(s.cache_hits as u64).to_le_bytes());
    b.extend_from_slice(&(s.fused_matrices as u64).to_le_bytes());
    b.extend_from_slice(&s.modeled_cost.to_le_bytes());
    b.extend_from_slice(&(s.peak_state_dd_size as u64).to_le_bytes());
    b.extend_from_slice(&(s.conversion_refusals as u64).to_le_bytes());
    b.extend_from_slice(&(s.pressure_gcs as u64).to_le_bytes());
    b.extend_from_slice(&(s.approx_truncations as u64).to_le_bytes());
    b.extend_from_slice(&s.fidelity.to_le_bytes());
    debug_assert_eq!(b.len(), HEADER_LEN_V2);
    b
}

/// Writes a checkpoint to `path` with atomic installation, probing the
/// process-global fault registry. Returns the installed file's size in
/// bytes.
pub fn write_checkpoint(
    path: &Path,
    header: &CheckpointHeader,
    payload: CheckpointPayload<'_>,
) -> Result<u64, FlatDdError> {
    write_checkpoint_probed(path, header, payload, &faults::fires)
}

/// [`write_checkpoint`] with corruption hooks routed through a per-run
/// context instead of the global `FLATDD_FAULTS` registry.
pub fn write_checkpoint_with(
    path: &Path,
    header: &CheckpointHeader,
    payload: CheckpointPayload<'_>,
    ctx: &crate::RunContext,
) -> Result<u64, FlatDdError> {
    write_checkpoint_probed(path, header, payload, &|site| ctx.fires(site))
}

fn write_checkpoint_probed(
    path: &Path,
    header: &CheckpointHeader,
    payload: CheckpointPayload<'_>,
    probe: &dyn Fn(&str) -> Option<faults::FaultAction>,
) -> Result<u64, FlatDdError> {
    let tmp = tmp_path(path);
    let bytes = write_tmp(&tmp, header, payload).map_err(FlatDdError::Io)?;
    // Deterministic corruption hooks: damage the fully-written temp file
    // exactly where a torn write or a flipped medium bit would, then let
    // the normal installation proceed — the *loader* must catch it.
    if let Some(faults::FaultAction::Truncate(len)) = probe(faults::SITE_CKPT_TRUNCATE) {
        let f = OpenOptions::new()
            .write(true)
            .open(&tmp)
            .map_err(FlatDdError::Io)?;
        f.set_len(len.min(bytes)).map_err(FlatDdError::Io)?;
        f.sync_all().map_err(FlatDdError::Io)?;
    }
    if let Some(faults::FaultAction::BitFlip(bit)) = probe(faults::SITE_CKPT_BITFLIP) {
        flip_bit(&tmp, bit).map_err(FlatDdError::Io)?;
    }
    // Disk-full at installation time: the temp file exists but the rename
    // is denied. The temp is removed (as a real ENOSPC cleanup would) so
    // the previously installed checkpoint — if any — stays the valid one.
    // The `panic` action instead models the process dying at the install
    // point (the seam the serve crash-loop quarantine is tested through).
    if let Some(action) = probe(faults::SITE_CKPT_ENOSPC) {
        let _ = std::fs::remove_file(&tmp);
        if action == faults::FaultAction::Panic {
            panic!("fault injection: crash installing checkpoint");
        }
        return Err(FlatDdError::Io(io::Error::new(
            io::ErrorKind::StorageFull,
            format!(
                "injected ENOSPC installing checkpoint {} (fault site {})",
                path.display(),
                faults::SITE_CKPT_ENOSPC
            ),
        )));
    }
    std::fs::rename(&tmp, path).map_err(FlatDdError::Io)?;
    sync_parent_dir(path);
    Ok(std::fs::metadata(path).map(|m| m.len()).unwrap_or(bytes))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Deletes stale `*.tmp` checkpoint files under `dir`, returning the
/// removed paths. A crash between `write_tmp` and the atomic rename can
/// orphan a temp file; the installed checkpoint (if any) is untouched, so
/// the orphan is pure garbage. Only files that are recognizably checkpoint
/// temps — empty, or starting with the `FDCP1` magic — are removed; other
/// people's `*.tmp` files are left alone. One line per removal is logged
/// to stderr.
pub fn sweep_stale_tmp(dir: &Path) -> Vec<PathBuf> {
    let mut removed = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return removed,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("tmp") {
            continue;
        }
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let mut magic = [0u8; 6];
        let is_ckpt_tmp = match File::open(&path) {
            Ok(mut f) => match f.read_exact(&mut magic) {
                Ok(()) => &magic == MAGIC,
                // Shorter than the magic (including empty): a torn first
                // write of a checkpoint temp.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => true,
                Err(_) => false,
            },
            Err(_) => false,
        };
        if is_ckpt_tmp && std::fs::remove_file(&path).is_ok() {
            eprintln!("[flatdd] removed stale checkpoint temp {}", path.display());
            removed.push(path);
        }
    }
    removed
}

/// Flat-payload chunk boundaries: each state shard split into
/// [`FLAT_CHUNK`]-amplitude sub-chunks, in stream order. Chunking is
/// invisible on disk (one concatenated byte stream, one running CRC), so
/// any shard count produces the same file.
fn flat_chunks(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let mut chunks = Vec::new();
    for s in 0..shards.max(1) {
        let r = qarray::shard_range(len, shards.max(1), s);
        let mut start = r.start;
        while start < r.end {
            let end = (start + FLAT_CHUNK).min(r.end);
            chunks.push(start..end);
            start = end;
        }
    }
    chunks
}

/// Decodes one chunk of LE `(re, im)` f64 pairs into `dst`; returns `false`
/// when any amplitude is non-finite.
fn decode_flat_chunk(bytes: &[u8], dst: &mut [Complex64]) -> bool {
    debug_assert_eq!(bytes.len(), dst.len() * 16);
    let mut ok = true;
    for (i, a) in dst.iter_mut().enumerate() {
        let off = i * 16;
        let re = f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let im = f64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
        ok &= re.is_finite() && im.is_finite();
        *a = Complex64::new(re, im);
    }
    ok
}

fn encode_flat_chunk(block: &[Complex64], out: &mut Vec<u8>) {
    out.reserve(block.len() * 16);
    for a in block {
        out.extend_from_slice(&a.re.to_le_bytes());
        out.extend_from_slice(&a.im.to_le_bytes());
    }
}

fn write_tmp(
    tmp: &Path,
    header: &CheckpointHeader,
    payload: CheckpointPayload<'_>,
) -> io::Result<u64> {
    let file = File::create(tmp)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;

    let hb = encode_header(header);
    w.write_all(&(hb.len() as u32).to_le_bytes())?;
    w.write_all(&hb)?;
    w.write_all(&crc32(&hb).to_le_bytes())?;

    let mut crc = Crc32::new();
    match payload {
        CheckpointPayload::Dd(bytes) => {
            w.write_all(&[0u8])?;
            w.write_all(&(bytes.len() as u64).to_le_bytes())?;
            crc.update(bytes);
            w.write_all(bytes)?;
        }
        CheckpointPayload::Flat { amps, shards } => {
            w.write_all(&[1u8])?;
            w.write_all(&((amps.len() * 16) as u64).to_le_bytes())?;
            let chunks = flat_chunks(amps.len(), shards);
            if shards <= 1 {
                let mut chunk = Vec::with_capacity(FLAT_CHUNK.min(amps.len()) * 16);
                for r in chunks {
                    chunk.clear();
                    encode_flat_chunk(&amps[r], &mut chunk);
                    crc.update(&chunk);
                    w.write_all(&chunk)?;
                }
            } else {
                // Shard-parallel encode: waves of `lanes` chunks are encoded
                // concurrently into private slots, then CRC'd and written in
                // order — the stream (and thus the CRC) is identical to the
                // serial path.
                let lanes = shards.min(8);
                let mut slots: Vec<Vec<u8>> = vec![Vec::new(); lanes];
                for wave in chunks.chunks(lanes) {
                    std::thread::scope(|s| {
                        for (slot, r) in slots.iter_mut().zip(wave) {
                            let block = &amps[r.clone()];
                            s.spawn(move || {
                                slot.clear();
                                encode_flat_chunk(block, slot);
                            });
                        }
                    });
                    for (slot, _) in slots.iter().zip(wave) {
                        crc.update(slot);
                        w.write_all(slot)?;
                    }
                }
            }
        }
    }
    w.write_all(&crc.finish().to_le_bytes())?;
    w.flush()?;
    let file = w.into_inner().map_err(|e| e.into_error())?;
    file.sync_all()?;
    Ok(file.metadata()?.len())
}

fn sync_parent_dir(path: &Path) {
    // Durability of the rename itself; best-effort (some filesystems refuse
    // to open directories for sync — the rename atomicity still holds).
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

fn flip_bit(path: &Path, bit: u64) -> io::Result<()> {
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if len == 0 {
        return Ok(());
    }
    let byte_index = (bit / 8) % len;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(byte_index))?;
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(byte_index))?;
    f.write_all(&b)?;
    f.sync_all()
}

// ---------------------------------------------------------------------------
// Read path.

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FlatDdError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| corrupt("header shorter than its declared fields"))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, FlatDdError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, FlatDdError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, FlatDdError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, FlatDdError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_header(bytes: &[u8]) -> Result<CheckpointHeader, FlatDdError> {
    let mut c = Cursor { b: bytes, pos: 0 };
    let circuit_hash = c.u64()?;
    let config_fingerprint = c.u64()?;
    let n = c.u32()?;
    if n == 0 || n > 64 {
        return Err(corrupt(format!("implausible qubit count {n}")));
    }
    let gate_cursor = c.u64()?;
    let phase = match c.u8()? {
        0 => Phase::Dd,
        1 => Phase::Dmav,
        k => return Err(corrupt(format!("unknown phase tag {k}"))),
    };
    let conversion_blocked = match c.u8()? {
        0 => false,
        1 => true,
        k => return Err(corrupt(format!("bad conversion_blocked flag {k}"))),
    };
    let ewma_v = c.f64()?;
    if !ewma_v.is_finite() {
        return Err(corrupt("non-finite EWMA value"));
    }
    let ewma_seeded = match c.u8()? {
        0 => false,
        1 => true,
        k => return Err(corrupt(format!("bad ewma seeded flag {k}"))),
    };
    let ewma_obs = c.u64()?;
    let rng_seed = c.u64()?;
    let rng_pos = c.u64()?;
    let stats = FlatDdStats {
        gates_dd: c.u64()? as usize,
        gates_dmav: c.u64()? as usize,
        converted_at: match c.u64()? {
            0 => None,
            g => Some((g - 1) as usize),
        },
        conversion_seconds: c.f64()?,
        cached_dmavs: c.u64()? as usize,
        uncached_dmavs: c.u64()? as usize,
        cache_hits: c.u64()? as usize,
        fused_matrices: c.u64()? as usize,
        modeled_cost: c.f64()?,
        peak_state_dd_size: c.u64()? as usize,
        conversion_refusals: c.u64()? as usize,
        pressure_gcs: c.u64()? as usize,
        approx_truncations: c.u64()? as usize,
        fidelity: c.f64()?,
        ..FlatDdStats::default()
    };
    if !(stats.fidelity.is_finite() && stats.fidelity > 0.0 && stats.fidelity <= 1.0) {
        return Err(corrupt(format!(
            "fidelity product {} outside (0, 1]",
            stats.fidelity
        )));
    }
    if c.pos != bytes.len() {
        return Err(corrupt("trailing bytes after header fields"));
    }
    Ok(CheckpointHeader {
        circuit_hash,
        config_fingerprint,
        n,
        gate_cursor,
        phase,
        conversion_blocked,
        ewma: EwmaState {
            v: ewma_v,
            seeded: ewma_seeded,
            observations: ewma_obs as usize,
        },
        rng_seed,
        rng_pos,
        stats,
    })
}

fn read_exactly(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), FlatDdError> {
    r.read_exact(buf)
        .map_err(|_| corrupt(format!("truncated while reading {what}")))
}

/// Reads and validates only the header of a checkpoint file — cheap even
/// for multi-gigabyte flat checkpoints (the payload is not touched).
pub fn read_header(path: &Path) -> Result<CheckpointHeader, FlatDdError> {
    let file = File::open(path).map_err(FlatDdError::Io)?;
    let mut r = BufReader::new(file);
    read_header_from(&mut r).map(|(h, _)| h)
}

/// Parses magic, version, and the checksummed header; returns the header
/// and the total prefix length consumed.
fn read_header_from(r: &mut impl Read) -> Result<(CheckpointHeader, u64), FlatDdError> {
    let mut magic = [0u8; 6];
    read_exactly(r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(corrupt("not a FlatDD checkpoint (bad magic)"));
    }
    let mut v4 = [0u8; 4];
    read_exactly(r, &mut v4, "version")?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(corrupt(format!("unsupported format version {version}")));
    }
    read_exactly(r, &mut v4, "header length")?;
    let hlen = u32::from_le_bytes(v4) as usize;
    if hlen != HEADER_LEN_V2 {
        return Err(corrupt(format!(
            "header length {hlen} does not match format version 2 ({HEADER_LEN_V2})"
        )));
    }
    let mut hb = vec![0u8; hlen];
    read_exactly(r, &mut hb, "header")?;
    read_exactly(r, &mut v4, "header checksum")?;
    if u32::from_le_bytes(v4) != crc32(&hb) {
        return Err(corrupt("header checksum mismatch"));
    }
    let header = decode_header(&hb)?;
    Ok((header, (6 + 4 + 4 + hlen + 4) as u64))
}

/// Reads and fully validates a checkpoint file: magic, version, both CRCs,
/// and every structural bound. Corruption of any kind comes back as
/// [`FlatDdError::CorruptCheckpoint`] — never a panic or OOM (payload
/// lengths are validated against the actual file size before allocating).
pub fn read_checkpoint(path: &Path) -> Result<(CheckpointHeader, CheckpointState), FlatDdError> {
    let file = File::open(path).map_err(FlatDdError::Io)?;
    let file_len = file.metadata().map_err(FlatDdError::Io)?.len();
    let mut r = BufReader::new(file);
    let (header, prefix) = read_header_from(&mut r)?;

    let mut k = [0u8; 1];
    read_exactly(&mut r, &mut k, "payload kind")?;
    let mut l8 = [0u8; 8];
    read_exactly(&mut r, &mut l8, "payload length")?;
    let plen = u64::from_le_bytes(l8);
    // The payload must account for every remaining byte except its CRC —
    // checked against the real file size so a corrupted length can neither
    // truncate the read nor demand an absurd allocation.
    let expected = file_len
        .checked_sub(prefix + 1 + 8 + 4)
        .ok_or_else(|| corrupt("file too short for a payload section"))?;
    if plen != expected {
        return Err(corrupt(format!(
            "payload length {plen} does not match file size (expected {expected})"
        )));
    }

    let mut crc = Crc32::new();
    let state = match k[0] {
        0 => {
            let mut bytes = Vec::new();
            bytes
                .try_reserve_exact(plen as usize)
                .map_err(|_| corrupt("DD payload too large to allocate"))?;
            bytes.resize(plen as usize, 0);
            read_exactly(&mut r, &mut bytes, "DD payload")?;
            crc.update(&bytes);
            CheckpointState::Dd(bytes)
        }
        1 => {
            if plen % 16 != 0 {
                return Err(corrupt("flat payload length not a multiple of 16"));
            }
            let count = (plen / 16) as usize;
            let dim = 1u64.checked_shl(header.n).unwrap_or(0);
            if count as u64 != dim {
                return Err(corrupt(format!(
                    "flat payload holds {count} amplitudes, expected 2^{}",
                    header.n
                )));
            }
            let mut amps = qarray::try_zeroed_state(count)
                .map_err(|_| corrupt("flat payload too large to allocate"))?;
            // Decode lanes: chunks are read (and CRC'd) serially in stream
            // order, then a wave of up to `lanes` chunks is decoded into
            // disjoint amplitude ranges concurrently. The reader needs no
            // knowledge of the writer's shard count.
            let lanes = if count >= 2 * FLAT_CHUNK {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .min(8)
            } else {
                1
            };
            let mut bufs: Vec<Vec<u8>> = vec![vec![0u8; FLAT_CHUNK.min(count) * 16]; lanes];
            let mut filled = 0usize;
            while filled < count {
                let mut wave: Vec<(usize, usize)> = Vec::new(); // (start, take)
                for b in bufs.iter_mut() {
                    if filled >= count {
                        break;
                    }
                    let take = FLAT_CHUNK.min(count - filled);
                    let buf = &mut b[..take * 16];
                    read_exactly(&mut r, buf, "flat payload")?;
                    crc.update(buf);
                    wave.push((filled, take));
                    filled += take;
                }
                let mut ok = true;
                if wave.len() <= 1 {
                    for (&(start, take), b) in wave.iter().zip(&bufs) {
                        ok &= decode_flat_chunk(&b[..take * 16], &mut amps[start..start + take]);
                    }
                } else {
                    let mut tail: &mut [Complex64] = &mut amps;
                    let mut consumed = 0usize;
                    std::thread::scope(|s| {
                        let mut handles = Vec::new();
                        for (&(start, take), b) in wave.iter().zip(&bufs) {
                            let (head, rest) =
                                std::mem::take(&mut tail).split_at_mut(start + take - consumed);
                            let dst = &mut head[start - consumed..];
                            consumed = start + take;
                            tail = rest;
                            let bytes = &b[..take * 16];
                            handles.push(s.spawn(move || decode_flat_chunk(bytes, dst)));
                        }
                        for h in handles {
                            ok &= h.join().unwrap_or(false);
                        }
                    });
                }
                if !ok {
                    return Err(corrupt("non-finite amplitude in flat payload"));
                }
            }
            CheckpointState::Flat(amps)
        }
        k => return Err(corrupt(format!("unknown payload kind {k}"))),
    };
    let mut c4 = [0u8; 4];
    read_exactly(&mut r, &mut c4, "payload checksum")?;
    if u32::from_le_bytes(c4) != crc.finish() {
        return Err(corrupt("payload checksum mismatch"));
    }
    Ok((header, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(phase: Phase) -> CheckpointHeader {
        CheckpointHeader {
            circuit_hash: 0xDEAD_BEEF_1234_5678,
            config_fingerprint: 42,
            n: 3,
            gate_cursor: 7,
            phase,
            conversion_blocked: false,
            ewma: EwmaState {
                v: 12.5,
                seeded: true,
                observations: 7,
            },
            rng_seed: 99,
            rng_pos: 0,
            stats: FlatDdStats {
                gates_dd: 5,
                gates_dmav: 2,
                converted_at: Some(5),
                conversion_seconds: 0.25,
                peak_state_dd_size: 31,
                ..FlatDdStats::default()
            },
        }
    }

    fn tmp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("flatdd_ckpt_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn crc32_known_vector() {
        // The classic "123456789" check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_encode_decode_round_trips() {
        for phase in [Phase::Dd, Phase::Dmav] {
            let h = header(phase);
            let b = encode_header(&h);
            assert_eq!(b.len(), HEADER_LEN_V2);
            assert_eq!(decode_header(&b).unwrap(), h);
        }
    }

    #[test]
    fn fidelity_fields_round_trip_and_are_validated() {
        let mut h = header(Phase::Dd);
        h.stats.approx_truncations = 3;
        h.stats.fidelity = 0.912345678901234;
        let b = encode_header(&h);
        let d = decode_header(&b).unwrap();
        assert_eq!(d.stats.approx_truncations, 3);
        assert_eq!(d.stats.fidelity, 0.912345678901234, "bit-exact product");

        // A fidelity outside (0, 1] can only come from corruption.
        for bad in [0.0, -0.25, 1.5, f64::NAN, f64::INFINITY] {
            h.stats.fidelity = bad;
            let b = encode_header(&h);
            assert!(
                matches!(
                    decode_header(&b),
                    Err(FlatDdError::CorruptCheckpoint { .. })
                ),
                "fidelity {bad} must be rejected"
            );
        }
    }

    #[test]
    fn version_1_files_are_rejected_as_unsupported() {
        let path = tmp_file("v1");
        write_checkpoint(&path, &header(Phase::Dd), CheckpointPayload::Dd(b"x")).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Overwrite the version word (right after the 6-byte magic).
        bytes[6..10].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match read_checkpoint(&path) {
            Err(FlatDdError::CorruptCheckpoint { detail }) => {
                assert!(detail.contains("version"), "got: {detail}");
            }
            other => panic!("expected corrupt-checkpoint error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_checkpoint_round_trips() {
        let path = tmp_file("flat");
        let amps: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(i as f64 * 0.25, -(i as f64)))
            .collect();
        let bytes = write_checkpoint(&path, &header(Phase::Dmav), {
            CheckpointPayload::Flat {
                amps: &amps,
                shards: 1,
            }
        })
        .unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert!(!tmp_path(&path).exists(), "tmp file must be renamed away");
        let (h, state) = read_checkpoint(&path).unwrap();
        assert_eq!(h, header(Phase::Dmav));
        match state {
            CheckpointState::Flat(v) => assert_eq!(v, amps),
            _ => panic!("expected flat payload"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flat_checkpoint_bytes_identical_for_every_shard_count() {
        // Big enough to exercise multiple FLAT_CHUNK sub-chunks per shard
        // and the wave-parallel encode/decode paths.
        let n = 17u32;
        let amps: Vec<Complex64> = (0..1usize << n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos() * 0.5))
            .collect();
        let mut h = header(Phase::Dmav);
        h.n = n;
        let mut reference: Option<Vec<u8>> = None;
        for shards in [1usize, 2, 4, 16] {
            let path = tmp_file(&format!("flat-shards-{shards}"));
            write_checkpoint(
                &path,
                &h,
                CheckpointPayload::Flat {
                    amps: &amps,
                    shards,
                },
            )
            .unwrap();
            let bytes = std::fs::read(&path).unwrap();
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(&bytes, want, "shards={shards}"),
            }
            let (_, state) = read_checkpoint(&path).unwrap();
            match state {
                CheckpointState::Flat(v) => assert_eq!(v, amps, "shards={shards}"),
                _ => panic!("expected flat payload"),
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn dd_checkpoint_round_trips() {
        let path = tmp_file("dd");
        let payload = b"pretend-qddv1-bytes".to_vec();
        write_checkpoint(&path, &header(Phase::Dd), CheckpointPayload::Dd(&payload)).unwrap();
        let (h, state) = read_checkpoint(&path).unwrap();
        assert_eq!(h.phase, Phase::Dd);
        match state {
            CheckpointState::Dd(b) => assert_eq!(b, payload),
            _ => panic!("expected dd payload"),
        }
        // Header-only peek agrees and is cheap.
        assert_eq!(read_header(&path).unwrap(), h);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_and_bitflip_is_rejected_without_panic() {
        let path = tmp_file("corrupt");
        let amps: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(1.0 / (i + 1) as f64, 0.0))
            .collect();
        write_checkpoint(
            &path,
            &header(Phase::Dmav),
            CheckpointPayload::Flat {
                amps: &amps,
                shards: 2,
            },
        )
        .unwrap();
        let good = std::fs::read(&path).unwrap();

        let damaged = tmp_file("damaged");
        for len in 0..good.len() {
            std::fs::write(&damaged, &good[..len]).unwrap();
            assert!(
                matches!(
                    read_checkpoint(&damaged),
                    Err(FlatDdError::CorruptCheckpoint { .. })
                ),
                "truncation to {len} bytes must be CorruptCheckpoint"
            );
        }
        for i in 0..good.len() {
            let mut bytes = good.clone();
            bytes[i] ^= 0x10;
            std::fs::write(&damaged, &bytes).unwrap();
            assert!(
                matches!(
                    read_checkpoint(&damaged),
                    Err(FlatDdError::CorruptCheckpoint { .. })
                ),
                "bit flip at byte {i} must be CorruptCheckpoint"
            );
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&damaged).ok();
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let e = read_checkpoint(Path::new("/nonexistent/flatdd.ckpt")).unwrap_err();
        assert!(matches!(e, FlatDdError::Io(_)));
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        use qcircuit::generators;
        let a = generators::ghz(6);
        let b = generators::ghz(6);
        let c = generators::ghz(7);
        let d = generators::qft(6);
        assert_eq!(circuit_fingerprint(&a), circuit_fingerprint(&b));
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&c));
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&d));

        let base = crate::sim::FlatDdConfig::default();
        let mut other_threads = base;
        other_threads.threads = 1;
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&other_threads),
            "thread count must not affect the fingerprint"
        );
        let mut other_shards = base;
        other_shards.flat_shards = 8;
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&other_shards),
            "shard count must not affect the fingerprint (resume may re-shard)"
        );
        let mut other_policy = base;
        other_policy.conversion = crate::sim::ConversionPolicy::Never;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_policy));
        let mut other_floor = base;
        other_floor.governor.approx_fidelity_floor = Some(0.9);
        assert_eq!(
            config_fingerprint(&base),
            config_fingerprint(&other_floor),
            "the approx floor must not affect the fingerprint (a breached \
             run may resume with the floor newly armed)"
        );
    }
}
