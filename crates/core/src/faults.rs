//! Deterministic fault injection (failpoint registry).
//!
//! Every degradation path the simulator promises — refused conversions on
//! allocation failure, typed errors on worker panics, the numerical-health
//! watchdog, checkpoint corruption rejection — is only *theoretically*
//! correct until something actually fails. This registry turns each failure
//! mode into a named **site** that tests and CI can trip on demand, so every
//! recovery path is exercised deterministically instead of waiting for a
//! real OOM or cosmic ray.
//!
//! ## Activation
//!
//! Faults are compiled in always. The process-global registry (used by the
//! CLI and by any simulator not given its own) arms through the environment:
//!
//! ```text
//! FLATDD_FAULTS=site:action[:when][,site:action[:when]...]
//! ```
//!
//! * `site` — one of [`sites`] (e.g. `alloc.flat`, `checkpoint.bitflip`).
//! * `action` — what to do when the site fires: `error` (report failure),
//!   `panic`, `nan` (poison an amplitude), `truncate=N` (cut a checkpoint
//!   file to `N` bytes), `bitflip=K` (flip bit `K` of a checkpoint file).
//!   Sites interpret the action; an action a site cannot express (e.g.
//!   `truncate` at an allocation site) degrades to `error`.
//! * `when` — `once` (default: fire on the first hit only), `always`, or an
//!   integer `N` (fire on the N-th hit only, 1-based).
//!
//! Multi-tenant serving additionally needs faults scoped to one job, so a
//! chaos test can poison one simulation without touching its neighbors:
//! [`FaultRegistry`] is the instantiable form, carried per job by
//! [`crate::RunContext`] and armed with the same spec grammar.
//!
//! ## Overhead contract
//!
//! Same discipline as telemetry: with no rule armed the cost of a site is
//! **one relaxed atomic load** after first-use initialization — the
//! `telemetry_overhead` bench budget applies unchanged. The registry slow
//! path (string match + hit counting) only runs while at least one fault
//! is armed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Allocation failure of a flat amplitude buffer (initial state, conversion
/// output, DMAV scratch). Fires inside `try_flat_buffer`.
pub const SITE_ALLOC_FLAT: &str = "alloc.flat";
/// Panic on a conversion worker thread during the parallel DD-to-array
/// fill. Surfaced as [`crate::FlatDdError::WorkerPanic`].
pub const SITE_CONVERT_WORKER: &str = "convert.worker_panic";
/// NaN poisoning of amplitude 0 of the flat state after a gate — must trip
/// the numerical-health watchdog at its next check.
pub const SITE_STATE_NAN: &str = "state.nan";
/// Truncates a checkpoint file before its atomic installation.
pub const SITE_CKPT_TRUNCATE: &str = "checkpoint.truncate";
/// Flips one bit of a checkpoint file before its atomic installation.
pub const SITE_CKPT_BITFLIP: &str = "checkpoint.bitflip";
/// IO error while persisting a spool job record (`flatdd-serve`). Any
/// action degrades to `error`: the persist call reports failure and the
/// caller's in-memory state must stay coherent.
pub const SITE_SPOOL_WRITE: &str = "spool.write";
/// Disk-full (`ENOSPC`-shaped IO error) at checkpoint installation time —
/// the temp file is written but the atomic rename is denied. The `panic`
/// action models the process dying at the install point instead (the seam
/// the serve-layer crash-loop quarantine is exercised through); every
/// other action degrades to `error`.
pub const SITE_CKPT_ENOSPC: &str = "checkpoint.enospc";

/// Every registered fault site, for smoke tests that iterate the catalog.
pub fn sites() -> &'static [&'static str] {
    &[
        SITE_ALLOC_FLAT,
        SITE_CONVERT_WORKER,
        SITE_STATE_NAN,
        SITE_CKPT_TRUNCATE,
        SITE_CKPT_BITFLIP,
        SITE_SPOOL_WRITE,
        SITE_CKPT_ENOSPC,
    ]
}

/// What an armed site does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Report the operation as failed (typed error on the normal surface).
    Error,
    /// Panic at the site (exercises unwind containment).
    Panic,
    /// Poison a value with NaN.
    Nan,
    /// Truncate the target file to this many bytes.
    Truncate(u64),
    /// Flip this bit index (over the whole file, wrapping).
    BitFlip(u64),
}

impl FaultAction {
    /// Stable label used in telemetry events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultAction::Error => "error",
            FaultAction::Panic => "panic",
            FaultAction::Nan => "nan",
            FaultAction::Truncate(_) => "truncate",
            FaultAction::BitFlip(_) => "bitflip",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum When {
    Once,
    Always,
    OnNth(u64),
}

#[derive(Debug)]
struct Rule {
    site: String,
    action: FaultAction,
    when: When,
    hits: u64,
    fired: bool,
}

/// An isolated set of armed fault rules. One lives behind [`global`] for
/// the single-tenant surface; serving hands each job its own so chaos in
/// one simulation cannot leak into another.
#[derive(Debug)]
pub struct FaultRegistry {
    /// `true` while at least one rule is armed — the one-load fast path.
    armed: AtomicBool,
    rules: Mutex<Vec<Rule>>,
}

impl Default for FaultRegistry {
    fn default() -> Self {
        Self::disarmed()
    }
}

impl FaultRegistry {
    /// A registry with nothing armed.
    pub fn disarmed() -> Self {
        FaultRegistry {
            armed: AtomicBool::new(false),
            rules: Mutex::new(Vec::new()),
        }
    }

    /// A registry armed from a spec string (the `FLATDD_FAULTS` grammar).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let reg = Self::disarmed();
        reg.set_spec(spec)?;
        Ok(reg)
    }

    /// Replaces the armed rule set from a spec string; an empty spec
    /// disarms everything.
    pub fn set_spec(&self, spec: &str) -> Result<(), String> {
        let parsed = parse_spec(spec)?;
        let mut guard = self.rules.lock().unwrap_or_else(|e| e.into_inner());
        self.armed.store(!parsed.is_empty(), Ordering::Relaxed);
        *guard = parsed;
        Ok(())
    }

    /// Disarms every fault (test teardown).
    pub fn clear(&self) {
        let _ = self.set_spec("");
    }

    /// The failpoint probe: returns the armed action when `site` fires on
    /// this hit. The disarmed fast path is a single relaxed atomic load.
    #[inline]
    pub fn fires(&self, site: &str) -> Option<FaultAction> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        self.fires_slow(site)
    }

    #[cold]
    fn fires_slow(&self, site: &str) -> Option<FaultAction> {
        let mut guard = self.rules.lock().unwrap_or_else(|e| e.into_inner());
        let rule = guard.iter_mut().find(|r| r.site == site)?;
        rule.hits += 1;
        let fire = match rule.when {
            When::Always => true,
            When::Once => !rule.fired,
            When::OnNth(n) => rule.hits == n,
        };
        if !fire {
            return None;
        }
        rule.fired = true;
        let action = rule.action;
        drop(guard);
        qtelemetry::counter("faults.injected").inc();
        if qtelemetry::enabled() {
            qtelemetry::emit(qtelemetry::Event::Fault {
                ts_us: qtelemetry::now_us(),
                site: site.to_string(),
                action: action.label(),
            });
        }
        Some(action)
    }
}

/// The process-global registry, armed once from `FLATDD_FAULTS`. The CLI
/// and any simulator without a scoped [`crate::RunContext`] probe this one.
pub fn global() -> &'static FaultRegistry {
    static GLOBAL: OnceLock<FaultRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let spec = std::env::var("FLATDD_FAULTS").unwrap_or_default();
        FaultRegistry::from_spec(&spec).unwrap_or_else(|e| {
            eprintln!("[flatdd] ignoring malformed FLATDD_FAULTS: {e}");
            FaultRegistry::disarmed()
        })
    })
}

/// Replaces the [`global`] rule set (see [`FaultRegistry::set_spec`]).
/// Intended for tests, which must not mutate process-global environment.
pub fn set_spec(spec: &str) -> Result<(), String> {
    global().set_spec(spec)
}

/// Disarms every [`global`] fault (test teardown).
pub fn clear() {
    global().clear();
}

/// Probes the [`global`] registry (see [`FaultRegistry::fires`]).
#[inline]
pub fn fires(site: &str) -> Option<FaultAction> {
    global().fires(site)
}

fn parse_spec(spec: &str) -> Result<Vec<Rule>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let mut fields = part.split(':');
        let site = fields.next().unwrap_or_default().trim();
        if site.is_empty() {
            return Err(format!("`{part}`: missing site"));
        }
        let action_raw = fields
            .next()
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .ok_or_else(|| format!("`{part}`: missing action"))?;
        let action = parse_action(action_raw).ok_or_else(|| {
            format!(
                "`{part}`: unknown action `{action_raw}` (error|panic|nan|truncate=N|bitflip=K)"
            )
        })?;
        let when = match fields.next().map(str::trim) {
            None | Some("once") | Some("") => When::Once,
            Some("always") => When::Always,
            Some(n) => When::OnNth(
                n.parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("`{part}`: bad trigger `{n}` (once|always|N>=1)"))?,
            ),
        };
        if fields.next().is_some() {
            return Err(format!("`{part}`: too many `:` fields"));
        }
        out.push(Rule {
            site: site.to_string(),
            action,
            when,
            hits: 0,
            fired: false,
        });
    }
    Ok(out)
}

fn parse_action(raw: &str) -> Option<FaultAction> {
    let (name, param) = match raw.split_once('=') {
        Some((n, p)) => (n, Some(p)),
        None => (raw, None),
    };
    match (name, param) {
        ("error", None) => Some(FaultAction::Error),
        ("panic", None) => Some(FaultAction::Panic),
        ("nan", None) => Some(FaultAction::Nan),
        ("truncate", p) => Some(FaultAction::Truncate(
            p.map_or(Some(0), |p| p.parse().ok())?,
        )),
        ("bitflip", p) => Some(FaultAction::BitFlip(p.map_or(Some(0), |p| p.parse().ok())?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests touching it must not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_sites_never_fire() {
        let _g = LOCK.lock().unwrap();
        clear();
        for site in sites() {
            assert_eq!(fires(site), None);
        }
    }

    #[test]
    fn once_fires_exactly_once() {
        let _g = LOCK.lock().unwrap();
        set_spec("alloc.flat:error").unwrap();
        assert_eq!(fires(SITE_ALLOC_FLAT), Some(FaultAction::Error));
        assert_eq!(fires(SITE_ALLOC_FLAT), None);
        assert_eq!(fires(SITE_STATE_NAN), None, "other sites stay quiet");
        clear();
    }

    #[test]
    fn always_and_nth_triggers() {
        let _g = LOCK.lock().unwrap();
        set_spec("state.nan:nan:always, checkpoint.bitflip:bitflip=37:3").unwrap();
        for _ in 0..4 {
            assert_eq!(fires(SITE_STATE_NAN), Some(FaultAction::Nan));
        }
        assert_eq!(fires(SITE_CKPT_BITFLIP), None);
        assert_eq!(fires(SITE_CKPT_BITFLIP), None);
        assert_eq!(fires(SITE_CKPT_BITFLIP), Some(FaultAction::BitFlip(37)));
        assert_eq!(fires(SITE_CKPT_BITFLIP), None);
        clear();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = LOCK.lock().unwrap();
        for bad in [
            "alloc.flat",
            "alloc.flat:frobnicate",
            "alloc.flat:error:sometimes",
            "alloc.flat:error:0",
            ":error",
            "a:truncate=x",
        ] {
            assert!(parse_spec(bad).is_err(), "`{bad}` must be rejected");
        }
        assert!(parse_spec("").unwrap().is_empty());
        assert_eq!(parse_spec("a:truncate=128").unwrap()[0].action, {
            FaultAction::Truncate(128)
        });
        clear();
    }

    #[test]
    fn scoped_registries_fire_independently() {
        // No LOCK needed: scoped registries never touch the global one.
        let a = FaultRegistry::from_spec("alloc.flat:error:always").unwrap();
        let b = FaultRegistry::disarmed();
        assert_eq!(a.fires(SITE_ALLOC_FLAT), Some(FaultAction::Error));
        assert_eq!(b.fires(SITE_ALLOC_FLAT), None);
        assert_eq!(a.fires(SITE_ALLOC_FLAT), Some(FaultAction::Error));
        a.clear();
        assert_eq!(a.fires(SITE_ALLOC_FLAT), None);
    }
}
