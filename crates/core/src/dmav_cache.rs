//! DMAV with caching (Section 3.2.2, Algorithm 2, Figures 6 and 7).
//!
//! Each thread evaluates the gate matrix in **column space**: it owns the
//! `h`-sized input sub-vector `V[tid*h, (tid+1)*h)` and produces output
//! segments at varying row offsets into a *partial-output buffer*. Because a
//! DD gate matrix repeats sub-matrices (tensor-product regularity), a thread
//! frequently meets the same sub-matrix node twice with different scalar
//! coefficients — the cached result is then reused with one SIMD-friendly
//! scalar multiplication instead of a full recursive multiply (Figure 6).
//!
//! Threads whose output segments don't overlap share one buffer (saving the
//! memory and the final summation work); the buffers are summed into `W` at
//! the end (Algorithm 2, lines 11-13).

use crate::dmav::run_task;
use crate::error::FlatDdError;
use crate::pool::ThreadPool;
use qarray::{vecops, SyncUnsafeSlice};
use qcircuit::Complex64;
use qdd::fxhash::FxHashMap;
use qdd::{DdPackage, MEdge};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-thread column-space tasks plus the buffer-sharing assignment
/// (the paper's `v_M`, `v_P`, `v_f`, `v_B`).
pub struct DmavCacheAssignment {
    /// Thread count (power of two).
    pub t: usize,
    /// Sub-vector size `h = 2^n / t`.
    pub h: usize,
    /// Qubit count.
    pub n: usize,
    /// Sub-matrix DD edges per thread (`v_M`).
    pub m_edges: Vec<Vec<MEdge>>,
    /// Output-segment start indices per thread (`v_P`).
    pub ip: Vec<Vec<usize>>,
    /// Weight products (excluding the stored edge's weight) per thread (`v_f`).
    pub f: Vec<Vec<Complex64>>,
    /// Buffer index per thread (`v_B`).
    pub buffer_of: Vec<usize>,
    /// Number of distinct buffers (`size(B)`).
    pub num_buffers: usize,
    /// `buffer_segments[b][seg]`: does buffer `b` hold live data for output
    /// segment `seg`? (Unoccupied segments are neither zeroed nor summed.)
    pub buffer_segments: Vec<Vec<bool>>,
}

impl DmavCacheAssignment {
    /// Runs `AssignCache` (Algorithm 2, lines 16-26). Panicking wrapper over
    /// [`Self::try_build`] for callers that have already validated `t`.
    pub fn build(pkg: &DdPackage, m: MEdge, n: usize, t: usize) -> Self {
        Self::try_build(pkg, m, n, t).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible `AssignCache`: `t` must be a power of two with
    /// `log2(t) <= n`, otherwise [`FlatDdError::InvalidInput`] is returned.
    pub fn try_build(pkg: &DdPackage, m: MEdge, n: usize, t: usize) -> Result<Self, FlatDdError> {
        if !t.is_power_of_two() {
            return Err(FlatDdError::InvalidInput(format!(
                "thread count must be a power of two, got {t}"
            )));
        }
        let log_t = t.trailing_zeros() as usize;
        if log_t > n {
            return Err(FlatDdError::InvalidInput(format!(
                "need log2(t) <= n for the border-level scheme, got t={t} n={n}"
            )));
        }
        let mut asg = DmavCacheAssignment {
            t,
            h: (1usize << n) / t,
            n,
            m_edges: vec![Vec::new(); t],
            ip: vec![Vec::new(); t],
            f: vec![Vec::new(); t],
            buffer_of: vec![0; t],
            num_buffers: 0,
            buffer_segments: Vec::new(),
        };
        let border = n as i64 - log_t as i64 - 1;
        asg.assign(pkg, m, Complex64::ONE, 0, 0, n as i64 - 1, border);
        asg.assign_buffers();
        Ok(asg)
    }

    // The argument list mirrors Assign/AssignCache in the paper verbatim.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &mut self,
        pkg: &DdPackage,
        m_r: MEdge,
        f_r: Complex64,
        u: usize,
        i_p: usize,
        l: i64,
        border: i64,
    ) {
        if m_r.is_zero() {
            return;
        }
        if l == border {
            self.m_edges[u].push(m_r);
            self.ip[u].push(i_p);
            self.f[u].push(f_r);
            return;
        }
        let node = pkg.m_node(m_r.n);
        debug_assert_eq!(node.level as i64, l);
        let e = node.e;
        let w = f_r * pkg.cval(m_r.w);
        let stride = self.t >> (self.n as i64 - l) as usize; // t / 2^(n-l)
                                                             // Column-major traversal: the thread index follows the column j,
                                                             // the partial-output index follows the row i (lines 20-21).
        for j in 0..2usize {
            for i in 0..2usize {
                self.assign(
                    pkg,
                    e[2 * i + j],
                    w,
                    u + j * stride,
                    i_p + (i << l),
                    l - 1,
                    border,
                );
            }
        }
    }

    /// Buffer sharing (lines 22-25): thread `i` joins the first buffer whose
    /// occupied segments don't overlap its own; otherwise it opens a new
    /// buffer.
    fn assign_buffers(&mut self) {
        let mut occupied: Vec<Vec<bool>> = Vec::new();
        for u in 0..self.t {
            let mut segs = vec![false; self.t];
            for &p in &self.ip[u] {
                segs[p / self.h] = true;
            }
            let found = occupied
                .iter()
                .position(|occ| occ.iter().zip(&segs).all(|(&a, &b)| !(a && b)));
            match found {
                Some(b) => {
                    for (o, &s) in occupied[b].iter_mut().zip(&segs) {
                        *o |= s;
                    }
                    self.buffer_of[u] = b;
                }
                None => {
                    self.buffer_of[u] = occupied.len();
                    occupied.push(segs);
                }
            }
        }
        if occupied.is_empty() {
            occupied.push(vec![false; self.t]);
        }
        self.num_buffers = occupied.len();
        self.buffer_segments = occupied;
    }

    /// Total number of tasks across threads.
    pub fn total_tasks(&self) -> usize {
        self.m_edges.iter().map(|v| v.len()).sum()
    }

    /// Heap bytes held by the task lists and buffer maps (for plan-cache
    /// accounting).
    pub fn memory_bytes(&self) -> usize {
        let per_task = std::mem::size_of::<MEdge>()
            + std::mem::size_of::<usize>()
            + std::mem::size_of::<Complex64>();
        self.m_edges
            .iter()
            .map(|v| v.capacity() * per_task)
            .sum::<usize>()
            + self.buffer_of.capacity() * std::mem::size_of::<usize>()
            + self
                .buffer_segments
                .iter()
                .map(|v| v.capacity())
                .sum::<usize>()
            + 4 * self.t * std::mem::size_of::<Vec<()>>()
    }

    /// Number of cache hits this assignment will produce (repeated nodes
    /// within a thread's task list) — the `H` of the cost model.
    pub fn cache_hits(&self) -> usize {
        let mut hits = 0;
        for tasks in &self.m_edges {
            let mut seen = FxHashMap::default();
            for e in tasks {
                if seen.insert(e.n, ()).is_some() {
                    hits += 1;
                }
            }
        }
        hits
    }
}

/// Scratch buffers reused across gates to avoid per-gate allocation.
#[derive(Default)]
pub struct PartialBuffers {
    bufs: Vec<Vec<Complex64>>,
}

impl PartialBuffers {
    /// Ensures `count` buffers of length `len`, zeroing only the segments
    /// this assignment will actually touch (segment size `h`, `len / h`
    /// segments per buffer). Both fresh and reused buffers are zeroed by
    /// the pool workers claiming segments round-robin — first-touch
    /// locality instead of the dispatcher walking them serially.
    fn prepare(
        &mut self,
        count: usize,
        len: usize,
        segments: &[Vec<bool>],
        h: usize,
        pool: &ThreadPool,
    ) {
        let groups = len.checked_div(h).unwrap_or(1);
        let t = pool.size();
        self.bufs.resize_with(count.max(self.bufs.len()), Vec::new);
        let mut reused: Vec<(SyncUnsafeSlice<'_, Complex64>, &Vec<bool>)> = Vec::new();
        for (b, segs) in self.bufs.iter_mut().zip(segments).take(count) {
            if b.len() != len {
                // Fresh allocation: first-touch zero every segment from the
                // worker that will own it during the multiply.
                qarray::first_touch_zeroed(b, len, groups, |z| {
                    if t > 1 {
                        pool.run(|tid| {
                            for s in (tid..z.shards()).step_by(t) {
                                z.zero_shard(s);
                            }
                        });
                    }
                })
                .unwrap_or_else(|_| panic!("cannot allocate DMAV partial buffer"));
            } else {
                reused.push((SyncUnsafeSlice::new(b.as_mut_slice()), segs));
            }
        }
        if reused.is_empty() {
            return;
        }
        pool.run(|tid| {
            for g in (tid..groups).step_by(t) {
                for (view, segs) in &reused {
                    if segs.get(g).copied().unwrap_or(false) {
                        // SAFETY: each segment `g` is claimed by exactly one
                        // worker (round-robin), per buffer.
                        unsafe { view.slice_mut(g * h, h) }.fill(Complex64::ZERO);
                    }
                }
            }
        });
    }

    /// Drops all held buffers (the DMAV rung of the memory-pressure
    /// degradation ladder) and returns the bytes released. The next cached
    /// DMAV re-allocates what it needs.
    pub fn release(&mut self) -> usize {
        let released = self.memory_bytes();
        self.bufs = Vec::new();
        released
    }

    /// Bytes currently held.
    pub fn memory_bytes(&self) -> usize {
        self.bufs
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<Complex64>())
            .sum()
    }
}

/// Execution statistics of one cached DMAV.
#[derive(Clone, Copy, Debug, Default)]
pub struct DmavCacheRunStats {
    /// Tasks executed.
    pub tasks: usize,
    /// Cache hits (tasks answered by scalar multiplication).
    pub hits: usize,
    /// Buffers used.
    pub buffers: usize,
}

/// DMAV with caching: `W = M * V`. `w` is fully overwritten.
///
/// The assignment's `asg.t` groups are the dispatch shards; pool workers
/// claim groups round-robin (`tid, tid + T, ...`). `asg.t == pool.size()`
/// reproduces the legacy one-group-per-thread schedule exactly.
pub fn dmav_cached(
    pkg: &DdPackage,
    asg: &DmavCacheAssignment,
    v: &[Complex64],
    w: &mut [Complex64],
    pool: &ThreadPool,
    scratch: &mut PartialBuffers,
) -> DmavCacheRunStats {
    assert_eq!(v.len(), 1usize << asg.n);
    assert_eq!(w.len(), v.len());
    let h = asg.h;
    let dim = v.len();
    let t = pool.size();
    scratch.prepare(asg.num_buffers, dim, &asg.buffer_segments, h, pool);
    let views: Vec<SyncUnsafeSlice<'_, Complex64>> = scratch
        .bufs
        .iter_mut()
        .take(asg.num_buffers)
        .map(|b| SyncUnsafeSlice::new(b.as_mut_slice()))
        .collect();
    let hit_count = AtomicUsize::new(0);

    pool.run(|tid| {
        // Per-group, per-gate cache: node id -> (effective weight, start).
        // The cache must reset between groups: a cached result lives in the
        // *group's* buffer and was computed from the *group's* input
        // sub-vector, so it is meaningless to any other group.
        let mut cache: FxHashMap<u32, (Complex64, usize)> = FxHashMap::default();
        let mut hits = 0usize;
        for g in (tid..asg.t).step_by(t) {
            cache.clear();
            let buf = &views[asg.buffer_of[g]];
            for j in 0..asg.m_edges[g].len() {
                let edge = asg.m_edges[g][j];
                let start = asg.ip[g][j];
                // Effective linear factor of this task (includes the stored
                // edge's own weight; two tasks with the same node differ
                // only by this factor).
                let full = asg.f[g][j] * pkg.cval(edge.w);
                if let Some(&(cached_w, cached_start)) = cache.get(&edge.n) {
                    let factor = full / cached_w;
                    // SAFETY: `cached_start` is a segment this group wrote
                    // earlier; `start` is a segment only this task writes.
                    // Groups sharing the buffer own disjoint segment sets,
                    // and each group is claimed by exactly one worker.
                    let (src, dst) =
                        unsafe { (buf.slice(cached_start, h), buf.slice_mut(start, h)) };
                    vecops::scale(dst, factor, src);
                    hits += 1;
                } else {
                    // SAFETY: same disjointness argument as above.
                    let dst = unsafe { buf.slice_mut(start, h) };
                    run_task(pkg, edge, v, dst, g * h, 0, asg.f[g][j]);
                    cache.insert(edge.n, (full, start));
                }
            }
        }
        hit_count.fetch_add(hits, Ordering::Relaxed);
    });

    // Sum the partial buffers into W (lines 11-13): group `g` owns output
    // rows [g*h, (g+1)*h). Only buffers whose segment `g` is occupied
    // contribute.
    let wview = SyncUnsafeSlice::new(w);
    pool.run(|tid| {
        for g in (tid..asg.t).step_by(t) {
            // SAFETY: output row chunks are disjoint per group, each group
            // is claimed by one worker; buffers are only read here.
            let out = unsafe { wview.slice_mut(g * h, h) };
            out.fill(Complex64::ZERO);
            for (view, segs) in views.iter().zip(&asg.buffer_segments) {
                if !segs[g] {
                    continue;
                }
                let part = unsafe { view.slice(g * h, h) };
                vecops::sum_into(out, part);
            }
        }
    });

    DmavCacheRunStats {
        tasks: asg.total_tasks(),
        hits: hit_count.load(Ordering::Relaxed),
        buffers: asg.num_buffers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmav::{dmav_no_cache, DmavAssignment};
    use qcircuit::complex::state_distance;
    use qcircuit::gate::{Control, Gate, GateKind};
    use qcircuit::{dense, generators};

    const TOL: f64 = 1e-9;

    fn rand_state(n: usize, seed: u64) -> Vec<Complex64> {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x as f64 / u64::MAX as f64) - 0.5
        };
        (0..(1usize << n))
            .map(|_| Complex64::new(next(), next()))
            .collect()
    }

    fn check_gate(g: &Gate, n: usize, t: usize) -> DmavCacheRunStats {
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(g, n);
        let asg = DmavCacheAssignment::build(&pkg, m, n, t);
        let v = rand_state(n, 11);
        let mut w = vec![Complex64::ZERO; 1 << n];
        let pool = ThreadPool::new(t);
        let mut scratch = PartialBuffers::default();
        let stats = dmav_cached(&pkg, &asg, &v, &mut w, &pool, &mut scratch);
        let mut want = v.clone();
        dense::apply_gate(&mut want, g);
        assert!(state_distance(&w, &want) < TOL, "gate {g} n={n} t={t}");
        stats
    }

    #[test]
    fn cached_matches_dense_across_gates_and_threads() {
        for t in [1usize, 2, 4, 8] {
            for g in [
                Gate::new(GateKind::H, 0),
                Gate::new(GateKind::H, 5),
                Gate::new(GateKind::RY(0.9), 3),
                Gate::new(GateKind::T, 1),
                Gate::controlled(GateKind::X, 2, vec![Control::pos(5)]),
                Gate::controlled(GateKind::X, 5, vec![Control::pos(0)]),
                Gate::controlled(GateKind::H, 4, vec![Control::neg(1)]),
                Gate::controlled(GateKind::X, 0, vec![Control::pos(2), Control::pos(4)]),
            ] {
                check_gate(&g, 6, t);
            }
        }
    }

    #[test]
    fn hadamard_on_top_qubit_hits_cache() {
        // H on the top qubit: each thread sees the identity sub-matrix node
        // twice (a*m and b*m) — the Figure 6 scenario.
        let stats = check_gate(&Gate::new(GateKind::H, 5), 6, 2);
        assert!(stats.hits > 0, "expected cache hits, got {stats:?}");
    }

    #[test]
    fn diagonal_gate_has_no_hits_but_shares_buffers() {
        // T on the top qubit: block-diagonal, each thread one task, outputs
        // don't overlap => hits 0, a single shared buffer.
        let stats = check_gate(&Gate::new(GateKind::T, 5), 6, 2);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.buffers, 1);
    }

    #[test]
    fn dense_top_gate_needs_two_buffers() {
        // H on the top qubit with t=2: both threads write both halves —
        // overlapping outputs force 2 buffers.
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 5), 6);
        let asg = DmavCacheAssignment::build(&pkg, m, 6, 2);
        assert_eq!(asg.num_buffers, 2);
        assert_eq!(asg.cache_hits(), 2); // one repeat per thread
    }

    #[test]
    fn cached_equals_uncached_on_random_fused_matrices() {
        let n = 6;
        let c = generators::random_circuit(n, 8, 19);
        let pkg = DdPackage::default();
        let mut fused = pkg.identity_dd(n);
        for g in c.iter() {
            let gd = pkg.gate_dd(g, n);
            fused = pkg.mul_mm(gd, fused);
        }
        let v = rand_state(n, 23);
        let pool = ThreadPool::new(4);

        let asg_nc = DmavAssignment::build(&pkg, fused, n, 4);
        let mut w1 = vec![Complex64::ZERO; 1 << n];
        dmav_no_cache(&pkg, &asg_nc, &v, &mut w1, &pool);

        let asg_c = DmavCacheAssignment::build(&pkg, fused, n, 4);
        let mut w2 = vec![Complex64::ZERO; 1 << n];
        let mut scratch = PartialBuffers::default();
        dmav_cached(&pkg, &asg_c, &v, &mut w2, &pool, &mut scratch);

        assert!(state_distance(&w1, &w2) < TOL);
    }

    #[test]
    fn whole_circuit_via_cached_dmav() {
        let n = 6;
        let c = generators::dnn(n, 2, 31);
        let pkg = DdPackage::default();
        let pool = ThreadPool::new(4);
        let mut scratch = PartialBuffers::default();
        let mut v = dense::zero_state(n);
        let mut w = vec![Complex64::ZERO; 1 << n];
        for g in c.iter() {
            let m = pkg.gate_dd(g, n);
            let asg = DmavCacheAssignment::build(&pkg, m, n, 4);
            dmav_cached(&pkg, &asg, &v, &mut w, &pool, &mut scratch);
            std::mem::swap(&mut v, &mut w);
        }
        assert!(state_distance(&v, &dense::simulate(&c)) < TOL);
    }

    #[test]
    fn scratch_buffers_are_reused() {
        let mut scratch = PartialBuffers::default();
        check_gate(&Gate::new(GateKind::H, 4), 5, 2);
        let pool = ThreadPool::new(2);
        let segs = vec![vec![true, true], vec![true, false]];
        scratch.prepare(2, 32, &segs, 16, &pool);
        let bytes = scratch.memory_bytes();
        scratch.prepare(2, 32, &segs, 16, &pool);
        assert_eq!(scratch.memory_bytes(), bytes, "no reallocation on reuse");
    }

    #[test]
    fn stale_buffer_garbage_never_leaks_into_output() {
        // Run a dense gate (fills buffers), then a sparse diagonal gate that
        // leaves most segments untouched: stale data must not be summed.
        let n = 6;
        let t = 4;
        let pkg = DdPackage::default();
        let pool = ThreadPool::new(t);
        let mut scratch = PartialBuffers::default();
        let v = rand_state(n, 3);

        let dense_m = pkg.gate_dd(&Gate::new(GateKind::H, 5), n);
        let asg1 = DmavCacheAssignment::build(&pkg, dense_m, n, t);
        let mut w1 = vec![Complex64::ZERO; 1 << n];
        dmav_cached(&pkg, &asg1, &v, &mut w1, &pool, &mut scratch);

        let diag_m = pkg.gate_dd(&Gate::new(GateKind::T, 5), n);
        let asg2 = DmavCacheAssignment::build(&pkg, diag_m, n, t);
        let mut w2 = vec![Complex64::ZERO; 1 << n];
        dmav_cached(&pkg, &asg2, &w1, &mut w2, &pool, &mut scratch);

        let mut want = v.clone();
        dense::apply_gate(&mut want, &Gate::new(GateKind::H, 5));
        dense::apply_gate(&mut want, &Gate::new(GateKind::T, 5));
        assert!(state_distance(&w2, &want) < TOL);
    }

    #[test]
    fn shard_count_decoupled_from_pool_size() {
        // Groups (shards) no longer have to match the pool: workers claim
        // groups round-robin, and the per-group cache resets per group.
        let n = 6;
        let pkg = DdPackage::default();
        let v = rand_state(n, 29);
        for g in [
            Gate::new(GateKind::H, 5),
            Gate::controlled(GateKind::X, 2, vec![Control::pos(5)]),
        ] {
            let m = pkg.gate_dd(&g, n);
            let mut want = v.clone();
            dense::apply_gate(&mut want, &g);
            for (threads, shards) in [(2usize, 8usize), (4, 2), (1, 4), (3, 8), (4, 16)] {
                let asg = DmavCacheAssignment::build(&pkg, m, n, shards);
                let mut w = vec![Complex64::ZERO; 1 << n];
                let pool = ThreadPool::new(threads);
                let mut scratch = PartialBuffers::default();
                dmav_cached(&pkg, &asg, &v, &mut w, &pool, &mut scratch);
                assert!(
                    state_distance(&w, &want) < TOL,
                    "gate {g} t={threads} s={shards}"
                );
            }
        }
    }

    #[test]
    fn try_build_reports_invalid_input() {
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 0), 3);
        assert!(DmavCacheAssignment::try_build(&pkg, m, 3, 5).is_err());
        assert!(DmavCacheAssignment::try_build(&pkg, m, 3, 16).is_err());
        assert!(DmavCacheAssignment::try_build(&pkg, m, 3, 2).is_ok());
    }

    #[test]
    fn assignment_shape_figure_7() {
        // Figure 7: H on the top qubit of n=3 with 4 threads.
        let pkg = DdPackage::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 2), 3);
        let asg = DmavCacheAssignment::build(&pkg, m, 3, 4);
        assert_eq!(asg.h, 2);
        // Threads t1/t2 (columns of the left half) each get 2 tasks with
        // non-overlapping rows vs. each other in the paper's example...
        assert_eq!(asg.total_tasks(), 8);
        // Each thread's two tasks reference the same node => 4 hits total.
        assert_eq!(asg.cache_hits(), 4);
    }
}
