//! The DMAV computational cost model (Section 3.2.3, Equations 5 and 6).
//!
//! Costs are modeled in MAC operations per thread. For a DMAV without
//! caching with `K1` total MACs: `C1 = K1 / t` (Eq. 5). For a DMAV with
//! caching: `C2 = K2/t + 2^n/(d*t) * (H/t + b)` (Eq. 6), where `K2` counts
//! the MACs of *unique* border-level tasks, `H` the cache hits (repeated
//! tasks answered by a scalar multiplication of size `2^n/t`), `b` the
//! number of partial-output buffers to sum, and `d` the SIMD width.
//!
//! FlatDD picks caching per gate by evaluating both equations and choosing
//! the minimum.

use crate::dmav_cache::DmavCacheAssignment;
use qdd::fxhash::FxHashMap;
use qdd::{DdPackage, MEdge, MacTable};

/// Tunables of the cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// SIMD width `d`: data elements processed per vector instruction
    /// (the paper uses AVX2, d = 4 for f64).
    pub simd_width: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { simd_width: 4 }
    }
}

/// The outcome of analyzing one gate matrix.
#[derive(Clone, Copy, Debug)]
pub struct CostAnalysis {
    /// Total MAC operations (`K1`).
    pub k1: u64,
    /// MAC operations of unique tasks only (`K2`).
    pub k2: u64,
    /// Cache hits the cached assignment would produce (`H`).
    pub hits: u64,
    /// Partial-output buffers (`b`).
    pub buffers: usize,
    /// Modeled cost without caching (Eq. 5).
    pub c1: f64,
    /// Modeled cost with caching (Eq. 6).
    pub c2: f64,
}

impl CostAnalysis {
    /// True when the model prefers the cached kernel.
    pub fn prefer_cached(&self) -> bool {
        self.c2 < self.c1
    }

    /// `min(C1, C2)` — the cost FlatDD charges this DMAV (Section 3.2.3).
    pub fn cost(&self) -> f64 {
        self.c1.min(self.c2)
    }
}

impl CostModel {
    /// Eq. 5 only: the no-cache cost for a given MAC count.
    pub fn cost_no_cache(&self, k1: u64, t: usize) -> f64 {
        k1 as f64 / t as f64
    }

    /// Eq. 6 only.
    pub fn cost_cached(&self, k2: u64, hits: u64, buffers: usize, n: usize, t: usize) -> f64 {
        let d = self.simd_width as f64;
        let t_f = t as f64;
        let dim = (1u64 << n) as f64;
        k2 as f64 / t_f + dim / (d * t_f) * (hits as f64 / t_f + buffers as f64)
    }

    /// Analyzes matrix `m` for a `t`-thread DMAV over `n` qubits, using a
    /// prebuilt cached assignment (so the caller can reuse it for the actual
    /// multiplication).
    pub fn analyze_with_assignment(
        &self,
        pkg: &DdPackage,
        mac: &mut MacTable,
        asg: &DmavCacheAssignment,
        m: MEdge,
        n: usize,
        t: usize,
    ) -> CostAnalysis {
        let k1 = mac.count(pkg, m);
        // K2: MACs of unique border-level tasks; H: repeated tasks.
        let mut k2 = 0u64;
        let mut hits = 0u64;
        for tasks in &asg.m_edges {
            let mut seen: FxHashMap<u32, ()> = FxHashMap::default();
            for e in tasks {
                if seen.insert(e.n, ()).is_some() {
                    hits += 1;
                } else {
                    k2 += mac.count(pkg, *e);
                }
            }
        }
        let c1 = self.cost_no_cache(k1, t);
        let c2 = self.cost_cached(k2, hits, asg.num_buffers, n, t);
        CostAnalysis {
            k1,
            k2,
            hits,
            buffers: asg.num_buffers,
            c1,
            c2,
        }
    }

    /// Analyzes matrix `m`, building a throwaway cached assignment.
    pub fn analyze(
        &self,
        pkg: &DdPackage,
        mac: &mut MacTable,
        m: MEdge,
        n: usize,
        t: usize,
    ) -> CostAnalysis {
        let asg = DmavCacheAssignment::build(pkg, m, n, t);
        self.analyze_with_assignment(pkg, mac, &asg, m, n, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::gate::{Control, Gate, GateKind};

    #[test]
    fn equation_5_shape() {
        let cm = CostModel::default();
        assert_eq!(cm.cost_no_cache(512, 1), 512.0);
        assert_eq!(cm.cost_no_cache(512, 4), 128.0);
    }

    #[test]
    fn equation_6_shape() {
        let cm = CostModel { simd_width: 4 };
        // K2=100, H=8, b=2, n=10, t=4:
        // 100/4 + 1024/(4*4) * (8/4 + 2) = 25 + 64*4 = 281
        let c2 = cm.cost_cached(100, 8, 2, 10, 4);
        assert!((c2 - 281.0).abs() < 1e-9);
    }

    #[test]
    fn hadamard_k1_matches_figure_8() {
        let pkg = DdPackage::default();
        let mut mac = MacTable::default();
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 2), 3);
        let a = CostModel::default().analyze(&pkg, &mut mac, m, 3, 2);
        assert_eq!(a.k1, 16, "Figure 8 counts 16 MACs for this DMAV");
        assert_eq!(a.c1, 8.0);
    }

    #[test]
    fn k2_plus_hit_macs_equals_k1() {
        // Every hit task's MACs are exactly the unique task's MACs (same
        // node), so K1 = K2 + sum over hit tasks of their (shared) counts.
        // For H (x) I over n qubits with t threads each repeated task has
        // the same count; verify the arithmetic identity on an example.
        let pkg = DdPackage::default();
        let mut mac = MacTable::default();
        let n = 6;
        let m = pkg.gate_dd(&Gate::new(GateKind::H, 5), n);
        let a = CostModel::default().analyze(&pkg, &mut mac, m, n, 2);
        // Thread layout: 2 threads x 2 tasks on the same identity node.
        assert_eq!(a.hits, 2);
        assert_eq!(a.k2 + a.hits * (a.k2 / 2), a.k1);
    }

    #[test]
    fn caching_preferred_for_repetitive_dense_gates() {
        // H on the top qubit repeats a full-size identity block per thread:
        // a textbook cache win at reasonable sizes.
        let pkg = DdPackage::default();
        let mut mac = MacTable::default();
        let n = 12;
        let m = pkg.gate_dd(&Gate::new(GateKind::H, n - 1), n);
        let a = CostModel::default().analyze(&pkg, &mut mac, m, n, 4);
        assert!(
            a.prefer_cached(),
            "expected caching to win: C1={}, C2={}",
            a.c1,
            a.c2
        );
        assert!(a.cost() <= a.c1);
    }

    #[test]
    fn caching_not_preferred_without_repetition() {
        // A diagonal gate: one task per thread, no repeats — caching only
        // adds the buffer-summation cost.
        let pkg = DdPackage::default();
        let mut mac = MacTable::default();
        let n = 10;
        let m = pkg.gate_dd(&Gate::new(GateKind::T, n - 1), n);
        let a = CostModel::default().analyze(&pkg, &mut mac, m, n, 4);
        assert_eq!(a.hits, 0);
        assert!(!a.prefer_cached(), "C1={} C2={}", a.c1, a.c2);
    }

    #[test]
    fn controlled_gates_have_smaller_k1_than_dense() {
        let pkg = DdPackage::default();
        let mut mac = MacTable::default();
        let n = 8;
        let dense_g = pkg.gate_dd(&Gate::new(GateKind::H, 3), n);
        let ctrl_g = pkg.gate_dd(&Gate::controlled(GateKind::X, 3, vec![Control::pos(6)]), n);
        let cm = CostModel::default();
        let a_dense = cm.analyze(&pkg, &mut mac, dense_g, n, 2);
        let a_ctrl = cm.analyze(&pkg, &mut mac, ctrl_g, n, 2);
        assert!(a_ctrl.k1 < a_dense.k1);
    }
}
