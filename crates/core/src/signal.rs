//! Flag-based SIGINT/SIGTERM handling.
//!
//! A default-disposition SIGINT kills the process wherever it happens to
//! be — mid-checkpoint-write, with telemetry sinks unflushed, with the run
//! unreported. This module installs async-signal-safe handlers that only
//! set an atomic flag; the simulator polls the flag at gate boundaries
//! ([`crate::FlatDdSimulator::apply`]) and turns it into a typed
//! [`crate::FlatDdError::Interrupted`] — optionally after writing a
//! checkpoint — so callers unwind through the normal error path, flush
//! their sinks, and exit with a stable code.
//!
//! The handler is one-shot per signal: the **first** SIGINT/SIGTERM sets
//! the flag and restores the default disposition, so a second signal kills
//! the process immediately (the standard escape hatch when graceful
//! shutdown hangs).
//!
//! Handlers are opt-in — nothing is installed until
//! [`install_handlers`] is called (the CLI does; library users decide).

use std::sync::atomic::{AtomicI32, Ordering};

/// SIGINT signal number (POSIX).
pub const SIGINT: i32 = 2;
/// SIGTERM signal number (POSIX).
pub const SIGTERM: i32 = 15;

/// Last received signal number; 0 = none.
static PENDING: AtomicI32 = AtomicI32::new(0);

#[cfg(unix)]
mod imp {
    use super::PENDING;
    use std::sync::atomic::Ordering;

    // Bind the C library's `signal(2)` directly — handlers here only touch
    // an atomic, which is async-signal-safe, and taking no libc dependency
    // keeps the workspace std-only.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIG_DFL: usize = 0;
    const SIG_ERR: usize = usize::MAX;

    extern "C" fn on_signal(sig: i32) {
        PENDING.store(sig, Ordering::Relaxed);
        // One-shot: a second signal of the same kind gets the default
        // (terminating) disposition.
        unsafe {
            signal(sig, SIG_DFL);
        }
    }

    pub(super) fn install(signums: &[i32]) -> bool {
        let mut ok = true;
        for &s in signums {
            ok &= unsafe { signal(s, on_signal as extern "C" fn(i32) as usize) } != SIG_ERR;
        }
        ok
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install(_signums: &[i32]) -> bool {
        false
    }
}

/// Installs the flag-setting handlers for SIGINT and SIGTERM. Returns
/// `false` when installation failed (or the platform has no POSIX
/// signals), in which case the default dispositions remain.
pub fn install_handlers() -> bool {
    imp::install(&[SIGINT, SIGTERM])
}

/// The pending signal, if any, *without* consuming it.
pub fn pending() -> Option<i32> {
    match PENDING.load(Ordering::Relaxed) {
        0 => None,
        s => Some(s),
    }
}

/// Takes (and clears) the pending signal. The simulator calls this when it
/// converts the flag into [`crate::FlatDdError::Interrupted`], so one
/// signal interrupts one run instead of poisoning every run after it.
pub fn take() -> Option<i32> {
    match PENDING.swap(0, Ordering::Relaxed) {
        0 => None,
        s => Some(s),
    }
}

/// Sets the flag as if `sig` had been delivered (tests; also lets embedders
/// route their own shutdown mechanism through the same graceful path).
pub fn raise_flag(sig: i32) {
    PENDING.store(sig, Ordering::Relaxed);
}

/// Human-readable name of a handled signal number.
pub fn signal_name(sig: i32) -> &'static str {
    match sig {
        SIGINT => "SIGINT",
        SIGTERM => "SIGTERM",
        _ => "signal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_take_semantics() {
        // Note: no real signals here — other tests share the process.
        assert_eq!(take(), None);
        raise_flag(SIGTERM);
        assert_eq!(pending(), Some(SIGTERM));
        assert_eq!(take(), Some(SIGTERM));
        assert_eq!(take(), None, "take consumes the flag");
        assert_eq!(pending(), None);
    }

    #[test]
    fn names() {
        assert_eq!(signal_name(SIGINT), "SIGINT");
        assert_eq!(signal_name(SIGTERM), "SIGTERM");
        assert_eq!(signal_name(99), "signal");
    }
}
