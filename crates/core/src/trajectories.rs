//! Monte-Carlo noisy simulation on top of FlatDD.
//!
//! Each sampled Pauli trajectory is a plain circuit; FlatDD runs it at full
//! speed (regular trajectories stay in the DD phase, scrambled ones convert
//! to DMAV), and expectations are averaged with a standard-error estimate.

use crate::error::FlatDdError;
use crate::sim::{FlatDdConfig, FlatDdSimulator};
use qcircuit::noise::NoiseModel;
use qcircuit::{Circuit, Hamiltonian};

/// Result of a trajectory average.
#[derive(Clone, Copy, Debug)]
pub struct TrajectoryEstimate {
    /// Mean observable value across trajectories.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Number of trajectories run.
    pub trajectories: usize,
}

impl TrajectoryEstimate {
    /// True when `value` lies within `k` standard errors of the mean.
    pub fn consistent_with(&self, value: f64, k: f64) -> bool {
        (self.mean - value).abs() <= k * self.std_err.max(1e-12)
    }
}

/// Runs `trajectories` noisy samples of `circuit` under `model` and returns
/// the averaged expectation of `observable`. Budget breaches in any
/// trajectory (the whole estimate runs under `cfg.governor`, one governor
/// clock per trajectory) surface as the typed error.
pub fn noisy_expectation(
    circuit: &Circuit,
    model: &NoiseModel,
    observable: &Hamiltonian,
    trajectories: usize,
    cfg: FlatDdConfig,
    seed: u64,
) -> Result<TrajectoryEstimate, FlatDdError> {
    if trajectories == 0 {
        return Err(FlatDdError::InvalidInput(
            "need at least one trajectory".into(),
        ));
    }
    let n = circuit.num_qubits();
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for t in 0..trajectories {
        let noisy = model.sample_trajectory(circuit, seed.wrapping_add(t as u64));
        let mut sim = FlatDdSimulator::try_new(n, cfg)?;
        sim.run(&noisy)?;
        let e = sim.expectation(observable);
        sum += e;
        sum_sq += e * e;
    }
    let k = trajectories as f64;
    let mean = sum / k;
    let var = (sum_sq / k - mean * mean).max(0.0);
    let std_err = (var / k).sqrt();
    Ok(TrajectoryEstimate {
        mean,
        std_err,
        trajectories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::noise::NoiseModel;
    use qcircuit::{generators, PauliString};

    fn cfg() -> FlatDdConfig {
        FlatDdConfig {
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn noiseless_limit_matches_exact_expectation() {
        let c = generators::ghz(5);
        let mut ham = Hamiltonian::new();
        ham.add(PauliString::zz(1.0, 0, 4));
        let est = noisy_expectation(&c, &NoiseModel::depolarizing(0.0), &ham, 3, cfg(), 1).unwrap();
        assert!((est.mean - 1.0).abs() < 1e-9);
        assert!(est.std_err < 1e-9);
        assert!(est.consistent_with(1.0, 2.0));
    }

    #[test]
    fn ghz_zz_decays_under_bitflip_noise() {
        // One bit flip anywhere breaks a ZZ correlation with known odds;
        // just require a strict, significant decay below 1.
        let c = generators::ghz(4);
        let mut ham = Hamiltonian::new();
        ham.add(PauliString::zz(1.0, 0, 3));
        let est = noisy_expectation(&c, &NoiseModel::bit_flip(0.05), &ham, 400, cfg(), 7).unwrap();
        assert!(est.mean < 0.99, "no decay observed: {}", est.mean);
        assert!(est.mean > 0.4, "decayed too much: {}", est.mean);
        assert!(est.trajectories == 400);
        assert!(est.std_err > 0.0);
    }

    #[test]
    fn phase_flip_decay_matches_analytic_through_flatdd() {
        // Same analytic check as the qcircuit unit test, but driven through
        // the full FlatDD engine.
        let p = 0.2;
        let k = 4;
        let mut c = qcircuit::Circuit::new(2);
        c.h(0);
        for _ in 0..k - 1 {
            c.push(qcircuit::Gate::new(qcircuit::GateKind::Id, 0));
        }
        let mut ham = Hamiltonian::new();
        ham.add(PauliString::x(1.0, 0));
        let est = noisy_expectation(&c, &NoiseModel::phase_flip(p), &ham, 4000, cfg(), 11).unwrap();
        let want = (1.0 - 2.0 * p).powi(k);
        assert!(
            est.consistent_with(want, 4.0),
            "got {} +- {}, want {want}",
            est.mean,
            est.std_err
        );
    }
}
