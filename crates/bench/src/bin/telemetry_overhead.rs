//! Telemetry overhead gate: verifies that the instrumented per-gate path
//! stays within a configurable budget of the telemetry-disabled path.
//!
//! Methodology: one long-lived FlatDD simulator in the DMAV phase (the
//! `Immediate` conversion policy converts on the first gate) applies the
//! same unitary gate batch over and over. Batches alternate between
//! telemetry *disabled* (no sinks — the fast path is one relaxed atomic
//! load) and telemetry *enabled* into a null sink (events are constructed
//! and dispatched, then dropped). Taking the *minimum* over `--reps`
//! interleaved pairs filters scheduler noise (telemetry cost is strictly
//! additive, so best-vs-best is the honest comparison); the reported
//! overhead is `(enabled - disabled) / disabled`.
//!
//! The enabled path includes the per-gate latency histograms
//! (`sim.gate_dmav_us` et al.), so the budget covers histogram recording
//! too; a separate micro-probe reports the raw `Histogram::observe` cost
//! per call so a regression there is visible even before it moves the
//! end-to-end number.
//!
//! Exits non-zero when the enabled-path overhead exceeds
//! `--max-overhead-pct` (default 2.0), so CI can gate on it.

use flatdd::telemetry::{self, Event, EventSink};
use flatdd::{CachingPolicy, ConversionPolicy, FlatDdConfig, FlatDdSimulator};
use qcircuit::gate::{Control, Gate, GateKind};
use std::time::Instant;

/// Swallows every event after full dispatch (measures emit cost, not I/O).
struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// The unitary batch: rotations and entanglers cycling over all qubits, so
/// the state stays normalized no matter how many times it is applied.
fn gate_batch(n: usize, len: usize) -> Vec<Gate> {
    (0..len)
        .map(|i| {
            let q = i % n;
            match i % 3 {
                0 => Gate::new(GateKind::RX(0.3 + 0.01 * q as f64), q),
                1 => Gate::new(GateKind::RY(0.7 - 0.02 * q as f64), q),
                _ => Gate::controlled(GateKind::X, (q + 1) % n, vec![Control::pos(q)]),
            }
        })
        .collect()
}

fn apply_batch(sim: &mut FlatDdSimulator, batch: &[Gate]) -> f64 {
    let start = Instant::now();
    for g in batch {
        sim.apply(g).expect("overhead batch must stay in budget");
    }
    start.elapsed().as_secs_f64()
}

fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Raw cost of one `Histogram::observe` (three relaxed atomic RMWs),
/// minimum over a few runs of a large batch.
fn histogram_observe_ns(reps: usize) -> f64 {
    let reg = telemetry::MetricsRegistry::new();
    let h = reg.histogram("bench.observe_ns");
    const OPS: usize = 1_000_000;
    let mut runs = Vec::with_capacity(reps);
    for r in 0..reps {
        let start = Instant::now();
        for i in 0..OPS {
            h.observe((i ^ r) as u64);
        }
        runs.push(start.elapsed().as_secs_f64());
    }
    best(&runs) * 1e9 / OPS as f64
}

fn main() {
    let mut max_overhead_pct = 2.0f64;
    let mut reps = 15usize;
    let mut n = 14usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--max-overhead-pct" => {
                max_overhead_pct = val("--max-overhead-pct").parse().unwrap_or(2.0)
            }
            "--reps" => reps = val("--reps").parse().unwrap_or(15),
            "--qubits" => n = val("--qubits").parse().unwrap_or(14),
            other => {
                eprintln!(
                    "unknown flag `{other}`\n\nUsage: telemetry_overhead \
                     [--max-overhead-pct p] [--reps r] [--qubits n]"
                );
                std::process::exit(2);
            }
        }
    }
    reps = reps.max(3);

    let mut sim = FlatDdSimulator::new(
        n,
        FlatDdConfig {
            threads: 1,
            conversion: ConversionPolicy::Immediate,
            caching: CachingPolicy::Always,
            ..Default::default()
        },
    );
    let batch = gate_batch(n, 64);
    // Warm-up: trigger the conversion, fault in buffers, fill the plan cache.
    for _ in 0..3 {
        apply_batch(&mut sim, &batch);
    }

    let (mut disabled, mut enabled) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        assert!(!telemetry::enabled(), "leaked sink before disabled batch");
        disabled.push(apply_batch(&mut sim, &batch));
        let id = telemetry::add_sink(Box::new(NullSink));
        enabled.push(apply_batch(&mut sim, &batch));
        telemetry::remove_sink(id);
    }
    let (dis, en) = (best(&disabled), best(&enabled));
    let overhead_pct = (en - dis) / dis * 100.0;
    let per_gate_ns = dis * 1e9 / batch.len() as f64;
    println!(
        "telemetry overhead: {n} qubits, {} gates/batch, {reps} reps",
        batch.len()
    );
    println!(
        "  disabled : {:.3} ms/batch ({per_gate_ns:.0} ns/gate)",
        dis * 1e3
    );
    println!("  enabled  : {:.3} ms/batch (null sink)", en * 1e3);
    println!("  overhead : {overhead_pct:+.2}% (budget {max_overhead_pct:.2}%)");
    println!(
        "  histogram: {:.1} ns/observe (raw, outside the gate)",
        histogram_observe_ns(5)
    );
    if overhead_pct > max_overhead_pct {
        eprintln!("FAIL: telemetry overhead {overhead_pct:.2}% > {max_overhead_pct:.2}%");
        std::process::exit(1);
    }
    println!("OK");
}
