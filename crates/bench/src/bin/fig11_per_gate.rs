//! Figure 11: per-gate runtime of FlatDD vs DDSIM-equivalent vs
//! Quantum++-equivalent on a supremacy and a DNN circuit.
//!
//! Expected shape: the DD engine's per-gate time explodes after the state
//! turns irregular; FlatDD tracks the DD engine early, then converts (the
//! marked gate) and stays flat; the array engine is flat throughout.

use flatdd::{FlatDdConfig, FlatDdSimulator};
use flatdd_bench::{HarnessArgs, JsonWriter, Table};
use qarray::ArraySimulator;
use qcircuit::{generators, Circuit};
use qdd::DdSimulator;
use std::time::Instant;

/// Per-gate seconds for each engine (soft-capped).
fn per_gate_times(
    c: &Circuit,
    threads: usize,
    timeout: f64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Option<usize>) {
    // FlatDD with tracing.
    let mut flat = FlatDdSimulator::new(
        c.num_qubits(),
        FlatDdConfig {
            threads,
            trace: true,
            ..Default::default()
        },
    );
    flat.run(c).expect("benchmark run failed");
    let flat_times: Vec<f64> = flat.traces().iter().map(|t| t.seconds).collect();
    let converted_at = flat.stats().converted_at;
    flat.publish_metrics();

    // DD engine, per gate, soft timeout.
    let mut dd_times = Vec::new();
    let mut dd = DdSimulator::new(c.num_qubits());
    let budget = Instant::now();
    for g in c.iter() {
        let s = Instant::now();
        dd.apply(g);
        dd_times.push(s.elapsed().as_secs_f64());
        if budget.elapsed().as_secs_f64() > timeout {
            break;
        }
    }

    // Array engine, per gate.
    let mut ar_times = Vec::new();
    let mut ar = ArraySimulator::with_threads(c.num_qubits(), threads);
    let budget = Instant::now();
    for g in c.iter() {
        let s = Instant::now();
        ar.apply(g);
        ar_times.push(s.elapsed().as_secs_f64());
        if budget.elapsed().as_secs_f64() > timeout {
            break;
        }
    }
    (flat_times, dd_times, ar_times, converted_at)
}

fn main() {
    let args = HarnessArgs::parse();
    let s = |n: usize| ((n as f64 * args.scale).round() as usize).max(6);
    let circuits = vec![
        ("Supremacy", generators::supremacy_n(s(20), 30, args.seed)),
        ("DNN", generators::dnn_paper(s(20), args.seed + 1)),
    ];
    println!(
        "Figure 11 — per-gate runtime traces (scale {:.2}, {} threads)\n",
        args.scale, args.threads
    );
    let mut json = JsonWriter::new();
    for (name, c) in &circuits {
        let (flat, dd, ar, conv) = per_gate_times(c, args.threads, args.timeout_secs);
        println!(
            "{name}: {} qubits, {} gates; FlatDD converted after gate {}",
            c.num_qubits(),
            c.num_gates(),
            conv.map(|g| g.to_string()).unwrap_or_else(|| "-".into())
        );
        // Print a down-sampled trace (about 20 rows).
        let mut table = Table::new(vec!["gate", "flatdd_ms", "ddsim_ms", "qpp_ms"]);
        let step = (c.num_gates() / 20).max(1);
        for i in (0..c.num_gates()).step_by(step) {
            let cell = |v: &[f64]| {
                v.get(i)
                    .map(|x| format!("{:.4}", x * 1e3))
                    .unwrap_or_else(|| "(timeout)".into())
            };
            table.row(vec![i.to_string(), cell(&flat), cell(&dd), cell(&ar)]);
            json.record(vec![
                ("circuit", (*name).into()),
                ("gate", i.into()),
                ("flatdd_ms", flat.get(i).map(|x| x * 1e3).into()),
                ("ddsim_ms", dd.get(i).map(|x| x * 1e3).into()),
                ("qpp_ms", ar.get(i).map(|x| x * 1e3).into()),
            ]);
        }
        table.print();
        // Shape summary: DD tail vs FlatDD tail.
        let tail = |v: &[f64]| -> f64 {
            let k = v.len().min(c.num_gates()) / 2;
            v.iter().skip(k).sum::<f64>().max(1e-12)
        };
        println!(
            "second-half totals: flatdd {:.3}s | ddsim {:.3}s{} | qpp {:.3}s\n",
            tail(&flat),
            tail(&dd),
            if dd.len() < c.num_gates() {
                " (timed out)"
            } else {
                ""
            },
            tail(&ar)
        );
    }
    // Embed the unified metrics registry in the results file.
    json.set_meta_raw(flatdd::telemetry::metrics_json());
    json.write_if(&args.json);
}
