//! One-command reproduction: runs every table/figure harness in sequence,
//! teeing each report into a results directory.
//!
//! ```text
//! cargo run --release -p flatdd-bench --bin paper_all -- [harness flags] [--out DIR]
//! ```
//!
//! Flags other than `--out` are forwarded verbatim to every harness
//! (`--scale`, `--threads`, `--timeout-secs`, `--seed`, `--reps`).

use std::path::PathBuf;
use std::process::Command;

const HARNESSES: &[&str] = &[
    "fig1_dd_vs_array",
    "table1_overall",
    "fig11_per_gate",
    "fig12_scalability",
    "fig13_conversion",
    "fig14_caching",
    "table2_fusion",
    "ablation_ewma",
];

fn main() {
    let mut forwarded: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--out" {
            out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                eprintln!("--out expects a directory");
                std::process::exit(2);
            }));
        } else {
            forwarded.push(a);
        }
    }
    std::fs::create_dir_all(&out_dir).expect("cannot create results directory");

    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failures = 0usize;
    for name in HARNESSES {
        let bin = exe_dir.join(name);
        if !bin.exists() {
            eprintln!(
                "skipping {name}: {} not built (run `cargo build --release -p flatdd-bench`)",
                bin.display()
            );
            failures += 1;
            continue;
        }
        let txt = out_dir.join(format!("{name}.txt"));
        let json = out_dir.join(format!("{name}.json"));
        println!("=== {name} -> {} ===", txt.display());
        let output = Command::new(&bin)
            .args(&forwarded)
            .arg("--json")
            .arg(&json)
            .output()
            .expect("failed to launch harness");
        std::fs::write(&txt, &output.stdout).expect("write report");
        print!("{}", String::from_utf8_lossy(&output.stdout));
        if !output.status.success() {
            eprintln!("{name} FAILED: {}", String::from_utf8_lossy(&output.stderr));
            failures += 1;
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} harness(es) failed");
        std::process::exit(1);
    }
    println!("all harness reports written to {}", out_dir.display());
}
