//! Table 2: FlatDD with DMAV-aware gate fusion vs FlatDD without fusion vs
//! FlatDD with k-operations \[100\] on the six deep circuits.
//!
//! Expected shape: DMAV-aware fusion wins both runtime and modeled cost
//! (paper: 13.1x / 9.94x vs no fusion, 5.27x / 5.59x vs k-operations in
//! geometric mean).

use flatdd::{ConversionPolicy, FlatDdConfig, FlatDdSimulator, FusionPolicy};
use flatdd_bench::{geo_mean, HarnessArgs, JsonWriter, Table};
use qcircuit::Circuit;

struct Arm {
    seconds: f64,
    cost: f64,
    matrices: usize,
}

fn run_arm(c: &Circuit, threads: usize, fusion: FusionPolicy) -> Arm {
    let cfg = FlatDdConfig {
        threads,
        fusion,
        // Table 2 studies the DMAV phase: convert right away so all three
        // arms run the same (full) gate list through DMAV.
        conversion: ConversionPolicy::Immediate,
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::new(c.num_qubits(), cfg);
    let start = std::time::Instant::now();
    sim.run(c).expect("benchmark run failed");
    let seconds = start.elapsed().as_secs_f64();
    let st = sim.stats();
    Arm {
        seconds,
        cost: st.modeled_cost,
        matrices: if st.fused_matrices > 0 {
            st.fused_matrices
        } else {
            st.gates_dmav
        },
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let k = 4usize; // the k-operations chunk size
    let workloads = flatdd_bench::suite::deep_workloads(args.scale, args.seed);
    println!(
        "Table 2 — gate fusion on deep circuits (scale {:.2}, {} threads, k-operations k={k})\n",
        args.scale, args.threads
    );
    let mut table = Table::new(vec![
        "name",
        "n",
        "gates",
        "fused_s",
        "fused_cost",
        "fused_mats",
        "nofuse_s",
        "nofuse_speedup",
        "nofuse_cost_red",
        "kops_s",
        "kops_speedup",
        "kops_cost_red",
    ]);
    let mut json = JsonWriter::new();
    let (mut sp_nf, mut sp_k, mut red_nf, mut red_k) = (vec![], vec![], vec![], vec![]);

    for w in &workloads {
        let c = &w.circuit;
        let fused = run_arm(c, args.threads, FusionPolicy::DmavAware);
        let plain = run_arm(c, args.threads, FusionPolicy::None);
        let kops = run_arm(c, args.threads, FusionPolicy::KOperations(k));
        sp_nf.push(plain.seconds / fused.seconds.max(1e-12));
        sp_k.push(kops.seconds / fused.seconds.max(1e-12));
        red_nf.push(plain.cost / fused.cost.max(1e-12));
        red_k.push(kops.cost / fused.cost.max(1e-12));
        table.row(vec![
            format!("{} ({})", w.family, w.paper_qubits),
            c.num_qubits().to_string(),
            c.num_gates().to_string(),
            format!("{:.3}", fused.seconds),
            format!("{:.2e}", fused.cost),
            fused.matrices.to_string(),
            format!("{:.3}", plain.seconds),
            format!("{:.2}x", plain.seconds / fused.seconds.max(1e-12)),
            format!("{:.2}x", plain.cost / fused.cost.max(1e-12)),
            format!("{:.3}", kops.seconds),
            format!("{:.2}x", kops.seconds / fused.seconds.max(1e-12)),
            format!("{:.2}x", kops.cost / fused.cost.max(1e-12)),
        ]);
        json.record(vec![
            ("family", w.family.into()),
            ("paper_qubits", w.paper_qubits.into()),
            ("qubits", c.num_qubits().into()),
            ("gates", c.num_gates().into()),
            ("fused_seconds", fused.seconds.into()),
            ("fused_cost", fused.cost.into()),
            ("fused_matrices", fused.matrices.into()),
            ("nofusion_seconds", plain.seconds.into()),
            ("nofusion_cost", plain.cost.into()),
            ("kops_seconds", kops.seconds.into()),
            ("kops_cost", kops.cost.into()),
        ]);
    }
    table.print();
    println!("\nGeometric means:");
    println!(
        "  speed-up vs no fusion     : {:.2}x (paper: 13.1x)",
        geo_mean(&sp_nf)
    );
    println!(
        "  speed-up vs k-operations  : {:.2}x (paper: 5.27x)",
        geo_mean(&sp_k)
    );
    println!(
        "  cost red. vs no fusion    : {:.2}x (paper: 9.94x)",
        geo_mean(&red_nf)
    );
    println!(
        "  cost red. vs k-operations : {:.2}x (paper: 5.59x)",
        geo_mean(&red_k)
    );
    json.write_if(&args.json);
}
