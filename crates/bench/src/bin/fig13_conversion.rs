//! Figure 13: FlatDD's parallel DD-to-array conversion vs the sequential
//! (DDSIM-style) conversion — absolute time and share of total runtime.
//!
//! For each of the 10 irregular-suite circuits the simulation is driven in
//! DD mode up to the EWMA conversion point; both conversion algorithms then
//! run on the *same* state DD.
//!
//! Expected shape: the parallel conversion wins everywhere (paper: 22.34x
//! geo-mean at 16 threads) and drops the conversion share of total runtime
//! from up to ~83% to a few percent.

use flatdd::{dd_to_array_parallel, EwmaConfig, EwmaMonitor, FlatDdConfig, ThreadPool};
use flatdd_bench::{geo_mean, run_flatdd, HarnessArgs, JsonWriter, Table};
use qdd::DdSimulator;
use std::time::Instant;

fn main() {
    let args = HarnessArgs::parse();
    let workloads: Vec<_> = flatdd_bench::table1_workloads(args.scale, args.seed)
        .into_iter()
        .filter(|w| !w.regular)
        .collect();
    println!(
        "Figure 13 — DD-to-array conversion: parallel (FlatDD, {} threads) vs sequential (DDSIM)\n",
        args.threads
    );
    let mut table = Table::new(vec![
        "name",
        "n",
        "conv_gate",
        "dd_nodes",
        "seq_ms",
        "par_ms",
        "speedup",
        "seq_pct_of_total",
        "par_pct_of_total",
    ]);
    let mut json = JsonWriter::new();
    let mut speedups = Vec::new();

    for w in &workloads {
        let c = &w.circuit;
        let n = c.num_qubits();
        // Drive the DD phase to the conversion point.
        let mut sim = DdSimulator::new(n);
        let mut monitor = EwmaMonitor::new(EwmaConfig::default());
        let mut conv_gate = None;
        let budget = Instant::now();
        for (i, g) in c.iter().enumerate() {
            sim.apply(g);
            if monitor.observe(sim.state_dd_size()) {
                conv_gate = Some(i);
                break;
            }
            if budget.elapsed().as_secs_f64() > args.timeout_secs {
                break;
            }
        }
        let dd_nodes = sim.state_dd_size();
        let pkg = sim.package();
        let state = sim.state();

        // Sequential (DDSIM) conversion.
        let reps = args.reps.max(1);
        let mut seq_s = f64::INFINITY;
        for _ in 0..reps {
            let s = Instant::now();
            let out = pkg.vector_to_array(state, n);
            seq_s = seq_s.min(s.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        // Parallel (FlatDD) conversion.
        let pool = ThreadPool::new(flatdd::clamp_threads(args.threads, n));
        let mut par_s = f64::INFINITY;
        for _ in 0..reps {
            let s = Instant::now();
            let out = dd_to_array_parallel(pkg, state, n, &pool);
            par_s = par_s.min(s.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }

        // Total end-to-end runtime with the parallel conversion.
        let total = run_flatdd(
            c,
            FlatDdConfig {
                threads: args.threads,
                ..Default::default()
            },
            args.timeout_secs,
        );
        let total_par = total.seconds.max(1e-12);
        let total_seq = (total_par - par_s + seq_s).max(1e-12);
        let speedup = seq_s / par_s.max(1e-12);
        speedups.push(speedup);

        table.row(vec![
            format!("{} ({})", w.family, w.paper_qubits),
            n.to_string(),
            conv_gate
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".into()),
            dd_nodes.to_string(),
            format!("{:.3}", seq_s * 1e3),
            format!("{:.3}", par_s * 1e3),
            format!("{:.2}x", speedup),
            format!("{:.2}%", 100.0 * seq_s / total_seq),
            format!("{:.2}%", 100.0 * par_s / total_par),
        ]);
        json.record(vec![
            ("family", w.family.into()),
            ("paper_qubits", w.paper_qubits.into()),
            ("qubits", n.into()),
            ("conversion_gate", conv_gate.into()),
            ("dd_nodes", dd_nodes.into()),
            ("sequential_seconds", seq_s.into()),
            ("parallel_seconds", par_s.into()),
            ("total_seconds", total_par.into()),
        ]);
    }
    table.print();
    println!(
        "\ngeo-mean conversion speed-up: {:.2}x (paper: 22.34x at 16 threads on 64 cores)",
        geo_mean(&speedups)
    );

    // Second measurement: convert the *largest* state DD each circuit
    // produces (the DD at the end of the DD-engine run, or at the soft
    // timeout). At harness scale the EWMA fires while DDs are still tiny,
    // so this view shows how the two algorithms compare once the DD carries
    // real work — the regime of the paper's Figure 13.
    println!("\nWorst-case view: converting the largest state DD per circuit");
    let mut table2 = Table::new(vec!["name", "n", "dd_nodes", "seq_ms", "par_ms", "speedup"]);
    let mut late_speedups = Vec::new();
    for w in &workloads {
        let c = &w.circuit;
        let n = c.num_qubits();
        let mut sim = DdSimulator::new(n);
        let budget = Instant::now();
        for g in c.iter() {
            sim.apply(g);
            if budget.elapsed().as_secs_f64() > args.timeout_secs / 2.0 {
                break;
            }
        }
        let dd_nodes = sim.state_dd_size();
        let pkg = sim.package();
        let state = sim.state();
        let reps = args.reps.max(1);
        let mut seq_s = f64::INFINITY;
        for _ in 0..reps {
            let s = Instant::now();
            std::hint::black_box(pkg.vector_to_array(state, n));
            seq_s = seq_s.min(s.elapsed().as_secs_f64());
        }
        let pool = ThreadPool::new(flatdd::clamp_threads(args.threads, n));
        let mut par_s = f64::INFINITY;
        for _ in 0..reps {
            let s = Instant::now();
            std::hint::black_box(dd_to_array_parallel(pkg, state, n, &pool));
            par_s = par_s.min(s.elapsed().as_secs_f64());
        }
        let speedup = seq_s / par_s.max(1e-12);
        late_speedups.push(speedup);
        table2.row(vec![
            format!("{} ({})", w.family, w.paper_qubits),
            n.to_string(),
            dd_nodes.to_string(),
            format!("{:.3}", seq_s * 1e3),
            format!("{:.3}", par_s * 1e3),
            format!("{:.2}x", speedup),
        ]);
        json.record(vec![
            ("family", w.family.into()),
            ("paper_qubits", w.paper_qubits.into()),
            ("view", "largest_dd".into()),
            ("dd_nodes", dd_nodes.into()),
            ("sequential_seconds", seq_s.into()),
            ("parallel_seconds", par_s.into()),
        ]);
    }
    table2.print();
    println!(
        "\ngeo-mean speed-up on largest DDs: {:.2}x",
        geo_mean(&late_speedups)
    );

    // Load-balance view (hardware-independent): how evenly the planner's
    // thread-splitting (Fig. 4a) distributes the output range. A perfectly
    // balanced plan has max/mean = 1.
    println!("\nLoad balance of the parallel plan (max/mean coverage across threads):");
    let mut table3 = Table::new(vec!["name", "dd_nodes", "threads_used", "max_over_mean"]);
    for w in &workloads {
        let c = &w.circuit;
        let n = c.num_qubits();
        let mut sim = DdSimulator::new(n);
        let budget = Instant::now();
        for g in c.iter() {
            sim.apply(g);
            if budget.elapsed().as_secs_f64() > args.timeout_secs / 4.0 {
                break;
            }
        }
        let t = flatdd::clamp_threads(args.threads, n);
        let plan = flatdd::ConversionPlan::build(sim.package(), sim.state(), n, t);
        let cov = plan.coverage(sim.package());
        let busy: Vec<usize> = cov.iter().copied().filter(|&c| c > 0).collect();
        let mean = busy.iter().sum::<usize>() as f64 / busy.len().max(1) as f64;
        let max = busy.iter().copied().max().unwrap_or(0) as f64;
        table3.row(vec![
            format!("{} ({})", w.family, w.paper_qubits),
            sim.state_dd_size().to_string(),
            busy.len().to_string(),
            format!("{:.3}", if mean > 0.0 { max / mean } else { 0.0 }),
        ]);
    }
    table3.print();
    json.write_if(&args.json);
}
