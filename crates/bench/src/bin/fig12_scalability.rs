//! Figure 12: runtime scalability of FlatDD and the Quantum++-equivalent
//! array engine over thread counts (1, 2, 4, 8, 16) on Supremacy and KNN.
//!
//! Expected shape: both engines speed up with threads and saturate around
//! 16 (on the paper's 64-core box; on smaller machines saturation comes
//! earlier but the monotone-then-flat shape holds).

use flatdd::FlatDdConfig;
use flatdd_bench::{run_array, run_flatdd, HarnessArgs, JsonWriter, Table};
use qcircuit::generators;

fn main() {
    let args = HarnessArgs::parse();
    let s = |n: usize| ((n as f64 * args.scale).round() as usize).max(6);
    let odd = |n: usize| if n % 2 == 1 { n } else { n + 1 };
    let circuits = vec![
        ("Supremacy", generators::supremacy_n(s(20), 30, args.seed)),
        ("KNN", generators::knn((odd(s(25)) - 1) / 2, args.seed + 1)),
    ];
    let threads = [1usize, 2, 4, 8, 16];
    println!("Figure 12 — thread scalability (scale {:.2})\n", args.scale);
    let mut json = JsonWriter::new();
    for (name, c) in &circuits {
        println!("{name}: {} qubits, {} gates", c.num_qubits(), c.num_gates());
        let mut table = Table::new(vec![
            "threads",
            "flatdd_s",
            "flatdd_speedup",
            "qpp_s",
            "qpp_speedup",
        ]);
        let mut flat_base = None;
        let mut qpp_base = None;
        for &t in &threads {
            let cfg = FlatDdConfig {
                threads: t,
                ..Default::default()
            };
            let flat = run_flatdd(c, cfg, args.timeout_secs);
            let qpp = run_array(c, t, args.timeout_secs);
            let fb = *flat_base.get_or_insert(flat.seconds);
            let qb = *qpp_base.get_or_insert(qpp.seconds);
            table.row(vec![
                t.to_string(),
                flat.runtime_str(),
                format!("{:.2}x", fb / flat.seconds.max(1e-12)),
                qpp.runtime_str(),
                format!("{:.2}x", qb / qpp.seconds.max(1e-12)),
            ]);
            json.record(vec![
                ("circuit", (*name).into()),
                ("threads", t.into()),
                ("flatdd_seconds", flat.seconds.into()),
                ("qpp_seconds", qpp.seconds.into()),
            ]);
        }
        table.print();
        println!();
    }
    println!("note: self-speedup depends on physical cores; the paper reports 7.26x at 8 threads on a 64-core Xeon.");
    json.write_if(&args.json);
}
