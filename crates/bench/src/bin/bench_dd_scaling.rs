//! DD-phase thread scalability: gate-apply throughput of the parallel DD
//! engine (`--dd-threads`) over 1, 2, 4, 8, 16 workers on the Figure 12
//! circuits.
//!
//! Unlike `fig12_scalability` (which times the whole FlatDD pipeline, array
//! phase included) this harness isolates the DD phase: every gate is applied
//! as gate-DD construction + parallel DD matrix-vector multiply on a shared
//! `DdPackage`, the same code path `FlatDdSimulator` takes before the EWMA
//! conversion. Each thread count also cross-checks a sample of amplitudes
//! against the sequential run (tolerance 1e-12) so a scaling win can never
//! hide a correctness regression.
//!
//! Expected shape: monotone speedup that saturates near the physical core
//! count. On a single-core container every thread count collapses to ~1x —
//! the numbers are then a concurrency-overhead measurement, not a scaling
//! one (the JSON records `speedup` either way).

use flatdd_bench::{HarnessArgs, JsonWriter, Table};
use qcircuit::{generators, Circuit, Complex64};
use qdd::{DdPackage, ThreadPool};
use std::time::Instant;

/// Applies `c` gate by gate on a fresh package, returning elapsed seconds
/// and a sample of final amplitudes for cross-checking.
fn run_dd_phase(c: &Circuit, threads: usize) -> (f64, Vec<Complex64>) {
    let n = c.num_qubits();
    let pkg = DdPackage::default();
    let pool = (threads > 1).then(|| ThreadPool::new(threads));
    let mut state = pkg.basis_state(n, 0);
    let mut pkg = pkg; // gc needs &mut between timed spans
    let start = Instant::now();
    let mut since_gc = 0usize;
    let mut dd_size = 1usize;
    for g in c.iter() {
        let m = pkg.gate_dd(g, n);
        // The simulator's dispatch: cap the fork width by the work
        // available so small DDs run sequential instead of paying the
        // fork-join barrier (the VQE regression this harness guards).
        let cap = qdd::par::adaptive_parallel_cap(dd_size);
        state = match &pool {
            Some(p) if cap > 1 => pkg.mul_mv_parallel_capped(p, m, state, cap),
            _ => pkg.mul_mv(m, state),
        };
        dd_size = pkg.vector_dd_size(state);
        since_gc += 1;
        if since_gc >= 256 {
            pkg.gc(&[state], &[]);
            since_gc = 0;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let dim = 1usize << n;
    let sample: Vec<Complex64> = (0..16)
        .map(|i| pkg.amplitude(state, (i * 2654435761usize) % dim))
        .collect();
    (secs, sample)
}

fn main() {
    let args = HarnessArgs::parse();
    let s = |n: usize| ((n as f64 * args.scale).round() as usize).max(6);
    let odd = |n: usize| if n % 2 == 1 { n } else { n + 1 };
    let circuits = vec![
        ("Supremacy", generators::supremacy_n(s(20), 24, args.seed)),
        ("KNN", generators::knn((odd(s(25)) - 1) / 2, args.seed + 1)),
        ("VQE", generators::vqe(s(16), 2, args.seed + 2)),
    ];
    let threads = [1usize, 2, 4, 8, 16];
    println!(
        "DD-phase scalability (scale {:.2}, {} hardware threads visible)\n",
        args.scale,
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    let mut json = JsonWriter::new();
    for (name, c) in &circuits {
        println!("{name}: {} qubits, {} gates", c.num_qubits(), c.num_gates());
        let mut table = Table::new(vec!["dd_threads", "seconds", "gates_per_s", "speedup"]);
        let mut base_secs = None;
        let mut base_sample: Option<Vec<Complex64>> = None;
        for &t in &threads {
            let mut best = f64::INFINITY;
            let mut sample = Vec::new();
            for _ in 0..args.reps.max(1) {
                let (secs, amps) = run_dd_phase(c, t);
                if secs < best {
                    best = secs;
                }
                sample = amps;
            }
            let base = *base_secs.get_or_insert(best);
            match &base_sample {
                None => base_sample = Some(sample),
                Some(want) => {
                    for (got, want) in sample.iter().zip(want) {
                        let d = (*got - *want).norm_sqr().sqrt();
                        assert!(
                            d < 1e-12,
                            "{name} @ {t} threads diverged from sequential by {d:.3e}"
                        );
                    }
                }
            }
            let speedup = base / best.max(1e-12);
            table.row(vec![
                t.to_string(),
                format!("{best:.4}"),
                format!("{:.0}", c.num_gates() as f64 / best.max(1e-12)),
                format!("{speedup:.2}x"),
            ]);
            json.record(vec![
                ("circuit", (*name).into()),
                ("dd_threads", t.into()),
                ("seconds", best.into()),
                (
                    "gates_per_s",
                    (c.num_gates() as f64 / best.max(1e-12)).into(),
                ),
                ("speedup", speedup.into()),
            ]);
        }
        table.print();
        println!();
    }
    println!("note: speedup needs physical cores; a 1-core box measures overhead only.");
    json.write_if(&args.json);
}
