//! Figure 1: DD-based vs array-based simulation on two regular (Adder, GHZ)
//! and two irregular (DNN, VQE) circuits — normalized runtime and memory.
//!
//! Expected shape (paper): DD wins by orders of magnitude on the regular
//! circuits and loses on the irregular ones, in both time and memory.

use flatdd_bench::{geo_mean, run_array, run_ddsim, HarnessArgs, JsonWriter, Table};
use qcircuit::generators;

fn main() {
    let args = HarnessArgs::parse();
    let s = |n: usize| ((n as f64 * args.scale).round() as usize).max(6);
    let even = |n: usize| if n.is_multiple_of(2) { n } else { n + 1 };
    let circuits = vec![
        ("Adder (regular)", generators::adder_n(even(s(28)))),
        ("GHZ (regular)", generators::ghz(s(23))),
        ("DNN (irregular)", generators::dnn_paper(s(16), args.seed)),
        (
            "VQE (irregular)",
            generators::vqe_paper(s(16), args.seed + 1),
        ),
    ];

    println!(
        "Figure 1 — DD-based vs array-based simulation (scale {:.2}, {} threads for array)\n",
        args.scale, args.threads
    );
    let mut table = Table::new(vec![
        "circuit",
        "qubits",
        "gates",
        "dd_time_s",
        "array_time_s",
        "norm_dd_time",
        "norm_array_time",
        "dd_mem_MB",
        "array_mem_MB",
        "norm_dd_mem",
        "norm_array_mem",
    ]);
    let mut json = JsonWriter::new();
    let mut dd_wins_regular = Vec::new();
    let mut array_wins_irregular = Vec::new();

    for (name, c) in &circuits {
        let dd = run_ddsim(c, args.timeout_secs);
        let ar = run_array(c, args.threads, args.timeout_secs);
        let tmax = dd.seconds.max(ar.seconds).max(1e-12);
        let mmax = (dd.memory_bytes.max(ar.memory_bytes)).max(1) as f64;
        let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
        table.row(vec![
            name.to_string(),
            c.num_qubits().to_string(),
            c.num_gates().to_string(),
            dd.runtime_str(),
            ar.runtime_str(),
            format!("{:.4}", dd.seconds / tmax),
            format!("{:.4}", ar.seconds / tmax),
            format!("{:.2}", mb(dd.memory_bytes)),
            format!("{:.2}", mb(ar.memory_bytes)),
            format!("{:.4}", dd.memory_bytes as f64 / mmax),
            format!("{:.4}", ar.memory_bytes as f64 / mmax),
        ]);
        json.record(vec![
            ("circuit", (*name).into()),
            ("qubits", c.num_qubits().into()),
            ("gates", c.num_gates().into()),
            ("dd_seconds", dd.seconds.into()),
            ("array_seconds", ar.seconds.into()),
            ("dd_memory_bytes", dd.memory_bytes.into()),
            ("array_memory_bytes", ar.memory_bytes.into()),
        ]);
        if name.contains("(regular)") {
            dd_wins_regular.push(ar.seconds / dd.seconds.max(1e-12));
        } else {
            array_wins_irregular.push(dd.seconds / ar.seconds.max(1e-12));
        }
    }
    table.print();
    println!(
        "\nshape check: array/DD runtime on regular circuits (geo-mean) = {:.2}x (paper: DD wins big)",
        geo_mean(&dd_wins_regular)
    );
    println!(
        "shape check: DD/array runtime on irregular circuits (geo-mean) = {:.2}x (paper: array wins)",
        geo_mean(&array_wins_irregular)
    );
    json.write_if(&args.json);
}
