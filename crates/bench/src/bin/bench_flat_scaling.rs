//! Flat-phase shard scalability: DD-to-array conversion time and per-gate
//! flat (DMAV-phase kernel) throughput over a threads x shards grid on the
//! conversion-heavy circuits.
//!
//! Isolates the two sharded code paths `FlatDdSimulator` dispatches after
//! the EWMA transition: the prefix of each circuit runs sequentially on a
//! `DdPackage`, then every grid point (a) converts that DD into a
//! first-touch-zeroed `ShardedState` via the sharded parallel conversion,
//! recording the per-shard amplitude coverage (`max/min` across shards is
//! the Figure 4a load-balance metric — 1.0 means balanced), and (b) applies
//! the remaining gates with the sharded flat kernel. Every grid point
//! cross-checks a sample of amplitudes against the single-shard run
//! (tolerance 1e-12) so a scaling win can never hide a correctness
//! regression.
//!
//! Expected shape: conversion and gate throughput scale with threads while
//! shards >= threads; extra shards beyond the thread count cost little
//! (smaller dispatch units, same total work). On a single-core container
//! every grid point collapses to ~1x — the numbers are then a
//! concurrency-overhead measurement, not a scaling one.

use flatdd::RunContext;
use flatdd_bench::{HarnessArgs, JsonWriter, Table};
use qarray::ShardedState;
use qcircuit::{generators, Circuit, Complex64};
use qdd::{DdPackage, ThreadPool};
use std::time::Instant;

struct GridPoint {
    conv_secs: f64,
    /// max/min amplitude coverage across shards (1.0 = perfectly balanced).
    balance: f64,
    flat_secs: f64,
    flat_gates: usize,
    sample: Vec<Complex64>,
}

/// Runs the DD prefix sequentially, then converts and finishes the tail on
/// the sharded flat path with the given grid point.
fn run_point(c: &Circuit, prefix: usize, threads: usize, shards: usize) -> GridPoint {
    let n = c.num_qubits();
    let dim = 1usize << n;
    let pkg = DdPackage::default();
    let mut state = pkg.basis_state(n, 0);
    for g in c.iter().take(prefix) {
        state = pkg.apply_gate(state, g, n);
    }

    let pool = ThreadPool::new(threads);
    let ctx = RunContext::default();
    let start = Instant::now();
    let mut v = ShardedState::try_new_zeroed(dim, shards, threads).expect("flat state");
    let breakdown =
        flatdd::dd_to_array_parallel_sharded_into_with(&pkg, state, n, &pool, shards, &mut v, &ctx);
    let conv_secs = start.elapsed().as_secs_f64();
    let max = breakdown
        .amp_spans
        .iter()
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    let min = breakdown
        .amp_spans
        .iter()
        .copied()
        .min()
        .unwrap_or(1)
        .max(1);

    let start = Instant::now();
    let mut flat_gates = 0usize;
    for g in c.iter().skip(prefix) {
        qarray::apply_gate_sharded(&mut v, g, threads, shards);
        flat_gates += 1;
    }
    let flat_secs = start.elapsed().as_secs_f64();

    let sample = (0..16).map(|i| v[(i * 2654435761usize) % dim]).collect();
    GridPoint {
        conv_secs,
        balance: max as f64 / min as f64,
        flat_secs,
        flat_gates,
        sample,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let s = |n: usize| ((n as f64 * args.scale).round() as usize).max(6);
    let circuits = vec![
        ("Supremacy", generators::supremacy_n(s(20), 24, args.seed)),
        ("QFT", generators::qft(s(20))),
    ];
    let threads = [1usize, 2, 4, 8];
    let shard_grid = [0usize, 1, 4, 16, 64]; // 0 = auto (shards = threads)
    println!(
        "Flat-phase shard scalability (scale {:.2}, {} hardware threads visible)\n",
        args.scale,
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    let mut json = JsonWriter::new();
    for (name, c) in &circuits {
        let prefix = c.num_gates() / 2;
        println!(
            "{name}: {} qubits, {} gates ({} flat)",
            c.num_qubits(),
            c.num_gates(),
            c.num_gates() - prefix
        );
        let mut table = Table::new(vec![
            "threads",
            "shards",
            "conv_s",
            "balance",
            "flat_gates_per_s",
            "speedup",
        ]);
        let mut base_secs = None;
        let mut base_sample: Option<Vec<Complex64>> = None;
        for &t in &threads {
            for &raw in &shard_grid {
                let shards = if raw == 0 { t } else { raw };
                let mut best: Option<GridPoint> = None;
                for _ in 0..args.reps.max(1) {
                    let p = run_point(c, prefix, t, shards);
                    if best.as_ref().is_none_or(|b| p.flat_secs < b.flat_secs) {
                        best = Some(p);
                    }
                }
                let p = best.unwrap();
                match &base_sample {
                    None => base_sample = Some(p.sample.clone()),
                    Some(want) => {
                        for (got, want) in p.sample.iter().zip(want) {
                            let d = (*got - *want).norm_sqr().sqrt();
                            assert!(
                                d < 1e-12,
                                "{name} @ {t}T/{shards}S diverged from 1T/1S by {d:.3e}"
                            );
                        }
                    }
                }
                let base = *base_secs.get_or_insert(p.flat_secs);
                let per_gate = p.flat_gates as f64 / p.flat_secs.max(1e-12);
                let speedup = base / p.flat_secs.max(1e-12);
                table.row(vec![
                    t.to_string(),
                    format!("{shards}{}", if raw == 0 { "*" } else { "" }),
                    format!("{:.4}", p.conv_secs),
                    format!("{:.2}", p.balance),
                    format!("{per_gate:.0}"),
                    format!("{speedup:.2}x"),
                ]);
                json.record(vec![
                    ("circuit", (*name).into()),
                    ("threads", t.into()),
                    ("shards", shards.into()),
                    ("auto_shards", (raw == 0).into()),
                    ("conv_seconds", p.conv_secs.into()),
                    ("balance_max_min", p.balance.into()),
                    ("flat_seconds", p.flat_secs.into()),
                    ("flat_gates_per_s", per_gate.into()),
                    ("speedup", speedup.into()),
                ]);
            }
        }
        table.print();
        println!("  (* = auto: shards follow the thread count)\n");
    }
    println!("note: speedup needs physical cores; a 1-core box measures overhead only.");
    json.write_if(&args.json);
}
