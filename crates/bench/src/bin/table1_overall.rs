//! Table 1: overall runtime & memory of FlatDD vs DDSIM-equivalent vs
//! Quantum++-equivalent on the 12-circuit suite.
//!
//! Per the paper: FlatDD and the array engine run with `--threads` (16 in
//! the paper), the DD engine single-threaded (DDSIM has no multithreading);
//! no gate fusion here ("we do not incorporate the proposed gate-fusion
//! algorithm but focus on the full-state simulation workload itself").
//! Expected shape: DDSIM wins the regular circuits (Adder, GHZ), FlatDD
//! beats both baselines overall in geometric mean.

use flatdd::FlatDdConfig;
use flatdd_bench::engines::best_of;
use flatdd_bench::{
    geo_mean, run_array, run_ddsim, run_flatdd, HarnessArgs, JsonWriter, RunStatus, Table,
};

fn main() {
    let args = HarnessArgs::parse();
    let workloads = flatdd_bench::table1_workloads(args.scale, args.seed);
    println!(
        "Table 1 — overall comparison (scale {:.2}; FlatDD/array: {} threads, DDSIM: 1 thread; timeout {}s)\n",
        args.scale, args.threads, args.timeout_secs
    );
    let mut table = Table::new(vec![
        "name",
        "n",
        "gates",
        "flatdd_s",
        "flatdd_MB",
        "conv@",
        "ddsim_s",
        "ddsim_speedup",
        "ddsim_MB",
        "qpp_s",
        "qpp_speedup",
        "qpp_MB",
    ]);
    let mut json = JsonWriter::new();
    let mut flat_times = Vec::new();
    let mut flat_mems = Vec::new();
    let mut dd_speedups = Vec::new();
    let mut qpp_speedups = Vec::new();
    let mut dd_mem_ratio = Vec::new();
    let mut qpp_mem_ratio = Vec::new();

    for w in &workloads {
        let c = &w.circuit;
        let cfg = FlatDdConfig {
            threads: args.threads,
            ..Default::default()
        };
        let flat = best_of(args.reps, || run_flatdd(c, cfg, args.timeout_secs));
        let dd = best_of(args.reps, || run_ddsim(c, args.timeout_secs));
        let qpp = best_of(args.reps, || run_array(c, args.threads, args.timeout_secs));
        let mb = |b: usize| format!("{:.2}", b as f64 / (1024.0 * 1024.0));
        let speedup = |base: &flatdd_bench::EngineResult| {
            let prefix = if base.outcome == RunStatus::TimedOut {
                "> "
            } else {
                ""
            };
            format!("{prefix}{:.2}x", base.seconds / flat.seconds.max(1e-12))
        };
        table.row(vec![
            format!("{} ({})", w.family, w.paper_qubits),
            c.num_qubits().to_string(),
            c.num_gates().to_string(),
            flat.runtime_str(),
            mb(flat.memory_bytes),
            flat.converted_at
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".into()),
            dd.runtime_str(),
            speedup(&dd),
            mb(dd.memory_bytes),
            qpp.runtime_str(),
            speedup(&qpp),
            mb(qpp.memory_bytes),
        ]);
        json.record(vec![
            ("family", w.family.into()),
            ("paper_qubits", w.paper_qubits.into()),
            ("qubits", c.num_qubits().into()),
            ("gates", c.num_gates().into()),
            ("flatdd_seconds", flat.seconds.into()),
            ("flatdd_memory_bytes", flat.memory_bytes.into()),
            ("flatdd_converted_at", flat.converted_at.into()),
            ("ddsim_seconds", dd.seconds.into()),
            (
                "ddsim_timed_out",
                (dd.outcome == RunStatus::TimedOut).into(),
            ),
            ("ddsim_memory_bytes", dd.memory_bytes.into()),
            ("qpp_seconds", qpp.seconds.into()),
            ("qpp_timed_out", (qpp.outcome == RunStatus::TimedOut).into()),
            ("qpp_memory_bytes", qpp.memory_bytes.into()),
        ]);
        if flat.outcome == RunStatus::Completed {
            flat_times.push(flat.seconds);
            flat_mems.push(flat.memory_bytes as f64);
            dd_speedups.push(dd.seconds / flat.seconds.max(1e-12));
            qpp_speedups.push(qpp.seconds / flat.seconds.max(1e-12));
            dd_mem_ratio.push(dd.memory_bytes as f64 / flat.memory_bytes.max(1) as f64);
            qpp_mem_ratio.push(qpp.memory_bytes as f64 / flat.memory_bytes.max(1) as f64);
        }
    }
    table.print();
    println!("\nGeometric means over completed FlatDD runs:");
    println!(
        "  FlatDD runtime           : {:.3} s",
        geo_mean(&flat_times)
    );
    println!(
        "  FlatDD memory            : {:.2} MB",
        geo_mean(&flat_mems) / (1024.0 * 1024.0)
    );
    println!(
        "  speed-up vs DDSIM-equiv  : {:.2}x (paper: 34.81x; '>' rows make this a lower bound)",
        geo_mean(&dd_speedups)
    );
    println!(
        "  speed-up vs Quantum++-eq : {:.2}x (paper: 17.31x)",
        geo_mean(&qpp_speedups)
    );
    println!(
        "  memory vs DDSIM-equiv    : {:.2}x less (paper: 1.70x)",
        geo_mean(&dd_mem_ratio)
    );
    println!(
        "  memory vs Quantum++-eq   : {:.2}x less (paper: 1.93x)",
        geo_mean(&qpp_mem_ratio)
    );
    // Embed the unified metrics registry in the results file.
    json.set_meta_raw(flatdd::telemetry::metrics_json());
    json.write_if(&args.json);
}
