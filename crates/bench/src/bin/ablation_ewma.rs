//! Ablation: EWMA conversion-timing parameters (beta, epsilon) and
//! alternative conversion policies.
//!
//! The paper fixes beta = 0.9, epsilon = 2 "as these values are determined
//! to be effective across multiple quantum circuits" — this harness shows
//! *why*: it sweeps both parameters plus the Immediate/Never extremes on a
//! regular and two irregular circuits, reporting the conversion gate and
//! the total runtime. Good parameters convert early on irregular circuits
//! (before the DD blows up) and never on regular ones.

use flatdd::{ConversionPolicy, EwmaConfig, FlatDdConfig, FlatDdSimulator};
use flatdd_bench::{HarnessArgs, JsonWriter, Table};
use qcircuit::{generators, Circuit};
use std::time::Instant;

fn run(c: &Circuit, threads: usize, conversion: ConversionPolicy) -> (f64, Option<usize>, usize) {
    let cfg = FlatDdConfig {
        threads,
        conversion,
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::new(c.num_qubits(), cfg);
    let start = Instant::now();
    sim.run(c).expect("benchmark run failed");
    (
        start.elapsed().as_secs_f64(),
        sim.stats().converted_at,
        sim.stats().peak_state_dd_size,
    )
}

fn main() {
    let args = HarnessArgs::parse();
    let s = |n: usize| ((n as f64 * args.scale).round() as usize).max(6);
    let circuits = vec![
        ("GHZ (regular)", generators::ghz(s(23))),
        ("DNN (irregular)", generators::dnn_paper(s(20), args.seed)),
        (
            "Supremacy (irregular)",
            generators::supremacy_n(s(20), 30, args.seed + 1),
        ),
    ];
    println!(
        "Ablation — conversion-timing policies (scale {:.2}, {} threads)\n",
        args.scale, args.threads
    );
    let mut json = JsonWriter::new();
    for (name, c) in &circuits {
        println!("{name}: {} qubits, {} gates", c.num_qubits(), c.num_gates());
        let mut table = Table::new(vec!["policy", "runtime_s", "converted_at", "peak_state_dd"]);
        let mut policies: Vec<(String, ConversionPolicy)> = vec![
            ("immediate".into(), ConversionPolicy::Immediate),
            ("never (pure DD)".into(), ConversionPolicy::Never),
        ];
        for beta in [0.5, 0.9, 0.99] {
            for epsilon in [1.2, 2.0, 8.0] {
                policies.push((
                    format!("ewma b={beta} e={epsilon}"),
                    ConversionPolicy::Ewma(EwmaConfig {
                        beta,
                        epsilon,
                        min_size: 32,
                    }),
                ));
            }
        }
        for (label, policy) in policies {
            let (secs, conv, peak) = run(c, args.threads, policy);
            table.row(vec![
                label.clone(),
                format!("{secs:.4}"),
                conv.map(|g| g.to_string()).unwrap_or_else(|| "-".into()),
                peak.to_string(),
            ]);
            json.record(vec![
                ("circuit", (*name).into()),
                ("policy", label.into()),
                ("seconds", secs.into()),
                ("converted_at", conv.into()),
                ("peak_state_dd", peak.into()),
            ]);
        }
        table.print();
        println!();
    }
    println!("reading: the paper's beta=0.9/eps=2 should convert early on the irregular rows");
    println!("(small peak DD) while the GHZ row never converts under any EWMA setting.");
    json.write_if(&args.json);
}
