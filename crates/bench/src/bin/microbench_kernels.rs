//! Kernel microbenchmarks: ns/amplitude for the hot vecops primitives
//! (`axpy`, `mac2x2`, `sum_into`, the conversion scalar task) and a whole
//! per-gate DMAV application, under the SIMD backend selected at startup
//! (`FLATDD_SIMD={auto,scalar,avx2}`).
//!
//! Emits `results/microbench_kernels.json` (override with `--json PATH`).
//! Run once per backend and compare the `ns_per_amp` columns:
//!
//! ```text
//! cargo run --release --bin microbench_kernels
//! FLATDD_SIMD=scalar cargo run --release --bin microbench_kernels -- \
//!     --json results/microbench_kernels_scalar.json
//! ```

use flatdd::{dmav_no_cache, DmavAssignment, ThreadPool};
use flatdd_bench::{HarnessArgs, JsonWriter, Table};
use qarray::vecops;
use qcircuit::gate::{Gate, GateKind};
use qcircuit::Complex64;
use qdd::DdPackage;
use std::time::Instant;

/// Deterministic, non-trivial amplitudes (no RNG dependency).
fn fill(v: &mut [Complex64]) {
    let mut x = 0x9e3779b97f4a7c15u64;
    for a in v.iter_mut() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let re = ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) - 0.5;
        let im = ((x >> 22) as f64) * (1.0 / (1u64 << 42) as f64) - 0.5;
        *a = Complex64::new(re, im);
    }
}

/// Median seconds of `reps` runs of `f` (each run returns amplitudes touched).
fn time_median(reps: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut times = Vec::with_capacity(reps);
    let mut amps = 0;
    for _ in 0..reps.max(1) {
        let s = Instant::now();
        amps = f();
        times.push(s.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], amps)
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps.max(5);
    // Cache-resident working set so the vector kernels measure compute, not
    // memory bandwidth; an inner loop amortizes the timer overhead.
    let len = ((1usize << 14) as f64 * args.scale).round().max(1024.0) as usize;
    let iters = ((1usize << 23) / len).max(1);
    let backend = vecops::backend().name();
    println!(
        "Kernel microbenchmarks — backend {backend}, {len} amplitudes x {iters} iters, {reps} reps\n"
    );

    let mut v = vec![Complex64::ZERO; len];
    let mut w = vec![Complex64::ZERO; len];
    fill(&mut v);
    fill(&mut w);
    let f = Complex64::new(std::f64::consts::FRAC_1_SQRT_2, -0.25);

    let mut json = JsonWriter::new();
    let mut table = Table::new(vec!["kernel", "ns_per_amp", "amplitudes"]);
    let mut report = |name: &str, secs: f64, amps: usize, json: &mut JsonWriter| {
        let ns = secs * 1e9 / amps.max(1) as f64;
        table.row(vec![name.into(), format!("{ns:.3}"), amps.to_string()]);
        json.record(vec![
            ("kernel", name.into()),
            ("backend", backend.into()),
            ("ns_per_amp", ns.into()),
            ("amplitudes", amps.into()),
            ("seconds", secs.into()),
        ]);
    };

    // axpy: w += f * v (the DMAV identity-block fast path).
    let (secs, amps) = time_median(reps, || {
        for _ in 0..iters {
            vecops::axpy(&mut w, f, &v);
        }
        len * iters
    });
    report("axpy", secs, amps, &mut json);

    // conversion scalar task: dst = f * src (phase 2 of the parallel
    // DD-to-array conversion writes every amplitude exactly like this).
    let (secs, amps) = time_median(reps, || {
        for _ in 0..iters {
            vecops::scale(&mut w, f, &v);
        }
        len * iters
    });
    report("conversion_scale", secs, amps, &mut json);

    // sum_into: out += part (partial-buffer summation of cached DMAV).
    let (secs, amps) = time_median(reps, || {
        for _ in 0..iters {
            vecops::sum_into(&mut w, &v);
        }
        len * iters
    });
    report("sum_into", secs, amps, &mut json);

    // mac2x2: dense 2x2 bottom-level blocks, len/2 applications per run.
    let m = [
        Complex64::new(0.6, 0.1),
        Complex64::new(-0.2, 0.7),
        Complex64::new(0.3, -0.4),
        Complex64::new(0.5, 0.5),
    ];
    let (secs, amps) = time_median(reps, || {
        for _ in 0..iters {
            for i in (0..len).step_by(2) {
                let (v0, v1) = (v[i], v[i + 1]);
                vecops::mac2x2(&mut w[i..i + 2], &m, v0, v1);
            }
        }
        len * iters
    });
    report("mac2x2", secs, amps, &mut json);

    // Whole per-gate DMAV (no caching): H on a middle qubit of an
    // n-qubit flat state, parallel across `--threads` workers.
    let n = (((1usize << 20) as f64 * args.scale).round().max(1024.0) as usize)
        .next_power_of_two()
        .trailing_zeros() as usize;
    let dim = 1usize << n;
    let t = args.threads.max(1).next_power_of_two().min(1 << n.min(8));
    let pkg = DdPackage::default();
    let m_edge = pkg.gate_dd(&Gate::new(GateKind::H, n / 2), n);
    let asg = DmavAssignment::build(&pkg, m_edge, n, t);
    let pool = ThreadPool::new(t);
    let mut state = vec![Complex64::ZERO; dim];
    let mut out = vec![Complex64::ZERO; dim];
    fill(&mut state);
    let (secs, amps) = time_median(reps, || {
        dmav_no_cache(&pkg, &asg, &state, &mut out, &pool);
        dim
    });
    report("dmav_per_gate", secs, amps, &mut json);

    table.print();
    // Embed the unified metrics registry (vecops backend label, DD package
    // gauges) in the results file.
    pkg.publish_metrics();
    json.set_meta_raw(flatdd::telemetry::metrics_json());
    let path = args
        .json
        .clone()
        .or_else(|| Some("results/microbench_kernels.json".into()));
    if let Some(p) = &path {
        if let Some(dir) = std::path::Path::new(p).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    json.write_if(&path);
}
