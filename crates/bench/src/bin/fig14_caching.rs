//! Figure 14: DMAV with caching vs without caching across thread counts on
//! the six deep circuits (DNN 16/20/25, Supremacy 20/24/26).
//!
//! Reports the modeled computational-cost reduction and the measured
//! speed-up of the cost-model-driven kernel over the never-cache kernel,
//! per thread count, with the min/max band across circuits and the mean.
//!
//! Expected shape: both reduction and speed-up grow with the thread count
//! (paper: 13.53% cost reduction and 16.47% speed-up at 16 threads).

use flatdd::{CachingPolicy, ConversionPolicy, FlatDdConfig, FlatDdSimulator};
use flatdd_bench::{HarnessArgs, JsonWriter, Table};
use qcircuit::Circuit;

fn run_once(c: &Circuit, threads: usize, caching: CachingPolicy) -> (f64, f64) {
    let cfg = FlatDdConfig {
        threads,
        caching,
        // Pure-DMAV mode isolates the kernel under study (the DD phase and
        // conversion are identical in both arms).
        conversion: ConversionPolicy::Immediate,
        ..Default::default()
    };
    let mut sim = FlatDdSimulator::new(c.num_qubits(), cfg);
    let start = std::time::Instant::now();
    sim.run(c).expect("benchmark run failed");
    (start.elapsed().as_secs_f64(), sim.stats().modeled_cost)
}

fn main() {
    let args = HarnessArgs::parse();
    let workloads = flatdd_bench::suite::deep_workloads(args.scale, args.seed);
    let threads = [1usize, 2, 4, 8, 16];
    println!(
        "Figure 14 — DMAV caching vs no caching (scale {:.2})\n",
        args.scale
    );
    let mut table = Table::new(vec![
        "threads",
        "cost_red_min%",
        "cost_red_mean%",
        "cost_red_max%",
        "speedup_min%",
        "speedup_mean%",
        "speedup_max%",
    ]);
    let mut json = JsonWriter::new();
    for &t in &threads {
        let mut reductions = Vec::new();
        let mut speedups = Vec::new();
        for w in &workloads {
            let c = &w.circuit;
            // Arm 1: never cache. Modeled cost = C1 totals.
            let (time_nc, _) = run_once(c, t, CachingPolicy::Never);
            // Cost model runs both equations; its accumulated min(C1,C2) vs
            // the pure-C1 total gives the modeled reduction.
            let cfg = FlatDdConfig {
                threads: t,
                conversion: ConversionPolicy::Immediate,
                ..Default::default()
            };
            let mut sim = FlatDdSimulator::new(c.num_qubits(), cfg);
            let start = std::time::Instant::now();
            sim.run(c).expect("benchmark run failed");
            let time_cm = start.elapsed().as_secs_f64();
            let cost_min = sim.stats().modeled_cost;
            // C1-only total for the same gates:
            let mut c1_total = 0.0;
            {
                use qdd::{mac_count, DdPackage};
                let pkg = DdPackage::default();
                let tt = flatdd::clamp_threads(t, c.num_qubits());
                for g in c.iter() {
                    let m = pkg.gate_dd(g, c.num_qubits());
                    c1_total += mac_count(&pkg, m) as f64 / tt as f64;
                }
            }
            let reduction = 100.0 * (1.0 - cost_min / c1_total.max(1e-12));
            let speedup = 100.0 * (time_nc / time_cm.max(1e-12) - 1.0);
            reductions.push(reduction);
            speedups.push(speedup);
            json.record(vec![
                ("family", w.family.into()),
                ("paper_qubits", w.paper_qubits.into()),
                ("threads", t.into()),
                ("time_no_cache_s", time_nc.into()),
                ("time_cost_model_s", time_cm.into()),
                ("cost_reduction_pct", reduction.into()),
                ("speedup_pct", speedup.into()),
            ]);
        }
        let stats = |v: &[f64]| {
            let mn = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            (mn, mean, mx)
        };
        let (rmin, rmean, rmax) = stats(&reductions);
        let (smin, smean, smax) = stats(&speedups);
        table.row(vec![
            t.to_string(),
            format!("{rmin:.2}"),
            format!("{rmean:.2}"),
            format!("{rmax:.2}"),
            format!("{smin:.2}"),
            format!("{smean:.2}"),
            format!("{smax:.2}"),
        ]);
    }
    table.print();
    println!("\npaper reference at 16 threads: 13.53% cost reduction, 16.47% speed-up.");
    json.write_if(&args.json);
}
