//! Plain-text tables, JSON output, and summary statistics.

use std::fmt::Write as _;
use std::io::Write as _;

/// Geometric mean of positive values (the paper's average for quantities
/// with exponential spread). Non-positive values are skipped.
pub fn geo_mean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .filter(|&&v| v > 0.0)
        .map(|v| v.ln())
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// A column-aligned plain-text table (what the harness binaries print).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A tiny hand-rolled JSON emitter (arrays of flat objects), avoiding an
/// extra dependency for the harness outputs.
pub struct JsonWriter {
    records: Vec<Vec<(String, JsonValue)>>,
    meta: Option<String>,
}

/// A JSON scalar.
pub enum JsonValue {
    /// Number (rendered with full precision).
    Num(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(JsonValue::Null)
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter {
            records: Vec::new(),
            meta: None,
        }
    }

    /// Attaches an already-serialized JSON value (e.g.
    /// `flatdd::telemetry::metrics_json()`) as run metadata: the output
    /// becomes `{"metrics": <raw>, "records": [...]}` instead of a bare
    /// array. The string must be valid JSON; it is embedded verbatim.
    pub fn set_meta_raw(&mut self, raw_json: String) {
        self.meta = Some(raw_json);
    }

    /// Appends one flat record.
    pub fn record(&mut self, fields: Vec<(&str, JsonValue)>) {
        self.records.push(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
    }

    /// Serializes the records — a bare JSON array, or (with
    /// [`Self::set_meta_raw`]) an object wrapping metadata and records.
    pub fn render(&self) -> String {
        match &self.meta {
            None => self.render_records(),
            Some(meta) => format!(
                "{{\n\"metrics\": {},\n\"records\": {}\n}}",
                meta,
                self.render_records()
            ),
        }
    }

    fn render_records(&self) -> String {
        let mut out = String::from("[\n");
        for (i, rec) in self.records.iter().enumerate() {
            out.push_str("  {");
            for (j, (k, v)) in rec.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: ", escape(k));
                match v {
                    JsonValue::Num(x) => {
                        if x.is_finite() {
                            let _ = write!(out, "{x}");
                        } else {
                            out.push_str("null");
                        }
                    }
                    JsonValue::Str(s) => out.push_str(&escape(s)),
                    JsonValue::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                    JsonValue::Null => out.push_str("null"),
                }
            }
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }

    /// Writes to `path` if `Some`.
    pub fn write_if(&self, path: &Option<String>) {
        if let Some(p) = path {
            match std::fs::File::create(p).and_then(|mut f| f.write_all(self.render().as_bytes())) {
                Ok(()) => eprintln!("wrote {p}"),
                Err(e) => eprintln!("failed to write {p}: {e}"),
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geo_mean(&[8.0]) - 8.0).abs() < 1e-9);
        assert_eq!(geo_mean(&[]), 0.0);
        // Non-positive skipped.
        assert!((geo_mean(&[0.0, 4.0, 9.0]) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["ghz", "1"]);
        t.row(vec!["supremacy", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("supremacy  12345"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn json_escaping_and_types() {
        let mut w = JsonWriter::new();
        w.record(vec![
            ("name", "a\"b\\c".into()),
            ("x", 1.5f64.into()),
            ("n", 7usize.into()),
            ("ok", true.into()),
            ("missing", Option::<usize>::None.into()),
        ]);
        let s = w.render();
        assert!(s.contains("\"a\\\"b\\\\c\""));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"n\": 7"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"missing\": null"));
        assert!(s.starts_with('['));
        assert!(s.ends_with(']'));
    }

    #[test]
    fn json_write_if_none_is_noop() {
        JsonWriter::new().write_if(&None);
    }
}
