//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section (see DESIGN.md's experiment index). This library
//! provides the shared pieces: CLI parsing, the engine runners with a
//! soft timeout (the paper kills runs at 24 h; we default to seconds-scale
//! budgets), the scaled Table-1 workload suite, and plain-text/JSON output.

pub mod cli;
pub mod engines;
pub mod report;
pub mod suite;

pub use cli::HarnessArgs;
pub use engines::{run_array, run_ddsim, run_flatdd, EngineResult, RunStatus};
pub use report::{geo_mean, JsonWriter, Table};
pub use suite::{table1_workloads, Workload};
