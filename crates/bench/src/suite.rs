//! The Table-1 workload suite at configurable scale.

use qcircuit::{generators, Circuit};

/// One benchmark workload with its paper-reported reference numbers.
pub struct Workload {
    /// Family name as printed in Table 1.
    pub family: &'static str,
    /// Paper qubit count this instance is scaled from.
    pub paper_qubits: usize,
    /// The scaled circuit.
    pub circuit: Circuit,
    /// Whether the paper classifies this circuit as regular.
    pub regular: bool,
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(6)
}

fn even(n: usize) -> usize {
    if n.is_multiple_of(2) {
        n
    } else {
        n + 1
    }
}

fn odd(n: usize) -> usize {
    if n % 2 == 1 {
        n
    } else {
        n + 1
    }
}

/// Builds the 12 Table-1 workloads at `scale` (1.0 = the paper's sizes).
pub fn table1_workloads(scale: f64, seed: u64) -> Vec<Workload> {
    let s = |n| scaled(n, scale);
    vec![
        Workload {
            family: "DNN",
            paper_qubits: 16,
            circuit: generators::dnn_paper(s(16), seed),
            regular: false,
        },
        Workload {
            family: "DNN",
            paper_qubits: 20,
            circuit: generators::dnn_paper(s(20), seed + 1),
            regular: false,
        },
        Workload {
            family: "DNN",
            paper_qubits: 25,
            circuit: generators::dnn_paper(s(25), seed + 2),
            regular: false,
        },
        Workload {
            family: "Adder",
            paper_qubits: 28,
            circuit: generators::adder_n(even(s(28))),
            regular: true,
        },
        Workload {
            family: "GHZ state",
            paper_qubits: 23,
            circuit: generators::ghz(s(23)),
            regular: true,
        },
        Workload {
            family: "VQE",
            paper_qubits: 16,
            circuit: generators::vqe_paper(s(16), seed + 3),
            regular: false,
        },
        Workload {
            family: "KNN",
            paper_qubits: 25,
            circuit: generators::knn((odd(s(25)) - 1) / 2, seed + 4),
            regular: false,
        },
        Workload {
            family: "KNN",
            paper_qubits: 31,
            circuit: generators::knn((odd(s(31)) - 1) / 2, seed + 5),
            regular: false,
        },
        Workload {
            family: "Swap test",
            paper_qubits: 25,
            circuit: generators::swap_test((odd(s(25)) - 1) / 2, seed + 6),
            regular: false,
        },
        Workload {
            family: "Supremacy",
            paper_qubits: 20,
            circuit: generators::supremacy_n(s(20), 30, seed + 7),
            regular: false,
        },
        Workload {
            family: "Supremacy",
            paper_qubits: 24,
            circuit: generators::supremacy_n(s(24), 30, seed + 8),
            regular: false,
        },
        Workload {
            family: "Supremacy",
            paper_qubits: 26,
            circuit: generators::supremacy_n(s(26), 30, seed + 9),
            regular: false,
        },
    ]
}

/// The six deep (>1000 gate at paper scale) circuits of Table 2 / Figure 14.
pub fn deep_workloads(scale: f64, seed: u64) -> Vec<Workload> {
    table1_workloads(scale, seed)
        .into_iter()
        .filter(|w| w.family == "DNN" || w.family == "Supremacy")
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads() {
        let ws = table1_workloads(0.4, 1);
        assert_eq!(ws.len(), 12);
        assert!(ws.iter().all(|w| w.circuit.num_qubits() >= 6));
        assert_eq!(ws.iter().filter(|w| w.regular).count(), 2);
    }

    #[test]
    fn six_deep_workloads() {
        let ws = deep_workloads(0.4, 1);
        assert_eq!(ws.len(), 6);
        assert!(ws.iter().all(|w| !w.regular));
    }

    #[test]
    fn paper_scale_qubit_counts() {
        let ws = table1_workloads(1.0, 1);
        let qubits: Vec<usize> = ws.iter().map(|w| w.circuit.num_qubits()).collect();
        assert_eq!(qubits, vec![16, 20, 25, 28, 23, 16, 25, 31, 25, 20, 24, 26]);
    }
}
