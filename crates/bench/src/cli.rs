//! Minimal CLI parsing shared by the harness binaries (no external crate).

/// Common harness options.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Scale factor applied to the paper's qubit counts (default 0.5).
    pub scale: f64,
    /// Worker threads for the parallel engines (default 16, clamped).
    pub threads: usize,
    /// Per-engine soft timeout in seconds (default 60; the paper uses 24 h).
    pub timeout_secs: f64,
    /// PRNG seed for the randomized workloads.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Repetitions per measurement (default 1; harnesses report the
    /// minimum).
    pub reps: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.5,
            threads: 16,
            timeout_secs: 60.0,
            seed: 42,
            json: None,
            reps: 1,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`, printing usage and exiting on `--help` or
    /// malformed input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_of = |name: &str| {
                it.next()
                    .unwrap_or_else(|| die(&format!("{name} expects a value")))
            };
            match arg.as_str() {
                "--scale" => out.scale = parse_or_die(&value_of("--scale"), "--scale"),
                "--paper-sizes" => out.scale = 1.0,
                "--threads" | "-t" => {
                    out.threads = parse_or_die(&value_of("--threads"), "--threads")
                }
                "--timeout-secs" => {
                    out.timeout_secs = parse_or_die(&value_of("--timeout-secs"), "--timeout-secs")
                }
                "--seed" => out.seed = parse_or_die(&value_of("--seed"), "--seed"),
                "--json" => out.json = Some(value_of("--json")),
                "--reps" => out.reps = parse_or_die(&value_of("--reps"), "--reps"),
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag `{other}`")),
            }
        }
        if out.scale <= 0.0 || out.scale > 1.5 {
            die("--scale must be in (0, 1.5]");
        }
        out.reps = out.reps.max(1);
        out
    }
}

const USAGE: &str = "\
FlatDD reproduction harness

Options:
  --scale <f>         scale the paper's qubit counts by f (default 0.5)
  --paper-sizes       shorthand for --scale 1.0 (needs a big machine!)
  --threads <t>       worker threads (default 16; clamped per engine)
  --timeout-secs <s>  soft per-run timeout (default 60)
  --seed <u64>        workload seed (default 42)
  --reps <k>          repetitions, minimum reported (default 1)
  --json <path>       also write results as JSON";

fn parse_or_die<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value `{s}` for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.threads, 16);
        assert_eq!(a.reps, 1);
        assert!(a.json.is_none());
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--scale",
            "0.3",
            "--threads",
            "4",
            "--timeout-secs",
            "5",
            "--seed",
            "7",
            "--json",
            "/tmp/x.json",
            "--reps",
            "3",
        ]);
        assert_eq!(a.scale, 0.3);
        assert_eq!(a.threads, 4);
        assert_eq!(a.timeout_secs, 5.0);
        assert_eq!(a.seed, 7);
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
        assert_eq!(a.reps, 3);
    }

    #[test]
    fn paper_sizes_flag() {
        assert_eq!(parse(&["--paper-sizes"]).scale, 1.0);
    }
}
