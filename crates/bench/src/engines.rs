//! Engine runners with soft timeouts and memory accounting.
//!
//! The paper terminates runs after 24 hours; at harness scale the default
//! budget is seconds. Timeouts are *soft*: checked between gates, so a run
//! reports how far it got (the Table-1 `> 24 h` rows become `TimedOut`
//! results with a lower-bound runtime).

use flatdd::{FlatDdConfig, FlatDdSimulator, FusionPolicy};
use qarray::ArraySimulator;
use qcircuit::Circuit;
use qdd::DdSimulator;
use std::time::Instant;

/// Whether the run finished within budget.
///
/// (Named `RunStatus` to avoid clashing with [`flatdd::RunOutcome`], the
/// engine's own progress snapshot.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// All gates applied.
    Completed,
    /// Stopped at the soft timeout.
    TimedOut,
    /// The engine returned a typed error (budget breach, divergence, ...).
    Failed,
}

/// One engine measurement.
#[derive(Clone, Copy, Debug)]
pub struct EngineResult {
    /// Wall-clock seconds (lower bound when timed out).
    pub seconds: f64,
    /// Completion status.
    pub outcome: RunStatus,
    /// Gates applied before stopping.
    pub gates_done: usize,
    /// Engine data-structure bytes (capacity-based, i.e. high-water).
    pub memory_bytes: usize,
    /// Gate index of the DD-to-DMAV conversion (FlatDD only).
    pub converted_at: Option<usize>,
}

impl EngineResult {
    /// Runtime string: seconds, or `> s` when timed out (Table-1 style).
    pub fn runtime_str(&self) -> String {
        match self.outcome {
            RunStatus::Completed => format!("{:.3}", self.seconds),
            RunStatus::TimedOut => format!("> {:.0}", self.seconds),
            RunStatus::Failed => format!("failed @ {:.3}", self.seconds),
        }
    }
}

/// Runs the DDSIM-equivalent engine (single-threaded, per the paper).
pub fn run_ddsim(circuit: &Circuit, timeout_secs: f64) -> EngineResult {
    let mut sim = DdSimulator::new(circuit.num_qubits());
    let start = Instant::now();
    let mut done = 0;
    let mut outcome = RunStatus::Completed;
    for g in circuit.iter() {
        sim.apply(g);
        done += 1;
        if start.elapsed().as_secs_f64() > timeout_secs {
            outcome = RunStatus::TimedOut;
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let st = sim.package().stats();
    EngineResult {
        seconds,
        outcome,
        gates_done: done,
        memory_bytes: st.memory_bytes,
        converted_at: None,
    }
}

/// Runs the Quantum++-equivalent array engine.
pub fn run_array(circuit: &Circuit, threads: usize, timeout_secs: f64) -> EngineResult {
    let mut sim = ArraySimulator::with_threads(circuit.num_qubits(), threads);
    let start = Instant::now();
    let mut done = 0;
    let mut outcome = RunStatus::Completed;
    for g in circuit.iter() {
        sim.apply(g);
        done += 1;
        if start.elapsed().as_secs_f64() > timeout_secs {
            outcome = RunStatus::TimedOut;
            break;
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let mem = std::mem::size_of_val(sim.state());
    EngineResult {
        seconds,
        outcome,
        gates_done: done,
        memory_bytes: mem,
        converted_at: None,
    }
}

/// Runs FlatDD. With fusion enabled the fused tail executes as one block
/// (the timeout is still honored up to the conversion point).
pub fn run_flatdd(circuit: &Circuit, cfg: FlatDdConfig, timeout_secs: f64) -> EngineResult {
    let mut sim = FlatDdSimulator::new(circuit.num_qubits(), cfg);
    let start = Instant::now();
    let mut done = 0;
    let mut outcome = RunStatus::Completed;
    if cfg.fusion == FusionPolicy::None {
        for g in circuit.iter() {
            if sim.apply(g).is_err() {
                outcome = RunStatus::Failed;
                break;
            }
            done += 1;
            if start.elapsed().as_secs_f64() > timeout_secs {
                outcome = RunStatus::TimedOut;
                break;
            }
        }
    } else {
        match sim.run(circuit) {
            Ok(out) => done = out.gates_applied,
            Err(e) => {
                outcome = RunStatus::Failed;
                done = e.partial_outcome().map_or(0, |p| p.gates_applied);
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = sim.stats();
    sim.publish_metrics();
    EngineResult {
        seconds,
        outcome,
        gates_done: done,
        memory_bytes: sim.memory_bytes(),
        converted_at: stats.converted_at,
    }
}

/// Repeats a measurement `reps` times and keeps the fastest (completed runs
/// preferred over timeouts).
pub fn best_of<F: FnMut() -> EngineResult>(reps: usize, mut f: F) -> EngineResult {
    let mut best: Option<EngineResult> = None;
    for _ in 0..reps.max(1) {
        let r = f();
        best = Some(match best {
            None => r,
            Some(b) => {
                let b_to = b.outcome == RunStatus::TimedOut;
                let r_to = r.outcome == RunStatus::TimedOut;
                if (b_to && !r_to) || (b_to == r_to && r.seconds < b.seconds) {
                    r
                } else {
                    b
                }
            }
        });
    }
    best.unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::generators;

    #[test]
    fn engines_complete_small_workloads() {
        let c = generators::ghz(8);
        let dd = run_ddsim(&c, 30.0);
        assert_eq!(dd.outcome, RunStatus::Completed);
        assert_eq!(dd.gates_done, c.num_gates());
        let ar = run_array(&c, 2, 30.0);
        assert_eq!(ar.outcome, RunStatus::Completed);
        assert!(ar.memory_bytes >= (1 << 8) * 16);
        let fd = run_flatdd(
            &c,
            FlatDdConfig {
                threads: 2,
                ..Default::default()
            },
            30.0,
        );
        assert_eq!(fd.outcome, RunStatus::Completed);
        assert!(fd.converted_at.is_none(), "GHZ must not convert");
    }

    #[test]
    fn timeout_reports_partial_progress() {
        let c = generators::dnn(12, 8, 3);
        let r = run_ddsim(&c, 0.000_001);
        assert_eq!(r.outcome, RunStatus::TimedOut);
        assert!(r.gates_done < c.num_gates());
        assert!(r.runtime_str().starts_with('>'));
    }

    #[test]
    fn best_of_prefers_completed() {
        let mut calls = 0;
        let r = best_of(3, || {
            calls += 1;
            EngineResult {
                seconds: calls as f64,
                outcome: if calls == 2 {
                    RunStatus::Completed
                } else {
                    RunStatus::TimedOut
                },
                gates_done: 0,
                memory_bytes: 0,
                converted_at: None,
            }
        });
        assert_eq!(r.outcome, RunStatus::Completed);
        assert_eq!(r.seconds, 2.0);
    }
}
