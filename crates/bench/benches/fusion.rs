//! Criterion micro-benchmarks of gate fusion: the DMAV-aware pass vs
//! k-operations, and the DDMM it is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flatdd::{fuse_dmav_aware, fuse_k_operations, CostModel};
use qcircuit::generators;
use qdd::DdPackage;

fn bench_fusion_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_pass");
    group.sample_size(10);
    for n in [8usize, 10] {
        let circuit = generators::dnn(n, 3, 7);
        group.bench_with_input(BenchmarkId::new("dmav_aware", n), &n, |b, &n| {
            b.iter(|| {
                let mut pkg = DdPackage::default();
                std::hint::black_box(fuse_dmav_aware(
                    &mut pkg,
                    circuit.gates(),
                    n,
                    4,
                    &CostModel::default(),
                    64,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("k_operations_k4", n), &n, |b, &n| {
            b.iter(|| {
                let mut pkg = DdPackage::default();
                std::hint::black_box(fuse_k_operations(
                    &mut pkg,
                    circuit.gates(),
                    n,
                    4,
                    4,
                    &CostModel::default(),
                    64,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion_passes);
criterion_main!(benches);
