//! Criterion micro-benchmarks of DD-to-array conversion: sequential
//! (DDSIM-style) vs parallel (FlatDD, Figure 4), on regular and irregular
//! state DDs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flatdd::{dd_to_array_parallel, ThreadPool};
use qcircuit::generators;
use qdd::DdSimulator;

fn prepared(circuit: &qcircuit::Circuit) -> DdSimulator {
    let mut sim = DdSimulator::new(circuit.num_qubits());
    sim.run(circuit);
    sim
}

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_to_array");
    group.sample_size(20);
    for n in [12usize, 14, 16] {
        let cases = vec![
            ("ghz", generators::ghz(n)),
            ("dnn", generators::dnn(n, 2, 5)),
        ];
        for (name, circuit) in cases {
            let sim = prepared(&circuit);
            group.bench_with_input(
                BenchmarkId::new(format!("sequential_{name}"), n),
                &n,
                |b, &n| {
                    b.iter(|| std::hint::black_box(sim.package().vector_to_array(sim.state(), n)))
                },
            );
            for t in [2usize, 4] {
                let pool = ThreadPool::new(t);
                group.bench_with_input(
                    BenchmarkId::new(format!("parallel_{name}_t{t}"), n),
                    &n,
                    |b, &n| {
                        b.iter(|| {
                            std::hint::black_box(dd_to_array_parallel(
                                sim.package(),
                                sim.state(),
                                n,
                                &pool,
                            ))
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
