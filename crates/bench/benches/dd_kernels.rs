//! Criterion micro-benchmarks of the DD substrate: gate-DD construction,
//! DD matrix-vector multiplication, vector addition, and DD traversal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcircuit::gate::{Control, Gate, GateKind};
use qcircuit::generators;
use qdd::{DdPackage, DdSimulator};

fn bench_gate_dd_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_dd_construction");
    for n in [8usize, 16, 24] {
        group.bench_with_input(BenchmarkId::new("hadamard", n), &n, |b, &n| {
            let pkg = DdPackage::default();
            let g = Gate::new(GateKind::H, n / 2);
            b.iter(|| std::hint::black_box(pkg.gate_dd(&g, n)));
        });
        group.bench_with_input(BenchmarkId::new("toffoli", n), &n, |b, &n| {
            let pkg = DdPackage::default();
            let g = Gate::controlled(
                GateKind::X,
                0,
                vec![Control::pos(n - 1), Control::pos(n / 2)],
            );
            b.iter(|| std::hint::black_box(pkg.gate_dd(&g, n)));
        });
    }
    group.finish();
}

fn bench_mul_mv(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd_mul_mv");
    for n in [10usize, 14] {
        // Regular state: GHZ.
        group.bench_with_input(BenchmarkId::new("ghz_state", n), &n, |b, &n| {
            let mut sim = DdSimulator::new(n);
            sim.run(&generators::ghz(n));
            let state = sim.state();
            let pkg = sim.package_mut();
            let g = pkg.gate_dd(&Gate::new(GateKind::H, n / 2), n);
            b.iter(|| std::hint::black_box(pkg.mul_mv(g, state)));
        });
        // Irregular state: a few DNN layers.
        group.bench_with_input(BenchmarkId::new("dnn_state", n), &n, |b, &n| {
            let mut sim = DdSimulator::new(n);
            sim.run(&generators::dnn(n, 2, 5));
            let state = sim.state();
            let pkg = sim.package_mut();
            let g = pkg.gate_dd(&Gate::new(GateKind::RY(0.3), n / 2), n);
            b.iter(|| std::hint::black_box(pkg.mul_mv(g, state)));
        });
    }
    group.finish();
}

fn bench_dd_size_traversal(c: &mut Criterion) {
    // The EWMA monitor calls this after every gate — its overhead is the
    // price FlatDD pays on regular circuits (Table 1's GHZ row).
    let mut group = c.benchmark_group("dd_size_traversal");
    for n in [12usize, 16] {
        group.bench_with_input(BenchmarkId::new("dnn_state", n), &n, |b, &n| {
            let mut sim = DdSimulator::new(n);
            sim.run(&generators::dnn(n, 2, 5));
            let state = sim.state();
            let pkg = sim.package_mut();
            b.iter(|| std::hint::black_box(pkg.vector_dd_size(state)));
        });
    }
    group.finish();
}

fn bench_ddmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ddmm");
    for n in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("h_times_cx", n), &n, |b, &n| {
            let pkg = DdPackage::default();
            let h = pkg.gate_dd(&Gate::new(GateKind::H, 1), n);
            let cx = pkg.gate_dd(
                &Gate::controlled(GateKind::X, 0, vec![Control::pos(n - 1)]),
                n,
            );
            b.iter(|| std::hint::black_box(pkg.mul_mm(h, cx)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_dd_construction,
    bench_mul_mv,
    bench_dd_size_traversal,
    bench_ddmm
);
criterion_main!(benches);
