//! Criterion micro-benchmarks of the measurement layer: inner products,
//! Pauli expectations, sampling, and equivalence checking — comparing the
//! DD-native algorithms against the flat-array equivalents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcircuit::{generators, Hamiltonian, PauliString};
use qdd::{DdPackage, DdSimulator, SplitMix64};

fn prepared(n: usize, seed: u64) -> (DdSimulator, Vec<qcircuit::Complex64>) {
    let c = generators::dnn(n, 2, seed);
    let mut sim = DdSimulator::new(n);
    sim.run(&c);
    let arr = sim.amplitudes();
    (sim, arr)
}

fn bench_inner_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_product");
    for n in [10usize, 14] {
        let (sim, arr) = prepared(n, 3);
        group.bench_with_input(BenchmarkId::new("dd", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(sim.package().inner_product(sim.state(), sim.state())))
        });
        group.bench_with_input(BenchmarkId::new("array", n), &n, |b, _| {
            b.iter(|| {
                let s: qcircuit::Complex64 = arr.iter().map(|&x| x.conj() * x).sum();
                std::hint::black_box(s)
            })
        });
    }
    group.finish();
}

fn bench_expectation(c: &mut Criterion) {
    let mut group = c.benchmark_group("expectation");
    group.sample_size(20);
    for n in [10usize, 14] {
        let ham = Hamiltonian::transverse_ising(n, 1.0, 0.5);
        let diag = PauliString::zz(1.0, 0, n - 1);
        let (mut sim, arr) = prepared(n, 5);
        group.bench_with_input(BenchmarkId::new("dd_hamiltonian", n), &n, |b, _| {
            let state = sim.state();
            b.iter(|| {
                let pkg = sim.package_mut();
                std::hint::black_box(pkg.expectation(state, &ham, n))
            })
        });
        group.bench_with_input(BenchmarkId::new("array_hamiltonian", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(qarray::expectation(&arr, &ham)))
        });
        group.bench_with_input(BenchmarkId::new("dd_diagonal_fast_path", n), &n, |b, _| {
            let state = sim.state();
            b.iter(|| std::hint::black_box(sim.package().expectation_diagonal(state, &diag)))
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for n in [12usize, 16] {
        let (sim, arr) = prepared(n, 7);
        group.bench_with_input(BenchmarkId::new("dd_1000_shots", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = SplitMix64::new(1);
                let counts = sim
                    .package()
                    .sample_counts(sim.state(), 1000, &mut rng.as_fn());
                std::hint::black_box(counts)
            })
        });
        group.bench_with_input(BenchmarkId::new("array_1000_shots", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = SplitMix64::new(1);
                let counts = qarray::sample_counts(&arr, 1000, &mut rng.as_fn());
                std::hint::black_box(counts)
            })
        });
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence_check");
    group.sample_size(10);
    for n in [6usize, 8] {
        let a = generators::qft(n);
        group.bench_with_input(BenchmarkId::new("qft_self", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(qdd::check_equivalence(&a, &a)))
        });
        let mut pkg_bench = DdPackage::default();
        let _ = &mut pkg_bench;
        let perturbed = {
            let mut p = a.clone();
            p.t(0);
            p
        };
        group.bench_with_input(BenchmarkId::new("qft_perturbed", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(qdd::check_equivalence(&a, &perturbed)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inner_product,
    bench_expectation,
    bench_sampling,
    bench_equivalence
);
criterion_main!(benches);
