//! Criterion micro-benchmarks of the array-engine gate kernels
//! (Equations 2/3): dense vs diagonal vs controlled, serial vs parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qarray::{apply_gate_parallel, apply_gate_serial};
use qcircuit::gate::{Control, Gate, GateKind};
use qcircuit::Complex64;

fn state(n: usize) -> Vec<Complex64> {
    (0..(1usize << n))
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos() * 0.5))
        .collect()
}

fn bench_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_serial");
    group.sample_size(30);
    for n in [14usize, 16] {
        let gates = vec![
            ("h_mid", Gate::new(GateKind::H, n / 2)),
            ("t_diag", Gate::new(GateKind::T, n / 2)),
            ("x_antidiag", Gate::new(GateKind::X, n / 2)),
            (
                "cx",
                Gate::controlled(GateKind::X, 0, vec![Control::pos(n - 1)]),
            ),
        ];
        for (name, g) in gates {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                let mut v = state(n);
                b.iter(|| {
                    apply_gate_serial(&mut v, &g);
                    std::hint::black_box(&v);
                });
            });
        }
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_parallel");
    group.sample_size(20);
    for t in [2usize, 4] {
        let n = 16;
        group.bench_with_input(BenchmarkId::new("h_mid", t), &t, |b, &t| {
            let g = Gate::new(GateKind::H, n / 2);
            let mut v = state(n);
            b.iter(|| {
                apply_gate_parallel(&mut v, &g, t);
                std::hint::black_box(&v);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serial, bench_parallel);
criterion_main!(benches);
