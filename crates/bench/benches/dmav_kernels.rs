//! Criterion micro-benchmarks of the DMAV kernels (Algorithms 1 and 2):
//! assignment construction, no-cache vs cached execution, and the cost
//! model itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flatdd::{
    dmav_cached, dmav_no_cache, CostModel, DmavAssignment, DmavCacheAssignment, PartialBuffers,
    ThreadPool,
};
use qcircuit::gate::{Gate, GateKind};
use qcircuit::Complex64;
use qdd::{DdPackage, MacTable};

fn state(n: usize) -> Vec<Complex64> {
    (0..(1usize << n))
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos() * 0.5))
        .collect()
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmav_assignment");
    for n in [12usize, 16] {
        group.bench_with_input(BenchmarkId::new("no_cache", n), &n, |b, &n| {
            let pkg = DdPackage::default();
            let m = pkg.gate_dd(&Gate::new(GateKind::H, n - 1), n);
            b.iter(|| std::hint::black_box(DmavAssignment::build(&pkg, m, n, 4)));
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, &n| {
            let pkg = DdPackage::default();
            let m = pkg.gate_dd(&Gate::new(GateKind::H, n - 1), n);
            b.iter(|| std::hint::black_box(DmavCacheAssignment::build(&pkg, m, n, 4)));
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmav_kernel");
    group.sample_size(20);
    for n in [12usize, 14] {
        for t in [1usize, 2, 4] {
            let id = format!("n{n}_t{t}");
            group.bench_with_input(BenchmarkId::new("no_cache", &id), &(n, t), |b, &(n, t)| {
                let pkg = DdPackage::default();
                let m = pkg.gate_dd(&Gate::new(GateKind::H, n - 1), n);
                let asg = DmavAssignment::build(&pkg, m, n, t);
                let v = state(n);
                let mut w = vec![Complex64::ZERO; 1 << n];
                let pool = ThreadPool::new(t);
                b.iter(|| {
                    dmav_no_cache(&pkg, &asg, &v, &mut w, &pool);
                    std::hint::black_box(&w);
                });
            });
            group.bench_with_input(BenchmarkId::new("cached", &id), &(n, t), |b, &(n, t)| {
                let pkg = DdPackage::default();
                let m = pkg.gate_dd(&Gate::new(GateKind::H, n - 1), n);
                let asg = DmavCacheAssignment::build(&pkg, m, n, t);
                let v = state(n);
                let mut w = vec![Complex64::ZERO; 1 << n];
                let pool = ThreadPool::new(t);
                let mut scratch = PartialBuffers::default();
                b.iter(|| {
                    dmav_cached(&pkg, &asg, &v, &mut w, &pool, &mut scratch);
                    std::hint::black_box(&w);
                });
            });
        }
    }
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    for n in [12usize, 16] {
        group.bench_with_input(BenchmarkId::new("analyze", n), &n, |b, &n| {
            let pkg = DdPackage::default();
            let m = pkg.gate_dd(&Gate::new(GateKind::H, n - 1), n);
            let cm = CostModel::default();
            b.iter(|| {
                let mut mac = MacTable::default();
                std::hint::black_box(cm.analyze(&pkg, &mut mac, m, n, 4))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment, bench_kernels, bench_cost_model);
criterion_main!(benches);
