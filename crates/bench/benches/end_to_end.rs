//! Criterion end-to-end comparison: FlatDD vs the DDSIM-equivalent vs the
//! Quantum++-equivalent on small instances of the paper's circuit families
//! (the bench-scale slice of Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flatdd::FlatDdConfig;
use qcircuit::generators;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let circuits = vec![
        ("ghz12", generators::ghz(12)),
        ("adder12", generators::adder_n(12)),
        ("dnn10", generators::dnn(10, 3, 5)),
        ("supremacy12", generators::supremacy(3, 4, 10, 5)),
    ];
    for (name, circuit) in &circuits {
        group.bench_with_input(
            BenchmarkId::new("flatdd_t4", name),
            circuit,
            |b, circuit| {
                b.iter(|| {
                    std::hint::black_box(flatdd::simulate(
                        circuit,
                        FlatDdConfig {
                            threads: 4,
                            ..Default::default()
                        },
                    ))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("ddsim", name), circuit, |b, circuit| {
            b.iter(|| std::hint::black_box(qdd::sim::simulate(circuit)));
        });
        group.bench_with_input(BenchmarkId::new("qpp_t4", name), circuit, |b, circuit| {
            b.iter(|| std::hint::black_box(qarray::simulate_with_threads(circuit, 4)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
