//! Cross-thread stress tests for the sharded DD package: canonicity of the
//! unique/complex tables under concurrent insertion, exactness of the lossy
//! compute caches, and equivalence of the parallel gate apply against the
//! sequential engine. These run through the public API only — the same
//! surface `FlatDdSimulator` uses — so they double as a contract check.

use qcircuit::complex::state_distance;
use qcircuit::{dense, generators, Circuit, Complex64};
use qdd::{DdPackage, ThreadPool};
use std::thread;

/// Deterministic pseudo-random amplitudes (no external RNG crates).
fn amps(seed: u64, len: usize) -> Vec<Complex64> {
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..len).map(|_| Complex64::new(step(), step())).collect()
}

#[test]
fn concurrent_builds_of_the_same_vector_are_one_dd() {
    // 8 threads build the identical 64-amplitude vector on one shared
    // package; the sharded unique table must hand every thread the exact
    // same canonical root edge (same node ids, same weight index).
    for seed in [1u64, 7, 42] {
        let pkg = DdPackage::default();
        let v = amps(seed, 64);
        let roots: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| pkg.vector_from_slice(&v)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &roots[1..] {
            assert_eq!(*r, roots[0], "non-canonical DD for seed {seed}");
        }
    }
}

#[test]
fn concurrent_interning_returns_equal_indices() {
    // Every thread interns the same value sequence; the sharded complex
    // table must resolve each value to one canonical index no matter which
    // thread got there first.
    let pkg = DdPackage::default();
    let vals = amps(99, 1_000);
    let idx_sets: Vec<Vec<_>> = thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| vals.iter().map(|&c| pkg.clookup(c)).collect::<Vec<_>>()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for set in &idx_sets[1..] {
        assert_eq!(*set, idx_sets[0]);
    }
}

#[test]
fn concurrent_gate_applies_on_one_package_match_private_runs() {
    // 8 threads each simulate a *different* circuit on one shared package
    // (shared unique, complex, and compute tables — the serve-style
    // contention pattern). Each result must match the same circuit run
    // alone on a private package.
    let circuits: Vec<Circuit> = (0..8)
        .map(|i| generators::random_circuit(6, 60, 1000 + i as u64))
        .collect();
    let shared = DdPackage::default();
    let got: Vec<Vec<Complex64>> = thread::scope(|s| {
        let handles: Vec<_> = circuits
            .iter()
            .map(|c| {
                let shared = &shared;
                s.spawn(move || {
                    let mut state = shared.basis_state(6, 0);
                    for g in c.iter() {
                        let m = shared.gate_dd(g, 6);
                        state = shared.mul_mv(m, state);
                    }
                    shared.vector_to_array(state, 6)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (c, got) in circuits.iter().zip(&got) {
        let want = dense::simulate(c);
        assert!(
            state_distance(got, &want) < 1e-9,
            "{} diverged under shared-package contention",
            c.name()
        );
    }
}

#[test]
fn parallel_apply_stress_matches_sequential() {
    // The task-graph parallel multiply at 2/4/8 workers against a fresh
    // sequential run, across seeds and circuit families. 1e-12: the only
    // permitted divergence is tolerance-bounded weight interning order.
    let circuits = vec![
        generators::random_circuit(7, 80, 5),
        generators::qft(6),
        generators::supremacy(2, 3, 8, 11),
        generators::w_state(7),
    ];
    for c in &circuits {
        let n = c.num_qubits();
        let seq = DdPackage::default();
        let mut want = seq.basis_state(n, 0);
        for g in c.iter() {
            let m = seq.gate_dd(g, n);
            want = seq.mul_mv(m, want);
        }
        let want = seq.vector_to_array(want, n);
        for t in [2usize, 4, 8] {
            let pkg = DdPackage::default();
            let pool = ThreadPool::new(t);
            let mut state = pkg.basis_state(n, 0);
            for g in c.iter() {
                let m = pkg.gate_dd(g, n);
                state = pkg.mul_mv_parallel(&pool, m, state);
            }
            let got = pkg.vector_to_array(state, n);
            assert!(
                state_distance(&got, &want) < 1e-12,
                "{} diverged at {t} threads",
                c.name()
            );
        }
    }
}
