//! DD-based circuit equivalence checking.
//!
//! The flagship non-simulation application of QMDDs (Burgholzer & Wille
//! \[11\], one of the projects the paper lists as building on DDs): two
//! circuits are equivalent iff their full unitaries' DDs coincide — and
//! because this package's node construction is canonical, that comparison
//! is a *pointer* comparison of root edges plus a weight check.
//!
//! Two notions are provided: strict equality (`U1 == U2`) and equality up
//! to global phase (`U1 = e^{i phi} U2`), which is the physically
//! meaningful one.

use crate::node::MEdge;
use crate::package::DdPackage;
use qcircuit::Circuit;

/// Result of an equivalence check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Equivalence {
    /// The unitaries are identical.
    Equal,
    /// The unitaries differ only by a global phase factor.
    EqualUpToGlobalPhase,
    /// The unitaries differ.
    NotEqual,
}

impl Equivalence {
    /// True for `Equal` or `EqualUpToGlobalPhase`.
    pub fn is_equivalent(self) -> bool {
        !matches!(self, Equivalence::NotEqual)
    }
}

/// Builds the full-circuit unitary as a matrix DD (gates applied left to
/// right, i.e. the product `G_k ... G_2 G_1`).
pub fn circuit_unitary_dd(pkg: &mut DdPackage, circuit: &Circuit, gc_every: usize) -> MEdge {
    let n = circuit.num_qubits();
    let mut u = pkg.identity_dd(n);
    for (i, g) in circuit.iter().enumerate() {
        let gd = pkg.gate_dd(g, n);
        u = pkg.mul_mm(gd, u);
        if gc_every > 0 && (i + 1) % gc_every == 0 {
            pkg.gc(&[], &[u]);
        }
    }
    u
}

/// Checks two circuits for equivalence by comparing their unitaries' DDs.
///
/// Uses the miter-style strategy of DD equivalence checkers: build
/// `U2^dagger * U1` incrementally by interleaving gates of `c1` with
/// *inverted* gates of `c2` (proportionally to their lengths), so the
/// running product stays close to the identity — and therefore tiny — for
/// equivalent circuits.
pub fn check_equivalence(c1: &Circuit, c2: &Circuit) -> Equivalence {
    if c1.num_qubits() != c2.num_qubits() {
        return Equivalence::NotEqual;
    }
    let n = c1.num_qubits();
    let mut pkg = DdPackage::default();
    let mut u = pkg.identity_dd(n);
    // Interleave: apply c1's gates on the left, c2's inverted gates on the
    // right, advancing the longer circuit proportionally ("alternating"
    // scheme of [11]).
    let (g1, g2) = (c1.gates(), c2.gates());
    let (mut i, mut j) = (0usize, 0usize);
    let total1 = g1.len().max(1);
    let total2 = g2.len().max(1);
    let mut step = 0usize;
    while i < g1.len() || j < g2.len() {
        // Keep progress fractions balanced.
        let adv1 = i < g1.len() && (j >= g2.len() || i * total2 <= j * total1);
        if adv1 {
            let gd = pkg.gate_dd(&g1[i], n);
            u = pkg.mul_mm(gd, u);
            i += 1;
        } else {
            let gd = pkg.gate_dd(&g2[j].dagger(), n);
            u = pkg.mul_mm(u, gd);
            j += 1;
        }
        step += 1;
        if step.is_multiple_of(64) {
            pkg.gc(&[], &[u]);
        }
    }
    // u = U1 * U2^dagger; equivalence <=> u is (a phase times) the identity.
    classify_vs_identity(&mut pkg, u, n)
}

fn classify_vs_identity(pkg: &mut DdPackage, u: MEdge, n: usize) -> Equivalence {
    let id = pkg.identity_dd(n);
    if u == id {
        return Equivalence::Equal;
    }
    if u.n == id.n {
        // Same canonical node: differs only in the top weight = global phase.
        let w = pkg.cval(u.w);
        if (w.abs() - 1.0).abs() < 1e-9 {
            return Equivalence::EqualUpToGlobalPhase;
        }
    }
    Equivalence::NotEqual
}

/// Convenience: strict DD comparison of two circuits' unitaries (builds
/// both in one package; canonicity makes the comparison exact).
pub fn unitaries_equal(c1: &Circuit, c2: &Circuit) -> Equivalence {
    if c1.num_qubits() != c2.num_qubits() {
        return Equivalence::NotEqual;
    }
    let mut pkg = DdPackage::default();
    let u1 = circuit_unitary_dd(&mut pkg, c1, 0);
    let u2 = circuit_unitary_dd(&mut pkg, c2, 0);
    if u1 == u2 {
        return Equivalence::Equal;
    }
    if u1.n == u2.n {
        let ratio = pkg.cval(u1.w) / pkg.cval(u2.w);
        if (ratio.abs() - 1.0).abs() < 1e-9 {
            return Equivalence::EqualUpToGlobalPhase;
        }
    }
    Equivalence::NotEqual
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::generators;
    use qcircuit::{Circuit, GateKind};

    #[test]
    fn identical_circuits_are_equal() {
        let c = generators::qft(5);
        assert_eq!(check_equivalence(&c, &c), Equivalence::Equal);
        assert_eq!(unitaries_equal(&c, &c), Equivalence::Equal);
    }

    #[test]
    fn swap_decompositions_are_equivalent() {
        // swap(a,b) = cx(a,b) cx(b,a) cx(a,b) = cx(b,a) cx(a,b) cx(b,a).
        let mut c1 = Circuit::new(2);
        c1.cx(0, 1).cx(1, 0).cx(0, 1);
        let mut c2 = Circuit::new(2);
        c2.cx(1, 0).cx(0, 1).cx(1, 0);
        assert!(check_equivalence(&c1, &c2).is_equivalent());
    }

    #[test]
    fn hadamard_conjugation_identity() {
        // H X H = Z.
        let mut c1 = Circuit::new(3);
        c1.h(1).x(1).h(1);
        let mut c2 = Circuit::new(3);
        c2.z(1);
        assert_eq!(check_equivalence(&c1, &c2), Equivalence::Equal);
    }

    #[test]
    fn rz_and_phase_differ_by_global_phase() {
        let mut c1 = Circuit::new(2);
        c1.rz(0.7, 0);
        let mut c2 = Circuit::new(2);
        c2.p(0.7, 0);
        assert_eq!(
            check_equivalence(&c1, &c2),
            Equivalence::EqualUpToGlobalPhase
        );
        assert_eq!(unitaries_equal(&c1, &c2), Equivalence::EqualUpToGlobalPhase);
    }

    #[test]
    fn single_gate_difference_is_detected() {
        let c1 = generators::qft(4);
        let mut c2 = generators::qft(4);
        c2.t(2); // inject a bug
        assert_eq!(check_equivalence(&c1, &c2), Equivalence::NotEqual);
    }

    #[test]
    fn wrong_rotation_angle_is_detected() {
        let mut c1 = Circuit::new(3);
        c1.h(0).cry(0.5, 0, 2);
        let mut c2 = Circuit::new(3);
        c2.h(0).cry(0.5000001, 0, 2); // outside the complex-table tolerance
        assert_eq!(check_equivalence(&c1, &c2), Equivalence::NotEqual);
    }

    #[test]
    fn circuit_against_its_unoptimized_form() {
        // An "optimized" circuit with cancellations vs the original.
        let mut original = Circuit::new(4);
        original
            .h(0)
            .h(0)
            .x(1)
            .cx(1, 2)
            .cx(1, 2)
            .x(1)
            .t(3)
            .tdg(3)
            .s(2);
        let mut optimized = Circuit::new(4);
        optimized.s(2);
        assert_eq!(check_equivalence(&original, &optimized), Equivalence::Equal);
    }

    #[test]
    fn toffoli_decomposition_is_equivalent() {
        // The standard 6-CX + T-count-7 Toffoli decomposition.
        let mut dec = Circuit::new(3);
        dec.h(2)
            .cx(1, 2)
            .tdg(2)
            .cx(0, 2)
            .t(2)
            .cx(1, 2)
            .tdg(2)
            .cx(0, 2)
            .t(1)
            .t(2)
            .h(2)
            .cx(0, 1)
            .t(0)
            .tdg(1)
            .cx(0, 1);
        let mut tof = Circuit::new(3);
        tof.ccx(0, 1, 2);
        assert!(check_equivalence(&dec, &tof).is_equivalent());
    }

    #[test]
    fn width_mismatch_is_not_equal() {
        assert_eq!(
            check_equivalence(&generators::ghz(3), &generators::ghz(4)),
            Equivalence::NotEqual
        );
    }

    #[test]
    fn daggered_circuit_composes_to_identity() {
        let c = generators::random_circuit(5, 40, 3);
        let mut composed = c.clone();
        composed.extend(&c.dagger());
        let mut empty = Circuit::new(5);
        empty.push(qcircuit::Gate::new(GateKind::Id, 0));
        assert!(check_equivalence(&composed, &empty).is_equivalent());
    }

    #[test]
    fn miter_stays_small_on_equivalent_deep_circuits() {
        // The alternating scheme's promise: for equivalent circuits the
        // running product hovers near identity, so the package stays tiny
        // even for deep circuits whose full unitary DD would be huge.
        let c = generators::dnn(7, 3, 5);
        let eq = check_equivalence(&c, &c.clone());
        assert_eq!(eq, Equivalence::Equal);
    }
}
