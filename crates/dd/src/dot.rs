//! Graphviz DOT export for decision diagrams.
//!
//! Renders vector and matrix DDs in the style of the paper's Figure 2:
//! one rank per qubit level, edge labels showing (rounded) weights, zero
//! edges omitted, the terminal drawn as a box. Useful for debugging
//! normalization and for documentation.

use crate::fxhash::FxHashSet;
use crate::node::{MEdge, VEdge, TERM};
use crate::package::DdPackage;
use qcircuit::Complex64;
use std::fmt::Write;

fn fmt_weight(w: Complex64) -> String {
    if w.approx_eq(Complex64::ONE, 1e-9) {
        String::new() // edges without labels have weight one, as in Fig. 2
    } else if w.im.abs() < 1e-9 {
        format!("{:.4}", w.re)
    } else if w.re.abs() < 1e-9 {
        format!("{:.4}i", w.im)
    } else {
        format!("{:.3}{:+.3}i", w.re, w.im)
    }
}

/// Renders a vector DD as a DOT digraph.
pub fn vector_to_dot(pkg: &DdPackage, root: VEdge, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=circle];");
    let _ = writeln!(out, "  term [shape=box, label=\"1\"];");
    let _ = writeln!(
        out,
        "  root [shape=none, label=\"\"]; root -> {} [label=\"{}\"];",
        node_name_v(root.n),
        fmt_weight(pkg.cval(root.w))
    );
    if root.is_zero() {
        let _ = writeln!(out, "}}");
        return out;
    }
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut stack = vec![root.n];
    while let Some(id) = stack.pop() {
        if id == TERM || !seen.insert(id) {
            continue;
        }
        let node = pkg.v_node(id);
        let _ = writeln!(out, "  {} [label=\"q{}\"];", node_name_v(id), node.level);
        for (b, e) in node.e.iter().enumerate() {
            if e.is_zero() {
                continue;
            }
            let style = if b == 0 { "dashed" } else { "solid" };
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\", style={style}];",
                node_name_v(id),
                node_name_v(e.n),
                fmt_weight(pkg.cval(e.w))
            );
            stack.push(e.n);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a matrix DD as a DOT digraph (edge labels `r,c:` prefix the
/// block position).
pub fn matrix_to_dot(pkg: &DdPackage, root: MEdge, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=circle];");
    let _ = writeln!(out, "  term [shape=box, label=\"1\"];");
    let _ = writeln!(
        out,
        "  root [shape=none, label=\"\"]; root -> {} [label=\"{}\"];",
        node_name_m(root.n),
        fmt_weight(pkg.cval(root.w))
    );
    if root.is_zero() {
        let _ = writeln!(out, "}}");
        return out;
    }
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    let mut stack = vec![root.n];
    while let Some(id) = stack.pop() {
        if id == TERM || !seen.insert(id) {
            continue;
        }
        let node = pkg.m_node(id);
        let _ = writeln!(out, "  {} [label=\"q{}\"];", node_name_m(id), node.level);
        for (k, e) in node.e.iter().enumerate() {
            if e.is_zero() {
                continue;
            }
            let (i, j) = (k >> 1, k & 1);
            let w = fmt_weight(pkg.cval(e.w));
            let label = if w.is_empty() {
                format!("{i}{j}")
            } else {
                format!("{i}{j}: {w}")
            };
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{label}\"];",
                node_name_m(id),
                node_name_m(e.n)
            );
            stack.push(e.n);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn node_name_v(id: u32) -> String {
    if id == TERM {
        "term".into()
    } else {
        format!("v{id}")
    }
}

fn node_name_m(id: u32) -> String {
    if id == TERM {
        "term".into()
    } else {
        format!("m{id}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::gate::{Gate, GateKind};
    use qcircuit::generators;

    #[test]
    fn ghz_dot_has_expected_structure() {
        let pkg = DdPackage::default();
        let mut s = pkg.basis_state(3, 0);
        for g in generators::ghz(3).iter() {
            s = pkg.apply_gate(s, g, 3);
        }
        let dot = vector_to_dot(&pkg, s, "ghz3");
        assert!(dot.starts_with("digraph ghz3 {"));
        assert!(dot.trim_end().ends_with('}'));
        // 5 unique nodes (2n - 1), each with a label line.
        let labels = dot.matches("[label=\"q").count();
        assert_eq!(labels, 5);
        assert!(dot.contains("term [shape=box"));
        // GHZ node weights 1/sqrt(2) appear.
        assert!(dot.contains("0.7071"));
    }

    #[test]
    fn hadamard_matrix_dot_matches_figure_2a() {
        let pkg = DdPackage::default();
        let e = pkg.gate_dd(&Gate::new(GateKind::H, 1), 2);
        let dot = matrix_to_dot(&pkg, e, "h_top");
        // Two nodes (m1, m2 in the figure), top weight 1/sqrt(2), a -1 edge.
        assert_eq!(dot.matches("[label=\"q").count(), 2);
        assert!(dot.contains("0.7071"));
        assert!(dot.contains("-1.0000"));
    }

    #[test]
    fn zero_edge_renders_without_nodes() {
        let pkg = DdPackage::default();
        let dot = vector_to_dot(&pkg, VEdge::ZERO, "zero");
        assert!(!dot.contains("[label=\"q"));
    }

    #[test]
    fn weight_one_edges_have_no_label() {
        let pkg = DdPackage::default();
        let s = pkg.basis_state(2, 0);
        let dot = vector_to_dot(&pkg, s, "basis");
        // Both chain edges have weight 1: labels empty.
        assert!(dot.contains("label=\"\""));
    }
}
