//! MAC-operation counting over matrix DDs (Section 3.2.3, Figure 8).
//!
//! The number of multiply-accumulate operations a DMAV with this gate matrix
//! performs is computed by a memoized DFS: the terminal counts one MAC and
//! every node counts the sum over its *non-zero* outgoing edges of its
//! children's counts. Identical nodes share their count through the look-up
//! table `T`.

use crate::fxhash::FxHashMap;
use crate::node::MEdge;
use crate::package::DdPackage;

/// Memoized MAC-count table (the paper's `T`).
#[derive(Default)]
pub struct MacTable {
    memo: FxHashMap<u32, u64>,
}

impl MacTable {
    /// Clears all memoized counts (required after a package GC, since node
    /// ids may be recycled).
    pub fn clear(&mut self) {
        self.memo.clear();
    }

    /// Number of memoized nodes.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// MAC count of the sub-DD behind `edge` (0 for a zero edge).
    pub fn count(&mut self, pkg: &DdPackage, edge: MEdge) -> u64 {
        if edge.is_zero() {
            return 0;
        }
        self.count_node(pkg, edge.n)
    }

    fn count_node(&mut self, pkg: &DdPackage, n: u32) -> u64 {
        if n == crate::node::TERM {
            return 1;
        }
        if let Some(&c) = self.memo.get(&n) {
            return c;
        }
        let node = *pkg.m_node(n);
        let mut total = 0u64;
        for e in node.e {
            if !e.is_zero() {
                total += self.count_node(pkg, e.n);
            }
        }
        self.memo.insert(n, total);
        total
    }
}

/// One-shot MAC count of a matrix DD (allocates a fresh memo table).
pub fn mac_count(pkg: &DdPackage, edge: MEdge) -> u64 {
    MacTable::default().count(pkg, edge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::gate::{Control, Gate, GateKind};
    use qcircuit::Complex64;

    /// Brute-force MAC count: number of non-zero matrix entries (each
    /// non-zero `M[i][j]` contributes exactly one `W[i] += M[i][j]*V[j]`).
    fn brute_force(pkg: &DdPackage, e: MEdge, n: usize) -> u64 {
        let dim = 1usize << n;
        let mut count = 0;
        for r in 0..dim {
            for c in 0..dim {
                if !pkg.matrix_entry(e, r, c).approx_zero(1e-12) {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn identity_has_2n_macs() {
        let p = DdPackage::default();
        for n in 1..=5usize {
            let e = p.identity_dd(n);
            assert_eq!(mac_count(&p, e), 1u64 << n, "n={n}");
        }
    }

    #[test]
    fn hadamard_counts_match_figure_8_style() {
        let p = DdPackage::default();
        // H on one qubit of 3: the H level is dense (4 entries), others
        // diagonal: total = 4 * 2 * 2 = 16 — exactly Figure 8's T(m1)=16.
        let g = Gate::new(GateKind::H, 2);
        let e = p.gate_dd(&g, 3);
        assert_eq!(mac_count(&p, e), 16);
    }

    #[test]
    fn counts_equal_nonzero_entries() {
        let p = DdPackage::default();
        let n = 4;
        let gates = vec![
            Gate::new(GateKind::H, 1),
            Gate::new(GateKind::T, 0),
            Gate::controlled(GateKind::X, 2, vec![Control::pos(0)]),
            Gate::controlled(GateKind::H, 3, vec![Control::pos(1)]),
            Gate::controlled(GateKind::X, 0, vec![Control::pos(1), Control::pos(3)]),
            Gate::new(GateKind::SqrtX, 3),
        ];
        for g in gates {
            let e = p.gate_dd(&g, n);
            assert_eq!(mac_count(&p, e), brute_force(&p, e, n), "gate {g}");
        }
    }

    #[test]
    fn fused_matrix_count_matches_brute_force() {
        let p = DdPackage::default();
        let n = 3;
        let g1 = Gate::new(GateKind::H, 0);
        let g2 = Gate::controlled(GateKind::X, 1, vec![Control::pos(0)]);
        let e1 = p.gate_dd(&g1, n);
        let e2 = p.gate_dd(&g2, n);
        let fused = p.mul_mm(e2, e1);
        assert_eq!(mac_count(&p, fused), brute_force(&p, fused, n));
    }

    #[test]
    fn zero_edge_counts_zero() {
        let p = DdPackage::default();
        assert_eq!(mac_count(&p, MEdge::ZERO), 0);
    }

    #[test]
    fn table_is_reusable_across_gates() {
        let p = DdPackage::default();
        let mut t = MacTable::default();
        let e1 = p.gate_dd(&Gate::new(GateKind::H, 0), 3);
        let e2 = p.gate_dd(&Gate::new(GateKind::H, 1), 3);
        let c1 = t.count(&p, e1);
        let c2 = t.count(&p, e2);
        assert_eq!(c1, 16);
        assert_eq!(c2, 16);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        let _ = Complex64::ZERO;
    }
}
