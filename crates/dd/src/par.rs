//! Parallel DD-phase execution: a persistent fork-join [`ThreadPool`] and a
//! task-graph parallelization of the matrix-vector multiply.
//!
//! FlatDD launches `t` threads for *every* DMAV and every conversion
//! (Algorithms 1 and 2 say "parallel for i in [0, t)"). Spawning OS threads
//! per gate would dominate the runtime of shallow gates, so the pool keeps
//! `t` workers parked and hands them one closure per dispatch; [`run`]
//! blocks until all workers finish, which is exactly the fork-join shape of
//! the paper's kernels. The pool lives in `qdd` (the bottom of the crate
//! stack) so the DD phase, the DMAV kernels, and the converters can all
//! share one set of workers.
//!
//! The parallel multiply splits the recursion over the top `k` levels of
//! the DD into a task graph (`k = log2(t) + 2`, so there are at least ~4x
//! more leaf tasks than workers to balance uneven subtree sizes), runs the
//! leaves as ordinary sequential recursions over the shared concurrent
//! package, and then folds the split nodes bottom-up level by level. Every
//! arithmetic step performs *exactly* the operations of the sequential
//! recursion — same additions, same normalizations, same cache keys — so
//! results agree with the single-threaded path up to the interning of
//! freshly created weights.
//!
//! [`run`]: ThreadPool::run

use crate::ctable::CIdx;
use crate::fxhash::FxHashMap;
use crate::node::{MEdge, VEdge};
use crate::package::DdPackage;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased job pointer. The pointed-to closure is guaranteed (by
/// `run` blocking) to outlive its execution.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the closure behind the pointer is `Sync`, and `run` keeps it alive
// until every worker has finished with it.
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    generation: u64,
    active: usize,
    shutdown: bool,
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Fixed-size fork-join thread pool.
pub struct ThreadPool {
    size: usize,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `size` workers (>= 1). A size-1 pool runs jobs
    /// inline on the caller with no worker threads.
    ///
    /// # Panics
    /// When the OS refuses to spawn a worker thread; use [`Self::try_new`]
    /// to handle that as an error.
    pub fn new(size: usize) -> Self {
        Self::try_new(size).expect("failed to spawn pool worker")
    }

    /// Fallible [`Self::new`]: surfaces thread-spawn failure (resource
    /// exhaustion under a tight process limit) as an `io::Error` instead of
    /// panicking. Already-spawned workers are joined cleanly on failure.
    pub fn try_new(size: usize) -> std::io::Result<Self> {
        let size = size.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut workers = Vec::new();
        if size > 1 {
            for tid in 0..size {
                let shared_cl = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("flatdd-worker-{tid}"))
                    .spawn(move || worker_loop(tid, &shared_cl));
                match spawned {
                    Ok(h) => workers.push(h),
                    Err(e) => {
                        // Shut down what we already started before bailing.
                        {
                            let mut st = shared.state.lock();
                            st.shutdown = true;
                            shared.work_cv.notify_all();
                        }
                        for w in workers {
                            let _ = w.join();
                        }
                        return Err(e);
                    }
                }
            }
        }
        Ok(ThreadPool {
            size,
            shared,
            workers,
        })
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f(tid)` for every `tid in 0..size` and waits for completion.
    ///
    /// Must not be called re-entrantly (from inside a running job) or from
    /// two threads at once.
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if self.size == 1 {
            f(0);
            return;
        }
        // SAFETY: `f` outlives this call, and this call does not return
        // before every worker has finished executing the job — so erasing
        // the lifetime of the trait object is sound.
        let local: &(dyn Fn(usize) + Sync) = &f;
        let ptr: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(local)
        };
        let mut st = self.shared.state.lock();
        assert_eq!(st.active, 0, "ThreadPool::run is not re-entrant");
        st.job = Some(Job(ptr));
        st.generation += 1;
        st.active = self.size;
        self.shared.work_cv.notify_all();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
        if st.panicked {
            st.panicked = false;
            drop(st);
            panic!("a ThreadPool job panicked on a worker thread");
        }
    }
}

fn worker_loop(tid: usize, shared: &Shared) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            while st.generation == seen_gen && !st.shutdown {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen_gen = st.generation;
            st.job.expect("generation advanced without a job")
        };
        // SAFETY: the dispatcher keeps the closure alive until `active`
        // drops to zero, which happens strictly after this call returns.
        // A panicking job must still decrement `active`, or `run` would
        // deadlock; the panic is surfaced on the dispatcher side instead.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job.0)(tid) }));
        let mut st = shared.state.lock();
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---- parallel matrix-vector multiply ---------------------------------------

#[inline(always)]
fn pack(e: VEdge) -> u64 {
    ((e.n as u64) << 32) | e.w.0 as u64
}

#[inline(always)]
fn unpack(v: u64) -> VEdge {
    VEdge {
        n: (v >> 32) as u32,
        w: CIdx(v as u32),
    }
}

/// One child multiplication of a split node.
#[derive(Clone, Copy)]
enum Kid {
    /// Resolved during graph construction (zero product or terminal).
    Done(VEdge),
    /// `scale_v(result(task), w)` once the task has run.
    Task { idx: u32, w: CIdx },
}

enum TaskKind {
    /// Already resolved at build time (operation-cache hit).
    Resolved,
    /// Sequential `mul_mv_rec` below the split frontier.
    Leaf,
    /// `es[i] = add(kid[2i], kid[2i+1])`, then `make_vnode`.
    Split { level: u8, kids: [Kid; 4] },
}

/// A node of the multiply task graph, keyed by the `(matrix node, vector
/// node)` pair exactly like the sequential recursion's cache entries.
struct Task {
    mn: u32,
    vn: u32,
    depth: u32,
    kind: TaskKind,
    /// Packed [`VEdge`] result, written once by the executing worker.
    result: AtomicU64,
}

struct Graph {
    tasks: Vec<Task>,
    /// `(mn, vn)` -> task index: shares repeated sub-multiplications just
    /// like the operation cache does in the sequential recursion.
    memo: FxHashMap<(u32, u32), u32>,
    max_split_depth: u32,
}

impl Graph {
    fn build(pkg: &DdPackage, mn: u32, vn: u32, split_below: u32) -> (Self, u32) {
        let mut g = Graph {
            tasks: Vec::new(),
            memo: FxHashMap::default(),
            max_split_depth: 0,
        };
        let root = g.visit(pkg, mn, vn, 0, split_below);
        (g, root)
    }

    fn visit(&mut self, pkg: &DdPackage, mn: u32, vn: u32, depth: u32, split_below: u32) -> u32 {
        if let Some(&i) = self.memo.get(&(mn, vn)) {
            return i;
        }
        let idx = if let Some(hit) = pkg.compute.lookup_mv(mn, vn) {
            self.push(Task {
                mn,
                vn,
                depth,
                kind: TaskKind::Resolved,
                result: AtomicU64::new(pack(hit)),
            })
        } else if depth >= split_below {
            self.push(Task {
                mn,
                vn,
                depth,
                kind: TaskKind::Leaf,
                result: AtomicU64::new(0),
            })
        } else {
            let mnode = *pkg.m_node(mn);
            let vnode = *pkg.v_node(vn);
            let mut kids = [Kid::Done(VEdge::ZERO); 4];
            for i in 0..2 {
                for j in 0..2 {
                    let me = mnode.e[2 * i + j];
                    let ve = vnode.e[j];
                    // Mirror of the sequential `mul_mv` prologue.
                    let w = pkg.ct.mul(me.w, ve.w);
                    kids[2 * i + j] = if w.is_zero() {
                        Kid::Done(VEdge::ZERO)
                    } else if me.is_terminal() {
                        Kid::Done(VEdge::terminal(w))
                    } else {
                        let child = self.visit(pkg, me.n, ve.n, depth + 1, split_below);
                        Kid::Task { idx: child, w }
                    };
                }
            }
            self.max_split_depth = self.max_split_depth.max(depth);
            self.push(Task {
                mn,
                vn,
                depth,
                kind: TaskKind::Split {
                    level: mnode.level,
                    kids,
                },
                result: AtomicU64::new(0),
            })
        };
        self.memo.insert((mn, vn), idx);
        idx
    }

    fn push(&mut self, t: Task) -> u32 {
        self.tasks.push(t);
        (self.tasks.len() - 1) as u32
    }
}

/// State-DD nodes per worker below which forking a gate apply onto the
/// pool costs more than it saves: the multiply fits in a handful of cache
/// lines and the fork-join barrier dominates.
pub const PAR_GRAIN_NODES: usize = 64;

/// Adaptive worker cap for a parallel DD gate apply: one worker per
/// [`PAR_GRAIN_NODES`] state-DD nodes, rounded down to a power of two
/// (`1` = run sequential). A fixed all-or-nothing size cutoff lets a
/// 16-thread pool shred a 100-node DD into sub-cache-line tasks — the
/// measured dd-scaling regression on shallow-reconvergent circuits (VQE);
/// capping workers by the work available keeps the per-task grain roughly
/// constant as the DD grows.
pub fn adaptive_parallel_cap(dd_size: usize) -> usize {
    let cap = dd_size / PAR_GRAIN_NODES;
    if cap < 2 {
        1
    } else {
        1usize << (usize::BITS - 1 - cap.leading_zeros())
    }
}

impl DdPackage {
    /// Parallel [`Self::mul_mv`]: splits the top levels of the recursion
    /// into a task graph executed on `pool`, with a sequential cutoff below
    /// the frontier. Falls back to the sequential path for a size-1 pool.
    ///
    /// Performs the same arithmetic (and feeds the same operation-cache
    /// entries) as the sequential multiply, so a 1-thread run is bit-for-bit
    /// identical and a t-thread run differs at most by the tolerance-bounded
    /// interning order of freshly created weights.
    pub fn mul_mv_parallel(&self, pool: &ThreadPool, m: MEdge, v: VEdge) -> VEdge {
        self.mul_mv_parallel_capped(pool, m, v, pool.size())
    }

    /// [`Self::mul_mv_parallel`] with the effective worker count capped at
    /// `max_workers` (further capped by the pool size). The cap bounds the
    /// split frontier, so a small state DD is not shredded into tasks far
    /// smaller than the fork-join barrier it pays for; a cap of 1 is the
    /// exact sequential multiply. Idle pool workers still help drain the
    /// task rounds — the cap shapes the graph, not the pool.
    pub fn mul_mv_parallel_capped(
        &self,
        pool: &ThreadPool,
        m: MEdge,
        v: VEdge,
        max_workers: usize,
    ) -> VEdge {
        let t = pool.size().min(max_workers.max(1));
        if t <= 1 {
            return self.mul_mv(m, v);
        }
        let w = self.ct.mul(m.w, v.w);
        if w.is_zero() {
            return VEdge::ZERO;
        }
        if m.is_terminal() {
            debug_assert!(v.is_terminal());
            return VEdge::terminal(w);
        }
        // Split the top k levels: ~4^k potential leaves bound the frontier,
        // but structural sharing usually collapses that to a few times the
        // worker count — enough slack to balance uneven subtrees.
        let split_below = t.trailing_zeros() + 2;
        let (graph, root) = Graph::build(self, m.n, v.n, split_below);
        self.execute(pool, &graph);
        let r = unpack(graph.tasks[root as usize].result.load(Ordering::Relaxed));
        self.scale_v(r, w)
    }

    /// Runs the graph: all leaves first (they are mutually independent),
    /// then the split levels bottom-up. The pool barrier between rounds is
    /// what publishes results to the next round's readers.
    fn execute(&self, pool: &ThreadPool, graph: &Graph) {
        let leaves: Vec<u32> = (0..graph.tasks.len() as u32)
            .filter(|&i| matches!(graph.tasks[i as usize].kind, TaskKind::Leaf))
            .collect();
        self.run_round(pool, graph, &leaves);
        for d in (0..=graph.max_split_depth).rev() {
            let round: Vec<u32> = (0..graph.tasks.len() as u32)
                .filter(|&i| {
                    let t = &graph.tasks[i as usize];
                    t.depth == d && matches!(t.kind, TaskKind::Split { .. })
                })
                .collect();
            self.run_round(pool, graph, &round);
        }
    }

    fn run_round(&self, pool: &ThreadPool, graph: &Graph, round: &[u32]) {
        if round.is_empty() {
            return;
        }
        if round.len() == 1 {
            self.run_task(graph, &graph.tasks[round[0] as usize]);
            return;
        }
        let cursor = AtomicUsize::new(0);
        pool.run(|_| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= round.len() {
                break;
            }
            self.run_task(graph, &graph.tasks[round[i] as usize]);
        });
    }

    fn run_task(&self, graph: &Graph, t: &Task) {
        let r = match &t.kind {
            TaskKind::Resolved => return,
            TaskKind::Leaf => self.mul_mv_rec(t.mn, t.vn),
            TaskKind::Split { level, kids } => {
                let kid = |k: &Kid| match *k {
                    Kid::Done(e) => e,
                    Kid::Task { idx, w } => {
                        let sub = unpack(graph.tasks[idx as usize].result.load(Ordering::Relaxed));
                        self.scale_v(sub, w)
                    }
                };
                let es = [
                    self.add_vectors(kid(&kids[0]), kid(&kids[1])),
                    self.add_vectors(kid(&kids[2]), kid(&kids[3])),
                ];
                let r = self.make_vnode(*level, es);
                // Feed the operation cache exactly like the sequential
                // recursion, so later gates hit it either way.
                self.compute.insert_mv(t.mn, t.vn, r);
                r
            }
        };
        t.result.store(pack(r), Ordering::Relaxed);
    }

    /// Parallel [`Self::apply_gate`]: builds the gate DD (cheap, sequential)
    /// and multiplies it onto the state with [`Self::mul_mv_parallel`].
    pub fn apply_gate_parallel(
        &self,
        pool: &ThreadPool,
        state: VEdge,
        gate: &qcircuit::Gate,
        n: usize,
    ) -> VEdge {
        let g = self.gate_dd(gate, n);
        self.mul_mv_parallel(pool, g, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::{dense, generators, Complex64};

    #[test]
    fn runs_every_tid_once() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        pool.run(|tid| {
            hits.fetch_add(1, Ordering::Relaxed);
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn sequential_dispatches_reuse_workers() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = ThreadPool::new(1);
        let cell = AtomicUsize::new(0);
        pool.run(|tid| cell.store(tid + 99, Ordering::Relaxed));
        assert_eq!(cell.load(Ordering::Relaxed), 99);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        pool.run(|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn panicking_job_does_not_deadlock() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(
            result.is_err(),
            "the dispatcher must re-raise the job panic"
        );
        // The pool is still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    fn simulate_parallel(pool: &ThreadPool, c: &qcircuit::Circuit) -> Vec<Complex64> {
        let p = DdPackage::default();
        let n = c.num_qubits();
        let mut state = p.basis_state(n, 0);
        for g in c.iter() {
            state = p.apply_gate_parallel(pool, state, g, n);
        }
        p.vector_to_array(state, n)
    }

    #[test]
    fn parallel_apply_matches_dense_across_circuits() {
        let pool = ThreadPool::new(4);
        let circuits = vec![
            generators::ghz(7),
            generators::qft(6),
            generators::w_state(6),
            generators::random_circuit(6, 80, 5),
            generators::grover(4, 9, Some(3)),
        ];
        for c in circuits {
            let got = simulate_parallel(&pool, &c);
            let want = dense::simulate(&c);
            assert!(
                qcircuit::complex::state_distance(&got, &want) < 1e-9,
                "circuit {}",
                c.name()
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree_to_tight_tolerance() {
        // The issue's acceptance bar: multi-thread amplitudes within 1e-12
        // of the single-threaded ones.
        for threads in [2usize, 4, 8] {
            let pool = ThreadPool::new(threads);
            for seed in [1u64, 7, 42] {
                let c = generators::random_circuit(6, 100, seed);
                let n = c.num_qubits();
                let seq = DdPackage::default();
                let mut s = seq.basis_state(n, 0);
                for g in c.iter() {
                    s = seq.apply_gate(s, g, n);
                }
                let want = seq.vector_to_array(s, n);
                let got = simulate_parallel(&pool, &c);
                assert!(
                    qcircuit::complex::state_distance(&got, &want) < 1e-12,
                    "threads={threads} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn adaptive_cap_tracks_dd_size() {
        assert_eq!(adaptive_parallel_cap(0), 1);
        assert_eq!(adaptive_parallel_cap(63), 1);
        assert_eq!(adaptive_parallel_cap(64), 1); // cap 1 < 2 -> sequential
        assert_eq!(adaptive_parallel_cap(128), 2);
        assert_eq!(adaptive_parallel_cap(255), 2);
        assert_eq!(adaptive_parallel_cap(256), 4);
        assert_eq!(adaptive_parallel_cap(64 * 16), 16);
        assert_eq!(adaptive_parallel_cap(64 * 16 + 63), 16);
        assert!(adaptive_parallel_cap(usize::MAX).is_power_of_two());
    }

    #[test]
    fn capped_multiply_matches_sequential() {
        let pool = ThreadPool::new(8);
        let c = generators::random_circuit(6, 80, 17);
        let n = c.num_qubits();
        let seq = DdPackage::default();
        let mut s = seq.basis_state(n, 0);
        for g in c.iter() {
            s = seq.apply_gate(s, g, n);
        }
        let want = seq.vector_to_array(s, n);
        for cap in [1usize, 2, 4, 8, 64] {
            let p = DdPackage::default();
            let mut state = p.basis_state(n, 0);
            for g in c.iter() {
                let gd = p.gate_dd(g, n);
                state = p.mul_mv_parallel_capped(&pool, gd, state, cap);
            }
            let got = p.vector_to_array(state, n);
            assert!(
                qcircuit::complex::state_distance(&got, &want) < 1e-12,
                "cap={cap}"
            );
        }
    }

    #[test]
    fn one_thread_parallel_is_bit_for_bit_sequential() {
        let pool = ThreadPool::new(1);
        let c = generators::random_circuit(6, 60, 9);
        let n = c.num_qubits();
        let seq = DdPackage::default();
        let mut a = seq.basis_state(n, 0);
        for g in c.iter() {
            a = seq.apply_gate(a, g, n);
        }
        let par = DdPackage::default();
        let mut b = par.basis_state(n, 0);
        for g in c.iter() {
            b = par.apply_gate_parallel(&pool, b, g, n);
        }
        // Identical packages run the identical code path: the edges match
        // exactly, not just within tolerance.
        assert_eq!(a, b);
        assert_eq!(seq.vector_to_array(a, n), par.vector_to_array(b, n));
    }

    #[test]
    fn parallel_multiply_populates_the_shared_cache() {
        let pool = ThreadPool::new(4);
        let p = DdPackage::default();
        let n = 6;
        let c = generators::qft(n);
        let mut state = p.basis_state(n, 0);
        for g in c.iter() {
            state = p.apply_gate_parallel(&pool, state, g, n);
        }
        // A sequential re-application now hits the cache the parallel run
        // populated.
        let g = qcircuit::Gate::new(qcircuit::gate::GateKind::H, 0);
        let gd = p.gate_dd(&g, n);
        let a = p.mul_mv(gd, state);
        let before = p.compute_stats();
        let b = p.mul_mv(gd, state);
        let after = p.compute_stats();
        assert_eq!(a, b);
        assert!(after.mv_hits > before.mv_hits);
    }
}
