//! # qdd — a QMDD-style decision-diagram package
//!
//! From-scratch re-implementation of the decision-diagram machinery the
//! FlatDD paper builds on (DDSIM \[99\], QMDDs \[86\], and the complex-number
//! table of \[98\]):
//!
//! * [`ctable`] — tolerance-based interning of complex edge weights.
//! * [`node`] — vector (2-edge) and matrix (4-edge) nodes in slab arenas
//!   with unique tables for structural sharing.
//! * [`package`] — [`DdPackage`]: normalized node construction, gate-DD
//!   building, DD ↔ array conversion, traversals, mark/sweep GC.
//! * [`ops`] — memoized DD arithmetic: matrix-vector multiply (the DD
//!   simulation kernel), matrix-matrix multiply (DDMM, used by gate
//!   fusion), and addition.
//! * [`mac`] — MAC-operation counting (the paper's cost-model primitive,
//!   Figure 8).
//! * [`sim`] — [`DdSimulator`], the DDSIM-equivalent baseline simulator.
//!
//! ## Canonical form
//!
//! Nodes never skip levels (every root-to-terminal path visits every
//! qubit), vector nodes normalize outgoing weights to 2-norm 1 with the
//! first non-zero weight real positive, and matrix nodes normalize by their
//! first maximum-magnitude weight. Combined with weight interning this makes
//! structurally equal sub-DDs *pointer*-equal, which the unique and compute
//! tables rely on.

#![warn(missing_docs)]

pub mod approx;
pub mod ctable;
pub mod dot;
pub mod fxhash;
pub mod inner;
pub mod mac;
pub mod node;
pub mod ops;
pub mod package;
pub mod par;
pub mod sampling;
pub mod serialize;
pub mod sim;
mod sync;
pub mod verify;

pub use approx::ApproxResult;
pub use ctable::{CIdx, ComplexTable};
pub use mac::{mac_count, MacTable};
pub use node::ShardStats;
pub use node::{MEdge, MNode, VEdge, VNode, TERM};
pub use ops::ComputeStats;
pub use package::{DdPackage, PackageStats};
pub use par::ThreadPool;
pub use sampling::SplitMix64;
pub use sim::{DdSimStats, DdSimulator};
pub use verify::{check_equivalence, circuit_unitary_dd, unitaries_equal, Equivalence};
