//! Shared-memory building blocks for the concurrent DD package.
//!
//! [`SlotVec`] is a segmented, append-only slot store: segments are
//! allocated on demand (doubling in size) and *never* moved or freed while
//! the structure is alive, so readers can dereference slots without taking
//! any lock while writers append behind a shard lock. This is what lets the
//! sharded unique tables ([`crate::node::NodeArena`]) and the complex table
//! ([`crate::ctable::ComplexTable`]) hand out stable `u32` indices whose
//! contents are readable from any thread.
//!
//! Safety model (stated once here, relied on by the callers):
//!
//! * A slot is written at most once between publications — either when its
//!   index is freshly allocated (no other thread knows the index yet) or
//!   when a recycled slot is re-filled under the owning shard's lock after
//!   a stop-the-world sweep proved it unreachable.
//! * An index only *escapes* to other threads through a synchronizing
//!   structure (a shard mutex, or a seq-lock-validated compute-cache entry
//!   whose final store is `Release`), so the slot write happens-before
//!   every cross-thread read of that slot.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::AtomicU32;
use std::sync::OnceLock;

/// log2 of the first segment's slot count.
const SEG0_BITS: u32 = 10;
/// Number of doubling segments: capacity `(2^NSEGS - 1) * 2^SEG0_BITS`
/// (~5.4e8 slots), comfortably above the `u32 >> 4` local-index space.
const NSEGS: usize = 19;

/// One slot: node/value payload plus an atomic mark/traversal stamp.
struct Slot<T> {
    stamp: AtomicU32,
    data: UnsafeCell<MaybeUninit<T>>,
}

/// Segmented, append-only slot store with lock-free reads.
pub(crate) struct SlotVec<T> {
    segs: [OnceLock<Box<[Slot<T>]>>; NSEGS],
}

// SAFETY: cross-thread access to `data` follows the publication protocol in
// the module docs; `stamp` is atomic.
unsafe impl<T: Send + Sync> Sync for SlotVec<T> {}
unsafe impl<T: Send> Send for SlotVec<T> {}

/// Maps a global slot index to (segment, offset).
#[inline(always)]
fn locate(i: u32) -> (usize, usize) {
    let q = (i >> SEG0_BITS) + 1;
    let k = 31 - q.leading_zeros();
    let base = ((1u32 << k) - 1) << SEG0_BITS;
    (k as usize, (i - base) as usize)
}

#[inline(always)]
fn seg_len(k: usize) -> usize {
    1usize << (SEG0_BITS + k as u32)
}

impl<T> Default for SlotVec<T> {
    fn default() -> Self {
        SlotVec {
            segs: std::array::from_fn(|_| OnceLock::new()),
        }
    }
}

impl<T> SlotVec<T> {
    /// Makes sure the segment holding slot `i` is allocated. Callable from
    /// any thread; racing allocators are serialized by the `OnceLock`.
    pub(crate) fn ensure(&self, i: u32) {
        let (k, _) = locate(i);
        assert!(k < NSEGS, "SlotVec capacity exhausted");
        self.segs[k].get_or_init(|| {
            (0..seg_len(k))
                .map(|_| Slot {
                    stamp: AtomicU32::new(0),
                    data: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect()
        });
    }

    #[inline(always)]
    fn slot(&self, i: u32) -> &Slot<T> {
        let (k, off) = locate(i);
        let seg = self.segs[k].get().expect("slot segment not allocated");
        &seg[off]
    }

    /// Writes slot `i`.
    ///
    /// # Safety
    /// The caller must hold exclusive ownership of slot `i` (freshly
    /// reserved index, or recycled slot re-filled under the shard lock) and
    /// must have called [`Self::ensure`] for it.
    #[inline(always)]
    pub(crate) unsafe fn write(&self, i: u32, v: T) {
        (*self.slot(i).data.get()).write(v);
    }

    /// Reads slot `i`.
    ///
    /// # Safety
    /// Slot `i` must have been written, and that write must happen-before
    /// this read (the index was received through a synchronizing structure).
    /// The reference must not be held across a sweep that could recycle the
    /// slot — the same liveness contract node ids already carry.
    #[inline(always)]
    pub(crate) unsafe fn get(&self, i: u32) -> &T {
        (*self.slot(i).data.get()).assume_init_ref()
    }

    /// The atomic mark/traversal stamp of slot `i` (must be allocated).
    #[inline(always)]
    pub(crate) fn stamp(&self, i: u32) -> &AtomicU32 {
        &self.slot(i).stamp
    }

    /// Bytes held by all currently allocated segments.
    pub(crate) fn allocated_bytes(&self) -> usize {
        (0..NSEGS)
            .filter(|&k| self.segs[k].get().is_some())
            .map(|k| seg_len(k) * std::mem::size_of::<Slot<T>>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn locate_covers_segment_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        assert_eq!(locate(7168), (3, 0));
        // Successive indices are dense within each segment.
        let mut prev = locate(0);
        for i in 1..100_000u32 {
            let cur = locate(i);
            if cur.0 == prev.0 {
                assert_eq!(cur.1, prev.1 + 1, "i={i}");
            } else {
                assert_eq!(cur.0, prev.0 + 1, "i={i}");
                assert_eq!(cur.1, 0, "i={i}");
            }
            prev = cur;
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let v: SlotVec<u64> = SlotVec::default();
        for i in 0..5000u32 {
            v.ensure(i);
            unsafe { v.write(i, (i as u64) * 7 + 1) };
        }
        for i in 0..5000u32 {
            assert_eq!(unsafe { *v.get(i) }, (i as u64) * 7 + 1);
        }
        assert!(v.allocated_bytes() > 0);
    }

    #[test]
    fn stamps_start_zero_and_are_atomic() {
        let v: SlotVec<u8> = SlotVec::default();
        v.ensure(42);
        assert_eq!(v.stamp(42).load(Ordering::Relaxed), 0);
        assert_eq!(v.stamp(42).swap(9, Ordering::Relaxed), 0);
        assert_eq!(v.stamp(42).load(Ordering::Relaxed), 9);
    }
}
